// Worker-process entry point for multi-process distributed ranks
// (DESIGN.md §15). Launched by the rank-0 coordinator (dist/supervisor) as
//
//   dist_worker <address> <rank> <ranks> <token> <heartbeat_ms>
//               <recv_deadline_ms>
//
// and never by hand: the attach token is minted per hub, and every bit of
// simulator state arrives through Init control frames. Exit codes: 0 clean
// shutdown, 1 lost coordinator link, 2 bad usage / startup failure.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "dist/worker.hpp"

namespace {

meshpram::i64 parse_i64(const char* s, const char* what) {
  try {
    size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used == std::string(s).size()) return v;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "dist_worker: bad %s '%s'\n", what, s);
  std::exit(2);
}

meshpram::u64 parse_u64(const char* s, const char* what) {
  try {
    size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used == std::string(s).size()) return v;
  } catch (const std::exception&) {
  }
  std::fprintf(stderr, "dist_worker: bad %s '%s'\n", what, s);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 7) {
    std::fprintf(stderr,
                 "usage: dist_worker <address> <rank> <ranks> <token> "
                 "<heartbeat_ms> <recv_deadline_ms>\n"
                 "(launched by the coordinator; not a user-facing tool)\n");
    return 2;
  }
  meshpram::dist::WorkerOptions opts;
  opts.address = argv[1];
  opts.rank = static_cast<int>(parse_i64(argv[2], "rank"));
  opts.ranks = static_cast<int>(parse_i64(argv[3], "ranks"));
  opts.token = parse_u64(argv[4], "token");
  opts.heartbeat_ms = static_cast<int>(parse_i64(argv[5], "heartbeat_ms"));
  opts.recv_deadline_ms =
      static_cast<int>(parse_i64(argv[6], "recv_deadline_ms"));
  try {
    return meshpram::dist::run_worker(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist_worker rank %d: %s\n", opts.rank, e.what());
    return 2;
  }
}
