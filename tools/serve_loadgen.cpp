// serve_loadgen — open-loop load generator CLI for the serving subsystem
// (DESIGN.md §11). Spins up N sessions in-process, offers a seeded Poisson
// request stream through the wire API, and reports latency percentiles,
// goodput and admission-control counters.
//
// Usage: serve_loadgen [--sessions N] [--side S] [--requests R]
//                      [--rate ARRIVALS_PER_SLICE] [--seed SEED]
//                      [--capacity QUEUE_CAP] [--inflight GLOBAL_BUDGET]
//                      [--accesses PER_REQUEST] [--threads POOL_THREADS]
//
// The deterministic block (accepted/rejected/completed, slices, mesh steps,
// latency percentiles in slices) is a pure function of the flags; the wall
// block (microsecond percentiles, requests/s) is machine-dependent.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "serve/api.hpp"
#include "serve/loadgen.hpp"
#include "serve/manager.hpp"
#include "serve/scheduler.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::serve;

namespace {

struct Options {
  i64 sessions = 4;
  int side = 8;
  i64 requests = 200;
  double rate = 2.0;
  u64 seed = 1;
  i64 capacity = 16;
  i64 inflight = 128;
  i64 accesses = 0;  // 0 = full PRAM step
  int threads = 0;   // 0 = ambient pool
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--sessions N] [--side S] [--requests R] [--rate L]"
               " [--seed SEED] [--capacity C] [--inflight G] [--accesses A]"
               " [--threads T]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    if (i + 1 >= argc) usage(argv[0]);
    const std::string val = argv[++i];
    try {
      if (flag == "--sessions") opt.sessions = std::stoll(val);
      else if (flag == "--side") opt.side = std::stoi(val);
      else if (flag == "--requests") opt.requests = std::stoll(val);
      else if (flag == "--rate") opt.rate = std::stod(val);
      else if (flag == "--seed") opt.seed = std::stoull(val);
      else if (flag == "--capacity") opt.capacity = std::stoll(val);
      else if (flag == "--inflight") opt.inflight = std::stoll(val);
      else if (flag == "--accesses") opt.accesses = std::stoll(val);
      else if (flag == "--threads") opt.threads = std::stoi(val);
      else usage(argv[0]);
    } catch (const std::exception&) {
      std::cerr << "bad value for " << flag << ": " << val << '\n';
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  set_log_level(LogLevel::Error);  // the t_i<1 warning is expected here

  SimConfig cfg;
  cfg.mesh_rows = opt.side;
  cfg.mesh_cols = opt.side;
  cfg.num_vars = static_cast<i64>(opt.side) * opt.side * 8;
  cfg.q = 3;
  cfg.k = 2;
  cfg.sort_mode = SortMode::Analytic;

  SessionManager mgr;
  SessionLimits limits;
  limits.queue_capacity = opt.capacity;
  std::vector<std::string> names;
  std::vector<SessionShape> shapes;
  for (i64 s = 0; s < opt.sessions; ++s) {
    Session& sess = mgr.create("lg" + std::to_string(s), cfg, limits);
    names.push_back(sess.name());
    shapes.push_back({sess.sim().processors(), sess.sim().num_vars()});
  }
  SchedulerConfig scfg;
  scfg.threads = opt.threads;
  scfg.global_inflight = opt.inflight;
  FairScheduler sched(mgr, scfg);
  LoopbackDriver driver(mgr, sched);

  LoadgenConfig lg;
  lg.requests = opt.requests;
  lg.arrivals_per_slice = opt.rate;
  lg.seed = opt.seed;
  lg.accesses_per_request = opt.accesses;

  std::cout << "serve_loadgen: " << opt.sessions << " session(s) on a "
            << opt.side << 'x' << opt.side << " mesh, " << opt.requests
            << " requests at " << opt.rate << "/slice (seed " << opt.seed
            << ")\n";
  const LoadgenReport rep = run_loadgen(driver, sched, names, shapes, lg);

  std::cout << "\n-- deterministic (pure function of the flags) --\n";
  Table dt({"offered", "completed", "rejected", "failed", "peak_q", "slices",
            "T_sim", "p50_sl", "p95_sl", "p99_sl", "goodput/sl"});
  dt.add(rep.offered, rep.completed, rep.rejected, rep.failed,
         rep.peak_queue_depth, rep.slices, rep.total_mesh_steps,
         rep.p50_slices, rep.p95_slices, rep.p99_slices,
         rep.goodput_per_slice);
  dt.print(std::cout);

  std::cout << "\n-- wall clock (machine-dependent) --\n";
  Table wt({"wall_s", "p50_us", "p95_us", "p99_us", "goodput_rps"});
  wt.add(rep.wall_seconds, rep.p50_us, rep.p95_us, rep.p99_us,
         rep.goodput_rps);
  wt.print(std::cout);

  // Per-session accounting straight from the service.
  std::cout << "\n-- per-session --\n";
  Table st({"session", "state", "steps", "T_sim", "accepted", "rejected",
            "peak_q"});
  for (Session* s : mgr.sessions()) {
    st.add(s->name(), state_name(s->state()), s->stats().steps_executed,
           s->stats().mesh_steps, s->stats().accepted, s->stats().rejected,
           s->stats().peak_queue_depth);
  }
  st.print(std::cout);
  return rep.failed == 0 ? 0 : 1;
}
