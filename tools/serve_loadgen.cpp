// serve_loadgen — load generator CLI for the serving subsystem
// (DESIGN.md §11, §14). Spins up N sessions in-process and drives them over
// one of three transports:
//
//   --transport loopback (default): the original open-loop Poisson stream
//     through the in-process LoopbackDriver — deterministic latency
//     percentiles in scheduler slices (EXP-S1 numbers unchanged).
//   --transport unix | tcp: starts a NetServer on a background thread and
//     fans out one pipelined socket connection per session (closed-loop,
//     --depth frames in flight each), reporting per-connection stats.
//
// --window W > 1 enables cross-request coalescing in the scheduler (also
// settable via MESHPRAM_SERVE_WINDOW; the flag wins). Same binary, flag/env
// toggle — the EXP-S2 comparison knob.
//
// --scenario random (default) keeps the seeded Poisson access sampling;
// --scenario algo:<name> replays the EREW step trace of a real workload
// from the algo registry (e.g. algo:cc, algo:refine, algo:bitonic) as the
// request bodies — arrival process and session fan-out are unchanged, so
// the two scenarios hit the same schedule with different address streams.
//
// Usage: serve_loadgen [--sessions N] [--side S] [--requests R]
//                      [--rate ARRIVALS_PER_SLICE] [--seed SEED]
//                      [--capacity QUEUE_CAP] [--inflight GLOBAL_BUDGET]
//                      [--accesses PER_REQUEST] [--threads POOL_THREADS]
//                      [--transport loopback|unix|tcp] [--depth PIPELINE]
//                      [--window COALESCE_WINDOW]
//                      [--scenario random|algo:<workload>]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algo/harness.hpp"
#include "serve/api.hpp"
#include "serve/loadgen.hpp"
#include "serve/manager.hpp"
#include "serve/net_server.hpp"
#include "serve/scheduler.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::serve;

namespace {

struct Options {
  i64 sessions = 4;
  int side = 8;
  i64 requests = 200;
  double rate = 2.0;
  u64 seed = 1;
  i64 capacity = 16;
  i64 inflight = 128;
  i64 accesses = 0;  // 0 = full PRAM step
  int threads = 0;   // 0 = ambient pool
  Transport transport = Transport::Loopback;
  i64 depth = 8;     // per-connection pipeline depth (net transports)
  i64 window = 1;    // coalesce window; overridden by MESHPRAM_SERVE_WINDOW
  bool window_set = false;
  std::string scenario = "random";
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--sessions N] [--side S] [--requests R] [--rate L]"
               " [--seed SEED] [--capacity C] [--inflight G] [--accesses A]"
               " [--threads T] [--transport loopback|unix|tcp] [--depth D]"
               " [--window W] [--scenario random|algo:<workload>]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") usage(argv[0]);
    if (i + 1 >= argc) usage(argv[0]);
    const std::string val = argv[++i];
    try {
      if (flag == "--sessions") opt.sessions = std::stoll(val);
      else if (flag == "--side") opt.side = std::stoi(val);
      else if (flag == "--requests") opt.requests = std::stoll(val);
      else if (flag == "--rate") opt.rate = std::stod(val);
      else if (flag == "--seed") opt.seed = std::stoull(val);
      else if (flag == "--capacity") opt.capacity = std::stoll(val);
      else if (flag == "--inflight") opt.inflight = std::stoll(val);
      else if (flag == "--accesses") opt.accesses = std::stoll(val);
      else if (flag == "--threads") opt.threads = std::stoi(val);
      else if (flag == "--depth") opt.depth = std::stoll(val);
      else if (flag == "--scenario") opt.scenario = val;
      else if (flag == "--window") {
        opt.window = std::stoll(val);
        opt.window_set = true;
      } else if (flag == "--transport") {
        if (val == "loopback") opt.transport = Transport::Loopback;
        else if (val == "unix") opt.transport = Transport::Unix;
        else if (val == "tcp") opt.transport = Transport::Tcp;
        else usage(argv[0]);
      } else usage(argv[0]);
    } catch (const std::exception&) {
      std::cerr << "bad value for " << flag << ": " << val << '\n';
      std::exit(2);
    }
  }
  if (!opt.window_set) {
    opt.window = env_i64("MESHPRAM_SERVE_WINDOW", 1, 1024).value_or(1);
  }
  return opt;
}

void print_sessions(SessionManager& mgr) {
  std::cout << "\n-- per-session --\n";
  Table st({"session", "state", "steps", "T_sim", "accepted", "rejected",
            "peak_q"});
  for (Session* s : mgr.sessions()) {
    st.add(s->name(), state_name(s->state()), s->stats().steps_executed,
           s->stats().mesh_steps, s->stats().accepted, s->stats().rejected,
           s->stats().peak_queue_depth);
  }
  st.print(std::cout);
}

int run_net(const Options& opt, SessionManager& mgr, FairScheduler& sched,
            const std::vector<std::string>& names,
            const std::vector<SessionShape>& shapes,
            const LoadgenConfig& lg) {
  NetServerConfig ncfg;
  NetEndpoint ep;
  ep.transport = opt.transport;
  if (opt.transport == Transport::Unix) {
    ncfg.unix_path =
        "/tmp/meshpram-loadgen-" + std::to_string(::getpid()) + ".sock";
    ep.unix_path = ncfg.unix_path;
  } else {
    ncfg.tcp = true;  // kernel-assigned port
  }
  NetServer server(mgr, sched, ncfg);
  if (opt.transport == Transport::Tcp) ep.port = server.tcp_port();

  std::atomic<bool> stop{false};
  std::thread loop([&] { server.run(stop); });
  NetLoadgenReport rep;
  try {
    rep = run_loadgen_net(ep, names, shapes, lg, opt.depth);
  } catch (...) {
    stop = true;
    loop.join();
    throw;
  }
  stop = true;
  loop.join();

  std::cout << "\n-- totals (wall clock is machine-dependent) --\n";
  Table tt({"offered", "completed", "rejected", "failed", "coalesced",
            "wall_s", "rps", "p50_us", "p95_us", "p99_us"});
  tt.add(rep.offered, rep.completed, rep.rejected, rep.failed,
         rep.coalesced_responses, rep.wall_seconds, rep.rps, rep.p50_us,
         rep.p95_us, rep.p99_us);
  tt.print(std::cout);

  std::cout << "\n-- per-connection --\n";
  Table ct({"conn", "offered", "completed", "rejected", "failed", "coalesced",
            "p50_us", "p99_us", "bytes_out", "bytes_in"});
  for (const ConnReport& c : rep.conns) {
    ct.add(c.session, c.offered, c.completed, c.rejected, c.failed,
           c.coalesced_responses, c.p50_us, c.p99_us, c.bytes_out,
           c.bytes_in);
  }
  ct.print(std::cout);

  const NetServerStats& ns = server.stats();
  std::cout << "\n-- server --\n";
  Table nt({"conns", "frames_in", "frames_out", "bytes_in", "bytes_out",
            "rejected", "parked", "batches", "merged"});
  nt.add(ns.accepted, ns.frames_in, ns.frames_out, ns.bytes_in, ns.bytes_out,
         ns.rejected, ns.parked, sched.coalesce_stats().batches,
         sched.coalesce_stats().merged_requests);
  nt.print(std::cout);

  print_sessions(mgr);
  return rep.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  set_log_level(LogLevel::Error);  // the t_i<1 warning is expected here

  SimConfig cfg;
  cfg.mesh_rows = opt.side;
  cfg.mesh_cols = opt.side;
  cfg.num_vars = static_cast<i64>(opt.side) * opt.side * 8;
  cfg.q = 3;
  cfg.k = 2;
  cfg.sort_mode = SortMode::Analytic;

  SessionManager mgr;
  SessionLimits limits;
  limits.queue_capacity = opt.capacity;
  std::vector<std::string> names;
  std::vector<SessionShape> shapes;
  for (i64 s = 0; s < opt.sessions; ++s) {
    Session& sess = mgr.create("lg" + std::to_string(s), cfg, limits);
    names.push_back(sess.name());
    shapes.push_back({sess.sim().processors(), sess.sim().num_vars()});
  }
  SchedulerConfig scfg;
  scfg.threads = opt.threads;
  scfg.global_inflight = opt.inflight;
  scfg.coalesce_window = opt.window;
  FairScheduler sched(mgr, scfg);

  LoadgenConfig lg;
  lg.requests = opt.requests;
  lg.arrivals_per_slice = opt.rate;
  lg.seed = opt.seed;
  lg.accesses_per_request = opt.accesses;
  lg.scenario = opt.scenario;
  if (opt.scenario != "random") {
    if (opt.scenario.rfind("algo:", 0) != 0) {
      std::cerr << "unknown scenario '" << opt.scenario
                << "' (expected random or algo:<workload>)\n";
      return 2;
    }
    // All sessions share the same shape, so one recorded trace serves every
    // session (each keeps its own replay cursor). The workload is sized to
    // the largest instance that fits the session machine.
    const std::string workload_name = opt.scenario.substr(5);
    const SessionShape& shape = shapes.front();
    const auto workload = algo::make_workload_fitting(
        workload_name, shape.num_vars, shape.processors, shape.num_vars,
        opt.seed);
    lg.trace = algo::WorkloadHarness::record_erew_trace(
        *workload, shape.processors, shape.num_vars);
    std::cout << "scenario " << opt.scenario << ": replaying "
              << workload->name() << " n=" << workload->size() << " ("
              << lg.trace.size() << " EREW steps, oracle-checked)\n";
  }

  std::cout << "serve_loadgen: " << opt.sessions << " session(s) on a "
            << opt.side << 'x' << opt.side << " mesh, " << opt.requests
            << " requests at " << opt.rate << "/slice (seed " << opt.seed
            << "), transport " << transport_name(opt.transport)
            << ", coalesce window " << opt.window << ", scenario "
            << opt.scenario << '\n';

  if (opt.transport != Transport::Loopback) {
    return run_net(opt, mgr, sched, names, shapes, lg);
  }

  LoopbackDriver driver(mgr, sched);
  const LoadgenReport rep = run_loadgen(driver, sched, names, shapes, lg);

  std::cout << "\n-- deterministic (pure function of the flags) --\n";
  Table dt({"offered", "completed", "rejected", "failed", "peak_q", "slices",
            "T_sim", "p50_sl", "p95_sl", "p99_sl", "goodput/sl"});
  dt.add(rep.offered, rep.completed, rep.rejected, rep.failed,
         rep.peak_queue_depth, rep.slices, rep.total_mesh_steps,
         rep.p50_slices, rep.p95_slices, rep.p99_slices,
         rep.goodput_per_slice);
  dt.print(std::cout);

  std::cout << "\n-- wall clock (machine-dependent) --\n";
  Table wt({"wall_s", "p50_us", "p95_us", "p99_us", "goodput_rps"});
  wt.add(rep.wall_seconds, rep.p50_us, rep.p95_us, rep.p99_us,
         rep.goodput_rps);
  wt.print(std::cout);

  print_sessions(mgr);
  return rep.failed == 0 ? 0 : 1;
}
