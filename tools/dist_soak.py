#!/usr/bin/env python3
"""Kill/recover soak driver for multi-process distributed ranks.

Locates the `dist_soak` binary (built by the default or bench-smoke preset),
forces MESHPRAM_DIST_VALIDATE=1 so every step cross-checks rank digests in
lockstep, and runs >= 20 kill-one-rank/recover cycles against the
single-process oracle. The binary exits non-zero on any value/stat mismatch,
a final snapshot divergence, or a cycle that failed to recover; this wrapper
just adds binary discovery, the validation env, and a summary line:

    python3 tools/dist_soak.py                # 20 cycles, 2 ranks, unix
    python3 tools/dist_soak.py --cycles 50 --ranks 4 --transport tcp

Any unrecognized flag is forwarded to the binary verbatim (see
tools/dist_soak.cpp for the full set).
"""

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CANDIDATE_DIRS = ["build", "build-bench", "build-tsan"]


def find_binary(explicit):
    if explicit:
        if not os.access(explicit, os.X_OK):
            sys.exit(f"dist_soak: not executable: {explicit}")
        return explicit
    for d in CANDIDATE_DIRS:
        path = os.path.join(REPO, d, "tools", "dist_soak")
        if os.access(path, os.X_OK):
            return path
    sys.exit("dist_soak: no built binary found under "
             + ", ".join(f"{d}/tools/" for d in CANDIDATE_DIRS)
             + " — build the default preset first (cmake --preset default "
               "&& cmake --build --preset default)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", help="explicit dist_soak binary path")
    ap.add_argument("--cycles", type=int, default=20,
                    help="kill/recover cycles (default 20)")
    args, passthrough = ap.parse_known_args()
    if args.cycles < 1:
        sys.exit("dist_soak: --cycles must be >= 1")

    binary = find_binary(args.binary)
    env = dict(os.environ)
    # The whole point of the soak: every step validates cross-rank digests.
    env["MESHPRAM_DIST_VALIDATE"] = "1"

    cmd = [binary, "--cycles", str(args.cycles)] + passthrough
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        print(f"dist_soak: FAILED (exit {proc.returncode})")
        return proc.returncode

    # The binary's last stdout line is the JSON summary.
    summary = {}
    for line in reversed(proc.stdout.strip().splitlines()):
        try:
            summary = json.loads(line)
            break
        except json.JSONDecodeError:
            continue
    print(f"dist_soak: OK — {summary.get('cycles', args.cycles)} cycles, "
          f"{summary.get('recoveries', '?')} recoveries, "
          f"{summary.get('total_blackout_ms', '?')} ms total blackout")
    return 0


if __name__ == "__main__":
    sys.exit(main())
