// trace_summary — aggregate meshpram Chrome traces into per-stage totals.
//
//   trace_summary <trace.json | trace-dir>... [--top N]
//
// Each input is a trace file or a directory; directories are scanned
// recursively for *.json traces, so the per-rank dump dirs a distributed
// run leaves behind (TRACE_rank0, TRACE_rank1, ...) merge into one table:
//
//   trace_summary TRACE_rank0 TRACE_rank1 --top 5
//
// Prints (a) the per-stage step/wall totals (cat=stage spans, whose steps
// partition each PRAM step's total by construction — telemetry.hpp), checked
// against the cat=step grand total; (b) the top-N span names by wall-clock;
// (c) the top-N region tasks by wall-clock. Exit code: 0 on success (an
// empty trace directory is a note, not an error), 1 on usage/load errors,
// 2 when a single-trace run fails to reconcile stage totals with the
// recorded PRAM step totals. Reconciliation is not enforced for merged
// runs: ranks trace the replicated stages (culling, sort) once each, so a
// merged table intentionally over-counts them relative to the step total.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "telemetry/trace_load.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::telemetry;

namespace {

struct Agg {
  i64 count = 0;
  double wall_us = 0;
  i64 steps = 0;
};

template <class Key>
std::vector<std::pair<Key, Agg>> sorted_by_wall(
    const std::map<Key, Agg>& aggs) {
  std::vector<std::pair<Key, Agg>> v(aggs.begin(), aggs.end());
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second.wall_us > b.second.wall_us;
  });
  return v;
}

/// Expand one CLI input into trace files: a .json path stands alone; a
/// directory contributes every *.json beneath it (sorted for determinism).
std::vector<std::string> expand_input(const std::string& arg) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  if (fs::is_directory(arg)) {
    for (const auto& entry : fs::recursive_directory_iterator(arg)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(arg);
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  size_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: trace_summary <trace.json | trace-dir>... [--top N]\n";
    return 1;
  }

  std::vector<std::string> files;
  for (const std::string& arg : inputs) {
    if (!std::filesystem::exists(arg)) {
      std::cerr << "trace_summary: no such file or directory: " << arg
                << '\n';
      return 1;
    }
    const auto expanded = expand_input(arg);
    if (expanded.empty()) {
      std::cout << "note: " << arg << " contains no *.json traces\n";
    }
    files.insert(files.end(), expanded.begin(), expanded.end());
  }
  if (files.empty()) {
    std::cout << "trace_summary: nothing to summarize (no traces found); "
                 "run with MESHPRAM_TRACE_DIR set to produce some\n";
    return 0;
  }

  std::map<std::string, Agg> stages;
  std::map<std::string, Agg> spans;
  std::map<std::pair<std::string, i64>, Agg> regions;
  i64 step_total = 0;     // sum of cat=step span steps (PRAM grand total)
  i64 step_count = 0;
  size_t total_events = 0;
  i64 recorded = 0;
  i64 dropped = 0;
  for (const std::string& path : files) {
    LoadedTrace trace;
    try {
      trace = load_chrome_trace(path);
    } catch (const std::exception& e) {
      std::cerr << "trace_summary: " << path << ": " << e.what() << '\n';
      return 1;
    }
    total_events += trace.events.size();
    recorded += trace.recorded;
    dropped += trace.dropped;
    for (const LoadedEvent& e : trace.events) {
      if (e.ph != 'X') continue;
      Agg& all = spans[e.name];
      ++all.count;
      all.wall_us += e.dur_us;
      if (e.steps >= 0) all.steps += e.steps;
      if (e.cat == "stage") {
        Agg& a = stages[e.name];
        ++a.count;
        a.wall_us += e.dur_us;
        if (e.steps >= 0) a.steps += e.steps;
      } else if (e.cat == "step") {
        ++step_count;
        if (e.steps >= 0) step_total += e.steps;
      } else if (e.cat == "region") {
        Agg& a = regions[{e.name, e.index}];
        ++a.count;
        a.wall_us += e.dur_us;
        if (e.steps >= 0) a.steps += e.steps;
      }
    }
  }

  if (files.size() == 1) {
    std::cout << "trace: " << files[0];
  } else {
    std::cout << "merged " << files.size() << " traces";
  }
  std::cout << "  (" << total_events << " events, recorded " << recorded
            << ", dropped " << dropped << ")\n\n";

  std::cout << "Per-stage totals (mesh steps partition the PRAM step total):\n";
  i64 stage_total = 0;
  {
    Table t({"stage", "count", "mesh_steps", "wall_ms"});
    for (const auto& [name, a] : sorted_by_wall(stages)) {
      t.add(name, a.count, a.steps, a.wall_us / 1e3);
      stage_total += a.steps;
    }
    t.add("TOTAL", "", stage_total, "");
    t.print(std::cout);
  }

  std::cout << "\nTop spans by wall-clock:\n";
  {
    Table t({"name", "count", "mesh_steps", "wall_ms"});
    const auto v = sorted_by_wall(spans);
    for (size_t i = 0; i < std::min(top_k, v.size()); ++i) {
      t.add(v[i].first, v[i].second.count, v[i].second.steps,
            v[i].second.wall_us / 1e3);
    }
    t.print(std::cout);
  }

  if (!regions.empty()) {
    std::cout << "\nTop region tasks by wall-clock:\n";
    Table t({"task", "index", "count", "mesh_steps", "wall_ms"});
    const auto v = sorted_by_wall(regions);
    for (size_t i = 0; i < std::min(top_k, v.size()); ++i) {
      t.add(v[i].first.first, v[i].first.second, v[i].second.count,
            v[i].second.steps, v[i].second.wall_us / 1e3);
    }
    t.print(std::cout);
  }

  if (step_count > 0) {
    std::cout << "\nPRAM steps traced: " << step_count
              << ", grand total mesh steps: " << step_total << '\n';
    if (files.size() > 1) {
      std::cout << "stage reconciliation skipped for merged traces "
                   "(replicated stages are traced once per rank)\n";
    } else if (stage_total == step_total) {
      std::cout << "stage totals reconcile with the PRAM step grand total\n";
    } else {
      std::cout << "MISMATCH: stage totals (" << stage_total
                << ") != PRAM step grand total (" << step_total << ")\n";
      return 2;
    }
  }
  return 0;
}
