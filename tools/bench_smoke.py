#!/usr/bin/env python3
"""Quick bench regression gate.

Builds the `bench-smoke` preset (Release), runs the small configuration
points of the recorded benches (MESHPRAM_BENCH_MAX_SIDE caps the sweeps),
and compares the fresh wall-clock numbers against the BENCH_*.json files
committed at the repo root. Exits 1 when the total wall time over the
shared configuration points regresses by more than the threshold (default
25%), so a perf-sensitive change can be gated in one command:

    python3 tools/bench_smoke.py

Per-point times on small meshes are noisy (microseconds); only the summed
wall time per bench is gated. mesh_steps must match exactly — a step-count
change is a semantic change, not noise, and always fails the gate.

The comparison logic lives in plain helpers (point_field, compare_bench,
rank1_parity_failures) so tools/test_bench_smoke.py can exercise it —
including the malformed-baseline paths — without running any binary.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (binary, committed baseline). Only benches with a committed BENCH_*.json
# participate; others are skipped with a note.
BENCHES = [
    "simulation_mid_mem",
    "routing_general",
    "fault_sweep",
    "serve_multisession",
    "serve_net",
    "dist_scaling",
    "algo_suite",
]

# Per-bench wall-clock tolerance overrides (fractional, in place of
# --threshold). Benches whose points are dominated by sub-millisecond
# scheduler slices or thread spawn/join need more headroom than the
# long-routing sweeps; the mesh_steps equality check is unaffected — it is
# always exact.
TOLERANCES = {
    "serve_multisession": 0.60,
    "dist_scaling": 0.60,
    # algo_suite points are whole-program runs whose wall time is dominated
    # by the ideal/oracle legs (microseconds each); the semantic load is
    # carried by the exact algo column gate below plus the in-harness oracle
    # checks, so the wall gate only needs to catch order-of-magnitude slips.
    "algo_suite": 0.60,
    # serve_net points run real sockets and client/server thread handoffs;
    # wall times are the noisiest of any bench. The in-binary gates (snapshot
    # parity, the >= 5% coalescing margin) carry the semantic load, and the
    # deterministic `coalesce` points still pin mesh_steps exactly.
    "serve_net": 0.75,
}

# Top-level fields the current recorder writes (schema 5). Used to print a
# field-level diff when a committed baseline predates the current schema.
CURRENT_FIELDS = {"bench", "schema_version", "threads", "git_sha",
                  "build_type", "node_order", "simd", "ranks", "transport",
                  "points"}
CURRENT_POINT_FIELDS = {"config", "wall_ms", "mesh_steps"}

# Schema-4 hardware-counter columns (perf_event_open). Informational only:
# they appear when the recording host could read the counters and are never
# diffed — containerized runs commonly cannot open perf events at all.
PERF_POINT_FIELDS = {"instructions", "cycles", "llc_refs", "llc_misses",
                     "llc_miss_rate", "branch_misses"}

# Schema-5 distributed-run columns (point_dist). Informational for the wall
# gate; boundary_bytes is covered by the rank-1 parity check instead.
# recovery_blackout_ms appears only on kill/recover points of dist_scaling
# (wall time the step stream was frozen during respawn + restore) and, being
# wall-clock derived, is never diffed.
DIST_POINT_FIELDS = {"boundary_bytes", "barrier_wait_ms",
                     "recovery_blackout_ms"}

# Schema-5 serving columns (point_serve, bench_serve_net). Informational:
# latency percentiles and req/s are wall-clock derived, so they are recorded
# for the EXP-S2 curves but never diffed.
SERVE_POINT_FIELDS = {"offered", "completed", "rejected", "p50_us", "p95_us",
                      "p99_us", "rps"}

# Schema-5 algorithm-workload columns (point_algo, bench_algo_suite). The
# integer counts are deterministic outputs of the oracle-checked runs and
# are diffed exactly by algo_exact_failures; reuse_factor is a derived
# ratio of two gated counts, so it is not diffed on its own.
ALGO_POINT_FIELDS = {"algorithm", "backend", "family", "size", "pram_steps",
                     "backend_steps", "combined_groups", "max_concurrency",
                     "reuse_factor"}
ALGO_EXACT_FIELDS = ("size", "pram_steps", "backend_steps",
                     "combined_groups", "max_concurrency")


class SmokeError(Exception):
    """A setup problem worth a one-line explanation, not a stack trace."""


def run(cmd, **kw):
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, **kw)


def current_schema_version():
    """kSchemaVersion from bench/recorder.hpp — the schema this tree writes."""
    path = os.path.join(REPO, "bench", "recorder.hpp")
    with open(path) as f:
        m = re.search(r"kSchemaVersion\s*=\s*(\d+)", f.read())
    if not m:
        raise SmokeError(f"could not find kSchemaVersion in {path}")
    return int(m.group(1))


def load_doc(path, label):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise SmokeError(f"{label} not found at {path}") from None
    except json.JSONDecodeError as e:
        raise SmokeError(f"{label} at {path} is not valid JSON: {e}") from None


def point_field(point, field, label):
    """Read a required field from a points[] entry, failing with a sentence
    naming the file and the point instead of a KeyError traceback."""
    if not isinstance(point, dict):
        raise SmokeError(f"{label}: points[] entry is not an object: "
                         f"{point!r}")
    if field not in point:
        where = point.get("config", "<no config>")
        raise SmokeError(
            f"{label}: point '{where}' has no '{field}' field — the file "
            f"was written by an incompatible recorder; regenerate it from "
            f"a current Release build")
    return point[field]


def doc_points(doc, label):
    """The points[] list of a loaded BENCH doc, keyed by config string."""
    if "points" not in doc:
        raise SmokeError(f"{label}: no 'points' array — not a BENCH_*.json "
                         f"written by bench/recorder.hpp")
    return {point_field(p, "config", label): p for p in doc["points"]}


def load_points(path, label):
    return doc_points(load_doc(path, label), label)


def schema_field_diff(doc):
    """Field-level description of how a stale baseline differs from the
    current schema: which top-level and per-point fields are missing or
    unexpected, so the error says what to look at, not just 'regenerate'."""
    have = set(doc.keys())
    parts = []
    missing = sorted(CURRENT_FIELDS - have)
    extra = sorted(have - CURRENT_FIELDS)
    if missing:
        parts.append("missing fields: " + ", ".join(missing))
    if extra:
        parts.append("unexpected fields: " + ", ".join(extra))
    points = doc.get("points") or []
    if points:
        phave = set(points[0].keys())
        pmissing = sorted(CURRENT_POINT_FIELDS - phave)
        pextra = sorted(phave - CURRENT_POINT_FIELDS - PERF_POINT_FIELDS -
                        DIST_POINT_FIELDS - SERVE_POINT_FIELDS -
                        ALGO_POINT_FIELDS)
        if pmissing:
            parts.append("points[] missing: " + ", ".join(pmissing))
        if pextra:
            parts.append("points[] unexpected: " + ", ".join(pextra))
    return "; ".join(parts) if parts else \
        "all field names match — only the schema_version value is stale"


def compare_bench(bench, base, fresh, tolerance, log=print):
    """Gate one bench: mesh_steps exact over shared points, summed wall time
    within tolerance. base/fresh are config->point dicts. Returns a list of
    failure strings (empty when the bench passes)."""
    failures = []
    shared = sorted(set(fresh) & set(base))
    if not shared:
        log(f"[skip] {bench}: no shared configuration points")
        return failures

    base_total = sum(point_field(base[c], "wall_ms",
                                 f"committed {bench} baseline")
                     for c in shared)
    fresh_total = sum(point_field(fresh[c], "wall_ms",
                                  f"fresh {bench} output")
                      for c in shared)
    ratio = fresh_total / base_total if base_total > 0 else 1.0
    log(f"[{bench}] {len(shared)} shared points: "
        f"{base_total:.2f} ms committed -> {fresh_total:.2f} ms "
        f"fresh (x{ratio:.2f}, tolerance x{1.0 + tolerance:.2f})")

    for c in shared:
        bs = point_field(base[c], "mesh_steps", f"committed {bench} baseline")
        fs = point_field(fresh[c], "mesh_steps", f"fresh {bench} output")
        if fs != bs:
            failures.append(f"{bench}/{c}: mesh_steps changed {bs} -> {fs}")
    if ratio > 1.0 + tolerance:
        failures.append(f"{bench}: wall-clock regressed x{ratio:.2f} "
                        f"(> x{1.0 + tolerance:.2f} allowed)")
    return failures


def algo_exact_failures(base, fresh):
    """Exact gate over the algorithm-suite columns: every shared EXP-A1
    point must reproduce its committed step/contention counts bit-for-bit.
    These are outputs of oracle-checked deterministic runs — mesh_steps is
    already gated by compare_bench; this extends the same discipline to the
    program-level counts the slowdown claims divide by."""
    failures = []
    for c in sorted(set(base) & set(fresh)):
        for field in ALGO_EXACT_FIELDS:
            bv = point_field(base[c], field, "committed algo_suite baseline")
            fv = point_field(fresh[c], field, "fresh algo_suite output")
            if bv != fv:
                failures.append(
                    f"algo_suite/{c}: {field} changed {bv} -> {fv} — a "
                    f"deterministic workload count moved, which is a "
                    f"semantic change, not noise")
    return failures


def rank1_parity_failures(dist, mid):
    """Bit-identity gate between the subsystems: every dist_scaling point at
    ranks=1 must count exactly the mesh steps simulation_mid_mem counts for
    the same k/side, and its boundary lanes must be silent."""
    failures = []
    for c in sorted(dist):
        m = re.fullmatch(r"ranks=1 (k=\d+ side=\d+)", c)
        if not m:
            continue
        if m.group(1) not in mid:
            continue
        ds = point_field(dist[c], "mesh_steps", "fresh dist_scaling output")
        ms = point_field(mid[m.group(1)], "mesh_steps",
                         "fresh simulation_mid_mem output")
        if ds != ms:
            failures.append(
                f"dist_scaling/{c}: rank-1 mesh_steps {ds} != "
                f"simulation_mid_mem/{m.group(1)} {ms} — the partitioned "
                f"protocol is no longer bit-identical to the oracle")
        bb = dist[c].get("boundary_bytes", 0)
        if bb != 0:
            failures.append(
                f"dist_scaling/{c}: rank-1 run moved {bb} boundary bytes; "
                f"a single band has no cuts to cross")
    return failures


def transport_parity_failures(dist):
    """Bit-identity gate between the transports: every multi-process
    dist_scaling point (config "transport=... ranks=R k=K side=S") must count
    exactly the mesh steps the in-process channel run counts at the same
    geometry. Wall times and byte counts differ (that is the point of the
    column); the step stream may not. Recovery points ("recover transport=…")
    are exercised by ctest -L distproc instead — their step totals include a
    replayed step, so they have no same-geometry twin here."""
    failures = []
    for c in sorted(dist):
        m = re.fullmatch(r"transport=\w+ (ranks=\d+ k=\d+ side=\d+)", c)
        if not m:
            continue
        twin = m.group(1)
        if twin not in dist:
            failures.append(
                f"dist_scaling/{c}: no channel point '{twin}' to compare "
                f"against — the sweeps fell out of sync")
            continue
        ps = point_field(dist[c], "mesh_steps", "fresh dist_scaling output")
        cs = point_field(dist[twin], "mesh_steps",
                         "fresh dist_scaling output")
        if ps != cs:
            failures.append(
                f"dist_scaling/{c}: mesh_steps {ps} != channel point "
                f"{twin} {cs} — the socket transport broke the "
                f"bit-identity contract")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional wall-clock regression (default 0.25)")
    ap.add_argument("--max-side", type=int, default=32,
                    help="largest mesh side to run (default 32)")
    ap.add_argument("--skip-build", action="store_true",
                    help="reuse an existing build-bench directory")
    args = ap.parse_args()

    build_dir = os.path.join(REPO, "build-bench")
    if not args.skip_build:
        run(["cmake", "--preset", "bench-smoke"], cwd=REPO)
        run(["cmake", "--build", "--preset", "bench-smoke", "-j"], cwd=REPO)

    schema = current_schema_version()
    failures = []
    fresh_docs = {}
    with tempfile.TemporaryDirectory() as tmp:
        env = dict(os.environ)
        env["MESHPRAM_BENCH_DIR"] = tmp
        env["MESHPRAM_BENCH_MAX_SIDE"] = str(args.max_side)
        # One worker, so fresh runs compare against baselines recorded at
        # threads=1 regardless of the host's core count, and the dist bench's
        # rank threads are the only parallelism in play.
        env["MESHPRAM_THREADS"] = "1"
        # A committed MESHPRAM_FAULT_PLAN would skew every bench; the gate
        # always measures the fault-free configuration.
        env.pop("MESHPRAM_FAULT_PLAN", None)
        env.pop("MESHPRAM_RANKS", None)

        for bench in BENCHES:
            baseline_path = os.path.join(REPO, f"BENCH_{bench}.json")
            if not os.path.exists(baseline_path):
                print(f"[skip] {bench}: no committed BENCH_{bench}.json at "
                      f"the repo root — run bench_{bench} from a Release "
                      f"build and commit its output to enable this gate")
                continue
            binary = os.path.join(build_dir, "bench", f"bench_{bench}")
            if not os.path.exists(binary):
                print(f"[skip] {bench}: binary not built at {binary}")
                continue

            base_doc = load_doc(baseline_path,
                                f"committed {bench} baseline")
            base_schema = base_doc.get("schema_version", 1)
            if base_schema < schema:
                raise SmokeError(
                    f"committed BENCH_{bench}.json uses schema_version "
                    f"{base_schema}, older than the current recorder "
                    f"({schema}); {schema_field_diff(base_doc)}; regenerate "
                    f"it by running bench_{bench} from a Release build and "
                    f"commit the fresh file")

            run([binary], env=env, stdout=subprocess.DEVNULL)
            fresh = load_points(os.path.join(tmp, f"BENCH_{bench}.json"),
                                f"fresh {bench} output")
            base = doc_points(base_doc, f"committed {bench} baseline")
            fresh_docs[bench] = fresh

            tolerance = TOLERANCES.get(bench, args.threshold)
            failures += compare_bench(bench, base, fresh, tolerance)
            if bench == "algo_suite":
                failures += algo_exact_failures(base, fresh)

        # Degraded-mode equivalence gate: the rate-0 points of the fault
        # sweep run the same seeds and configs as simulation_mid_mem, so an
        # empty fault plan must cost exactly zero extra mesh steps.
        if "fault_sweep" in fresh_docs and "simulation_mid_mem" in fresh_docs:
            mid = fresh_docs["simulation_mid_mem"]
            zero_rate = [c for c in fresh_docs["fault_sweep"]
                         if " rate=" not in c]
            for c in sorted(set(zero_rate) & set(mid)):
                fs = point_field(fresh_docs["fault_sweep"][c], "mesh_steps",
                                 "fresh fault_sweep output")
                ms = point_field(mid[c], "mesh_steps",
                                 "fresh simulation_mid_mem output")
                if fs != ms:
                    failures.append(
                        f"fault_sweep/{c}: rate-0 mesh_steps {fs} != "
                        f"simulation_mid_mem {ms} — the fault-free fast "
                        f"path is no longer bit-identical")

        # Distributed-mode equivalence gate: EXP-D1 at one rank is the same
        # partitioned protocol with no boundary exchange, so its step counts
        # must equal the single-process bench exactly.
        if "dist_scaling" in fresh_docs and "simulation_mid_mem" in fresh_docs:
            failures += rank1_parity_failures(fresh_docs["dist_scaling"],
                                              fresh_docs["simulation_mid_mem"])

        # Process-transport equivalence gate: the multi-process sweep of
        # EXP-D1 reruns the channel points over real sockets; the step
        # streams must be identical.
        if "dist_scaling" in fresh_docs:
            failures += transport_parity_failures(fresh_docs["dist_scaling"])

    if failures:
        print("\nBENCH SMOKE FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print("\nbench smoke OK")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeError as e:
        print(f"bench smoke: {e}", file=sys.stderr)
        sys.exit(1)
