// Kill/recover soak for multi-process distributed ranks (DESIGN.md §15.6).
//
// Runs a ProcMachine next to the single-process oracle on the same request
// stream. Every cycle it SIGKILLs one worker rank mid-stream, lets the
// supervisor recover (restore from checkpoint + replay), and asserts that
// every step still matches the oracle bit-for-bit — values and StepStats per
// step, snapshot bytes at the end. Exit 0 = every cycle recovered and
// matched. Driven by tools/dist_soak.py (which also sets
// MESHPRAM_DIST_VALIDATE=1) and by a short ctest smoke.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "dist/supervisor.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

namespace meshpram::dist {
namespace {

struct Args {
  int ranks = 2;
  int side = 16;
  int k = 3;
  int cycles = 20;
  int steps = 2;  ///< committed steps per cycle (one write + one read pass)
  u64 seed = 1;
  std::string transport = "unix";
};

SimConfig soak_config(int side, int k) {
  const i64 n = static_cast<i64>(side) * side;
  SimConfig cfg;
  cfg.mesh_rows = side;
  cfg.mesh_cols = side;
  cfg.num_vars = static_cast<i64>(std::llround(std::pow(
      static_cast<double>(n), 1.5)));
  cfg.q = 3;
  cfg.k = k;
  cfg.sort_mode = SortMode::Analytic;
  cfg.fault_plan_from_env = false;
  return cfg;
}

std::vector<AccessRequest> random_requests(i64 n, i64 num_vars, Rng& rng,
                                           Op op) {
  std::vector<i64> pool(static_cast<size_t>(std::min(num_vars, 4 * n)));
  std::iota(pool.begin(), pool.end(), i64{0});
  std::vector<AccessRequest> reqs(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const i64 j = rng.range(i, static_cast<i64>(pool.size()) - 1);
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    reqs[static_cast<size_t>(i)] = {pool[static_cast<size_t>(i)], op,
                                    op == Op::Write ? i + 1000 : 0};
  }
  return reqs;
}

bool stats_eq(const StepStats& a, const StepStats& b) {
  return a.total_steps == b.total_steps &&
         a.culling_steps == b.culling_steps &&
         a.forward_steps == b.forward_steps &&
         a.return_steps == b.return_steps && a.packets == b.packets &&
         a.request_ok == b.request_ok;
}

int run(const Args& args) {
  const SimConfig cfg = soak_config(args.side, args.k);
  const int max = ProcMachine::max_ranks(cfg);
  if (args.ranks > max) {
    std::fprintf(stderr,
                 "dist_soak: side=%d k=%d admits %d rank(s), asked for %d\n",
                 args.side, args.k, max, args.ranks);
    return 2;
  }

  PramMeshSimulator oracle(cfg);

  ProcConfig pc;
  pc.sim = cfg;
  pc.ranks = args.ranks;
  pc.socket.transport = args.transport;
  // Tight deadlines keep each kill's blackout short; generous enough that an
  // overloaded CI box does not see phantom failures.
  pc.socket.heartbeat_ms = 50;
  pc.socket.peer_deadline_ms = 4000;
  pc.socket.recv_deadline_ms = 4000;
  pc.max_recoveries = 4;
  ProcMachine machine(pc);

  const i64 n = static_cast<i64>(args.side) * args.side;
  Rng kill_rng(args.seed ^ 0x9e3779b97f4a7c15ULL);
  i64 mismatches = 0;

  for (int cycle = 0; cycle < args.cycles; ++cycle) {
    // Kill one worker between cycles; the next step recovers through the
    // checkpoint. Rank choice is seeded, so a soak run is reproducible.
    if (args.ranks > 1) {
      const int victim =
          1 + static_cast<int>(kill_rng.below(
                  static_cast<u64>(args.ranks - 1)));
      machine.kill_rank(victim);
    }
    for (int s = 0; s < args.steps; ++s) {
      const Op op = s % 2 == 0 ? Op::Write : Op::Read;
      // Per-step seed so every (cycle, step) draws a reproducible workload.
      Rng r1(args.seed * 1000003ULL + static_cast<u64>(cycle) * 131ULL +
             static_cast<u64>(s));
      const auto reqs = random_requests(n, cfg.num_vars, r1, op);
      StepStats ost;
      StepStats pst;
      const auto ov = oracle.step(reqs, &ost);
      const auto pv = machine.step(reqs, &pst);
      if (ov != pv || !stats_eq(ost, pst)) {
        std::fprintf(stderr, "dist_soak: divergence at cycle %d step %d\n",
                     cycle, s);
        ++mismatches;
      }
    }
    std::fprintf(stderr,
                 "dist_soak: cycle %d/%d ok (recoveries=%lld respawns=%lld "
                 "blackout=%lldms)\n",
                 cycle + 1, args.cycles,
                 static_cast<long long>(machine.recovery().recoveries),
                 static_cast<long long>(machine.recovery().respawns),
                 static_cast<long long>(machine.recovery().last_blackout_ms));
  }

  const std::string want = serve::snapshot_simulator(oracle);
  const std::string got = serve::snapshot_simulator(*machine.materialize());
  const bool snap_ok = want == got;
  const RecoveryStats& rec = machine.recovery();
  std::printf(
      "{\"cycles\": %d, \"ranks\": %d, \"transport\": \"%s\", "
      "\"failures\": %lld, \"recoveries\": %lld, \"respawns\": %lld, "
      "\"total_blackout_ms\": %lld, \"mismatches\": %lld, "
      "\"snapshot_match\": %s}\n",
      args.cycles, args.ranks, args.transport.c_str(),
      static_cast<long long>(rec.failures),
      static_cast<long long>(rec.recoveries),
      static_cast<long long>(rec.respawns),
      static_cast<long long>(rec.total_blackout_ms),
      static_cast<long long>(mismatches), snap_ok ? "true" : "false");
  if (mismatches != 0 || !snap_ok) return 1;
  if (args.ranks > 1 && rec.recoveries < args.cycles) {
    std::fprintf(stderr,
                 "dist_soak: expected >= %d recoveries, saw %lld "
                 "(kills were absorbed without recovery?)\n",
                 args.cycles, static_cast<long long>(rec.recoveries));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace meshpram::dist

int main(int argc, char** argv) {
  meshpram::dist::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dist_soak: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--ranks") {
      args.ranks = std::atoi(next());
    } else if (a == "--side") {
      args.side = std::atoi(next());
    } else if (a == "--k") {
      args.k = std::atoi(next());
    } else if (a == "--cycles") {
      args.cycles = std::atoi(next());
    } else if (a == "--steps") {
      args.steps = std::atoi(next());
    } else if (a == "--seed") {
      args.seed = static_cast<meshpram::u64>(std::atoll(next()));
    } else if (a == "--transport") {
      args.transport = next();
    } else {
      std::fprintf(stderr,
                   "usage: dist_soak [--ranks N] [--side S] [--k K] "
                   "[--cycles C] [--steps N] [--seed S] "
                   "[--transport unix|tcp]\n");
      return 2;
    }
  }
  try {
    return meshpram::dist::run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist_soak: %s\n", e.what());
    return 1;
  }
}
