#!/usr/bin/env python3
"""Self-test for the bench_smoke comparison helpers.

Runs the pure comparison logic (no binaries, no build) against synthetic
BENCH docs: both tolerance paths of compare_bench, the mesh_steps exactness
gate, the rank-1 parity gate, and the malformed-input paths that must raise
SmokeError with a readable message rather than a KeyError traceback.

Registered with ctest (label `dist`); also runnable directly or under
pytest — every check is a bare assert in a test_* function.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_smoke  # noqa: E402
from bench_smoke import (SmokeError, algo_exact_failures,  # noqa: E402
                         compare_bench, doc_points, point_field,
                         rank1_parity_failures, schema_field_diff,
                         transport_parity_failures)


def pts(*entries):
    """config->point dict from (config, wall_ms, mesh_steps[, extras])."""
    out = {}
    for e in entries:
        p = {"config": e[0], "wall_ms": e[1], "mesh_steps": e[2]}
        if len(e) > 3:
            p.update(e[3])
        out[e[0]] = p
    return out


def quiet(*_args, **_kw):
    pass


def test_compare_bench_passes_within_default_tolerance():
    base = pts(("a", 10.0, 100), ("b", 20.0, 200))
    fresh = pts(("a", 11.0, 100), ("b", 24.0, 200))  # x1.17 < x1.25
    assert compare_bench("x", base, fresh, 0.25, log=quiet) == []


def test_compare_bench_fails_beyond_default_tolerance():
    base = pts(("a", 10.0, 100))
    fresh = pts(("a", 14.0, 100))  # x1.40 > x1.25
    fails = compare_bench("x", base, fresh, 0.25, log=quiet)
    assert len(fails) == 1 and "wall-clock regressed" in fails[0]


def test_compare_bench_override_tolerance_admits_noisier_bench():
    # The same x1.40 ratio that fails at the default passes at a
    # per-bench override of 0.60 — the TOLERANCES escape hatch.
    base = pts(("a", 10.0, 100))
    fresh = pts(("a", 14.0, 100))
    assert compare_bench("noisy", base, fresh, 0.60, log=quiet) == []
    # ... but the override is still a bound, not a waiver.
    worse = pts(("a", 17.0, 100))  # x1.70 > x1.60
    fails = compare_bench("noisy", base, worse, 0.60, log=quiet)
    assert len(fails) == 1 and "x1.70" in fails[0]


def test_compare_bench_mesh_steps_exact_regardless_of_tolerance():
    base = pts(("a", 10.0, 100))
    fresh = pts(("a", 10.0, 101))
    fails = compare_bench("x", base, fresh, 9.99, log=quiet)
    assert len(fails) == 1 and "mesh_steps changed 100 -> 101" in fails[0]


def test_compare_bench_no_shared_points_is_a_skip_not_a_failure():
    assert compare_bench("x", pts(("a", 1.0, 1)), pts(("b", 1.0, 1)),
                         0.25, log=quiet) == []


def test_point_field_missing_raises_readable_error():
    try:
        point_field({"config": "k=3 side=16"}, "mesh_steps", "committed x")
        assert False, "expected SmokeError"
    except SmokeError as e:
        msg = str(e)
        assert "mesh_steps" in msg and "k=3 side=16" in msg
        assert "committed x" in msg


def test_point_field_non_object_raises_readable_error():
    try:
        point_field(["not", "a", "dict"], "wall_ms", "fresh y")
        assert False, "expected SmokeError"
    except SmokeError as e:
        assert "fresh y" in str(e)


def test_compare_bench_surfaces_missing_field_as_smoke_error():
    base = pts(("a", 10.0, 100))
    fresh = {"a": {"config": "a", "mesh_steps": 100}}  # no wall_ms
    try:
        compare_bench("x", base, fresh, 0.25, log=quiet)
        assert False, "expected SmokeError"
    except SmokeError as e:
        assert "wall_ms" in str(e)


def test_doc_points_rejects_docs_without_points():
    try:
        doc_points({"bench": "x"}, "committed x")
        assert False, "expected SmokeError"
    except SmokeError as e:
        assert "points" in str(e)


def test_rank1_parity_ok_when_steps_match_and_lanes_silent():
    dist = pts(("ranks=1 k=3 side=16", 5.0, 400, {"boundary_bytes": 0}),
               ("ranks=2 k=3 side=16", 4.0, 400, {"boundary_bytes": 128}))
    mid = pts(("k=3 side=16", 5.0, 400))
    assert rank1_parity_failures(dist, mid) == []


def test_rank1_parity_flags_step_divergence_and_noisy_lanes():
    dist = pts(("ranks=1 k=3 side=16", 5.0, 401, {"boundary_bytes": 64}))
    mid = pts(("k=3 side=16", 5.0, 400))
    fails = rank1_parity_failures(dist, mid)
    assert len(fails) == 2
    assert any("401" in f and "400" in f for f in fails)
    assert any("boundary bytes" in f for f in fails)


def test_rank1_parity_ignores_sides_absent_from_mid_mem():
    dist = pts(("ranks=1 k=3 side=24", 5.0, 400))
    assert rank1_parity_failures(dist, pts(("k=3 side=16", 5.0, 400))) == []


def test_transport_parity_ok_when_proc_points_match_channel():
    dist = pts(("ranks=2 k=3 side=16", 4.0, 400, {"boundary_bytes": 128}),
               ("transport=unix ranks=2 k=3 side=16", 9.0, 400,
                {"boundary_bytes": 64}),
               ("transport=tcp ranks=2 k=3 side=16", 11.0, 400))
    assert transport_parity_failures(dist) == []


def test_transport_parity_flags_step_divergence():
    dist = pts(("ranks=2 k=3 side=16", 4.0, 400),
               ("transport=unix ranks=2 k=3 side=16", 9.0, 401))
    fails = transport_parity_failures(dist)
    assert len(fails) == 1
    assert "401" in fails[0] and "bit-identity" in fails[0]


def test_transport_parity_flags_missing_channel_twin():
    dist = pts(("transport=tcp ranks=4 k=3 side=32", 9.0, 400))
    fails = transport_parity_failures(dist)
    assert len(fails) == 1 and "fell out of sync" in fails[0]


def test_transport_parity_skips_recovery_and_channel_points():
    # "recover transport=..." points replay a step (different totals by
    # design) and plain channel points have no transport= prefix; neither
    # may trip the gate.
    dist = pts(("ranks=2 k=3 side=16", 4.0, 400),
               ("recover transport=unix ranks=2 k=3 side=16", 60.0, 455,
                {"recovery_blackout_ms": 33.0}))
    assert transport_parity_failures(dist) == []


def test_schema_field_diff_tolerates_recovery_blackout_column():
    doc = {f: 0 for f in bench_smoke.CURRENT_FIELDS}
    doc["points"] = [{"config": "recover transport=unix ranks=2 k=3 side=16",
                      "wall_ms": 60.0, "mesh_steps": 455,
                      "boundary_bytes": 7, "barrier_wait_ms": 0.1,
                      "recovery_blackout_ms": 33.0}]
    assert "unexpected" not in schema_field_diff(doc)


def test_schema_field_diff_names_missing_schema5_fields():
    doc = {"bench": "x", "schema_version": 4, "threads": 1, "git_sha": "g",
           "build_type": "Release", "node_order": "row_major", "simd": "avx2",
           "points": [{"config": "a", "wall_ms": 1.0, "mesh_steps": 1}]}
    diff = schema_field_diff(doc)
    assert "ranks" in diff and "transport" in diff


def test_schema_field_diff_tolerates_perf_and_dist_columns():
    doc = {f: 0 for f in bench_smoke.CURRENT_FIELDS}
    doc["points"] = [{"config": "a", "wall_ms": 1.0, "mesh_steps": 1,
                      "instructions": 5, "boundary_bytes": 7,
                      "barrier_wait_ms": 0.1}]
    assert "unexpected" not in schema_field_diff(doc)


def test_schema_field_diff_tolerates_serve_columns():
    # point_serve columns (bench_serve_net) are optional schema-5 additions;
    # a baseline carrying them must not read as "unexpected fields".
    doc = {f: 0 for f in bench_smoke.CURRENT_FIELDS}
    doc["points"] = [{"config": "throughput conns=4 window=8", "wall_ms": 1.0,
                      "mesh_steps": 0, "offered": 240, "completed": 240,
                      "rejected": 0, "p50_us": 900.0, "p95_us": 1100.0,
                      "p99_us": 1200.0, "rps": 6000.0}]
    assert "unexpected" not in schema_field_diff(doc)


def test_serve_points_gate_wall_and_pinned_steps_only():
    # The informational serve columns may drift freely between runs; only
    # wall_ms (within tolerance) and mesh_steps (exact) are gated.
    base = pts(("t", 10.0, 0, {"rps": 6000.0, "p99_us": 1000.0}))
    fresh = pts(("t", 12.0, 0, {"rps": 2500.0, "p99_us": 9000.0}))
    assert compare_bench("serve_net", base, fresh, 0.75, log=quiet) == []
    slow = pts(("t", 20.0, 0, {"rps": 6000.0}))
    fails = compare_bench("serve_net", base, slow, 0.75, log=quiet)
    assert len(fails) == 1 and "wall-clock regressed" in fails[0]


def algo_pt(config, wall, steps, **over):
    """One EXP-A1 point with plausible algo columns, overridable per test."""
    p = {"config": config, "wall_ms": wall, "mesh_steps": steps,
         "algorithm": "cc:star", "backend": "mesh", "family": "star",
         "size": 96, "pram_steps": 120, "backend_steps": 210,
         "combined_groups": 300, "max_concurrency": 95,
         "reuse_factor": 3.5}
    p.update(over)
    return p


def test_algo_exact_passes_when_counts_match():
    base = {"a": algo_pt("a", 10.0, 400)}
    fresh = {"a": algo_pt("a", 14.0, 400, reuse_factor=3.6)}
    # Wall time and the derived ratio may drift; the counts did not.
    assert algo_exact_failures(base, fresh) == []


def test_algo_exact_flags_every_moved_count():
    base = {"a": algo_pt("a", 10.0, 400)}
    fresh = {"a": algo_pt("a", 10.0, 400, pram_steps=121,
                          combined_groups=299)}
    fails = algo_exact_failures(base, fresh)
    assert len(fails) == 2
    assert any("pram_steps changed 120 -> 121" in f for f in fails)
    assert any("combined_groups changed 300 -> 299" in f for f in fails)


def test_algo_exact_ignores_unshared_points():
    # New workloads in the fresh run (or retired ones in the baseline) are
    # not failures; only shared points are pinned.
    base = {"a": algo_pt("a", 10.0, 400)}
    fresh = {"b": algo_pt("b", 10.0, 400)}
    assert algo_exact_failures(base, fresh) == []


def test_algo_exact_surfaces_missing_column_as_smoke_error():
    base = {"a": algo_pt("a", 10.0, 400)}
    broken = {"config": "a", "wall_ms": 10.0, "mesh_steps": 400}
    try:
        algo_exact_failures(base, {"a": broken})
        assert False, "expected SmokeError"
    except SmokeError as e:
        assert "size" in str(e) and "fresh algo_suite output" in str(e)


def test_schema_field_diff_tolerates_algo_columns():
    doc = {f: 0 for f in bench_smoke.CURRENT_FIELDS}
    doc["points"] = [algo_pt("cc:star n=96 mesh", 1.0, 400)]
    assert "unexpected" not in schema_field_diff(doc)


def main():
    tests = [(n, f) for n, f in sorted(globals().items())
             if n.startswith("test_") and callable(f)]
    for name, fn in tests:
        fn()
        print(f"  ok {name}")
    print(f"test_bench_smoke: {len(tests)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
