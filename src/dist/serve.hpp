// Serving-layer glue for the distributed machine (DESIGN.md §13.5).
//
// A DistMachine backs a serve::Session through EngineHooks: the scheduler's
// step calls fan out over the ranks, and Session::snapshot serializes the
// materialized single-process core — so a dist-session snapshot is
// byte-compatible with a classic one, and either kind restores onto either
// engine (restore_dist_session scatters the decoded stores across the
// requested rank count via DistMachine::from_simulator).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "dist/machine.hpp"
#include "dist/supervisor.hpp"
#include "serve/manager.hpp"

namespace meshpram::dist {

/// Wraps `machine` as the pluggable engine of a serve session. The hooks
/// share ownership of the machine.
serve::EngineHooks make_engine_hooks(std::shared_ptr<DistMachine> machine);

/// Same, for the multi-process machine (DESIGN.md §15): steps fan out to the
/// worker processes, snapshots gather and serialize the materialized core —
/// still byte-compatible with classic and thread-rank sessions.
serve::EngineHooks make_engine_hooks(std::shared_ptr<ProcMachine> machine);

/// Creates a session backed by a fresh DistMachine built from `config`.
serve::Session& create_dist_session(serve::SessionManager& manager,
                                    const std::string& name,
                                    const DistConfig& config,
                                    serve::SessionLimits limits = {});

/// Restores a (classic or dist) session snapshot onto a DistMachine running
/// `ranks` ranks (0 = MESHPRAM_RANKS, default 1).
serve::Session& restore_dist_session(serve::SessionManager& manager,
                                     const std::string& name,
                                     std::string_view snapshot_bytes,
                                     int ranks);

/// Creates a session backed by a fresh ProcMachine (multi-process ranks).
serve::Session& create_proc_session(serve::SessionManager& manager,
                                    const std::string& name,
                                    const ProcConfig& config,
                                    serve::SessionLimits limits = {});

/// Restores a (classic, dist or proc) session snapshot onto a ProcMachine
/// running `ranks` worker processes. `base` carries the socket/recovery
/// knobs; its sim/ranks fields are overwritten.
serve::Session& restore_proc_session(serve::SessionManager& manager,
                                     const std::string& name,
                                     std::string_view snapshot_bytes,
                                     int ranks, ProcConfig base = {});

}  // namespace meshpram::dist
