#include "dist/serve.hpp"

#include <utility>

#include "serve/snapshot.hpp"
#include "util/env.hpp"

namespace meshpram::dist {

serve::EngineHooks make_engine_hooks(std::shared_ptr<DistMachine> machine) {
  serve::EngineHooks hooks;
  hooks.processors = machine->processors();
  hooks.step = [machine](const std::vector<AccessRequest>& accesses,
                         StepStats* stats) {
    // feed_clock = false, matching sim-backed Session::step: serving keeps
    // the accounting clock out of session snapshots.
    return machine->step(accesses, stats, false);
  };
  hooks.write_core = [machine](ByteWriter& w) {
    serve::write_simulator_core(w, *machine->materialize());
  };
  hooks.engine = std::move(machine);
  return hooks;
}

serve::EngineHooks make_engine_hooks(std::shared_ptr<ProcMachine> machine) {
  serve::EngineHooks hooks;
  hooks.processors = machine->processors();
  hooks.step = [machine](const std::vector<AccessRequest>& accesses,
                         StepStats* stats) {
    return machine->step(accesses, stats, false);
  };
  hooks.write_core = [machine](ByteWriter& w) {
    serve::write_simulator_core(w, *machine->materialize());
  };
  hooks.engine = std::move(machine);
  return hooks;
}

serve::Session& create_dist_session(serve::SessionManager& manager,
                                    const std::string& name,
                                    const DistConfig& config,
                                    serve::SessionLimits limits) {
  return manager.create_custom(
      name, make_engine_hooks(std::make_shared<DistMachine>(config)), limits);
}

serve::Session& restore_dist_session(serve::SessionManager& manager,
                                     const std::string& name,
                                     std::string_view snapshot_bytes,
                                     int ranks) {
  return manager.restore_custom(
      name, snapshot_bytes, [ranks](serve::ParsedSnapshot& parsed) {
        std::shared_ptr<DistMachine> machine =
            DistMachine::from_simulator(*parsed.sim, ranks);
        return make_engine_hooks(std::move(machine));
      });
}

serve::Session& create_proc_session(serve::SessionManager& manager,
                                    const std::string& name,
                                    const ProcConfig& config,
                                    serve::SessionLimits limits) {
  return manager.create_custom(
      name, make_engine_hooks(std::make_shared<ProcMachine>(config)), limits);
}

serve::Session& restore_proc_session(serve::SessionManager& manager,
                                     const std::string& name,
                                     std::string_view snapshot_bytes,
                                     int ranks, ProcConfig base) {
  return manager.restore_custom(
      name, snapshot_bytes, [ranks, &base](serve::ParsedSnapshot& parsed) {
        std::shared_ptr<ProcMachine> machine =
            ProcMachine::from_simulator(*parsed.sim, ranks, base);
        return make_engine_hooks(std::move(machine));
      });
}

}  // namespace meshpram::dist
