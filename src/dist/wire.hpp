// Binary codecs for the frames the distributed machine exchanges.
//
// Four frame bodies, all little-endian via util/bytes.hpp:
//   packet       every Packet field in declaration order — the unit of the
//                other three codecs;
//   band buffers the full node-buffer contents of one rank band (stage-k+1
//                replication): per node ascending by id, u32 count + packets
//                in buffer order;
//   fills        apply-phase read results of one band's nodes (replicated
//                fallback): per node ascending, u32 count + (value,
//                timestamp) pairs in buffer order;
//   boundary     the per-sweep boundary-lane hops of the distributed router:
//                u32 count + per hop (col, dest_r, dest_c, packet), with an
//                FNV-1a trailer so the validate mode can reject a mangled
//                frame at the receiving edge.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dist/partition.hpp"
#include "mesh/machine.hpp"
#include "mesh/packet.hpp"
#include "util/bytes.hpp"

namespace meshpram::dist {

void put_packet(ByteWriter& w, const Packet& p);
Packet get_packet(ByteReader& r);

/// Encodes the node buffers of `band` of `mesh` (ascending node id, buffer
/// order preserved).
std::string encode_band_buffers(Mesh& mesh, const RankBand& band);

/// Overwrites the node buffers of `band` of `mesh` with the encoded frame.
void decode_band_buffers(Mesh& mesh, const RankBand& band,
                         std::string_view frame);

/// Encodes per-node (value, timestamp) of every buffered packet in `band`.
std::string encode_band_fills(Mesh& mesh, const RankBand& band);

/// Applies a fills frame onto `band`: buffer shapes must match (the packet
/// sets are replicated); only value/timestamp are overwritten.
void decode_band_fills(Mesh& mesh, const RankBand& band,
                       std::string_view frame);

/// One boundary-lane hop: a packet leaving the sender's band through a
/// vertical link, to be deposited into the receiver's incoming lane at
/// (boundary_row, col).
struct BoundaryHop {
  i32 col = 0;
  i16 dest_r = 0;
  i16 dest_c = 0;
  Packet payload;
};

/// `checksum` appends the FNV-1a trailer (validate mode); decode verifies it
/// when present (flagged in the frame header).
std::string encode_boundary(const std::vector<BoundaryHop>& hops,
                            bool checksum);
std::vector<BoundaryHop> decode_boundary(std::string_view frame);

}  // namespace meshpram::dist
