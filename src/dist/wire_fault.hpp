// Deterministic transport-fault injection for the multi-process hub
// (DESIGN.md §15.4) — the PR 4 FaultPlan idea applied to the wire.
//
// A WireFaultPlan is a pure function of deterministic per-link frame indices:
// the hub counts the Data frames it routes per (from, to) pair and consults
// the plan before forwarding each one, so a given plan perturbs exactly the
// same frames on every run. Faults never corrupt bytes — a dropped or
// partitioned frame simply never arrives, which the receiving side converts
// into a recv-deadline TransportError, and the supervisor's recovery path
// (abort / respawn / restore / replay) takes it from there. That keeps the
// injector inside the system's own failure model: everything it can do is
// something a real network or a killed process can also do.
//
//   drop        the index-th from->to Data frame vanishes
//   delay       the index-th from->to Data frame is held for `ms`
//   partition   all Data frames between a pair vanish once the pair's
//               combined frame count reaches `after`
//   kill        the worker's connection is severed after it delivered
//               `after` Data frames (the process itself is killed by the
//               supervisor API; this models a cut cable)
//   seeded      `count` drops scattered over [0, horizon) per directed pair
//               by a seeded xoshiro stream (reproducible chaos)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace meshpram::dist {

struct WireFaultPlan {
  struct Drop {
    int from = 0, to = 0;
    i64 index = 0;
  };
  struct Delay {
    int from = 0, to = 0;
    i64 index = 0;
    int ms = 0;
  };
  struct Partition {
    int a = 0, b = 0;
    i64 after = 0;
  };
  struct Kill {
    int rank = 0;
    i64 after = 0;
  };

  std::vector<Drop> drops;
  std::vector<Delay> delays;
  std::vector<Partition> partitions;
  std::vector<Kill> kills;

  bool empty() const {
    return drops.empty() && delays.empty() && partitions.empty() &&
           kills.empty();
  }

  // Builder surface for tests/benches.
  WireFaultPlan& drop_frame(int from, int to, i64 index);
  WireFaultPlan& delay_frame(int from, int to, i64 index, int ms);
  WireFaultPlan& partition_after(int a, int b, i64 after);
  WireFaultPlan& kill_after(int rank, i64 after);

  /// `count` seeded drops per directed rank pair over frame indices
  /// [0, horizon) — deterministic for a (seed, ranks) pair.
  static WireFaultPlan seeded_drops(u64 seed, int ranks, int count,
                                    i64 horizon);

  /// Parses the MESHPRAM_DIST_FAULT_PLAN spec: semicolon-separated
  /// `drop=F:T:I`, `delay=F:T:I:MS`, `part=A:B:AFTER`, `kill=R:AFTER`,
  /// `seed=SEED:COUNT:HORIZON` entries. Throws ConfigError on malformed
  /// input.
  static WireFaultPlan parse(const std::string& spec, int ranks);

  /// Should the index-th from->to Data frame be dropped (drop rule or active
  /// partition)?
  bool should_drop(int from, int to, i64 index, i64 pair_total) const;
  /// Hold duration for this frame, if any.
  std::optional<int> delay_ms(int from, int to, i64 index) const;
  /// Should `rank`'s connection be severed once it delivered `sent` frames?
  bool should_kill(int rank, i64 sent) const;
};

}  // namespace meshpram::dist
