#include "dist/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram::dist {

std::vector<int> RankPartition::atom_rows(const Placement& placement,
                                          int rows) {
  // A cut at row r (splitting between rows r-1 and r) is illegal when any
  // page region at any level straddles it.
  std::vector<char> legal(static_cast<size_t>(rows) + 1, 1);
  const int k = placement.map().params().k();
  for (int level = 1; level <= k; ++level) {
    for (const PageInfo& page : placement.pages(level)) {
      const Region& g = page.region;
      for (int r = g.r0() + 1; r < g.r0() + g.rows(); ++r) {
        legal[static_cast<size_t>(r)] = 0;
      }
    }
  }
  std::vector<int> atoms;  // row counts of the indivisible segments
  int start = 0;
  for (int r = 1; r <= rows; ++r) {
    if (r == rows || legal[static_cast<size_t>(r)]) {
      atoms.push_back(r - start);
      start = r;
    }
  }
  return atoms;
}

int RankPartition::max_ranks(const Placement& placement, int rows) {
  return static_cast<int>(atom_rows(placement, rows).size());
}

RankPartition::RankPartition(const Placement& placement, int rows, int cols,
                             int ranks)
    : rows_(rows), cols_(cols) {
  MP_REQUIRE(ranks >= 1, "rank count " << ranks);
  const std::vector<int> atoms = atom_rows(placement, rows);
  MP_REQUIRE(static_cast<size_t>(ranks) <= atoms.size(),
             "rank count " << ranks << " exceeds the " << atoms.size()
                           << " indivisible row segments of this placement");
  bands_.reserve(static_cast<size_t>(ranks));
  size_t a = 0;
  int row = 0;
  for (int r = 0; r < ranks; ++r) {
    const int remaining_ranks = ranks - r;
    const int remaining_rows = rows - row;
    const int target = remaining_rows / remaining_ranks;
    RankBand band;
    band.row_begin = row;
    while (true) {
      row += atoms[a];
      ++a;
      const auto atoms_left = static_cast<int>(atoms.size() - a);
      if (atoms_left == remaining_ranks - 1) break;  // one atom per rank left
      if (row - band.row_begin >= target) break;
    }
    band.row_end = row;
    band.node_begin = static_cast<i64>(band.row_begin) * cols;
    band.node_end = static_cast<i64>(band.row_end) * cols;
    bands_.push_back(band);
  }
  MP_ASSERT(row == rows && a == atoms.size(), "partition did not cover mesh");
  row_owner_.resize(static_cast<size_t>(rows));
  for (int r = 0; r < ranks; ++r) {
    for (int i = bands_[static_cast<size_t>(r)].row_begin;
         i < bands_[static_cast<size_t>(r)].row_end; ++i) {
      row_owner_[static_cast<size_t>(i)] = r;
    }
  }
}

int RankPartition::owner_of_region(const Region& g) const {
  const int owner = owner_of_row(g.r0());
  MP_ASSERT(g.rows() == 0 || owner_of_row(g.r0() + g.rows() - 1) == owner,
            "page region straddles a rank boundary");
  return owner;
}

}  // namespace meshpram::dist
