#include "dist/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/env.hpp"
#include "util/error.hpp"

namespace meshpram::dist {

namespace {

using Clock = std::chrono::steady_clock;

int resolve_ms(int value, const char* env, int fallback) {
  if (value > 0) return value;
  return static_cast<int>(env_i64(env, 1, 3600 * 1000).value_or(fallback));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MP_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(O_NONBLOCK): " << std::strerror(errno));
}

u64 fresh_token() {
  static std::atomic<u64> counter{1};
  u64 state = static_cast<u64>(::getpid()) ^
              static_cast<u64>(Clock::now().time_since_epoch().count()) ^
              (counter.fetch_add(1) << 48);
  // splitmix64 finalizer, matching the tree's other mixers.
  state += 0x9e3779b97f4a7c15ULL;
  state = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9ULL;
  state = (state ^ (state >> 27)) * 0x94d049bb133111ebULL;
  return state ^ (state >> 31);
}

int dial(const std::string& address) {
  int fd = -1;
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    MP_REQUIRE(path.size() < sizeof addr.sun_path,
               "unix socket path too long: " << path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MP_REQUIRE(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  MP_REQUIRE(address.rfind("tcp:", 0) == 0,
             "unknown transport address: " << address);
  const std::string rest = address.substr(4);
  const size_t colon = rest.rfind(':');
  MP_REQUIRE(colon != std::string::npos, "tcp address without port: "
                                             << address);
  const std::string host = rest.substr(0, colon);
  const int port = std::stoi(rest.substr(colon + 1));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<u16>(port));
  MP_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "bad tcp host: " << host);
  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MP_REQUIRE(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

SocketConfig resolve_socket_config(SocketConfig config, int ranks) {
  if (config.transport.empty()) {
    config.transport = env_str("MESHPRAM_DIST_TRANSPORT").value_or("unix");
  }
  MP_REQUIRE(config.transport == "unix" || config.transport == "tcp",
             "MESHPRAM_DIST_TRANSPORT must be unix or tcp, got '"
                 << config.transport << '\'');
  config.heartbeat_ms =
      resolve_ms(config.heartbeat_ms, "MESHPRAM_DIST_HEARTBEAT_MS", 250);
  config.peer_deadline_ms =
      resolve_ms(config.peer_deadline_ms, "MESHPRAM_DIST_DEADLINE_MS", 30000);
  config.recv_deadline_ms = resolve_ms(config.recv_deadline_ms,
                                       "MESHPRAM_DIST_RECV_DEADLINE_MS",
                                       30000);
  if (config.fault.empty()) {
    if (const auto spec = env_str("MESHPRAM_DIST_FAULT_PLAN")) {
      config.fault = WireFaultPlan::parse(*spec, ranks);
    }
  }
  return config;
}

// ---------------------------------------------------------------- SocketHub

SocketHub::SocketHub(int ranks, SocketConfig config)
    : ranks_(ranks), config_(std::move(config)), token_(fresh_token()) {
  MP_REQUIRE(ranks_ >= 1, "SocketHub needs at least one rank");
  peers_.resize(static_cast<size_t>(ranks_));
  inbox_data_.resize(static_cast<size_t>(ranks_));
  inbox_ctrl_.resize(static_cast<size_t>(ranks_));
  pair_count_.assign(static_cast<size_t>(ranks_) * ranks_, 0);

  if (config_.transport == "unix") {
    static std::atomic<u64> counter{0};
    unix_path_ = "/tmp/meshpram-hub-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock";
    ::unlink(unix_path_.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    MP_REQUIRE(unix_path_.size() < sizeof addr.sun_path,
               "unix socket path too long: " << unix_path_);
    std::strncpy(addr.sun_path, unix_path_.c_str(), sizeof addr.sun_path - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MP_REQUIRE(listen_fd_ >= 0, "socket(AF_UNIX): " << std::strerror(errno));
    MP_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr) == 0,
               "bind(" << unix_path_ << "): " << std::strerror(errno));
    address_ = "unix:" + unix_path_;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    MP_REQUIRE(listen_fd_ >= 0, "socket(AF_INET): " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    MP_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr) == 0,
               "bind(127.0.0.1): " << std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    MP_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0,
               "getsockname: " << std::strerror(errno));
    address_ = "tcp:127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  }
  MP_REQUIRE(::listen(listen_fd_, 64) == 0,
             "listen: " << std::strerror(errno));
  set_nonblocking(listen_fd_);
  MP_REQUIRE(::pipe(wake_fd_) == 0, "pipe: " << std::strerror(errno));
  set_nonblocking(wake_fd_[0]);
  set_nonblocking(wake_fd_[1]);
  pump_thread_ = std::thread([this] { pump(); });
}

SocketHub::~SocketHub() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  wake_pump();
  if (pump_thread_.joinable()) pump_thread_.join();
  close_all();
}

void SocketHub::close_all() {
  for (Peer& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
  }
  for (Pending& p : pending_) {
    if (p.fd >= 0) ::close(p.fd);
  }
  pending_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (wake_fd_[0] >= 0) ::close(wake_fd_[0]);
  if (wake_fd_[1] >= 0) ::close(wake_fd_[1]);
  wake_fd_[0] = wake_fd_[1] = -1;
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void SocketHub::wake_pump() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_[1], &byte, 1);
}

u32 SocketHub::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

TransportStats SocketHub::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool SocketHub::attached(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_[static_cast<size_t>(rank)].fd >= 0;
}

void SocketHub::wait_attached(int rank, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool ok = cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&] { return peers_[static_cast<size_t>(rank)].fd >= 0 || stop_; });
  if (stop_) throw TransportError("hub shut down");
  if (!ok) {
    throw TransportError("rank " + std::to_string(rank) +
                         " did not attach within " +
                         std::to_string(timeout_ms) + "ms");
  }
}

std::vector<std::pair<int, std::string>> SocketHub::down_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, std::string>> out;
  for (int r = 1; r < ranks_; ++r) {
    const Peer& p = peers_[static_cast<size_t>(r)];
    if (p.fd < 0) out.emplace_back(r, p.down_reason);
  }
  return out;
}

void SocketHub::detach(int rank) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    mark_down_locked(rank, "detached by supervisor");
  }
  wake_pump();
}

u32 SocketHub::begin_recovery() {
  std::lock_guard<std::mutex> lock(mu_);
  recovering_ = true;
  ++epoch_;
  for (auto& q : inbox_data_) q.clear();
  for (auto& q : inbox_ctrl_) q.clear();
  delayed_.clear();
  failure_.clear();
  // Transient partitions heal across a recovery: once a partition rule has
  // fired (its threshold was crossed), the recovered run proceeds without it
  // — otherwise a permanent partition would just exhaust max_recoveries.
  auto& parts = config_.fault.partitions;
  parts.erase(std::remove_if(parts.begin(), parts.end(),
                             [&](const WireFaultPlan::Partition& p) {
                               const size_t ab =
                                   static_cast<size_t>(p.a) * ranks_ + p.b;
                               const size_t ba =
                                   static_cast<size_t>(p.b) * ranks_ + p.a;
                               return pair_count_[ab] + pair_count_[ba] >=
                                      p.after;
                             }),
              parts.end());
  cv_.notify_all();
  return epoch_;
}

void SocketHub::end_recovery() {
  std::lock_guard<std::mutex> lock(mu_);
  recovering_ = false;
}

void SocketHub::fail_locked(const std::string& diagnosis) {
  if (failure_.empty()) failure_ = diagnosis;
  cv_.notify_all();
}

void SocketHub::mark_down_locked(int rank, const std::string& reason) {
  Peer& p = peers_[static_cast<size_t>(rank)];
  if (p.fd >= 0) {
    ::close(p.fd);
    p.fd = -1;
  }
  p.in.clear();
  p.out.clear();
  p.out_off = 0;
  p.down_reason = reason;
  if (!recovering_) {
    fail_locked("rank " + std::to_string(rank) + " down: " + reason);
  }
  cv_.notify_all();
}

void SocketHub::queue_to_locked(int rank, std::string bytes) {
  Peer& p = peers_[static_cast<size_t>(rank)];
  if (p.fd < 0) return;  // stale traffic to a dead rank; recovery handles it
  stats_.messages_sent += 1;
  stats_.bytes_sent += static_cast<i64>(bytes.size());
  if (p.out_off > 0 && p.out.empty()) p.out_off = 0;
  p.out.append(bytes);
}

void SocketHub::send_local(int to, std::string frame) {
  MP_REQUIRE(to != 0 && to < ranks_, "send_local to rank " << to);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!failure_.empty() && !recovering_) throw TransportError(failure_);
    Peer& p = peers_[static_cast<size_t>(to)];
    if (p.fd < 0) {
      throw TransportError("rank " + std::to_string(to) +
                           " down: " + p.down_reason);
    }
    const size_t pair = static_cast<size_t>(to);  // from=0: index 0*R+to
    const i64 index = pair_count_[pair]++;
    const i64 pair_total =
        pair_count_[pair] + pair_count_[static_cast<size_t>(to) * ranks_];
    if (config_.fault.should_drop(0, to, index, pair_total)) {
      wake_pump();
      return;
    }
    std::string bytes =
        pack_frame(FrameKind::Data, 0, to, epoch_, frame);
    if (const auto ms = config_.fault.delay_ms(0, to, index)) {
      delayed_.push_back(
          {Clock::now() + std::chrono::milliseconds(*ms), to,
           std::move(bytes)});
    } else {
      queue_to_locked(to, std::move(bytes));
    }
  }
  wake_pump();
}

std::string SocketHub::recv_local(int from) {
  std::unique_lock<std::mutex> lock(mu_);
  auto& inbox = inbox_data_[static_cast<size_t>(from)];
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.recv_deadline_ms);
  cv_.wait_until(lock, deadline, [&] {
    return stop_ || !inbox.empty() || (!failure_.empty() && !recovering_);
  });
  if (!inbox.empty()) {
    std::string frame = std::move(inbox.front());
    inbox.pop_front();
    return frame;
  }
  if (stop_) throw TransportError("hub shut down");
  if (!failure_.empty() && !recovering_) throw TransportError(failure_);
  throw TransportError("rank 0 recv deadline (" +
                       std::to_string(config_.recv_deadline_ms) +
                       "ms) waiting for rank " + std::to_string(from));
}

void SocketHub::send_ctrl(int to, std::string body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Peer& p = peers_[static_cast<size_t>(to)];
    if (p.fd < 0) {
      throw TransportError("rank " + std::to_string(to) +
                           " down: " + p.down_reason);
    }
    queue_to_locked(to, pack_frame(FrameKind::Ctrl, 0, to, 0, body));
  }
  wake_pump();
}

std::string SocketHub::recv_ctrl(int from, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto& inbox = inbox_ctrl_[static_cast<size_t>(from)];
  const Peer& p = peers_[static_cast<size_t>(from)];
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  cv_.wait_until(lock, deadline, [&] {
    return stop_ || !inbox.empty() || p.fd < 0 ||
           (!failure_.empty() && !recovering_);
  });
  if (!inbox.empty()) {
    std::string body = std::move(inbox.front());
    inbox.pop_front();
    return body;
  }
  if (stop_) throw TransportError("hub shut down");
  if (!failure_.empty() && !recovering_) throw TransportError(failure_);
  if (p.fd < 0) {
    // A dead peer cannot reply; fail fast instead of burning the timeout
    // (recovery waits on acks from ranks that may just have died).
    throw TransportError("rank " + std::to_string(from) +
                         " down: " + p.down_reason);
  }
  throw TransportError("control deadline (" + std::to_string(timeout_ms) +
                       "ms) waiting for rank " + std::to_string(from));
}

void SocketHub::route_data(const TaggedFrame& f) {
  stats_.messages_received += 1;
  stats_.bytes_received += static_cast<i64>(f.body.size());
  if (f.epoch != epoch_) return;  // stale incarnation
  if (f.to == 0) {
    inbox_data_[static_cast<size_t>(f.from)].push_back(f.body);
    cv_.notify_all();
    return;
  }
  if (f.to < 0 || f.to >= ranks_) return;
  const size_t pair =
      static_cast<size_t>(f.from) * ranks_ + static_cast<size_t>(f.to);
  const i64 index = pair_count_[pair]++;
  const i64 pair_total =
      pair_count_[pair] +
      pair_count_[static_cast<size_t>(f.to) * ranks_ +
                  static_cast<size_t>(f.from)];
  if (config_.fault.should_drop(f.from, f.to, index, pair_total)) return;
  std::string bytes =
      pack_frame(FrameKind::Data, f.from, f.to, f.epoch, f.body);
  if (const auto ms = config_.fault.delay_ms(f.from, f.to, index)) {
    delayed_.push_back(
        {Clock::now() + std::chrono::milliseconds(*ms), f.to,
         std::move(bytes)});
  } else {
    queue_to_locked(f.to, std::move(bytes));
  }
}

void SocketHub::handle_frame(int rank, const std::string& payload) {
  const TaggedFrame f = unpack_frame(payload);
  Peer& p = peers_[static_cast<size_t>(rank)];
  switch (f.kind) {
    case FrameKind::Hello:
      throw ConfigError("duplicate Hello from attached rank " +
                        std::to_string(rank));
    case FrameKind::Heartbeat:
      return;
    case FrameKind::Data: {
      route_data(f);
      p.data_sent += 1;
      // Wire-fault kills: sever the link once the rank delivered `after`
      // frames. The fired rule is erased so a respawned worker isn't
      // re-severed by it.
      auto& kills = config_.fault.kills;
      for (auto it = kills.begin(); it != kills.end(); ++it) {
        if (it->rank == rank && p.data_sent >= it->after) {
          kills.erase(it);
          mark_down_locked(rank, "wire fault: link severed");
          break;
        }
      }
      return;
    }
    case FrameKind::Ctrl: {
      stats_.messages_received += 1;
      stats_.bytes_received += static_cast<i64>(f.body.size());
      MP_REQUIRE(f.to == 0, "worker-to-worker control frame");
      MP_REQUIRE(!f.body.empty(), "empty control frame");
      inbox_ctrl_[static_cast<size_t>(rank)].push_back(f.body);
      if (static_cast<CtrlOp>(f.body[0]) == CtrlOp::Failed && !recovering_) {
        ByteReader r(std::string_view(f.body).substr(1), "failed frame");
        fail_locked("rank " + std::to_string(rank) +
                    " reported failure: " + r.get_str());
      }
      cv_.notify_all();
      return;
    }
  }
}

void SocketHub::pump() {
  std::vector<pollfd> fds;
  std::vector<int> fd_rank;  // parallel: -2 wake, -1 listener, -3-k pending k
  char buf[64 * 1024];
  for (;;) {
    fds.clear();
    fd_rank.clear();
    int timeout;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      fds.push_back({wake_fd_[0], POLLIN, 0});
      fd_rank.push_back(-2);
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_rank.push_back(-1);
      for (int r = 1; r < ranks_; ++r) {
        Peer& p = peers_[static_cast<size_t>(r)];
        if (p.fd < 0) continue;
        short events = POLLIN;
        if (p.out.size() > p.out_off) events |= POLLOUT;
        fds.push_back({p.fd, events, 0});
        fd_rank.push_back(r);
      }
      for (size_t k = 0; k < pending_.size(); ++k) {
        fds.push_back({pending_[k].fd, POLLIN, 0});
        fd_rank.push_back(-3 - static_cast<int>(k));
      }
      timeout = std::clamp(config_.heartbeat_ms, 10, 250);
      if (!delayed_.empty()) timeout = std::min(timeout, 5);
    }

    const int n = ::poll(fds.data(), fds.size(), timeout);
    if (n < 0 && errno != EINTR) return;

    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    const auto now = Clock::now();

    std::vector<int> newly_pending;
    for (size_t i = 0; i < fds.size(); ++i) {
      const short re = fds[i].revents;
      if (re == 0) continue;
      const int tag = fd_rank[i];
      if (tag == -2) {  // wake pipe
        while (::read(wake_fd_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (tag == -1) {  // listener
        for (;;) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          if (config_.transport == "tcp") {
            const int one = 1;
            ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          }
          newly_pending.push_back(cfd);
        }
        continue;
      }
      if (tag <= -3) {  // pending connection: expect Hello
        Pending& pc = pending_[static_cast<size_t>(-3 - tag)];
        bool drop = false;
        for (;;) {
          const ssize_t got = ::read(pc.fd, buf, sizeof buf);
          if (got > 0) {
            pc.in.append(buf, static_cast<size_t>(got));
            continue;
          }
          if (got < 0 && errno == EINTR) continue;
          if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          drop = true;  // EOF or error before Hello
          break;
        }
        if (!drop) {
          try {
            if (auto payload = pc.in.next_payload()) {
              const TaggedFrame f = unpack_frame(*payload);
              MP_REQUIRE(f.kind == FrameKind::Hello, "expected Hello");
              const Hello h = decode_hello(f.body);
              MP_REQUIRE(h.token == token_, "bad attach token");
              MP_REQUIRE(h.rank >= 1 && h.rank < ranks_ && h.ranks == ranks_,
                         "bad Hello rank " << h.rank << '/' << h.ranks);
              Peer& p = peers_[static_cast<size_t>(h.rank)];
              MP_REQUIRE(p.fd < 0, "rank " << h.rank << " already attached");
              p.fd = pc.fd;
              p.in = std::move(pc.in);
              p.out.clear();
              p.out_off = 0;
              p.down_reason.clear();
              p.last_seen = now;
              pc.fd = -1;  // ownership moved to the peer slot
              cv_.notify_all();
            }
          } catch (const std::exception&) {
            drop = true;
          }
        }
        if (drop && pc.fd >= 0) {
          ::close(pc.fd);
          pc.fd = -1;
        }
        continue;
      }

      // Attached worker socket.
      const int rank = tag;
      Peer& p = peers_[static_cast<size_t>(rank)];
      if (p.fd < 0) continue;
      if (re & (POLLIN | POLLHUP | POLLERR)) {
        bool down = false;
        std::string reason;
        for (;;) {
          const ssize_t got = ::read(p.fd, buf, sizeof buf);
          if (got > 0) {
            p.last_seen = now;
            p.in.append(buf, static_cast<size_t>(got));
            continue;
          }
          if (got < 0 && errno == EINTR) continue;
          if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          down = true;
          reason = got == 0 ? "connection closed"
                            : std::string("read error: ") +
                                  std::strerror(errno);
          break;
        }
        if (!down) {
          try {
            while (auto payload = p.in.next_payload()) {
              handle_frame(rank, *payload);
              if (p.fd < 0) break;  // a wire-fault kill severed it mid-drain
            }
          } catch (const std::exception& e) {
            down = true;
            reason = std::string("protocol error: ") + e.what();
          }
        }
        if (down && p.fd >= 0) mark_down_locked(rank, reason);
      }
    }
    for (const int cfd : newly_pending) {
      Pending pc;
      pc.fd = cfd;
      pending_.push_back(std::move(pc));
    }
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [](const Pending& pc) { return pc.fd < 0; }),
                   pending_.end());

    // Liveness sweep: silence beyond the peer deadline is a failure even if
    // the socket is still open (hung process, SIGSTOP, lost heartbeats).
    for (int r = 1; r < ranks_; ++r) {
      Peer& p = peers_[static_cast<size_t>(r)];
      if (p.fd < 0) continue;
      const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - p.last_seen)
                              .count();
      if (silent > config_.peer_deadline_ms) {
        mark_down_locked(r, "heartbeat deadline (silent for " +
                                std::to_string(silent) + "ms)");
      }
    }

    // Release due delayed frames.
    for (auto it = delayed_.begin(); it != delayed_.end();) {
      if (it->release <= now) {
        queue_to_locked(it->to, std::move(it->bytes));
        it = delayed_.erase(it);
      } else {
        ++it;
      }
    }

    // Flush outboxes (partial writes are fine; POLLOUT re-arms next round).
    for (int r = 1; r < ranks_; ++r) {
      Peer& p = peers_[static_cast<size_t>(r)];
      if (p.fd < 0 || p.out.size() <= p.out_off) continue;
      for (;;) {
        const size_t left = p.out.size() - p.out_off;
        if (left == 0) {
          p.out.clear();
          p.out_off = 0;
          break;
        }
        const ssize_t put =
            ::send(p.fd, p.out.data() + p.out_off, left, MSG_NOSIGNAL);
        if (put > 0) {
          p.out_off += static_cast<size_t>(put);
          continue;
        }
        if (put < 0 && errno == EINTR) continue;
        if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        mark_down_locked(r, std::string("write error: ") +
                                std::strerror(errno));
        break;
      }
      if (p.fd >= 0 && p.out_off > 0 && p.out_off == p.out.size()) {
        p.out.clear();
        p.out_off = 0;
      }
    }
  }
}

// ---------------------------------------------------------- WorkerTransport

WorkerTransport::WorkerTransport(const WorkerOptions& opts) : opts_(opts) {
  inbox_data_.resize(static_cast<size_t>(opts_.ranks));
  for (int attempt = 0; attempt < opts_.connect_attempts; ++attempt) {
    fd_ = dial(opts_.address);
    if (fd_ >= 0) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.connect_backoff_ms));
  }
  if (fd_ < 0) {
    throw TransportError("rank " + std::to_string(opts_.rank) +
                         " could not reach the hub at " + opts_.address);
  }
  last_send_ = Clock::now();
  write_frame(pack_frame(FrameKind::Hello, opts_.rank, 0, 0,
                         encode_hello(opts_.rank, opts_.ranks, opts_.token)));
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

WorkerTransport::~WorkerTransport() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (fd_ >= 0) ::close(fd_);
}

void WorkerTransport::heartbeat_loop() {
  const auto period = std::chrono::milliseconds(
      std::max(1, opts_.heartbeat_ms));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock, period, [this] { return hb_stop_; });
      if (hb_stop_) return;
    }
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      if (Clock::now() < last_send_ + period) continue;  // socket not idle
    }
    try {
      write_frame(pack_frame(FrameKind::Heartbeat, opts_.rank, 0, 0, {}));
    } catch (...) {
      return;  // dead socket — the worker thread hits the same error next op
    }
  }
}

void WorkerTransport::write_frame(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t put = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
    if (put > 0) {
      off += static_cast<size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    throw ShutdownSignal(std::string("connection to coordinator lost: ") +
                         std::strerror(errno));
  }
  last_send_ = Clock::now();
}

void WorkerTransport::send(int to, std::string frame) {
  stats_.messages_sent += 1;
  stats_.bytes_sent += static_cast<i64>(frame.size());
  write_frame(pack_frame(FrameKind::Data, opts_.rank, to, epoch_, frame));
}

void WorkerTransport::send_ctrl(std::string body) {
  write_frame(pack_frame(FrameKind::Ctrl, opts_.rank, 0, 0, body));
}

void WorkerTransport::dispatch(const std::string& payload) {
  TaggedFrame f = unpack_frame(payload);
  switch (f.kind) {
    case FrameKind::Data:
      if (f.epoch != epoch_) return;  // aborted incarnation
      if (f.from < 0 || f.from >= opts_.ranks) return;
      inbox_data_[static_cast<size_t>(f.from)].push_back(std::move(f.body));
      return;
    case FrameKind::Heartbeat:
      return;
    case FrameKind::Ctrl:
      inbox_ctrl_.push_back(f.body);
      return;
    case FrameKind::Hello:
      throw TransportError("hub sent Hello to a worker");
  }
}

template <class Done>
bool WorkerTransport::pump(Clock::time_point until, Done done) {
  char buf[64 * 1024];
  for (;;) {
    if (done()) return true;
    const auto now = Clock::now();
    if (now >= until) return false;

    // Liveness is the heartbeat thread's job; this wait only bounds itself.
    int timeout = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
            .count());
    timeout = std::clamp(timeout, 1, 60 * 1000);

    pollfd pfd{fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, timeout);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ShutdownSignal(std::string("poll: ") + std::strerror(errno));
    }
    if (r == 0) continue;
    const ssize_t got = ::read(fd_, buf, sizeof buf);
    if (got == 0) {
      throw ShutdownSignal("coordinator closed the connection");
    }
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw ShutdownSignal(std::string("read error: ") +
                           std::strerror(errno));
    }
    in_.append(buf, static_cast<size_t>(got));
    while (auto payload = in_.next_payload()) dispatch(*payload);
  }
}

void WorkerTransport::raise_pending_ctrl_interrupt() {
  for (auto it = inbox_ctrl_.begin(); it != inbox_ctrl_.end(); ++it) {
    if (it->empty()) continue;
    const CtrlOp op = static_cast<CtrlOp>((*it)[0]);
    if (op == CtrlOp::Abort) {
      ByteReader r(std::string_view(*it).substr(1), "abort frame");
      const u32 e = r.get_u32();
      inbox_ctrl_.erase(it);
      set_epoch(e);
      clear_inboxes();
      throw AbortSignal(e);
    }
    if (op == CtrlOp::Shutdown) {
      inbox_ctrl_.erase(it);
      throw ShutdownSignal("shutdown ordered by coordinator");
    }
  }
}

bool WorkerTransport::has_ctrl_interrupt() const {
  for (const std::string& body : inbox_ctrl_) {
    if (body.empty()) continue;
    const CtrlOp op = static_cast<CtrlOp>(body[0]);
    if (op == CtrlOp::Abort || op == CtrlOp::Shutdown) return true;
  }
  return false;
}

std::string WorkerTransport::recv(int from) {
  raise_pending_ctrl_interrupt();
  auto& inbox = inbox_data_[static_cast<size_t>(from)];
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opts_.recv_deadline_ms);
  pump(deadline, [&] { return !inbox.empty() || has_ctrl_interrupt(); });
  raise_pending_ctrl_interrupt();
  if (!inbox.empty()) {
    std::string frame = std::move(inbox.front());
    inbox.pop_front();
    stats_.messages_received += 1;
    stats_.bytes_received += static_cast<i64>(frame.size());
    return frame;
  }
  throw TransportError("rank " + std::to_string(opts_.rank) +
                       " recv deadline (" +
                       std::to_string(opts_.recv_deadline_ms) +
                       "ms) waiting for rank " + std::to_string(from));
}

std::string WorkerTransport::recv_ctrl() {
  pump(Clock::time_point::max(), [&] { return !inbox_ctrl_.empty(); });
  std::string body = std::move(inbox_ctrl_.front());
  inbox_ctrl_.pop_front();
  return body;
}

void WorkerTransport::clear_inboxes() {
  for (auto& q : inbox_data_) q.clear();
}

}  // namespace meshpram::dist
