#include "dist/wire.hpp"

#include "util/error.hpp"

namespace meshpram::dist {

namespace {

/// Smallest possible encoded Packet (empty trail): 5×u64 + 3×u32 + 2×u8.
constexpr size_t kMinPacketBytes = 62;

/// Rejects an embedded element count that could not possibly fit in the
/// remaining bytes — before any reserve(), so a corrupt or hostile frame
/// costs a ConfigError instead of a multi-gigabyte allocation.
void check_count(const ByteReader& r, u32 count, size_t min_bytes,
                 const char* what) {
  MP_REQUIRE(static_cast<u64>(count) * min_bytes <= r.remaining(),
             what << ": implausible element count " << count << " ("
                  << r.remaining() << " byte(s) left)");
}

}  // namespace

void put_packet(ByteWriter& w, const Packet& p) {
  w.put_u64(p.key);
  w.put_u64(p.rank);
  w.put_u64(p.copy);
  w.put_i64(p.var);
  w.put_u32(static_cast<u32>(p.origin));
  w.put_u32(static_cast<u32>(p.dest));
  w.put_u32(static_cast<u32>(p.stash));
  w.put_i64(p.value);
  w.put_i64(p.timestamp);
  w.put_u8(static_cast<unsigned char>(p.op));
  w.put_u8(p.trail_len);
  for (int i = 0; i < p.trail_len; ++i) {
    w.put_u32(static_cast<u32>(p.trail[static_cast<size_t>(i)]));
  }
}

Packet get_packet(ByteReader& r) {
  Packet p;
  p.key = r.get_u64();
  p.rank = r.get_u64();
  p.copy = r.get_u64();
  p.var = r.get_i64();
  p.origin = static_cast<i32>(r.get_u32());
  p.dest = static_cast<i32>(r.get_u32());
  p.stash = static_cast<i32>(r.get_u32());
  p.value = r.get_i64();
  p.timestamp = r.get_i64();
  p.op = static_cast<Op>(r.get_u8());
  p.trail_len = r.get_u8();
  MP_REQUIRE(p.trail_len <= p.trail.size(), "packet trail length "
                                                << static_cast<int>(
                                                       p.trail_len));
  for (int i = 0; i < p.trail_len; ++i) {
    p.trail[static_cast<size_t>(i)] = static_cast<i32>(r.get_u32());
  }
  return p;
}

std::string encode_band_buffers(Mesh& mesh, const RankBand& band) {
  std::string out;
  ByteWriter w(out);
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    const auto& b = mesh.buf(static_cast<i32>(node));
    w.put_u32(static_cast<u32>(b.size()));
    for (const Packet& p : b) put_packet(w, p);
  }
  return out;
}

void decode_band_buffers(Mesh& mesh, const RankBand& band,
                         std::string_view frame) {
  ByteReader r(frame, "band buffers");
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    auto& b = mesh.buf(static_cast<i32>(node));
    b.clear();
    const u32 count = r.get_u32();
    check_count(r, count, kMinPacketBytes, "band buffers");
    b.reserve(count);
    for (u32 i = 0; i < count; ++i) b.push_back(get_packet(r));
  }
  r.expect_done();
}

std::string encode_band_fills(Mesh& mesh, const RankBand& band) {
  std::string out;
  ByteWriter w(out);
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    const auto& b = mesh.buf(static_cast<i32>(node));
    w.put_u32(static_cast<u32>(b.size()));
    for (const Packet& p : b) {
      w.put_i64(p.value);
      w.put_i64(p.timestamp);
    }
  }
  return out;
}

void decode_band_fills(Mesh& mesh, const RankBand& band,
                       std::string_view frame) {
  ByteReader r(frame, "band fills");
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    auto& b = mesh.buf(static_cast<i32>(node));
    const u32 count = r.get_u32();
    MP_ASSERT(count == b.size(),
              "replicated buffer shape diverged at node " << node);
    for (Packet& p : b) {
      p.value = r.get_i64();
      p.timestamp = r.get_i64();
    }
  }
  r.expect_done();
}

std::string encode_boundary(const std::vector<BoundaryHop>& hops,
                            bool checksum) {
  std::string out;
  ByteWriter w(out);
  w.put_u8(checksum ? 1 : 0);
  w.put_u32(static_cast<u32>(hops.size()));
  for (const BoundaryHop& h : hops) {
    w.put_u32(static_cast<u32>(h.col));
    w.put_u32((static_cast<u32>(static_cast<u16>(h.dest_r)) << 16) |
              static_cast<u32>(static_cast<u16>(h.dest_c)));
    put_packet(w, h.payload);
  }
  if (checksum) w.put_u64(fnv1a64(out));
  return out;
}

std::vector<BoundaryHop> decode_boundary(std::string_view frame) {
  ByteReader r(frame, "boundary frame");
  const bool checksum = r.get_u8() != 0;
  const u32 count = r.get_u32();
  check_count(r, count, 8 + kMinPacketBytes, "boundary frame");
  std::vector<BoundaryHop> hops;
  hops.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    BoundaryHop h;
    h.col = static_cast<i32>(r.get_u32());
    const u32 rc = r.get_u32();
    h.dest_r = static_cast<i16>(static_cast<u16>(rc >> 16));
    h.dest_c = static_cast<i16>(static_cast<u16>(rc & 0xffffu));
    h.payload = get_packet(r);
    hops.push_back(h);
  }
  if (checksum) {
    const std::string_view body = frame.substr(0, r.pos());
    const u64 want = r.get_u64();
    MP_ASSERT(fnv1a64(body) == want,
              "boundary frame checksum mismatch (" << count << " hops)");
  }
  r.expect_done();
  return hops;
}

}  // namespace meshpram::dist
