// Distributed greedy XY routing over the whole mesh (DESIGN.md §13.2).
//
// Each rank runs the same forward/absorb sweeps as routing/greedy.cpp over
// its own row band; a packet whose XY hop crosses a band edge (always a
// single vertical hop) is exported as a boundary-lane frame to the
// neighboring rank instead of deposited into a local incoming lane. The
// per-sweep allreduce of delivered counts doubles as the lockstep barrier,
// so every rank executes the same number of sweeps — the step count is
// bit-identical to the single-process router by the same argument that makes
// the stripe team bit-identical to the serial path (per-node decisions
// depend only on per-node state; each lane has exactly one writer, here a
// message instead of a store).
#pragma once

#include "dist/collectives.hpp"
#include "dist/partition.hpp"
#include "mesh/machine.hpp"

namespace meshpram::dist {

struct DistRouteStats {
  i64 steps = 0;           ///< sweeps executed (identical on every rank)
  i64 boundary_hops = 0;   ///< packets this rank exported across band edges
  i64 boundary_bytes = 0;  ///< encoded boundary-frame bytes this rank sent
};

/// Routes every packet buffered in `rank`'s band of `mesh` to its
/// Packet::dest buffer, cooperating with the other ranks through `coll`'s
/// transport. All ranks must call this at the same point of the step
/// schedule. `validate` adds per-frame checksums and a per-sweep uniformity
/// check.
DistRouteStats dist_route_whole(Mesh& mesh, const RankPartition& part,
                                int rank, Collectives& coll, bool validate);

}  // namespace meshpram::dist
