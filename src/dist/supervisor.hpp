// ProcMachine — multi-process distributed simulation (DESIGN.md §15).
//
// The same SPMD decomposition as DistMachine, but ranks 1..R-1 live in
// separate worker processes (tools/dist_worker) connected to the rank-0
// coordinator through a SocketHub (socket.hpp). Rank 0 keeps its replica
// in-process and drives the step stream over the control plane:
//
//   Step t:  broadcast Step(t, requests) -> every rank runs the unchanged
//            DistProtocol::execute over the socket transport -> rank 0's
//            results are the answer (validate mode cross-checks digests).
//
// Fault tolerance is checkpoint/replay (DESIGN.md §15.4). After every
// `checkpoint_every` committed steps the coordinator gathers each worker's
// band (BandsReq/BandsReply), materializes a full simulator and snapshots it
// with the PR 5 versioned format. When any step throws TransportError —
// worker crash, hang past a deadline, severed link — recovery runs:
//
//   detect -> begin_recovery (epoch++, flush inboxes) -> Abort live workers,
//   collect AbortAcks (laggards are SIGKILLed) -> respawn dead ranks ->
//   restore EVERY rank from the checkpoint (Init carries the snapshot) ->
//   replay the logged steps since the checkpoint, asserting each result
//   digest -> retry the failed step.
//
// Determinism argument: the simulation is a pure function of (snapshot,
// request stream), every kernel runs under a serial ScopedPool, and stale
// frames from the aborted step are fenced off by the epoch stamp — so the
// replayed stream is bit-identical to the uninterrupted run, which the
// digest MP_ASSERT and `ctest -L distproc` both enforce. Congestion counters
// are the one exception: snapshots do not carry them, so a recovery loses
// the counters accumulated since the restore point (documented, tested).
#pragma once

#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "dist/collectives.hpp"
#include "dist/partition.hpp"
#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "mesh/step_counter.hpp"
#include "protocol/simulator.hpp"
#include "telemetry/counters.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::dist {

/// Resolves the dist_worker binary path: MESHPRAM_DIST_WORKER, else a
/// "dist_worker" sibling of the running executable, else ../tools/dist_worker
/// relative to it. Throws ConfigError when nothing executable is found.
std::string default_worker_path();

/// Spawns and reaps worker processes (fork/execv). Children get
/// PR_SET_PDEATHSIG so a crashed coordinator never leaks orphans.
class RankSupervisor {
 public:
  explicit RankSupervisor(std::string worker_path, int ranks);
  ~RankSupervisor();
  RankSupervisor(const RankSupervisor&) = delete;
  RankSupervisor& operator=(const RankSupervisor&) = delete;

  /// Launches `rank`'s worker with the given argv tail (binary path is
  /// prepended). The previous process for that rank must be reaped.
  void spawn(int rank, const std::vector<std::string>& args);
  /// SIGKILLs and reaps `rank`'s process. Idempotent.
  void kill(int rank);
  /// True while `rank`'s process exists and has not been reaped here.
  bool running(int rank);
  pid_t pid(int rank) const;
  /// Waits up to `grace_ms` for every child to exit on its own (e.g. after a
  /// Shutdown control), then SIGKILLs the rest. Called by the destructor.
  void reap_all(int grace_ms);

 private:
  std::string worker_path_;
  std::vector<pid_t> pids_;  ///< index = rank; 0 = no live process
};

struct ProcConfig {
  SimConfig sim;
  /// Rank count; 0 consults MESHPRAM_RANKS (default 1).
  int ranks = 0;
  /// Lockstep validation; -1 consults MESHPRAM_DIST_VALIDATE (default off).
  int validate = -1;
  /// Socket transport knobs; unset fields resolve from env (socket.hpp).
  SocketConfig socket;
  /// Worker binary; empty consults default_worker_path().
  std::string worker_path;
  /// Checkpoint after this many committed steps (>= 1). 1 = every step, the
  /// bit-identity default; larger values trade recovery replay for step-time
  /// gather cost.
  int checkpoint_every = 1;
  /// Recovery attempts per step before the TransportError propagates.
  int max_recoveries = 8;
  /// Bound on worker attach / InitAck / AbortAck waits.
  int attach_timeout_ms = 20000;
};

struct RecoveryStats {
  i64 failures = 0;    ///< TransportErrors caught by the step loop
  i64 recoveries = 0;  ///< completed recovery cycles
  i64 respawns = 0;    ///< worker processes relaunched
  i64 last_blackout_ms = 0;   ///< wall time of the latest recovery
  i64 total_blackout_ms = 0;  ///< wall time of all recoveries
};

/// The coordinator facade. Mirrors DistMachine's surface (step /
/// step_degraded / now / config / merged_counters / materialize / ...) so
/// tests and the serving layer treat process ranks and thread ranks alike.
class ProcMachine {
 public:
  explicit ProcMachine(const ProcConfig& config);
  ~ProcMachine();
  ProcMachine(const ProcMachine&) = delete;
  ProcMachine& operator=(const ProcMachine&) = delete;

  /// Largest rank count the HMOS geometry of `config` admits.
  static int max_ranks(const SimConfig& config);

  /// Builds a ProcMachine continuing `sim`'s run: same effective config,
  /// logical time and step counters; every rank restores from a snapshot of
  /// the source. The source simulator is not modified.
  static std::unique_ptr<ProcMachine> from_simulator(
      const PramMeshSimulator& sim, int ranks, ProcConfig base = {});

  int ranks() const { return partition_->ranks(); }
  bool validate() const { return validate_; }
  i64 processors() const { return sim0_->processors(); }
  i64 num_vars() const { return sim0_->num_vars(); }
  i64 now() const { return now_; }
  const SimConfig& config() const { return effective_; }
  const RankPartition& partition() const { return *partition_; }
  const StepCounter& clock() const { return clock_; }
  /// "unix" or "tcp".
  const std::string& transport_kind() const { return socket_cfg_.transport; }
  /// The hub rendezvous address workers dialed.
  const std::string& address() const;

  /// One synchronous PRAM step across all ranks, with transparent recovery:
  /// a TransportError triggers up to `max_recoveries` restore-and-replay
  /// cycles before propagating. Results are bit-identical to the
  /// single-process oracle whether or not recovery fired.
  std::vector<i64> step(const std::vector<AccessRequest>& requests,
                        StepStats* stats = nullptr, bool feed_clock = true);
  DegradedResult step_degraded(const std::vector<AccessRequest>& requests,
                               StepStats* stats = nullptr);

  /// Congestion counter grids merged by band owner (gathers live worker
  /// bands). Bit-identical to the single-process grid when telemetry
  /// sampling was on for the same steps AND no recovery fired — restores
  /// lose the counters accumulated since the checkpoint.
  telemetry::MeshCounters merged_counters();

  /// Bytes/frames that crossed the hub sockets (both directions), plus
  /// rank 0's loopback traffic.
  TransportStats transport_totals() const;
  /// Collective blocking time: rank 0 live, workers as of the last gather.
  WaitStats wait_totals() const;
  /// Boundary-lane traffic since the last recovery (protocol counters are
  /// rebuilt on restore), workers as of the last gather.
  i64 boundary_hops() const;
  i64 boundary_bytes() const;

  /// Reconstructs an equivalent single-process simulator from the live rank
  /// states (gathers worker bands). The snapshot path serializes this.
  std::unique_ptr<PramMeshSimulator> materialize();

  /// SIGKILLs `rank`'s worker process (tests / soak / bench). The next step
  /// or gather notices the dead link and recovers.
  void kill_rank(int rank);
  /// The live worker process id for `rank` (tests send SIGSTOP to exercise
  /// the heartbeat deadline); 0 when the rank has no process.
  pid_t worker_pid(int rank) const;
  const RecoveryStats& recovery() const { return recovery_; }

 private:
  struct LogEntry {
    std::vector<AccessRequest> requests;
    bool fed_clock = false;
    u64 digest = 0;
  };

  ProcMachine(const ProcConfig& config, const PramMeshSimulator* resume);
  void spawn_worker(int rank);
  void broadcast_init(u32 epoch);
  /// Runs one step on every rank at time now_ (no commit bookkeeping).
  std::vector<i64> run_step(const std::vector<AccessRequest>& requests,
                            StepStats* st);
  void recover(const std::string& reason);
  void replay_log();
  /// Refreshes gathered_ from every live worker (BandsReq round-trip).
  void gather_bands();
  void take_checkpoint();
  /// gather + materialize + snapshot with recovery retries, then trims the
  /// replay log. No-op until checkpoint_every steps have committed.
  void maybe_checkpoint();
  std::string ctrl_reply(int from, CtrlOp want, u32 want_epoch);

  ProcConfig config_;
  SimConfig effective_;
  bool validate_ = false;
  SocketConfig socket_cfg_;
  std::unique_ptr<PramMeshSimulator> sim0_;
  std::unique_ptr<RankPartition> partition_;
  std::unique_ptr<DistProtocol> proto0_;
  std::unique_ptr<ThreadPool> pool0_;
  std::unique_ptr<SocketHub> hub_;
  std::unique_ptr<HubTransport> endpoint0_;
  std::unique_ptr<RankSupervisor> supervisor_;
  WaitStats wait0_;
  std::vector<BandsMsg> gathered_;  ///< per-rank, as of the last gather
  std::string checkpoint_;          ///< PR 5 snapshot of the committed state
  std::vector<LogEntry> log_;       ///< committed steps since checkpoint_
  RecoveryStats recovery_;
  StepCounter clock_;
  i64 now_ = 0;
};

}  // namespace meshpram::dist
