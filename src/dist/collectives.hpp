// Lockstep collectives over a Transport (DESIGN.md §13.3).
//
// The SPMD protocol needs exactly four shapes: allgather (buffer
// replication, fill exchange, result slices), allreduce of step statistics
// (sum/max), a barrier, and a uniformity check that turns any cross-rank
// divergence into a hard error at the step where it happened instead of a
// silently wrong answer later.
//
// Topology is a star through rank 0 (gather + broadcast): at in-process
// rank counts the extra hop is nanoseconds, and the message pattern is
// deterministic — every pipe carries the same sequence of frames on every
// run, which keeps mixed collective/boundary-lane traffic FIFO-consistent.
//
// Wall-clock time blocked in recv is accumulated per Collectives instance;
// the distributed machine reports it as barrier-wait time (EXP-D1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dist/transport.hpp"

namespace meshpram::dist {

struct WaitStats {
  i64 calls = 0;
  double wait_ms = 0.0;

  WaitStats& operator+=(const WaitStats& o) {
    calls += o.calls;
    wait_ms += o.wait_ms;
    return *this;
  }
};

class Collectives {
 public:
  explicit Collectives(Transport& transport);

  int rank() const { return rank_; }
  int ranks() const { return ranks_; }
  Transport& transport() { return transport_; }

  /// Every rank contributes `local`; returns all contributions indexed by
  /// rank, identical on every rank.
  std::vector<std::string> allgather(std::string_view local);

  void barrier();
  i64 allreduce_sum(i64 v);
  i64 allreduce_max(i64 v);

  /// Verifies that every rank computed the same value; throws InternalError
  /// naming `what` on divergence. This is the bit-identity tripwire: it runs
  /// on the cheap digests the protocol already has in hand.
  void check_uniform(u64 value, const char* what);

  /// Time spent blocked in recv since construction.
  const WaitStats& wait() const { return wait_; }

 private:
  std::string timed_recv(int from);

  Transport& transport_;
  int rank_;
  int ranks_;
  WaitStats wait_;
};

}  // namespace meshpram::dist
