// The SPMD access-protocol executor (DESIGN.md §13.4).
//
// Each rank owns one row band of the mesh: its nodes' buffers and copy
// stores hold data, every other band's stay empty. The global plan (HMOS
// parameters, placement, fault plan, step schedule) is replicated — each
// rank holds a full simulator replica, so region geometry, sort kernels and
// culling run identically everywhere with zero communication.
//
// Two execution modes, chosen per step:
//
//  * partitioned (no fault plan, or a module-only plan): CULLING is
//    replicated (it touches no copy store); packets are generated on owned
//    nodes only; the whole-mesh stage k+1 replicates the raw buffers once,
//    sorts/ranks identically on every rank, then drops back to owned bands
//    and routes through the boundary-lane exchange; the inner stages (k..1),
//    the access itself and the return retrace never leave a band (partition
//    legality) and reuse the single-process kernels verbatim on the rank's
//    owned page regions, with an allreduce-max reproducing the parallel
//    stage charge.
//
//  * replicated fallback (plans with dead links/stalls/drops — these route
//    detours across region boundaries, which the band partition cannot
//    contain): every rank runs the unmodified single-process protocol on its
//    replica, sharded only at the apply phase through the ApplyShard hook
//    (owned stores serve reads/writes, read fills are exchanged). Costs a
//    factor ranks in compute, preserves bit-identity under every fault plan.
//
// Every step ends with a cross-rank FNV uniformity check over (results,
// total_steps) — divergence dies loudly at the step that caused it.
#pragma once

#include <vector>

#include "dist/collectives.hpp"
#include "dist/partition.hpp"
#include "protocol/simulator.hpp"

namespace meshpram::dist {

class DistProtocol {
 public:
  /// Binds to `sim`'s mesh/placement (the rank's replica). `part` and the
  /// sim must outlive the protocol.
  DistProtocol(PramMeshSimulator& sim, const RankPartition& part, int rank,
               bool validate);

  /// One PRAM access step in lockstep with the other ranks. Returns the full
  /// per-processor result vector (identical on every rank).
  std::vector<i64> execute(const std::vector<AccessRequest>& requests,
                           i64 timestamp, StepStats* stats,
                           Collectives& coll);

  /// Cumulative boundary-lane traffic this rank exported (route.hpp).
  i64 boundary_hops() const { return boundary_hops_; }
  i64 boundary_bytes() const { return boundary_bytes_; }

 private:
  std::vector<i64> execute_partitioned(
      const std::vector<AccessRequest>& requests, i64 timestamp, StepStats& st,
      Collectives& coll);
  std::vector<i64> execute_replicated(
      const std::vector<AccessRequest>& requests, i64 timestamp, StepStats& st,
      Collectives& coll);

  /// Allgathers every band's raw buffers so all ranks hold the full packet
  /// set (stage k+1 sorts the whole mesh).
  void replicate_buffers(Collectives& coll);
  /// FNV digest of every buffer in node order (validate mode).
  u64 buffers_digest();

  Mesh& mesh_;
  const Placement& placement_;
  SortOptions sort_opts_;
  AccessProtocol oracle_;
  const RankPartition& part_;
  int rank_;
  bool validate_;
  /// Deduplicated page regions per level owned by this rank (subset of the
  /// oracle's level_regions_ — legality guarantees each lies in one band).
  std::vector<std::vector<Region>> owned_regions_;
  i64 boundary_hops_ = 0;
  i64 boundary_bytes_ = 0;
};

}  // namespace meshpram::dist
