#include "dist/wire_fault.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram::dist {

WireFaultPlan& WireFaultPlan::drop_frame(int from, int to, i64 index) {
  drops.push_back({from, to, index});
  return *this;
}

WireFaultPlan& WireFaultPlan::delay_frame(int from, int to, i64 index,
                                          int ms) {
  delays.push_back({from, to, index, ms});
  return *this;
}

WireFaultPlan& WireFaultPlan::partition_after(int a, int b, i64 after) {
  partitions.push_back({a, b, after});
  return *this;
}

WireFaultPlan& WireFaultPlan::kill_after(int rank, i64 after) {
  kills.push_back({rank, after});
  return *this;
}

WireFaultPlan WireFaultPlan::seeded_drops(u64 seed, int ranks, int count,
                                          i64 horizon) {
  WireFaultPlan plan;
  Rng rng(seed);
  for (int from = 0; from < ranks; ++from) {
    for (int to = 0; to < ranks; ++to) {
      if (from == to) continue;
      for (int i = 0; i < count; ++i) {
        plan.drop_frame(from, to, rng.range(0, horizon - 1));
      }
    }
  }
  return plan;
}

namespace {

std::vector<i64> parse_fields(const std::string& body, size_t want,
                              const std::string& entry) {
  std::vector<i64> out;
  std::stringstream ss(body);
  std::string field;
  while (std::getline(ss, field, ':')) {
    try {
      size_t used = 0;
      out.push_back(std::stoll(field, &used));
      MP_REQUIRE(used == field.size(), "wire fault plan: non-numeric field '"
                                           << field << "' in '" << entry
                                           << '\'');
    } catch (const std::logic_error&) {
      MP_REQUIRE(false, "wire fault plan: non-numeric field '"
                            << field << "' in '" << entry << '\'');
    }
  }
  MP_REQUIRE(out.size() == want, "wire fault plan: '"
                                     << entry << "' needs " << want
                                     << " field(s), got " << out.size());
  return out;
}

int check_rank(i64 r, int ranks, const std::string& entry) {
  MP_REQUIRE(r >= 0 && r < ranks, "wire fault plan: rank "
                                      << r << " out of range in '" << entry
                                      << "' (ranks=" << ranks << ')');
  return static_cast<int>(r);
}

}  // namespace

WireFaultPlan WireFaultPlan::parse(const std::string& spec, int ranks) {
  WireFaultPlan plan;
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ';')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    MP_REQUIRE(eq != std::string::npos,
               "wire fault plan: entry '" << entry << "' has no '='");
    const std::string key = entry.substr(0, eq);
    const std::string body = entry.substr(eq + 1);
    if (key == "drop") {
      const auto f = parse_fields(body, 3, entry);
      plan.drop_frame(check_rank(f[0], ranks, entry),
                      check_rank(f[1], ranks, entry), f[2]);
    } else if (key == "delay") {
      const auto f = parse_fields(body, 4, entry);
      plan.delay_frame(check_rank(f[0], ranks, entry),
                       check_rank(f[1], ranks, entry), f[2],
                       static_cast<int>(f[3]));
    } else if (key == "part") {
      const auto f = parse_fields(body, 3, entry);
      plan.partition_after(check_rank(f[0], ranks, entry),
                           check_rank(f[1], ranks, entry), f[2]);
    } else if (key == "kill") {
      const auto f = parse_fields(body, 2, entry);
      plan.kill_after(check_rank(f[0], ranks, entry), f[1]);
    } else if (key == "seed") {
      const auto f = parse_fields(body, 3, entry);
      const WireFaultPlan seeded = seeded_drops(
          static_cast<u64>(f[0]), ranks, static_cast<int>(f[1]), f[2]);
      plan.drops.insert(plan.drops.end(), seeded.drops.begin(),
                        seeded.drops.end());
    } else {
      MP_REQUIRE(false, "wire fault plan: unknown entry kind '" << key << '\'');
    }
  }
  return plan;
}

bool WireFaultPlan::should_drop(int from, int to, i64 index,
                                i64 pair_total) const {
  for (const Drop& d : drops) {
    if (d.from == from && d.to == to && d.index == index) return true;
  }
  for (const Partition& p : partitions) {
    const bool match = (p.a == from && p.b == to) ||
                       (p.a == to && p.b == from);
    if (match && pair_total >= p.after) return true;
  }
  return false;
}

std::optional<int> WireFaultPlan::delay_ms(int from, int to, i64 index) const {
  for (const Delay& d : delays) {
    if (d.from == from && d.to == to && d.index == index) return d.ms;
  }
  return std::nullopt;
}

bool WireFaultPlan::should_kill(int rank, i64 sent) const {
  for (const Kill& k : kills) {
    if (k.rank == rank && sent >= k.after) return true;
  }
  return false;
}

}  // namespace meshpram::dist
