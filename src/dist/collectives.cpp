#include "dist/collectives.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace meshpram::dist {

Collectives::Collectives(Transport& transport)
    : transport_(transport),
      rank_(transport.rank()),
      ranks_(transport.ranks()) {}

std::string Collectives::timed_recv(int from) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string frame = transport_.recv(from);
  const auto t1 = std::chrono::steady_clock::now();
  wait_.calls += 1;
  wait_.wait_ms +=
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  return frame;
}

std::vector<std::string> Collectives::allgather(std::string_view local) {
  std::vector<std::string> out(static_cast<size_t>(ranks_));
  out[static_cast<size_t>(rank_)] = std::string(local);
  if (ranks_ == 1) return out;
  if (rank_ == 0) {
    for (int r = 1; r < ranks_; ++r) {
      out[static_cast<size_t>(r)] = timed_recv(r);
    }
    std::string packed;
    ByteWriter w(packed);
    for (const std::string& s : out) w.put_blob(s);
    for (int r = 1; r < ranks_; ++r) transport_.send(r, packed);
  } else {
    transport_.send(0, std::string(local));
    const std::string packed = timed_recv(0);
    ByteReader rd(packed, "allgather broadcast");
    for (int r = 0; r < ranks_; ++r) {
      out[static_cast<size_t>(r)] = std::string(rd.get_blob());
    }
    rd.expect_done();
  }
  return out;
}

void Collectives::barrier() { allgather(std::string_view()); }

i64 Collectives::allreduce_sum(i64 v) {
  if (ranks_ == 1) return v;
  std::string local;
  ByteWriter w(local);
  w.put_i64(v);
  i64 total = 0;
  for (const std::string& s : allgather(local)) {
    ByteReader rd(s, "allreduce_sum");
    total += rd.get_i64();
  }
  return total;
}

i64 Collectives::allreduce_max(i64 v) {
  if (ranks_ == 1) return v;
  std::string local;
  ByteWriter w(local);
  w.put_i64(v);
  i64 best = std::numeric_limits<i64>::min();
  for (const std::string& s : allgather(local)) {
    ByteReader rd(s, "allreduce_max");
    best = std::max(best, rd.get_i64());
  }
  return best;
}

void Collectives::check_uniform(u64 value, const char* what) {
  if (ranks_ == 1) return;
  std::string local;
  ByteWriter w(local);
  w.put_u64(value);
  const std::vector<std::string> all = allgather(local);
  for (int r = 0; r < ranks_; ++r) {
    ByteReader rd(all[static_cast<size_t>(r)], "check_uniform");
    const u64 v = rd.get_u64();
    MP_ASSERT(v == value, "lockstep divergence in " << what << ": rank "
                                                     << rank_ << " has "
                                                     << value << ", rank "
                                                     << r << " has " << v);
  }
}

}  // namespace meshpram::dist
