// Row-stripe rank partition of the mesh (DESIGN.md §13.1).
//
// The distributed machine splits the R×C mesh into contiguous horizontal
// bands, one per rank. A band boundary is legal only where it does not cut
// through any HMOS page region at any level: the access protocol's inner
// stages (k..1) sort and route strictly inside page regions, so a region
// kept whole inside one band needs no communication at all — the only
// cross-rank traffic left is the whole-mesh stage (k+1 distribution and the
// final return), which crosses band edges one vertical hop at a time through
// the boundary-lane exchange (route.hpp).
//
// The legal cut rows decompose the mesh into *atoms* (minimal indivisible
// row segments); ranks get contiguous runs of atoms balanced by row count.
// The number of atoms is therefore the maximum usable rank count for a given
// HMOS geometry — exposed as max_ranks() so callers can refuse or clamp.
#pragma once

#include <vector>

#include "hmos/placement.hpp"
#include "util/math.hpp"

namespace meshpram::dist {

/// One rank's row band: rows [row_begin, row_end), nodes (row-major ids)
/// [node_begin, node_end).
struct RankBand {
  int row_begin = 0;
  int row_end = 0;
  i64 node_begin = 0;
  i64 node_end = 0;

  int rows() const { return row_end - row_begin; }
};

class RankPartition {
 public:
  /// Builds the band assignment for `ranks` ranks over a rows×cols mesh
  /// placed by `placement`. Throws ConfigError when ranks exceeds the atom
  /// count (use max_ranks() to probe first).
  RankPartition(const Placement& placement, int rows, int cols, int ranks);

  /// Largest rank count this placement admits (= number of atoms).
  static int max_ranks(const Placement& placement, int rows);

  int ranks() const { return static_cast<int>(bands_.size()); }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const RankBand& band(int rank) const {
    return bands_[static_cast<size_t>(rank)];
  }

  int owner_of_row(int row) const {
    return row_owner_[static_cast<size_t>(row)];
  }
  int owner_of_node(i64 node) const {
    return owner_of_row(static_cast<int>(node / cols_));
  }
  bool owns_node(int rank, i64 node) const {
    return owner_of_node(node) == rank;
  }

  /// Owner of a region that the legality invariant guarantees lies inside
  /// one band; asserts containment.
  int owner_of_region(const Region& g) const;

 private:
  static std::vector<int> atom_rows(const Placement& placement, int rows);

  int rows_ = 0;
  int cols_ = 0;
  std::vector<RankBand> bands_;
  std::vector<int> row_owner_;
};

}  // namespace meshpram::dist
