#include "dist/machine.hpp"

#include <exception>
#include <thread>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace meshpram::dist {

namespace {

const telemetry::Label kPramStep = telemetry::intern("pram.step");

int resolve_ranks(int ranks) {
  if (ranks > 0) return ranks;
  return static_cast<int>(env_i64("MESHPRAM_RANKS", 1, 4096).value_or(1));
}

bool resolve_validate(int validate) {
  if (validate >= 0) return validate != 0;
  return env_i64("MESHPRAM_DIST_VALIDATE", 0, 1).value_or(0) != 0;
}

}  // namespace

DistMachine::DistMachine(const DistConfig& config)
    : validate_(resolve_validate(config.validate)) {
  const int ranks = resolve_ranks(config.ranks);

  // Rank 0 resolves the effective config exactly like a standalone simulator
  // (env fault-plan fallback, plan validation, effective-plan retention);
  // every other rank is built from the resolved copy so all replicas agree
  // even when the env changes mid-run.
  sims_.push_back(std::make_unique<PramMeshSimulator>(config.sim));
  effective_ = sims_[0]->config();
  effective_.fault_plan_from_env = false;
  for (int r = 1; r < ranks; ++r) {
    sims_.push_back(std::make_unique<PramMeshSimulator>(effective_));
  }

  const int max = RankPartition::max_ranks(sims_[0]->placement(),
                                           effective_.mesh_rows);
  MP_REQUIRE(ranks <= max, "ranks=" << ranks << " exceeds the " << max
                                    << " atom(s) of this HMOS geometry");
  partition_ = std::make_unique<RankPartition>(
      sims_[0]->placement(), effective_.mesh_rows, effective_.mesh_cols,
      ranks);

  for (int r = 0; r < ranks; ++r) {
    pools_.push_back(std::make_unique<ThreadPool>(1));
  }
  rebuild_transport();
  for (int r = 0; r < ranks; ++r) {
    protocols_.push_back(std::make_unique<DistProtocol>(*sims_[r], *partition_,
                                                        r, validate_));
  }
  wait_totals_.resize(static_cast<size_t>(ranks));
}

DistMachine::~DistMachine() = default;

void DistMachine::rebuild_transport() {
  for (const auto& ep : endpoints_) retained_transport_ += ep->stats();
  endpoints_.clear();
  hub_ = std::make_unique<ChannelHub>(static_cast<int>(sims_.size()));
  for (int r = 0; r < static_cast<int>(sims_.size()); ++r) {
    endpoints_.push_back(std::make_unique<ChannelTransport>(*hub_, r));
  }
}

int DistMachine::max_ranks(const SimConfig& config) {
  PramMeshSimulator probe(config);
  return RankPartition::max_ranks(probe.placement(), config.mesh_rows);
}

std::unique_ptr<DistMachine> DistMachine::from_simulator(
    const PramMeshSimulator& sim, int ranks) {
  DistConfig cfg;
  cfg.sim = sim.config();
  cfg.sim.fault_plan_from_env = false;
  cfg.ranks = ranks;
  auto m = std::make_unique<DistMachine>(cfg);
  m->now_ = sim.now();
  for (const auto& [label, steps] : sim.mesh().clock().by_phase()) {
    m->clock_.add(label, steps);
  }
  // Scatter the copy stores to their owning ranks.
  const Mesh& src = sim.mesh();
  for (i32 node = 0; node < src.size(); ++node) {
    const int owner = m->partition_->owner_of_node(node);
    Mesh& dst = m->sims_[static_cast<size_t>(owner)]->mesh();
    src.store(node).for_each([&dst, node](u64 key, const CopySlot& slot) {
      dst.store(node)[key] = slot;
    });
  }
  return m;
}

std::vector<i64> DistMachine::step(const std::vector<AccessRequest>& requests,
                                   StepStats* stats, bool feed_clock) {
  telemetry::begin_frame();  // sampling granularity = one PRAM step
  std::vector<AccessRequest> padded = requests;
  MP_REQUIRE(static_cast<i64>(padded.size()) <= processors(),
             "more requests (" << padded.size() << ") than processors ("
                               << processors() << ')');
  padded.resize(static_cast<size_t>(processors()));

  const int R = ranks();
  std::vector<std::vector<i64>> results(static_cast<size_t>(R));
  std::vector<StepStats> rank_stats(static_cast<size_t>(R));
  std::vector<std::exception_ptr> errors(static_cast<size_t>(R));
  {
    telemetry::Span step_span(telemetry::Cat::Step, kPramStep, now_);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(R));
    for (int r = 0; r < R; ++r) {
      threads.emplace_back([this, r, &padded, &results, &rank_stats,
                            &errors] {
        // Serial kernels on this rank: thread-count invariance makes them
        // bit-identical to the oracle's parallel runs.
        ScopedPool guard(*pools_[static_cast<size_t>(r)]);
        Collectives coll(*endpoints_[static_cast<size_t>(r)]);
        try {
          results[static_cast<size_t>(r)] =
              protocols_[static_cast<size_t>(r)]->execute(
                  padded, now_, &rank_stats[static_cast<size_t>(r)], coll);
        } catch (...) {
          errors[static_cast<size_t>(r)] = std::current_exception();
          hub_->kill();  // unblock every peer waiting on this rank
        }
        wait_totals_[static_cast<size_t>(r)] += coll.wait();
      });
    }
    for (std::thread& t : threads) t.join();
    if (errors[0] == nullptr) {
      step_span.set_steps(rank_stats[0].total_steps);
    }
  }

  for (int r = 0; r < R; ++r) {
    if (errors[static_cast<size_t>(r)] == nullptr) continue;
    // Rebuild the killed hub so the machine stays usable, then rethrow the
    // lowest-rank error that is not a secondary TransportError (the rank
    // that actually failed carries the real diagnosis).
    rebuild_transport();
    std::exception_ptr chosen;
    for (const std::exception_ptr& e : errors) {
      if (e == nullptr) continue;
      if (chosen == nullptr) chosen = e;
      try {
        std::rethrow_exception(e);
      } catch (const TransportError&) {
      } catch (...) {
        chosen = e;
        break;
      }
    }
    std::rethrow_exception(chosen);
  }

  const StepStats& st = rank_stats[0];
  if (stats != nullptr) *stats = st;
  ++now_;
  if (stats != nullptr && feed_clock) {
    clock_.add("pram_step", stats->total_steps);
  }
  if (effective_.fault_policy == FaultPolicy::HardFail &&
      st.fault.any_failures()) {
    throw fault::FaultError(
        std::to_string(st.fault.requests_failed) +
        " request(s) failed under the installed fault plan "
        "(FaultPolicy::HardFail)");
  }
  return std::move(results[0]);
}

DegradedResult DistMachine::step_degraded(
    const std::vector<AccessRequest>& requests, StepStats* stats) {
  StepStats local;
  StepStats& st = stats != nullptr ? *stats : local;
  DegradedResult r;
  r.values = step(requests, &st);
  r.report = st.fault;
  if (st.request_ok.empty()) {
    r.ok.assign(static_cast<size_t>(processors()), 1);
  } else {
    r.ok = st.request_ok;
  }
  return r;
}

telemetry::MeshCounters DistMachine::merged_counters() const {
  telemetry::MeshCounters out;
  out.resize(effective_.mesh_rows, effective_.mesh_cols);
  for (int r = 0; r < ranks(); ++r) {
    const RankBand& band = partition_->band(r);
    out.adopt_range(sims_[static_cast<size_t>(r)]->mesh().counters(),
                    band.node_begin, band.node_end);
  }
  return out;
}

TransportStats DistMachine::transport_totals() const {
  TransportStats total = retained_transport_;
  for (const auto& ep : endpoints_) total += ep->stats();
  return total;
}

WaitStats DistMachine::wait_totals() const {
  WaitStats total;
  for (const WaitStats& w : wait_totals_) total += w;
  return total;
}

i64 DistMachine::boundary_hops() const {
  i64 total = 0;
  for (const auto& p : protocols_) total += p->boundary_hops();
  return total;
}

i64 DistMachine::boundary_bytes() const {
  i64 total = 0;
  for (const auto& p : protocols_) total += p->boundary_bytes();
  return total;
}

std::unique_ptr<PramMeshSimulator> DistMachine::materialize() const {
  auto sim = std::make_unique<PramMeshSimulator>(effective_);
  sim->set_logical_time(now_);
  for (const auto& [label, steps] : clock_.by_phase()) {
    sim->mesh().clock().add(label, steps);
  }
  for (int r = 0; r < ranks(); ++r) {
    const RankBand& band = partition_->band(r);
    const Mesh& src = sims_[static_cast<size_t>(r)]->mesh();
    Mesh& dst = sim->mesh();
    for (i64 node = band.node_begin; node < band.node_end; ++node) {
      src.store(static_cast<i32>(node))
          .for_each([&dst, node](u64 key, const CopySlot& slot) {
            dst.store(static_cast<i32>(node))[key] = slot;
          });
    }
  }
  return sim;
}

}  // namespace meshpram::dist
