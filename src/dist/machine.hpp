// DistMachine — the distributed-simulation facade (DESIGN.md §13).
//
// Runs one PramMeshSimulator replica per rank as SPMD threads over an
// in-process ChannelHub, partitioned into row bands (partition.hpp). The
// facade mirrors PramMeshSimulator's surface (step / step_degraded / now /
// config) and is bit-identical to it at every rank count: same results, same
// StepStats, same congestion counters — `ctest -L dist` enforces exactly
// that against the single-process oracle.
//
// Threading: every step spawns one std::thread per rank; each rank thread
// installs a ScopedPool of size 1, so the kernels it runs are serial and
// thread-count invariance makes them bit-identical to any other pool size.
// If any rank throws, the hub is killed (unblocking peers with
// TransportError), the hub and endpoints are rebuilt so the machine stays
// usable, and the lowest-rank original error is rethrown.
#pragma once

#include <memory>
#include <vector>

#include "dist/channel.hpp"
#include "dist/collectives.hpp"
#include "dist/partition.hpp"
#include "dist/protocol.hpp"
#include "mesh/step_counter.hpp"
#include "protocol/simulator.hpp"
#include "telemetry/counters.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::dist {

struct DistConfig {
  SimConfig sim;
  /// Rank count; 0 consults MESHPRAM_RANKS (default 1). Must not exceed
  /// DistMachine::max_ranks(sim).
  int ranks = 0;
  /// Per-sweep lockstep validation (boundary-lane checksums + replicated
  /// buffer digests); -1 consults MESHPRAM_DIST_VALIDATE (default off).
  int validate = -1;
};

class DistMachine {
 public:
  explicit DistMachine(const DistConfig& config);
  ~DistMachine();
  DistMachine(const DistMachine&) = delete;
  DistMachine& operator=(const DistMachine&) = delete;

  /// Largest rank count the HMOS geometry of `config` admits.
  static int max_ranks(const SimConfig& config);

  /// Builds a DistMachine continuing `sim`'s run: same effective config,
  /// logical time and step counters; copy stores scattered to their owning
  /// ranks. The source simulator is not modified.
  static std::unique_ptr<DistMachine> from_simulator(
      const PramMeshSimulator& sim, int ranks);

  int ranks() const { return partition_->ranks(); }
  bool validate() const { return validate_; }
  i64 processors() const { return sims_[0]->processors(); }
  i64 num_vars() const { return sims_[0]->num_vars(); }
  i64 now() const { return now_; }
  /// The effective (resolved) SimConfig every rank replica was built from.
  const SimConfig& config() const { return effective_; }
  const RankPartition& partition() const { return *partition_; }
  const StepCounter& clock() const { return clock_; }

  /// One synchronous PRAM step across all ranks (PramMeshSimulator::step).
  /// `feed_clock` false skips the accounting-clock add, mirroring the
  /// simulator's flag — the serving layer passes false so snapshots are
  /// batch-invariant.
  std::vector<i64> step(const std::vector<AccessRequest>& requests,
                        StepStats* stats = nullptr, bool feed_clock = true);
  DegradedResult step_degraded(const std::vector<AccessRequest>& requests,
                               StepStats* stats = nullptr);

  /// Congestion counter grids merged by band owner — bit-identical to the
  /// single-process grid when telemetry sampling was on for the same steps.
  telemetry::MeshCounters merged_counters() const;

  /// Cumulative transport traffic over all rank endpoints (survives the
  /// endpoint rebuild after a failed step).
  TransportStats transport_totals() const;
  /// Cumulative time ranks spent blocked in collectives (barrier wait).
  WaitStats wait_totals() const;
  /// Cumulative boundary-lane traffic of the distributed route.
  i64 boundary_hops() const;
  i64 boundary_bytes() const;

  /// Reconstructs an equivalent single-process simulator: effective config,
  /// logical time, step counters, and the union of every rank's copy stores.
  /// The snapshot path serializes this (dist/serve.hpp).
  std::unique_ptr<PramMeshSimulator> materialize() const;

 private:
  void rebuild_transport();

  SimConfig effective_;
  bool validate_ = false;
  std::vector<std::unique_ptr<PramMeshSimulator>> sims_;
  std::unique_ptr<RankPartition> partition_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  std::unique_ptr<ChannelHub> hub_;
  std::vector<std::unique_ptr<ChannelTransport>> endpoints_;
  std::vector<std::unique_ptr<DistProtocol>> protocols_;
  /// Endpoint stats accumulated across transport rebuilds.
  TransportStats retained_transport_;
  std::vector<WaitStats> wait_totals_;
  StepCounter clock_;
  i64 now_ = 0;
};

}  // namespace meshpram::dist
