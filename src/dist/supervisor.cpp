#include "dist/supervisor.hpp"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace meshpram::dist {

namespace {

using Clock = std::chrono::steady_clock;

const telemetry::Label kPramStep = telemetry::intern("pram.step");

int resolve_ranks(int ranks) {
  if (ranks > 0) return ranks;
  return static_cast<int>(env_i64("MESHPRAM_RANKS", 1, 4096).value_or(1));
}

bool resolve_validate(int validate) {
  if (validate >= 0) return validate != 0;
  return env_i64("MESHPRAM_DIST_VALIDATE", 0, 1).value_or(0) != 0;
}

bool executable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

std::string exe_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string exe(buf);
  const size_t slash = exe.rfind('/');
  return slash == std::string::npos ? std::string(".") : exe.substr(0, slash);
}

/// The digest the replay MP_ASSERT compares: results + the step-count the
/// clock would be fed. Bit-identical replay implies equal digests.
u64 step_digest(const std::vector<i64>& results, const StepStats& st) {
  std::string buf;
  ByteWriter w(buf);
  w.put_u64(static_cast<u64>(results.size()));
  for (const i64 v : results) w.put_i64(v);
  w.put_i64(st.total_steps);
  return fnv1a64(buf);
}

}  // namespace

std::string default_worker_path() {
  if (const auto env = env_str("MESHPRAM_DIST_WORKER")) {
    MP_REQUIRE(executable(*env),
               "MESHPRAM_DIST_WORKER is not executable: " << *env);
    return *env;
  }
  const std::string dir = exe_dir();
  for (const std::string& candidate :
       {dir + "/dist_worker", dir + "/../tools/dist_worker"}) {
    if (executable(candidate)) return candidate;
  }
  throw ConfigError(
      "cannot locate the dist_worker binary (looked next to the executable "
      "and in ../tools); set MESHPRAM_DIST_WORKER");
}

// ------------------------------------------------------------ RankSupervisor

RankSupervisor::RankSupervisor(std::string worker_path, int ranks)
    : worker_path_(std::move(worker_path)),
      pids_(static_cast<size_t>(ranks), 0) {}

RankSupervisor::~RankSupervisor() { reap_all(0); }

void RankSupervisor::spawn(int rank, const std::vector<std::string>& args) {
  MP_REQUIRE(rank >= 1 && rank < static_cast<int>(pids_.size()),
             "spawn rank " << rank << " out of range");
  MP_REQUIRE(pids_[static_cast<size_t>(rank)] == 0,
             "rank " << rank << " already has a live process");
  const pid_t pid = ::fork();
  MP_REQUIRE(pid >= 0, "fork: " << std::strerror(errno));
  if (pid == 0) {
    // Child. Die with the coordinator so crashed tests never leak workers.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(worker_path_.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(worker_path_.c_str(), argv.data());
    _exit(127);  // exec failed; the hub reports the rank as never attached
  }
  pids_[static_cast<size_t>(rank)] = pid;
}

void RankSupervisor::kill(int rank) {
  pid_t& pid = pids_[static_cast<size_t>(rank)];
  if (pid == 0) return;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  pid = 0;
}

bool RankSupervisor::running(int rank) {
  pid_t& pid = pids_[static_cast<size_t>(rank)];
  if (pid == 0) return false;
  const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
  if (r == pid) {
    pid = 0;
    return false;
  }
  return true;
}

pid_t RankSupervisor::pid(int rank) const {
  return pids_[static_cast<size_t>(rank)];
}

void RankSupervisor::reap_all(int grace_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(grace_ms);
  for (;;) {
    bool any = false;
    for (size_t r = 0; r < pids_.size(); ++r) {
      if (pids_[r] != 0 && running(static_cast<int>(r))) any = true;
    }
    if (!any || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (size_t r = 0; r < pids_.size(); ++r) {
    kill(static_cast<int>(r));
  }
}

// --------------------------------------------------------------- ProcMachine

ProcMachine::ProcMachine(const ProcConfig& config)
    : ProcMachine(config, nullptr) {}

ProcMachine::ProcMachine(const ProcConfig& config,
                         const PramMeshSimulator* resume)
    : config_(config), validate_(resolve_validate(config.validate)) {
  const int ranks = resolve_ranks(config.ranks);
  MP_REQUIRE(config_.checkpoint_every >= 1, "checkpoint_every must be >= 1");
  config_.ranks = ranks;

  // The committed state starts as a snapshot; rank 0 and every worker restore
  // from the same bytes, so all replicas agree from step zero.
  if (resume != nullptr) {
    checkpoint_ = serve::snapshot_simulator(*resume);
    sim0_ = serve::restore_simulator(checkpoint_);
  } else {
    sim0_ = std::make_unique<PramMeshSimulator>(config_.sim);
    checkpoint_ = serve::snapshot_simulator(*sim0_);
  }
  effective_ = sim0_->config();
  effective_.fault_plan_from_env = false;
  now_ = sim0_->now();
  for (const auto& [label, steps] : sim0_->mesh().clock().by_phase()) {
    clock_.add(label, steps);
  }

  const int max = RankPartition::max_ranks(sim0_->placement(),
                                           effective_.mesh_rows);
  MP_REQUIRE(ranks <= max, "ranks=" << ranks << " exceeds the " << max
                                    << " atom(s) of this HMOS geometry");
  partition_ = std::make_unique<RankPartition>(
      sim0_->placement(), effective_.mesh_rows, effective_.mesh_cols, ranks);
  drop_foreign_stores(sim0_->mesh(), *partition_, 0);
  proto0_ = std::make_unique<DistProtocol>(*sim0_, *partition_, 0, validate_);
  pool0_ = std::make_unique<ThreadPool>(1);
  gathered_.resize(static_cast<size_t>(ranks));

  socket_cfg_ = resolve_socket_config(config_.socket, ranks);
  hub_ = std::make_unique<SocketHub>(ranks, socket_cfg_);
  endpoint0_ = std::make_unique<HubTransport>(*hub_);
  if (config_.worker_path.empty()) {
    config_.worker_path = ranks > 1 ? default_worker_path() : "dist_worker";
  }
  supervisor_ = std::make_unique<RankSupervisor>(config_.worker_path, ranks);
  for (int r = 1; r < ranks; ++r) spawn_worker(r);
  for (int r = 1; r < ranks; ++r) {
    hub_->wait_attached(r, config_.attach_timeout_ms);
  }
  broadcast_init(hub_->epoch());
}

ProcMachine::~ProcMachine() {
  if (hub_ != nullptr && supervisor_ != nullptr) {
    for (int r = 1; r < ranks(); ++r) {
      if (!hub_->attached(r)) continue;
      try {
        hub_->send_ctrl(r, encode_plain_ctrl(CtrlOp::Shutdown));
      } catch (const std::exception&) {
      }
    }
    supervisor_->reap_all(1000);
  }
}

int ProcMachine::max_ranks(const SimConfig& config) {
  PramMeshSimulator probe(config);
  return RankPartition::max_ranks(probe.placement(), config.mesh_rows);
}

std::unique_ptr<ProcMachine> ProcMachine::from_simulator(
    const PramMeshSimulator& sim, int ranks, ProcConfig base) {
  base.ranks = ranks;
  return std::unique_ptr<ProcMachine>(new ProcMachine(base, &sim));
}

const std::string& ProcMachine::address() const { return hub_->address(); }

void ProcMachine::spawn_worker(int rank) {
  supervisor_->spawn(
      rank, {hub_->address(), std::to_string(rank),
             std::to_string(ranks()), std::to_string(hub_->token()),
             std::to_string(socket_cfg_.heartbeat_ms),
             std::to_string(socket_cfg_.recv_deadline_ms)});
}

std::string ProcMachine::ctrl_reply(int from, CtrlOp want, u32 want_epoch) {
  // Bounded skip loop: the inbox can hold stale frames (a Failed report, an
  // ack from an older epoch) in front of the reply we need.
  for (int skips = 0; skips < 64; ++skips) {
    std::string body = hub_->recv_ctrl(from, socket_cfg_.recv_deadline_ms);
    MP_REQUIRE(!body.empty(), "empty control reply from rank " << from);
    if (static_cast<CtrlOp>(body[0]) != want) continue;
    if (want == CtrlOp::InitAck || want == CtrlOp::AbortAck) {
      ByteReader r(std::string_view(body).substr(1), "control reply");
      if (r.get_u32() != want_epoch) continue;
    }
    return body;
  }
  throw TransportError("rank " + std::to_string(from) +
                       " flooded the control channel");
}

void ProcMachine::broadcast_init(u32 epoch) {
  InitMsg msg;
  msg.epoch = epoch;
  msg.validate = validate_;
  msg.telemetry = telemetry::master_enabled();
  msg.snapshot = checkpoint_;
  const std::string body = encode_init(msg);
  for (int r = 1; r < ranks(); ++r) hub_->send_ctrl(r, body);
  for (int r = 1; r < ranks(); ++r) {
    ctrl_reply(r, CtrlOp::InitAck, epoch);
  }
}

std::vector<i64> ProcMachine::run_step(
    const std::vector<AccessRequest>& requests, StepStats* st) {
  StepMsg msg;
  msg.timestamp = now_;
  msg.requests = requests;
  const std::string body = encode_step(msg);
  for (int r = 1; r < ranks(); ++r) hub_->send_ctrl(r, body);

  telemetry::Span step_span(telemetry::Cat::Step, kPramStep, now_);
  // Serial kernels on rank 0, like every worker: thread-count invariance
  // makes the run bit-identical to the oracle at any pool size.
  ScopedPool guard(*pool0_);
  Collectives coll(*endpoint0_);
  std::vector<i64> out = proto0_->execute(requests, now_, st, coll);
  wait0_ += coll.wait();
  step_span.set_steps(st->total_steps);
  return out;
}

std::vector<i64> ProcMachine::step(const std::vector<AccessRequest>& requests,
                                   StepStats* stats, bool feed_clock) {
  telemetry::begin_frame();  // sampling granularity = one PRAM step
  std::vector<AccessRequest> padded = requests;
  MP_REQUIRE(static_cast<i64>(padded.size()) <= processors(),
             "more requests (" << padded.size() << ") than processors ("
                               << processors() << ')');
  padded.resize(static_cast<size_t>(processors()));

  std::vector<i64> results;
  StepStats st;
  int attempts = 0;
  for (;;) {
    try {
      results = run_step(padded, &st);
      break;
    } catch (const TransportError& e) {
      if (++attempts > config_.max_recoveries) throw;
      recover(e.what());
    }
  }

  // Commit: the step is now part of the stream recovery must reproduce.
  const bool fed = stats != nullptr && feed_clock;
  LogEntry entry;
  entry.requests = std::move(padded);
  entry.fed_clock = fed;
  entry.digest = step_digest(results, st);
  log_.push_back(std::move(entry));
  if (stats != nullptr) *stats = st;
  ++now_;
  if (fed) clock_.add("pram_step", st.total_steps);
  maybe_checkpoint();

  if (effective_.fault_policy == FaultPolicy::HardFail &&
      st.fault.any_failures()) {
    throw fault::FaultError(
        std::to_string(st.fault.requests_failed) +
        " request(s) failed under the installed fault plan "
        "(FaultPolicy::HardFail)");
  }
  return results;
}

DegradedResult ProcMachine::step_degraded(
    const std::vector<AccessRequest>& requests, StepStats* stats) {
  StepStats local;
  StepStats& st = stats != nullptr ? *stats : local;
  DegradedResult r;
  r.values = step(requests, &st);
  r.report = st.fault;
  if (st.request_ok.empty()) {
    r.ok.assign(static_cast<size_t>(processors()), 1);
  } else {
    r.ok = st.request_ok;
  }
  return r;
}

void ProcMachine::recover(const std::string& reason) {
  ++recovery_.failures;
  const auto t0 = Clock::now();
  (void)reason;  // carried by the rethrown error if recovery itself fails
  const u32 epoch = hub_->begin_recovery();

  // Phase 1: abort whatever survives of the in-flight step. Workers that
  // don't ack within the deadline are hung — SIGKILL and respawn them.
  for (int r = 1; r < ranks(); ++r) {
    if (!hub_->attached(r)) continue;
    try {
      hub_->send_ctrl(r, encode_epoch_ctrl(CtrlOp::Abort, epoch));
    } catch (const TransportError&) {
    }
  }
  for (int r = 1; r < ranks(); ++r) {
    if (!hub_->attached(r)) continue;
    try {
      ctrl_reply(r, CtrlOp::AbortAck, epoch);
    } catch (const TransportError&) {
      supervisor_->kill(r);
      hub_->detach(r);
    }
  }

  // Phase 2: relaunch every rank with no live connection.
  std::vector<int> dead;
  for (const auto& [r, why] : hub_->down_ranks()) dead.push_back(r);
  for (const int r : dead) {
    supervisor_->kill(r);  // reap the old process (no-op if already reaped)
    spawn_worker(r);
    ++recovery_.respawns;
  }
  for (const int r : dead) {
    hub_->wait_attached(r, config_.attach_timeout_ms);
  }

  // Phase 3: restore every rank from the committed checkpoint. Rank 0
  // rebuilds in-process; workers restore via Init (which carries the
  // snapshot bytes).
  sim0_ = serve::restore_simulator(checkpoint_);
  now_ = sim0_->now();
  clock_.reset();
  for (const auto& [label, steps] : sim0_->mesh().clock().by_phase()) {
    clock_.add(label, steps);
  }
  drop_foreign_stores(sim0_->mesh(), *partition_, 0);
  proto0_ = std::make_unique<DistProtocol>(*sim0_, *partition_, 0, validate_);
  broadcast_init(epoch);
  hub_->end_recovery();

  // Phase 4: replay the committed steps since the checkpoint. A failure in
  // here propagates to the step loop, which recovers again (bounded).
  replay_log();
  ++recovery_.recoveries;
  const i64 blackout = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - t0)
                           .count();
  recovery_.last_blackout_ms = blackout;
  recovery_.total_blackout_ms += blackout;
}

void ProcMachine::replay_log() {
  for (const LogEntry& e : log_) {
    StepStats st;
    const std::vector<i64> res = run_step(e.requests, &st);
    // The tripwire of the determinism argument (DESIGN.md §15.5): a restored
    // run that does not reproduce the committed stream is an internal error,
    // never something to retry past.
    MP_ASSERT(step_digest(res, st) == e.digest,
              "recovery replay diverged at t=" << now_);
    ++now_;
    if (e.fed_clock) clock_.add("pram_step", st.total_steps);
  }
}

void ProcMachine::gather_bands() {
  for (int r = 1; r < ranks(); ++r) {
    hub_->send_ctrl(r, encode_plain_ctrl(CtrlOp::BandsReq));
  }
  for (int r = 1; r < ranks(); ++r) {
    const std::string body = ctrl_reply(r, CtrlOp::BandsReply, 0);
    ByteReader reader(std::string_view(body).substr(1), "bands reply");
    gathered_[static_cast<size_t>(r)] = decode_bands_reply(reader);
  }
}

void ProcMachine::take_checkpoint() {
  checkpoint_ = serve::snapshot_simulator(*materialize());
  log_.clear();
}

void ProcMachine::maybe_checkpoint() {
  if (static_cast<int>(log_.size()) < config_.checkpoint_every) return;
  int attempts = 0;
  for (;;) {
    try {
      take_checkpoint();
      return;
    } catch (const TransportError& e) {
      if (++attempts > config_.max_recoveries) throw;
      recover(e.what());
    }
  }
}

std::unique_ptr<PramMeshSimulator> ProcMachine::materialize() {
  gather_bands();
  auto sim = std::make_unique<PramMeshSimulator>(effective_);
  sim->set_logical_time(now_);
  for (const auto& [label, steps] : clock_.by_phase()) {
    sim->mesh().clock().add(label, steps);
  }
  // Band 0 straight from the local replica, the rest from the gathered blobs.
  const RankBand& b0 = partition_->band(0);
  const Mesh& src = sim0_->mesh();
  Mesh& dst = sim->mesh();
  for (i64 node = b0.node_begin; node < b0.node_end; ++node) {
    src.store(static_cast<i32>(node))
        .for_each([&dst, node](u64 key, const CopySlot& slot) {
          dst.store(static_cast<i32>(node))[key] = slot;
        });
  }
  for (int r = 1; r < ranks(); ++r) {
    decode_band_stores(dst, partition_->band(r),
                       gathered_[static_cast<size_t>(r)].stores);
  }
  return sim;
}

telemetry::MeshCounters ProcMachine::merged_counters() {
  gather_bands();
  telemetry::MeshCounters out;
  out.resize(effective_.mesh_rows, effective_.mesh_cols);
  const RankBand& b0 = partition_->band(0);
  out.adopt_range(sim0_->mesh().counters(), b0.node_begin, b0.node_end);
  for (int r = 1; r < ranks(); ++r) {
    decode_band_counters(out, partition_->band(r),
                         gathered_[static_cast<size_t>(r)].counters);
  }
  return out;
}

TransportStats ProcMachine::transport_totals() const {
  TransportStats total = hub_->stats();
  total += endpoint0_->stats();
  return total;
}

WaitStats ProcMachine::wait_totals() const {
  WaitStats total = wait0_;
  for (const BandsMsg& g : gathered_) {
    WaitStats w;
    w.calls = g.wait_calls;
    w.wait_ms = g.wait_ms;
    total += w;
  }
  return total;
}

i64 ProcMachine::boundary_hops() const {
  i64 total = proto0_->boundary_hops();
  for (const BandsMsg& g : gathered_) total += g.boundary_hops;
  return total;
}

i64 ProcMachine::boundary_bytes() const {
  i64 total = proto0_->boundary_bytes();
  for (const BandsMsg& g : gathered_) total += g.boundary_bytes;
  return total;
}

pid_t ProcMachine::worker_pid(int rank) const {
  return supervisor_->pid(rank);
}

void ProcMachine::kill_rank(int rank) {
  MP_REQUIRE(rank >= 1 && rank < ranks(),
             "kill_rank(" << rank << ") needs a worker rank (1.."
                          << ranks() - 1 << ')');
  supervisor_->kill(rank);
}

}  // namespace meshpram::dist
