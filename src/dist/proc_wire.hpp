// Frame and control-plane codecs for the multi-process transport
// (DESIGN.md §15).
//
// Every byte on a worker socket is one outer length-prefixed frame
// (serve::FrameBuffer framing) whose payload is a *tagged* frame:
//
//   u8 kind | u32 from | u32 to | body
//
// Four kinds:
//   Hello      worker -> hub attach: u32 rank | u32 ranks | u64 token.
//              The token is chosen by the coordinator and passed on the
//              worker command line, so a stray client cannot claim a rank.
//   Data       one Transport frame in flight between two ranks:
//              u32 epoch | raw transport bytes. The epoch stamps which
//              incarnation of the step stream the frame belongs to; frames
//              from an aborted epoch are dropped at the hub and at the
//              receiving endpoint instead of corrupting the next step.
//   Heartbeat  empty body; refreshes the sender's liveness deadline.
//   Ctrl       u8 op | op body — the coordinator/worker control plane
//              (init/step/abort/bands/failed/shutdown, see CtrlOp).
//
// All codecs are ByteReader-based: truncated or implausible input is a
// ConfigError at the decoding edge, never UB.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dist/partition.hpp"
#include "mesh/machine.hpp"
#include "protocol/access.hpp"
#include "telemetry/counters.hpp"
#include "util/bytes.hpp"

namespace meshpram::dist {

enum class FrameKind : unsigned char {
  Hello = 1,
  Data = 2,
  Heartbeat = 3,
  Ctrl = 4,
};

/// Control-plane operations (first body byte of a Ctrl frame).
enum class CtrlOp : unsigned char {
  Init = 1,      ///< coordinator->worker: restore from snapshot, arm epoch
  InitAck = 2,   ///< worker->coordinator: restore done, ready for steps
  Step = 3,      ///< coordinator->worker: execute one PRAM step
  Abort = 4,     ///< coordinator->worker: discard the in-flight step
  AbortAck = 5,  ///< worker->coordinator: abort observed, inboxes cleared
  BandsReq = 6,  ///< coordinator->worker: send your band state
  BandsReply = 7,
  Failed = 8,    ///< worker->coordinator: step failed worker-side (reason)
  Shutdown = 9,  ///< coordinator->worker: exit cleanly
};

/// One decoded tagged frame (the payload of an outer length-prefixed frame).
struct TaggedFrame {
  FrameKind kind = FrameKind::Data;
  int from = 0;
  int to = 0;
  u32 epoch = 0;     ///< Data only
  std::string body;  ///< Data: transport frame; Ctrl: op byte + op body
};

/// Wraps a tagged payload in the outer u32-length frame, ready to write to a
/// socket.
std::string pack_frame(FrameKind kind, int from, int to, u32 epoch,
                       std::string_view body);

/// Decodes one tagged payload (as produced by pack_frame, after the outer
/// framing was stripped by serve::FrameBuffer). Throws ConfigError on
/// malformed input.
TaggedFrame unpack_frame(std::string_view payload);

// -- Ctrl bodies. Each encode_* returns the Ctrl body (op byte included);
// -- each decode takes the body with the op byte already consumed.

std::string encode_hello(int rank, int ranks, u64 token);
struct Hello {
  int rank = 0;
  int ranks = 0;
  u64 token = 0;
};
Hello decode_hello(std::string_view body);

struct InitMsg {
  u32 epoch = 0;
  bool validate = false;
  bool telemetry = false;
  std::string snapshot;  ///< serve snapshot bytes (snapshot_simulator)
};
std::string encode_init(const InitMsg& msg);
InitMsg decode_init(ByteReader& r);

std::string encode_epoch_ctrl(CtrlOp op, u32 epoch);  ///< InitAck/Abort/AbortAck

struct StepMsg {
  i64 timestamp = 0;
  std::vector<AccessRequest> requests;
};
std::string encode_step(const StepMsg& msg);
StepMsg decode_step(ByteReader& r);

/// Everything the coordinator gathers from one worker: the rank's owned copy
/// stores and congestion counters, plus its cumulative traffic/wait totals.
struct BandsMsg {
  std::string stores;    ///< encode_band_stores bytes
  std::string counters;  ///< encode_band_counters bytes
  i64 boundary_hops = 0;
  i64 boundary_bytes = 0;
  i64 wait_calls = 0;
  double wait_ms = 0.0;
};
std::string encode_bands_reply(const BandsMsg& msg);
BandsMsg decode_bands_reply(ByteReader& r);

std::string encode_failed(std::string_view reason);
std::string encode_plain_ctrl(CtrlOp op);  ///< BandsReq / Shutdown

// -- Band state codecs (the BandsReply payloads).

/// Copy stores of `band`'s nodes: per node ascending, u32 count + key-sorted
/// (u64 key, i64 value, i64 timestamp). Canonical bytes — same state, same
/// encoding, regardless of hash-table history.
std::string encode_band_stores(const Mesh& mesh, const RankBand& band);
void decode_band_stores(Mesh& mesh, const RankBand& band,
                        std::string_view frame);

/// The six congestion counters of `band`'s nodes, node-ascending.
std::string encode_band_counters(const telemetry::MeshCounters& counters,
                                 const RankBand& band);
/// Decodes into `out` (must already be sized to the mesh shape); only the
/// band's cells are written.
void decode_band_counters(telemetry::MeshCounters& out, const RankBand& band,
                          std::string_view frame);

/// Drops every copy store outside `band` — applied by a worker after
/// restoring the full snapshot, so each rank holds exactly its owned band
/// (mirrors DistMachine::from_simulator's scatter).
void drop_foreign_stores(Mesh& mesh, const RankPartition& part, int rank);

}  // namespace meshpram::dist
