// In-process transport: N ranks as threads over mutex+condvar queues.
//
// A ChannelHub owns ranks² ordered pipes (one per directed rank pair); a
// ChannelTransport is one rank's endpoint. kill() wakes every blocked
// receiver with a TransportError — the driver uses it to collapse the whole
// step when any rank throws, so no thread is left waiting on a peer that
// will never send.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dist/transport.hpp"

namespace meshpram::dist {

class ChannelHub {
 public:
  explicit ChannelHub(int ranks);

  int ranks() const { return ranks_; }

  void send(int from, int to, std::string frame);
  std::string recv(int from, int to);

  /// Shuts the hub down: every current and future recv on an empty pipe
  /// throws TransportError. Idempotent.
  void kill();
  bool killed() const { return killed_.load(std::memory_order_acquire); }

 private:
  struct Pipe {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> frames;
  };

  Pipe& pipe(int from, int to) {
    return *pipes_[static_cast<size_t>(from) * static_cast<size_t>(ranks_) +
                   static_cast<size_t>(to)];
  }

  int ranks_;
  std::vector<std::unique_ptr<Pipe>> pipes_;
  std::atomic<bool> killed_{false};
};

class ChannelTransport final : public Transport {
 public:
  ChannelTransport(ChannelHub& hub, int rank) : hub_(hub), rank_(rank) {}

  int rank() const override { return rank_; }
  int ranks() const override { return hub_.ranks(); }

  void send(int to, std::string frame) override {
    stats_.messages_sent += 1;
    stats_.bytes_sent += static_cast<i64>(frame.size());
    hub_.send(rank_, to, std::move(frame));
  }

  std::string recv(int from) override {
    std::string frame = hub_.recv(from, rank_);
    stats_.messages_received += 1;
    stats_.bytes_received += static_cast<i64>(frame.size());
    return frame;
  }

  const TransportStats& stats() const override { return stats_; }

 private:
  ChannelHub& hub_;
  int rank_;
  TransportStats stats_;
};

}  // namespace meshpram::dist
