#include "dist/proc_wire.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace meshpram::dist {

namespace {

/// Smallest encoded store entry: u64 key + i64 value + i64 timestamp.
constexpr size_t kStoreEntryBytes = 24;

void put_tag(ByteWriter& w, FrameKind kind, int from, int to) {
  w.put_u8(static_cast<unsigned char>(kind));
  w.put_u32(static_cast<u32>(from));
  w.put_u32(static_cast<u32>(to));
}

}  // namespace

std::string pack_frame(FrameKind kind, int from, int to, u32 epoch,
                       std::string_view body) {
  std::string payload;
  ByteWriter w(payload);
  put_tag(w, kind, from, to);
  if (kind == FrameKind::Data) w.put_u32(epoch);
  payload.append(body.data(), body.size());

  std::string out;
  ByteWriter outer(out);
  outer.put_u32(static_cast<u32>(payload.size()));
  out.append(payload);
  return out;
}

TaggedFrame unpack_frame(std::string_view payload) {
  ByteReader r(payload, "tagged frame");
  TaggedFrame f;
  const unsigned char kind = r.get_u8();
  MP_REQUIRE(kind >= static_cast<unsigned char>(FrameKind::Hello) &&
                 kind <= static_cast<unsigned char>(FrameKind::Ctrl),
             "tagged frame: unknown kind " << static_cast<int>(kind));
  f.kind = static_cast<FrameKind>(kind);
  f.from = static_cast<int>(r.get_u32());
  f.to = static_cast<int>(r.get_u32());
  if (f.kind == FrameKind::Data) f.epoch = r.get_u32();
  f.body.assign(payload.substr(r.pos()));
  return f;
}

std::string encode_hello(int rank, int ranks, u64 token) {
  std::string out;
  ByteWriter w(out);
  w.put_u32(static_cast<u32>(rank));
  w.put_u32(static_cast<u32>(ranks));
  w.put_u64(token);
  return out;
}

Hello decode_hello(std::string_view body) {
  ByteReader r(body, "hello frame");
  Hello h;
  h.rank = static_cast<int>(r.get_u32());
  h.ranks = static_cast<int>(r.get_u32());
  h.token = r.get_u64();
  r.expect_done();
  return h;
}

std::string encode_init(const InitMsg& msg) {
  std::string out;
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(CtrlOp::Init));
  w.put_u32(msg.epoch);
  w.put_u8(msg.validate ? 1 : 0);
  w.put_u8(msg.telemetry ? 1 : 0);
  w.put_blob(msg.snapshot);
  return out;
}

InitMsg decode_init(ByteReader& r) {
  InitMsg msg;
  msg.epoch = r.get_u32();
  msg.validate = r.get_u8() != 0;
  msg.telemetry = r.get_u8() != 0;
  msg.snapshot = std::string(r.get_blob());
  r.expect_done();
  return msg;
}

std::string encode_epoch_ctrl(CtrlOp op, u32 epoch) {
  std::string out;
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(op));
  w.put_u32(epoch);
  return out;
}

std::string encode_step(const StepMsg& msg) {
  std::string out;
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(CtrlOp::Step));
  w.put_i64(msg.timestamp);
  w.put_u32(static_cast<u32>(msg.requests.size()));
  for (const AccessRequest& a : msg.requests) {
    w.put_i64(a.var);
    w.put_u8(static_cast<unsigned char>(a.op));
    w.put_i64(a.value);
  }
  return out;
}

StepMsg decode_step(ByteReader& r) {
  StepMsg msg;
  msg.timestamp = r.get_i64();
  const u32 n = r.get_u32();
  MP_REQUIRE(static_cast<u64>(n) * 17 <= r.remaining(),
             "step frame: implausible request count " << n);
  msg.requests.resize(n);
  for (AccessRequest& a : msg.requests) {
    a.var = r.get_i64();
    a.op = static_cast<Op>(r.get_u8());
    a.value = r.get_i64();
  }
  r.expect_done();
  return msg;
}

std::string encode_bands_reply(const BandsMsg& msg) {
  std::string out;
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(CtrlOp::BandsReply));
  w.put_blob(msg.stores);
  w.put_blob(msg.counters);
  w.put_i64(msg.boundary_hops);
  w.put_i64(msg.boundary_bytes);
  w.put_i64(msg.wait_calls);
  w.put_f64(msg.wait_ms);
  return out;
}

BandsMsg decode_bands_reply(ByteReader& r) {
  BandsMsg msg;
  msg.stores = std::string(r.get_blob());
  msg.counters = std::string(r.get_blob());
  msg.boundary_hops = r.get_i64();
  msg.boundary_bytes = r.get_i64();
  msg.wait_calls = r.get_i64();
  msg.wait_ms = r.get_f64();
  r.expect_done();
  return msg;
}

std::string encode_failed(std::string_view reason) {
  std::string out;
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(CtrlOp::Failed));
  w.put_str(reason);
  return out;
}

std::string encode_plain_ctrl(CtrlOp op) {
  std::string out;
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(op));
  return out;
}

std::string encode_band_stores(const Mesh& mesh, const RankBand& band) {
  std::string out;
  ByteWriter w(out);
  std::vector<std::pair<u64, CopySlot>> entries;
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    const CopyStore& store = mesh.store(static_cast<i32>(node));
    entries.clear();
    entries.reserve(static_cast<size_t>(store.size()));
    store.for_each([&entries](u64 key, const CopySlot& slot) {
      entries.emplace_back(key, slot);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.put_u32(static_cast<u32>(entries.size()));
    for (const auto& [key, slot] : entries) {
      w.put_u64(key);
      w.put_i64(slot.value);
      w.put_i64(slot.timestamp);
    }
  }
  return out;
}

void decode_band_stores(Mesh& mesh, const RankBand& band,
                        std::string_view frame) {
  ByteReader r(frame, "band stores");
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    CopyStore& store = mesh.store(static_cast<i32>(node));
    store.clear();
    const u32 count = r.get_u32();
    MP_REQUIRE(static_cast<u64>(count) * kStoreEntryBytes <= r.remaining(),
               "band stores: implausible entry count " << count);
    for (u32 i = 0; i < count; ++i) {
      const u64 key = r.get_u64();
      CopySlot& slot = store[key];
      slot.value = r.get_i64();
      slot.timestamp = r.get_i64();
    }
  }
  r.expect_done();
}

std::string encode_band_counters(const telemetry::MeshCounters& counters,
                                 const RankBand& band) {
  std::string out;
  ByteWriter w(out);
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    const size_t i = static_cast<size_t>(node);
    w.put_i64(counters.max_queue()[i]);
    w.put_i64(counters.forwarded()[i]);
    w.put_i64(counters.copies_touched()[i]);
    w.put_i64(counters.survivors()[i]);
    w.put_i64(counters.retries()[i]);
    w.put_i64(counters.copies_lost()[i]);
  }
  return out;
}

void decode_band_counters(telemetry::MeshCounters& out, const RankBand& band,
                          std::string_view frame) {
  ByteReader r(frame, "band counters");
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    const i32 n = static_cast<i32>(node);
    // The band's cells start zeroed (fresh grid), so add/observe reconstruct
    // the encoded values exactly.
    out.observe_queue(n, r.get_i64());
    out.add_forwarded(n, r.get_i64());
    out.add_copies_touched(n, r.get_i64());
    out.add_survivors(n, r.get_i64());
    out.add_retries(n, r.get_i64());
    out.add_copies_lost(n, r.get_i64());
  }
  r.expect_done();
}

void drop_foreign_stores(Mesh& mesh, const RankPartition& part, int rank) {
  for (i32 node = 0; node < mesh.size(); ++node) {
    if (part.owner_of_node(node) != rank) mesh.store(node).clear();
  }
}

}  // namespace meshpram::dist
