#include "dist/protocol.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "dist/route.hpp"
#include "dist/wire.hpp"
#include "protocol/culling.hpp"
#include "routing/greedy.hpp"
#include "routing/rank.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace meshpram::dist {

namespace {

// Same labels as the single-process protocol (access.cpp): intern dedups by
// name, so a rank's trace uses the familiar stage names.
const telemetry::Label kCullingRun = telemetry::intern("culling.run");
const telemetry::Label kGenPackets = telemetry::intern("access.gen_packets");
const telemetry::Label kForwardStage = telemetry::intern("access.forward");
const telemetry::Label kDeliverStage = telemetry::intern("access.deliver");
const telemetry::Label kApplyAccess = telemetry::intern("access.apply");
const telemetry::Label kReturnStage = telemetry::intern("access.return");
const telemetry::Label kCollect = telemetry::intern("access.collect");

/// Replicated-fallback apply shard: owned nodes perform the accesses, then
/// the read fills are allgathered so every replica's packets agree.
class FillShard final : public ApplyShard {
 public:
  FillShard(const RankPartition& part, int rank, Collectives& coll)
      : part_(part), rank_(rank), coll_(coll) {}

  bool owns_node(i32 node) const override {
    return part_.owns_node(rank_, node);
  }

  void exchange_fills(Mesh& mesh) override {
    if (part_.ranks() == 1) return;
    const std::string local = encode_band_fills(mesh, part_.band(rank_));
    const std::vector<std::string> all = coll_.allgather(local);
    for (int r = 0; r < part_.ranks(); ++r) {
      if (r == rank_) continue;
      decode_band_fills(mesh, part_.band(r), all[static_cast<size_t>(r)]);
    }
  }

 private:
  const RankPartition& part_;
  int rank_;
  Collectives& coll_;
};

}  // namespace

DistProtocol::DistProtocol(PramMeshSimulator& sim, const RankPartition& part,
                           int rank, bool validate)
    : mesh_(sim.mesh()),
      placement_(sim.placement()),
      sort_opts_{sim.config().sort_mode},
      oracle_(sim.mesh(), sim.placement(), SortOptions{sim.config().sort_mode}),
      part_(part),
      rank_(rank),
      validate_(validate) {
  const int k = placement_.map().params().k();
  owned_regions_.resize(static_cast<size_t>(k) + 1);
  for (int level = 1; level <= k; ++level) {
    std::set<std::tuple<int, int, int, int>> seen;
    for (const PageInfo& page : placement_.pages(level)) {
      const Region& g = page.region;
      if (part_.owner_of_region(g) != rank_) continue;
      if (seen.insert({g.r0(), g.c0(), g.rows(), g.cols()}).second) {
        owned_regions_[static_cast<size_t>(level)].push_back(g);
      }
    }
  }
}

void DistProtocol::replicate_buffers(Collectives& coll) {
  if (part_.ranks() == 1) return;
  const std::string local = encode_band_buffers(mesh_, part_.band(rank_));
  const std::vector<std::string> all = coll.allgather(local);
  for (int r = 0; r < part_.ranks(); ++r) {
    if (r == rank_) continue;
    decode_band_buffers(mesh_, part_.band(r), all[static_cast<size_t>(r)]);
  }
}

u64 DistProtocol::buffers_digest() {
  std::string bytes;
  ByteWriter w(bytes);
  for (i64 node = 0; node < mesh_.size(); ++node) {
    const auto& b = mesh_.buf(static_cast<i32>(node));
    w.put_u32(static_cast<u32>(b.size()));
    for (const Packet& p : b) put_packet(w, p);
  }
  return fnv1a64(bytes);
}

std::vector<i64> DistProtocol::execute(
    const std::vector<AccessRequest>& requests, i64 timestamp,
    StepStats* stats, Collectives& coll) {
  StepStats local;
  StepStats& st = stats != nullptr ? *stats : local;
  const fault::FaultPlan* plan = mesh_.fault_plan();
  std::vector<i64> results;
  if (plan != nullptr && plan->affects_routing()) {
    results = execute_replicated(requests, timestamp, st, coll);
  } else {
    results = execute_partitioned(requests, timestamp, st, coll);
  }
  // Bit-identity tripwire: every rank must have produced the same results
  // and the same step charge. O(n) hash per step, runs in every mode.
  std::string digest;
  ByteWriter w(digest);
  for (const i64 v : results) w.put_i64(v);
  w.put_i64(st.total_steps);
  coll.check_uniform(fnv1a64(digest), "step results");
  return results;
}

std::vector<i64> DistProtocol::execute_replicated(
    const std::vector<AccessRequest>& requests, i64 timestamp, StepStats& st,
    Collectives& coll) {
  FillShard shard(part_, rank_, coll);
  oracle_.set_apply_shard(&shard);
  std::vector<i64> results;
  try {
    results = oracle_.execute(requests, timestamp, &st);
  } catch (...) {
    oracle_.set_apply_shard(nullptr);
    throw;
  }
  oracle_.set_apply_shard(nullptr);
  return results;
}

std::vector<i64> DistProtocol::execute_partitioned(
    const std::vector<AccessRequest>& requests, i64 timestamp, StepStats& st,
    Collectives& coll) {
  const HmosParams& params = placement_.map().params();
  const int k = params.k();
  const i64 n = mesh_.size();
  const RankBand& band = part_.band(rank_);
  const Region whole = mesh_.whole();
  MP_REQUIRE(static_cast<i64>(requests.size()) == n,
             "requests size " << requests.size() << " != mesh size " << n);
  MP_REQUIRE(mesh_.total_packets(whole) == 0,
             "mesh buffers must be empty before an access step");

  // EREW: replicated check, every rank validates the same request vector.
  {
    std::set<i64> vars;
    for (const AccessRequest& r : requests) {
      if (r.var < 0) continue;
      MP_REQUIRE(r.var < params.num_vars(), "variable " << r.var);
      MP_REQUIRE(vars.insert(r.var).second,
                 "EREW violation: variable " << r.var
                                             << " requested twice in a step");
    }
  }

  st = StepStats{};

  const fault::FaultPlan* plan = mesh_.fault_plan();
  std::vector<char> request_ok;
  if (plan != nullptr) {
    MP_ASSERT(!plan->affects_routing() && !plan->has_dead_nodes(),
              "partitioned mode requires a module-only fault plan");
    mesh_.set_fault_now(timestamp);
    mesh_.fault_tally().reset();
    st.fault.dead_nodes = plan->dead_node_count();
    st.fault.dead_modules = plan->dead_module_count();
    request_ok.assign(static_cast<size_t>(n), 1);
  }

  // ---- Copy selection: replicated (touches no copy store) ----------------
  std::vector<i64> request_vars(static_cast<size_t>(n), -1);
  for (i64 node = 0; node < n; ++node) {
    request_vars[static_cast<size_t>(node)] =
        requests[static_cast<size_t>(node)].var;
  }
  Culling culling(mesh_, placement_, sort_opts_);
  std::vector<std::vector<i64>> selections;
  {
    telemetry::Span culling_span(telemetry::Cat::Phase, kCullingRun);
    selections = culling.run(request_vars, &st.culling,
                             plan != nullptr ? &request_ok : nullptr);
    st.culling_steps = st.culling.steps;
    culling_span.set_steps(st.culling_steps);
  }
  st.fault.copies_lost += st.culling.copies_lost;
  st.fault.requests_degraded += st.culling.requests_degraded;
  st.fault.requests_failed += st.culling.requests_failed;

  // ---- Packet generation: owned nodes only -------------------------------
  i64 local_packets = 0;
  {
    telemetry::Span gen_span(telemetry::Cat::Phase, kGenPackets);
    for (i64 node = band.node_begin; node < band.node_end; ++node) {
      const AccessRequest& req = requests[static_cast<size_t>(node)];
      if (req.var < 0) continue;
      for (const i64 code : selections[static_cast<size_t>(node)]) {
        Packet p;
        p.var = req.var;
        p.copy = static_cast<u64>(req.var) *
                     static_cast<u64>(params.redundancy()) +
                 static_cast<u64>(code);
        p.origin = static_cast<i32>(node);
        p.op = req.op;
        p.value = req.value;
        mesh_.buf(static_cast<i32>(node)).push_back(p);
        ++local_packets;
      }
    }
  }
  st.packets = coll.allreduce_sum(local_packets);

  // ---- Forward stages k+1 .. 2 -------------------------------------------
  for (int stage = k + 1; stage >= 2; --stage) {
    telemetry::Span stage_span(telemetry::Cat::Stage, kForwardStage, stage);
    i64 stage_steps = 0;
    if (stage == k + 1) {
      // The whole-mesh sort needs every packet: replicate the raw buffers,
      // key/sort/rank identically on every rank (deterministic kernels),
      // then drop back to the owned band and route distributed.
      replicate_buffers(coll);
      for (RegionCursor cur = mesh_.cursor(whole); cur.valid();
           cur.advance()) {
        for (Packet& p : mesh_.buf(cur.id())) {
          p.key = static_cast<u64>(placement_.page_at(p.copy, k));
        }
      }
      i64 steps = sort_region(mesh_, whole, sort_opts_);
      steps += rank_within_groups(mesh_, whole);
      if (validate_) coll.check_uniform(buffers_digest(), "post-sort buffers");
      for (int r = 0; r < part_.ranks(); ++r) {
        if (r == rank_) continue;
        const RankBand& other = part_.band(r);
        mesh_.clear_buffers(Region(other.row_begin, 0, other.rows(),
                                   mesh_.cols()));
      }
      const auto& pages = placement_.pages(k);
      const Region band_region(band.row_begin, 0, band.rows(), mesh_.cols());
      for (RegionCursor cur(band_region, mesh_.cols()); cur.valid();
           cur.advance()) {
        for (Packet& p : mesh_.buf(cur.id())) {
          const Region& sub = pages[static_cast<size_t>(p.key)].region;
          p.dest = mesh_.node_id(
              sub.at_snake(static_cast<i64>(p.rank) % sub.size()));
        }
      }
      const DistRouteStats rs =
          dist_route_whole(mesh_, part_, rank_, coll, validate_);
      boundary_hops_ += rs.boundary_hops;
      boundary_bytes_ += rs.boundary_bytes;
      steps += rs.steps;
      for (RegionCursor cur(band_region, mesh_.cols()); cur.valid();
           cur.advance()) {
        const i32 id = cur.id();
        for (Packet& p : mesh_.buf(id)) p.push_trail(id);
      }
      // sort/rank are replicated and the distributed route is lockstep, so
      // the charge is already identical on every rank — no reduce needed.
      stage_steps = steps;
    } else {
      i64 local_max = 0;
      for (const Region& g : owned_regions_[static_cast<size_t>(stage)]) {
        local_max = std::max(local_max, oracle_.distribute_stage(g, stage - 1));
      }
      stage_steps = coll.allreduce_max(local_max);
    }
    st.forward_stage_steps.push_back(stage_steps);
    st.forward_steps += stage_steps;
    stage_span.set_steps(stage_steps);
  }

  // ---- Stage 1: deliver and access ----------------------------------------
  {
    telemetry::Span deliver_span(telemetry::Cat::Stage, kDeliverStage, 1);
    i64 local_max = 0;
    for (const Region& g : owned_regions_[1]) {
      for (RegionCursor cur = mesh_.cursor(g); cur.valid(); cur.advance()) {
        for (Packet& p : mesh_.buf(cur.id())) {
          p.dest = mesh_.node_id(placement_.locate(p.copy).node);
        }
      }
      local_max = std::max(local_max, route_greedy(mesh_, g).steps);
    }
    const i64 steps = coll.allreduce_max(local_max);
    st.forward_stage_steps.push_back(steps);
    st.forward_steps += steps;
    deliver_span.set_steps(steps);
  }
  {
    telemetry::Span apply_span(telemetry::Cat::Phase, kApplyAccess);
    const bool count_touches = telemetry::sampling_on();
    for (i64 node = band.node_begin; node < band.node_end; ++node) {
      auto& store = mesh_.store(static_cast<i32>(node));
      auto& b = mesh_.buf(static_cast<i32>(node));
      if (count_touches && !b.empty()) {
        mesh_.counters().add_copies_touched(node, static_cast<i64>(b.size()));
      }
      for (Packet& p : b) {
        if (p.op == Op::Write) {
          store[p.copy] = CopySlot{p.value, timestamp};
        } else {
          const CopySlot* slot = store.find(p.copy);
          if (slot != nullptr) {
            p.value = slot->value;
            p.timestamp = slot->timestamp;
          } else {
            p.value = 0;
            p.timestamp = -1;
          }
        }
      }
    }
  }

  // ---- Return journey -----------------------------------------------------
  for (int stage = 1; stage <= k; ++stage) {
    telemetry::Span stage_span(telemetry::Cat::Stage, kReturnStage, stage);
    const int trail_idx = k - stage;
    i64 local_max = 0;
    for (const Region& g : owned_regions_[static_cast<size_t>(stage)]) {
      bool any = false;
      for (RegionCursor cur = mesh_.cursor(g); cur.valid(); cur.advance()) {
        for (Packet& p : mesh_.buf(cur.id())) {
          MP_ASSERT(p.trail_len == k, "packet with incomplete trail");
          p.dest = p.trail[static_cast<size_t>(trail_idx)];
          any = true;
        }
      }
      if (any) {
        local_max = std::max(local_max, route_greedy(mesh_, g).steps);
      }
    }
    const i64 steps = coll.allreduce_max(local_max);
    st.return_steps += steps;
    stage_span.set_steps(steps);
  }
  {
    telemetry::Span stage_span(telemetry::Cat::Stage, kReturnStage, k + 1);
    for (i64 node = band.node_begin; node < band.node_end; ++node) {
      for (Packet& p : mesh_.buf(static_cast<i32>(node))) p.dest = p.origin;
    }
    const DistRouteStats rs =
        dist_route_whole(mesh_, part_, rank_, coll, validate_);
    boundary_hops_ += rs.boundary_hops;
    boundary_bytes_ += rs.boundary_bytes;
    st.return_steps += rs.steps;
    stage_span.set_steps(rs.steps);
  }

  // ---- Collect results ----------------------------------------------------
  telemetry::Span collect_span(telemetry::Cat::Phase, kCollect);
  std::vector<i64> results(static_cast<size_t>(n), 0);
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    auto& b = mesh_.buf(static_cast<i32>(node));
    const AccessRequest& req = requests[static_cast<size_t>(node)];
    i64 best_ts = -2;
    i64 best_val = 0;
    i64 got = 0;
    for (const Packet& p : b) {
      MP_ASSERT(p.origin == node && p.var == req.var,
                "packet returned to the wrong origin");
      ++got;
      if (p.op == Op::Read && p.timestamp > best_ts) {
        best_ts = p.timestamp;
        best_val = p.value;
      }
    }
    if (req.var >= 0) {
      if (request_ok.empty() || request_ok[static_cast<size_t>(node)] != 0) {
        MP_ASSERT(
            got == static_cast<i64>(
                       selections[static_cast<size_t>(node)].size()),
            "lost packets: " << got << " of "
                             << selections[static_cast<size_t>(node)].size()
                             << " returned");
        if (req.op == Op::Read) {
          results[static_cast<size_t>(node)] = best_val;
        }
      } else {
        MP_ASSERT(got == 0, "failed request received " << got << " packets");
      }
    }
    b.clear();
  }
  if (part_.ranks() > 1) {
    std::string local;
    ByteWriter w(local);
    for (i64 node = band.node_begin; node < band.node_end; ++node) {
      w.put_i64(results[static_cast<size_t>(node)]);
    }
    const std::vector<std::string> all = coll.allgather(local);
    for (int r = 0; r < part_.ranks(); ++r) {
      if (r == rank_) continue;
      const RankBand& ob = part_.band(r);
      ByteReader rd(all[static_cast<size_t>(r)], "collect slices");
      for (i64 node = ob.node_begin; node < ob.node_end; ++node) {
        results[static_cast<size_t>(node)] = rd.get_i64();
      }
      rd.expect_done();
    }
  }

  if (plan != nullptr) {
    mesh_.fault_tally().drain_into(st.fault);
    st.request_ok = std::move(request_ok);
  }
  st.total_steps = st.culling_steps + st.forward_steps + st.return_steps;
  return results;
}

}  // namespace meshpram::dist
