// The worker-process main loop (DESIGN.md §15.2).
//
// tools/dist_worker is a thin argv shim around run_worker: connect to the
// hub, attach as a rank, then serve the coordinator's control stream —
// Init (restore a snapshot, shed foreign bands), Step (run the unchanged
// DistProtocol over the socket transport), BandsReq (ship the owned band
// state back), Abort (discard the in-flight step, acknowledge), Shutdown.
//
// Failure discipline: any error that is not a clean shutdown poisons the
// local replica mid-step, so the worker drops its simulator, reports Failed
// (when the link still works) and waits for the next Init — the supervisor's
// recovery then restores every rank from the last checkpoint. The worker
// never tries to patch its own state; restore-and-replay is the only path
// back, which is what makes recovery bit-identical.
#pragma once

#include "dist/socket.hpp"

namespace meshpram::dist {

/// Runs the worker loop until Shutdown (returns 0) or a lost coordinator
/// link (returns 1). Installs a serial ScopedPool for its whole lifetime, so
/// every kernel is bit-identical to the oracle's thread-count-invariant runs.
int run_worker(const WorkerOptions& opts);

}  // namespace meshpram::dist
