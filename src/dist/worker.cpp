#include "dist/worker.hpp"

#include <memory>
#include <utility>

#include "dist/collectives.hpp"
#include "dist/partition.hpp"
#include "dist/protocol.hpp"
#include "serve/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::dist {

namespace {

/// Everything one Init builds; dropped wholesale on any failure.
struct Replica {
  std::unique_ptr<PramMeshSimulator> sim;
  std::unique_ptr<RankPartition> part;
  std::unique_ptr<DistProtocol> proto;
  WaitStats wait;
};

std::unique_ptr<Replica> build_replica(const InitMsg& msg, int rank,
                                       int ranks) {
  auto rep = std::make_unique<Replica>();
  rep->sim = serve::restore_simulator(msg.snapshot);
  const SimConfig& cfg = rep->sim->config();
  rep->part = std::make_unique<RankPartition>(rep->sim->placement(),
                                              cfg.mesh_rows, cfg.mesh_cols,
                                              ranks);
  drop_foreign_stores(rep->sim->mesh(), *rep->part, rank);
  rep->proto = std::make_unique<DistProtocol>(*rep->sim, *rep->part, rank,
                                              msg.validate);
  return rep;
}

}  // namespace

int run_worker(const WorkerOptions& opts) {
  WorkerTransport transport(opts);
  // Serial kernels for the worker's whole life: thread-count invariance
  // makes them bit-identical to the oracle at any pool size.
  ThreadPool pool(1);
  ScopedPool guard(pool);

  std::unique_ptr<Replica> rep;
  for (;;) {
    std::string body;
    try {
      body = transport.recv_ctrl();
    } catch (const ShutdownSignal&) {
      return 1;  // coordinator link gone; nothing left to serve
    }
    MP_REQUIRE(!body.empty(), "empty control frame");
    const CtrlOp op = static_cast<CtrlOp>(body[0]);
    ByteReader r(std::string_view(body).substr(1), "control frame");
    try {
      switch (op) {
        case CtrlOp::Init: {
          const InitMsg msg = decode_init(r);
          telemetry::set_enabled(msg.telemetry);
          rep.reset();  // free the old replica before building the new one
          rep = build_replica(msg, opts.rank, opts.ranks);
          transport.set_epoch(msg.epoch);
          transport.clear_inboxes();
          transport.send_ctrl(
              encode_epoch_ctrl(CtrlOp::InitAck, msg.epoch));
          break;
        }
        case CtrlOp::Step: {
          const StepMsg msg = decode_step(r);
          MP_REQUIRE(rep != nullptr, "Step before Init");
          telemetry::begin_frame();
          Collectives coll(transport);
          StepStats st;
          rep->proto->execute(msg.requests, msg.timestamp, &st, coll);
          rep->wait += coll.wait();
          break;
        }
        case CtrlOp::BandsReq: {
          MP_REQUIRE(rep != nullptr, "BandsReq before Init");
          const RankBand& band = rep->part->band(opts.rank);
          BandsMsg msg;
          msg.stores = encode_band_stores(rep->sim->mesh(), band);
          msg.counters =
              encode_band_counters(rep->sim->mesh().counters(), band);
          msg.boundary_hops = rep->proto->boundary_hops();
          msg.boundary_bytes = rep->proto->boundary_bytes();
          msg.wait_calls = rep->wait.calls;
          msg.wait_ms = rep->wait.wait_ms;
          transport.send_ctrl(encode_bands_reply(msg));
          break;
        }
        case CtrlOp::Abort: {
          const u32 epoch = r.get_u32();
          rep.reset();  // recovery follows; the replica is stale either way
          transport.set_epoch(epoch);
          transport.clear_inboxes();
          transport.send_ctrl(encode_epoch_ctrl(CtrlOp::AbortAck, epoch));
          break;
        }
        case CtrlOp::Shutdown:
          return 0;
        default:
          MP_REQUIRE(false, "unexpected control op "
                                << static_cast<int>(op) << " at rank "
                                << opts.rank);
      }
    } catch (const AbortSignal& abort) {
      // The transport already adopted the new epoch and cleared the data
      // inboxes before throwing; the replica died mid-step.
      rep.reset();
      transport.send_ctrl(encode_epoch_ctrl(CtrlOp::AbortAck, abort.epoch));
    } catch (const ShutdownSignal&) {
      return 0;
    } catch (const std::exception& e) {
      // Self-detected failure (recv deadline, protocol divergence, bad
      // snapshot, ...): shed state, tell the coordinator, await Init.
      rep.reset();
      try {
        transport.send_ctrl(encode_failed(e.what()));
      } catch (const ShutdownSignal&) {
        return 1;  // link gone too — nothing more to report
      }
    }
  }
}

}  // namespace meshpram::dist
