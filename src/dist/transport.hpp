// Pluggable point-to-point message transport for the distributed machine.
//
// The SPMD protocol (protocol.hpp) and the collectives (collectives.hpp)
// speak only this interface: ordered, reliable byte frames between ranks.
// The in-process ChannelTransport (channel.hpp) ships first; a socket or MPI
// transport needs exactly these four operations — non-blocking FIFO send,
// blocking receive, and the rank/size of the communicator — so it can drop
// in without touching the protocol layer.
#pragma once

#include <stdexcept>
#include <string>

#include "util/math.hpp"

namespace meshpram::dist {

/// Transport-layer failure: a peer died, the hub was shut down, or a frame
/// could not be moved. Distinguished from protocol errors so the driver can
/// tell a primary failure from the secondary wakeups it causes.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

struct TransportStats {
  i64 messages_sent = 0;
  i64 bytes_sent = 0;
  i64 messages_received = 0;
  i64 bytes_received = 0;

  TransportStats& operator+=(const TransportStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    return *this;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int ranks() const = 0;

  /// Enqueues `frame` for `to`. Non-blocking; frames between a fixed
  /// (sender, receiver) pair arrive in send order.
  virtual void send(int to, std::string frame) = 0;

  /// Blocks until a frame from `from` is available and returns it. Throws
  /// TransportError if the transport is shut down while waiting.
  virtual std::string recv(int from) = 0;

  /// Cumulative traffic through this endpoint. Only the owning rank thread
  /// may be calling send/recv when this is read.
  virtual const TransportStats& stats() const = 0;
};

}  // namespace meshpram::dist
