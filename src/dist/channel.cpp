#include "dist/channel.hpp"

#include "util/error.hpp"

namespace meshpram::dist {

ChannelHub::ChannelHub(int ranks) : ranks_(ranks) {
  MP_REQUIRE(ranks >= 1, "channel hub rank count " << ranks);
  pipes_.reserve(static_cast<size_t>(ranks) * static_cast<size_t>(ranks));
  for (int i = 0; i < ranks * ranks; ++i) {
    pipes_.push_back(std::make_unique<Pipe>());
  }
}

void ChannelHub::send(int from, int to, std::string frame) {
  Pipe& p = pipe(from, to);
  {
    std::lock_guard<std::mutex> lock(p.mu);
    p.frames.push_back(std::move(frame));
  }
  p.cv.notify_one();
}

std::string ChannelHub::recv(int from, int to) {
  Pipe& p = pipe(from, to);
  std::unique_lock<std::mutex> lock(p.mu);
  p.cv.wait(lock, [&] { return !p.frames.empty() || killed(); });
  if (p.frames.empty()) {
    throw TransportError("channel hub shut down while waiting for rank " +
                         std::to_string(from));
  }
  std::string frame = std::move(p.frames.front());
  p.frames.pop_front();
  return frame;
}

void ChannelHub::kill() {
  killed_.store(true, std::memory_order_release);
  for (auto& p : pipes_) {
    // Take the lock so a receiver between its predicate check and its wait
    // cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(p->mu);
    p->cv.notify_all();
  }
}

}  // namespace meshpram::dist
