#include "dist/route.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "dist/wire.hpp"
#include "mesh/arena.hpp"
#include "routing/greedy.hpp"
#include "routing/xy.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace meshpram::dist {

namespace {

/// Queues at most this deep scan into stack buffers (mirrors greedy.cpp).
constexpr i32 kSmallScan = 32;

const telemetry::Label kRouteDist = telemetry::intern("route.dist");

struct SweepState {
  Mesh& mesh;
  RouteArena& ar;
  Region band_region;
  int row_begin;
  int row_end;
  bool count_congestion;
  std::vector<BoundaryHop> north_out;
  std::vector<BoundaryHop> south_out;
};

/// Forward sweep over the band: identical per-node decisions to
/// greedy.cpp's forward_sweep; the only difference is that a vertical hop
/// leaving the band becomes a BoundaryHop instead of a local lane deposit.
void forward_sweep(SweepState& st) {
  RouteArena& ar = st.ar;
  std::vector<unsigned char> dir_heap;
  std::vector<u16> rem_heap;
  unsigned char dir_buf[kSmallScan];
  u16 rem_buf[kSmallScan];
  for (RegionCursor cur(st.band_region, st.mesh.cols()); cur.valid();
       cur.advance()) {
    const i64 pos = cur.pos();
    const i32 cnt = ar.count(pos);
    if (cnt == 0) continue;
    TransitRec* q = ar.queue(pos);
    const Coord at = cur.coord();
    unsigned char* dirs = dir_buf;
    u16* rems = rem_buf;
    if (cnt > kSmallScan) {
      if (dir_heap.size() < static_cast<size_t>(cnt)) {
        dir_heap.resize(static_cast<size_t>(cnt));
        rem_heap.resize(static_cast<size_t>(cnt));
      }
      dirs = dir_heap.data();
      rems = rem_heap.data();
    }
    simd::transit_scan(q, cnt, static_cast<i16>(at.r), static_cast<i16>(at.c),
                       dirs, rems);
    std::array<i32, kNumDirs> best;
    best.fill(-1);
    std::array<i64, kNumDirs> best_dist{};
    for (i32 i = 0; i < cnt; ++i) {
      const i64 rem = rems[i];
      MP_ASSERT(rem > 0, "arrived packet still in transit");
      const auto di = static_cast<size_t>(dirs[i]);
      if (best[di] < 0 || rem > best_dist[di]) {
        best[di] = i;
        best_dist[di] = rem;
      }
    }
    i64 moves = 0;
    for (int di = 0; di < kNumDirs; ++di) {
      const i32 idx = best[static_cast<size_t>(di)];
      if (idx < 0) continue;
      const TransitRec rec = q[idx];
      q[idx].handle = RouteArena::kInvalidHandle;
      const Coord to = step_toward(at, static_cast<Dir>(di));
      if (to.r < st.row_begin) {
        st.north_out.push_back(
            {to.c, rec.dest_r, rec.dest_c, ar.payload[rec.handle]});
      } else if (to.r >= st.row_end) {
        st.south_out.push_back(
            {to.c, rec.dest_r, rec.dest_c, ar.payload[rec.handle]});
      } else {
        const i64 dpos = st.band_region.snake_of(to);
        ar.lane_rec(dpos, kLaneOfMove[di]) = rec;
        ar.lane_flags(dpos)[kLaneOfMove[di]] = 1;
      }
      ++moves;
    }
    if (moves > 0) {
      i32 w = 0;
      for (i32 i = 0; i < cnt; ++i) {
        if (q[i].handle != RouteArena::kInvalidHandle) q[w++] = q[i];
      }
      ar.count(pos) = w;
      if (st.count_congestion) {
        st.mesh.counters().add_forwarded(cur.id(), moves);
      }
    }
  }
}

/// Absorb sweep: canonical lane drain per node. The drain order follows the
/// *global* row parity — the oracle routes the whole mesh (region r0 = 0),
/// so its (at.r - r0) parity is absolute; a band starting on an odd row must
/// not flip it.
i64 absorb_sweep(SweepState& st) {
  RouteArena& ar = st.ar;
  i64 delivered = 0;
  for (RegionCursor cur(st.band_region, st.mesh.cols()); cur.valid();
       cur.advance()) {
    const i64 pos = cur.pos();
    unsigned char* flags = ar.lane_flags(pos);
    u32 any;
    std::memcpy(&any, flags, sizeof(any));
    if (any == 0) continue;
    const Coord at = cur.coord();
    const bool east_row = (at.r & 1) == 0;
    const int* order = east_row ? kLaneOrderEast : kLaneOrderWest;
    const i32 id = cur.id();
    for (int oi = 0; oi < kNumDirs; ++oi) {
      const int lane = order[oi];
      if (!flags[lane]) continue;
      flags[lane] = 0;
      const TransitRec rec = ar.lane_rec(pos, lane);
      if (rec.dest_r == at.r && rec.dest_c == at.c) {
        st.mesh.buf(id).push_back(ar.payload[rec.handle]);
        ++delivered;
      } else {
        if (ar.count(pos) >= ar.cap()) ar.grow(ar.cap() * 2);
        ar.queue(pos)[ar.count(pos)++] = rec;
      }
    }
    if (st.count_congestion) {
      st.mesh.counters().observe_queue(id, ar.count(pos));
    }
  }
  return delivered;
}

/// Deposits an imported boundary frame into the incoming lanes of the
/// receiving edge row. `lane` is disjoint from every locally writable lane
/// at that row (a local deposit into it would have required a sender outside
/// the band), so imports and local forwards never collide even in a
/// one-row band.
void import_boundary(SweepState& st, const std::vector<BoundaryHop>& hops,
                     int boundary_row, int lane) {
  RouteArena& ar = st.ar;
  for (const BoundaryHop& h : hops) {
    const i64 pos = st.band_region.snake_of({boundary_row, h.col});
    const auto handle = static_cast<u32>(ar.payload.size());
    ar.payload.push_back(h.payload);
    ar.lane_rec(pos, lane) = TransitRec{handle, h.dest_r, h.dest_c};
    ar.lane_flags(pos)[lane] = 1;
  }
}

}  // namespace

DistRouteStats dist_route_whole(Mesh& mesh, const RankPartition& part,
                                int rank, Collectives& coll, bool validate) {
  telemetry::Span span(telemetry::Cat::Phase, kRouteDist, rank);
  const bool count_congestion = telemetry::sampling_on();
  DistRouteStats stats;

  const RankBand& band = part.band(rank);
  const Region band_region(band.row_begin, 0, band.rows(), mesh.cols());

  RouteArena* const arena = mesh.route_arenas().acquire();
  struct Lease {
    Mesh& mesh;
    RouteArena* arena;
    ~Lease() { mesh.route_arenas().release(arena); }
  } lease{mesh, arena};
  RouteArena& ar = *arena;
  // Row-major arena layout: the band is walked once per sweep anyway, and
  // position==slot keeps the lane addressing trivial for imports.
  ar.reset(band_region, NodeOrderKind::RowMajor);

  MP_REQUIRE(mesh.rows() <= 32767 && mesh.cols() <= 32767,
             "mesh too large for 16-bit transit coordinates");
  i64 local_in_flight = 0;
  i64 max_depth = 0;
  ar.frontier.clear();
  for (RegionCursor cur(band_region, mesh.cols()); cur.valid();
       cur.advance()) {
    const Coord x = cur.coord();
    const i32 id = cur.id();
    auto& b = mesh.buf(id);
    auto keep = b.begin();
    for (Packet& p : b) {
      MP_REQUIRE(p.dest >= 0 && p.dest < mesh.size(),
                 "packet without destination");
      const Coord d = mesh.coord(p.dest);
      if (p.dest == id) {
        *keep++ = p;
      } else {
        ar.setup_rec.push_back(TransitRec{static_cast<u32>(ar.payload.size()),
                                          static_cast<i16>(d.r),
                                          static_cast<i16>(d.c)});
        ar.setup_pos.push_back(cur.pos());
        ar.payload.push_back(p);
        const i32 depth = ++ar.count(cur.pos());
        if (depth == 1) {
          ar.frontier.push_back({static_cast<i32>(cur.pos()),
                                 static_cast<i16>(x.r),
                                 static_cast<i16>(x.c)});
        }
        max_depth = std::max<i64>(max_depth, depth);
        ++local_in_flight;
      }
    }
    b.erase(keep, b.end());
  }

  i64 in_flight = coll.allreduce_sum(local_in_flight);
  if (in_flight == 0) {
    span.set_steps(0);
    return stats;
  }

  // Even a rank with no local packets must lay out its lanes and join every
  // sweep: imports may land on it from the first step on.
  ar.layout(std::max<i64>(kNumDirs, max_depth + route_initial_headroom()));
  for (const ActiveNode& an : ar.frontier) ar.count(an.pos) = 0;
  for (size_t i = 0; i < ar.setup_rec.size(); ++i) {
    const i64 pos = ar.setup_pos[i];
    ar.queue(pos)[ar.count(pos)++] = ar.setup_rec[i];
  }

  SweepState st{mesh,          ar,
                band_region,   band.row_begin,
                band.row_end,  count_congestion,
                {},            {}};
  const bool has_north = rank > 0;
  const bool has_south = rank + 1 < part.ranks();
  Transport& tp = coll.transport();

  while (in_flight > 0) {
    ++stats.steps;
    st.north_out.clear();
    st.south_out.clear();
    forward_sweep(st);
    // Unconditional exchange every sweep (possibly empty frames): sends and
    // receives stay matched without any out-of-band agreement, and sends are
    // non-blocking, so send-both-then-receive-both cannot deadlock.
    if (has_north) {
      std::string frame = encode_boundary(st.north_out, validate);
      stats.boundary_hops += static_cast<i64>(st.north_out.size());
      stats.boundary_bytes += static_cast<i64>(frame.size());
      tp.send(rank - 1, std::move(frame));
    }
    if (has_south) {
      std::string frame = encode_boundary(st.south_out, validate);
      stats.boundary_hops += static_cast<i64>(st.south_out.size());
      stats.boundary_bytes += static_cast<i64>(frame.size());
      tp.send(rank + 1, std::move(frame));
    }
    if (has_north) {
      import_boundary(st, decode_boundary(tp.recv(rank - 1)), band.row_begin,
                      kLaneOfMove[static_cast<int>(Dir::South)]);
    }
    if (has_south) {
      import_boundary(st, decode_boundary(tp.recv(rank + 1)), band.row_end - 1,
                      kLaneOfMove[static_cast<int>(Dir::North)]);
    }
    const i64 delivered = coll.allreduce_sum(absorb_sweep(st));
    in_flight -= delivered;
    if (validate) {
      coll.check_uniform(static_cast<u64>(in_flight) * 0x9e3779b97f4a7c15ULL ^
                             static_cast<u64>(stats.steps),
                         "route sweep");
    }
  }

  span.set_steps(stats.steps);
  return stats;
}

}  // namespace meshpram::dist
