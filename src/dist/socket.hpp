// Socket transports for multi-process ranks (DESIGN.md §15).
//
// Topology is a hub-and-spoke star matching the collectives (collectives.hpp
// already routes every collective through rank 0): the coordinator process
// (rank 0) owns a SocketHub with one unix-domain or TCP listener; each worker
// process holds exactly one connection to the hub and reaches every peer
// through it. Relaying keeps the Transport FIFO contract for free — the
// (a -> hub -> b) path is fixed and the hub forwards each connection's frames
// in arrival order — and gives one chokepoint where liveness, epochs and the
// wire-fault injector all live.
//
// Failure handling, bottom-up:
//  * Workers ping the hub (Heartbeat frames) whenever their socket is
//    otherwise idle; the hub marks a peer dead after `peer_deadline_ms` of
//    silence — catching hung processes, not just dead ones.
//  * Every blocking receive (hub and worker side) is bounded by
//    `recv_deadline_ms`; expiry becomes a typed TransportError instead of a
//    permanent block, so a lost frame (crash, drop, partition) always
//    surfaces as an exception the supervisor can recover from.
//  * Data frames carry an epoch. Recovery bumps it, so frames from an
//    aborted step die at the first filter (hub or endpoint) they touch
//    rather than corrupting the replayed stream.
//
// The nonblocking-I/O idioms (partial read/write loops, EINTR/EAGAIN
// handling, FrameBuffer reassembly) mirror serve/net_server.cpp; worker-side
// sockets stay blocking with poll()-bounded waits, like serve/net_client.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/proc_wire.hpp"
#include "dist/transport.hpp"
#include "dist/wire_fault.hpp"
#include "serve/api.hpp"

namespace meshpram::dist {

/// Thrown out of WorkerTransport::recv when the coordinator aborts the
/// in-flight step (recovery). The worker replies AbortAck and awaits Init.
class AbortSignal : public TransportError {
 public:
  explicit AbortSignal(u32 epoch)
      : TransportError("step aborted by coordinator"), epoch(epoch) {}
  u32 epoch;
};

/// Thrown when the coordinator orders a clean exit or its connection closed:
/// the worker process must terminate, not recover.
class ShutdownSignal : public TransportError {
 public:
  explicit ShutdownSignal(const std::string& what) : TransportError(what) {}
};

/// Knobs of the process transport; zero/empty fields resolve from env.
struct SocketConfig {
  /// "unix" | "tcp"; empty consults MESHPRAM_DIST_TRANSPORT (default unix).
  std::string transport;
  /// Worker ping cadence while idle; 0 consults MESHPRAM_DIST_HEARTBEAT_MS
  /// (default 250).
  int heartbeat_ms = 0;
  /// Silence after which the hub declares a peer dead; 0 consults
  /// MESHPRAM_DIST_DEADLINE_MS (default 30000).
  int peer_deadline_ms = 0;
  /// Bound on every blocking in-step receive; 0 consults
  /// MESHPRAM_DIST_RECV_DEADLINE_MS (default 30000).
  int recv_deadline_ms = 0;
  /// Wire-fault injector; merged with MESHPRAM_DIST_FAULT_PLAN when empty.
  WireFaultPlan fault;
};

/// Fills unset fields from the environment (util/env) and validates.
SocketConfig resolve_socket_config(SocketConfig config, int ranks);

/// The coordinator-side message switch: listener + one connection per worker
/// rank + a pump thread that routes frames, tracks liveness and applies the
/// wire-fault plan. All public methods are thread-safe.
class SocketHub {
 public:
  /// Binds the listener and starts the pump. `config` must be resolved.
  SocketHub(int ranks, SocketConfig config);
  ~SocketHub();
  SocketHub(const SocketHub&) = delete;
  SocketHub& operator=(const SocketHub&) = delete;

  int ranks() const { return ranks_; }
  /// Rendezvous address workers dial: "unix:<path>" or "tcp:<host>:<port>".
  const std::string& address() const { return address_; }
  /// Attach secret; workers echo it in Hello.
  u64 token() const { return token_; }
  u32 epoch() const;

  // -- Rank 0 Transport surface (wrapped by HubTransport).
  void send_local(int to, std::string frame);
  std::string recv_local(int from);
  TransportStats stats() const;

  // -- Control plane.
  void send_ctrl(int to, std::string body);
  /// Next Ctrl body from `from` (op byte first). Throws TransportError on
  /// timeout, or on any pending peer failure outside recovery mode.
  std::string recv_ctrl(int from, int timeout_ms);

  bool attached(int rank) const;
  void wait_attached(int rank, int timeout_ms);

  // -- Failure and recovery.
  /// Enters recovery mode: bumps the epoch, clears every inbox, clears the
  /// pending-failure flag and stops converting new failures into exceptions
  /// (the supervisor is now handling them). Returns the new epoch.
  u32 begin_recovery();
  void end_recovery();
  /// Ranks with no live connection ("" reason = never attached).
  std::vector<std::pair<int, std::string>> down_ranks() const;
  /// Severs `rank`'s connection (supervisor gave up on it).
  void detach(int rank);

 private:
  struct Peer {
    int fd = -1;
    serve::FrameBuffer in;
    std::string out;
    size_t out_off = 0;
    std::string down_reason = "never attached";
    std::chrono::steady_clock::time_point last_seen{};
    i64 data_sent = 0;  ///< Data frames this worker delivered (fault kills)
  };
  struct Pending {  ///< accepted, Hello not yet seen
    int fd = -1;
    serve::FrameBuffer in;
  };
  struct Delayed {
    std::chrono::steady_clock::time_point release;
    int to = 0;
    std::string bytes;
  };

  void pump();
  void handle_frame(int rank, const std::string& payload);
  void route_data(const TaggedFrame& f);
  void mark_down_locked(int rank, const std::string& reason);
  void fail_locked(const std::string& diagnosis);
  void queue_to_locked(int rank, std::string bytes);
  void wake_pump();
  void close_all();

  const int ranks_;
  SocketConfig config_;  ///< fault rules are consumed as they fire
  std::string address_;
  std::string unix_path_;  ///< owned rendezvous file (unlinked on close)
  u64 token_ = 0;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Peer> peers_;        ///< index = rank (slot 0 unused)
  std::vector<Pending> pending_;
  std::vector<std::deque<std::string>> inbox_data_;  ///< frames for rank 0
  std::vector<std::deque<std::string>> inbox_ctrl_;
  std::vector<Delayed> delayed_;
  std::vector<i64> pair_count_;  ///< routed Data frames per (from, to)
  u32 epoch_ = 0;
  bool recovering_ = false;
  std::string failure_;  ///< first pending failure diagnosis ("" = healthy)
  bool stop_ = false;
  TransportStats stats_;
  std::thread pump_thread_;
};

/// Rank 0's Transport endpoint over the hub.
class HubTransport final : public Transport {
 public:
  explicit HubTransport(SocketHub& hub) : hub_(hub) {}

  int rank() const override { return 0; }
  int ranks() const override { return hub_.ranks(); }
  void send(int to, std::string frame) override {
    stats_.messages_sent += 1;
    stats_.bytes_sent += static_cast<i64>(frame.size());
    hub_.send_local(to, std::move(frame));
  }
  std::string recv(int from) override {
    std::string frame = hub_.recv_local(from);
    stats_.messages_received += 1;
    stats_.bytes_received += static_cast<i64>(frame.size());
    return frame;
  }
  const TransportStats& stats() const override { return stats_; }

 private:
  SocketHub& hub_;
  TransportStats stats_;
};

struct WorkerOptions {
  std::string address;  ///< hub rendezvous (SocketHub::address format)
  int rank = 0;
  int ranks = 0;
  u64 token = 0;
  int heartbeat_ms = 250;
  int recv_deadline_ms = 30000;
  int connect_attempts = 80;
  int connect_backoff_ms = 25;
};

/// A worker process's Transport endpoint: one blocking socket to the hub
/// with poll()-bounded waits. A dedicated heartbeat thread keeps pinging the
/// hub every `heartbeat_ms` even while the worker thread is deep in compute —
/// busy must not read as dead (a SIGSTOP'd process freezes that thread too,
/// so genuine hangs still trip the hub's deadline). Frame writes are
/// serialized by a mutex so heartbeats never interleave with data frames;
/// the receive side is still owned by the single worker thread.
class WorkerTransport final : public Transport {
 public:
  /// Dials the hub (retry with linear backoff — the coordinator may still be
  /// binding) and attaches with Hello.
  explicit WorkerTransport(const WorkerOptions& opts);
  ~WorkerTransport();

  int rank() const override { return opts_.rank; }
  int ranks() const override { return opts_.ranks; }
  void send(int to, std::string frame) override;
  /// Blocks for a Data frame from `from` under the recv deadline. Throws
  /// AbortSignal / ShutdownSignal when the coordinator interrupts the step,
  /// TransportError on deadline expiry or a lost connection.
  std::string recv(int from) override;
  const TransportStats& stats() const override { return stats_; }

  /// Next Ctrl body from the coordinator; no deadline (an idle worker waits
  /// for its next command indefinitely; a dead coordinator is an EOF).
  std::string recv_ctrl();
  void send_ctrl(std::string body);

  u32 epoch() const { return epoch_; }
  void set_epoch(u32 e) { epoch_ = e; }
  /// Drops every buffered Data frame (stale after an abort).
  void clear_inboxes();

 private:
  /// Writes one whole frame under `send_mu_` — the worker thread and the
  /// heartbeat thread share the socket's write side.
  void write_frame(const std::string& bytes);
  /// Pumps the socket until `until` or until `done` returns true; parses
  /// arriving frames into the inboxes. `until` of time_point::max() waits
  /// forever. Liveness while blocked here is the heartbeat thread's job.
  template <class Done>
  bool pump(std::chrono::steady_clock::time_point until, Done done);
  void dispatch(const std::string& payload);
  /// Consumes a queued Abort/Shutdown, converting it into its signal.
  void raise_pending_ctrl_interrupt();
  bool has_ctrl_interrupt() const;
  void heartbeat_loop();

  WorkerOptions opts_;
  int fd_ = -1;
  serve::FrameBuffer in_;
  std::vector<std::deque<std::string>> inbox_data_;
  std::deque<std::string> inbox_ctrl_;
  u32 epoch_ = 0;
  std::mutex send_mu_;  ///< serializes whole frames onto the socket
  std::chrono::steady_clock::time_point last_send_;  ///< guarded by send_mu_
  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;  ///< guarded by hb_mu_
  TransportStats stats_;
};

}  // namespace meshpram::dist
