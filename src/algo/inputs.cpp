#include "algo/inputs.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram::algo {

const char* graph_family_name(GraphFamily family) {
  switch (family) {
    case GraphFamily::Path: return "path";
    case GraphFamily::Star: return "star";
    case GraphFamily::Grid: return "grid";
    case GraphFamily::Expander: return "expander";
    case GraphFamily::RandomForest: return "forest";
  }
  MP_ASSERT(false, "unknown graph family");
  return "?";
}

GraphInput make_graph(GraphFamily family, i64 n, u64 seed) {
  MP_REQUIRE(n >= 1, "graph needs at least one vertex, got " << n);
  GraphInput g;
  g.n = n;
  Rng rng(seed);
  switch (family) {
    case GraphFamily::Path:
      for (i64 i = 0; i + 1 < n; ++i) g.edges.emplace_back(i, i + 1);
      break;
    case GraphFamily::Star:
      for (i64 i = 1; i < n; ++i) g.edges.emplace_back(0, i);
      break;
    case GraphFamily::Grid: {
      // Row-major grid of width ceil(sqrt n); the last row may be ragged.
      i64 w = 1;
      while (w * w < n) ++w;
      for (i64 i = 0; i < n; ++i) {
        if ((i + 1) % w != 0 && i + 1 < n) g.edges.emplace_back(i, i + 1);
        if (i + w < n) g.edges.emplace_back(i, i + w);
      }
      break;
    }
    case GraphFamily::Expander:
      // Cycle for connectivity plus n random chords: constant average
      // degree, logarithmic diameter with overwhelming probability. A
      // single vertex has no cycle (a self-loop is not an edge).
      if (n > 1) {
        for (i64 i = 0; i < n; ++i) g.edges.emplace_back(i, (i + 1) % n);
      }
      if (n > 2) {
        for (i64 i = 0; i < n; ++i) {
          const i64 u = static_cast<i64>(rng.below(static_cast<u64>(n)));
          i64 v = static_cast<i64>(rng.below(static_cast<u64>(n - 1)));
          if (v >= u) ++v;  // uniform over vertices != u
          g.edges.emplace_back(u, v);
        }
      }
      break;
    case GraphFamily::RandomForest:
      // Random attachment; roughly one vertex in eight starts a new tree,
      // so the instance has many components of varying depth.
      for (i64 v = 1; v < n; ++v) {
        if (rng.below(8) == 0) continue;  // new root
        g.edges.emplace_back(v, static_cast<i64>(rng.below(static_cast<u64>(v))));
      }
      break;
  }
  return g;
}

std::vector<i64> reference_components(const GraphInput& graph) {
  std::vector<i64> parent(static_cast<size_t>(graph.n));
  std::iota(parent.begin(), parent.end(), i64{0});
  auto find = [&](i64 x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const auto& [u, v] : graph.edges) {
    const i64 ru = find(u);
    const i64 rv = find(v);
    if (ru != rv) parent[static_cast<size_t>(std::max(ru, rv))] = std::min(ru, rv);
  }
  std::vector<i64> label(static_cast<size_t>(graph.n));
  // Roots are always the minimum vertex of their component because unions
  // hang the larger root below the smaller one.
  for (i64 v = 0; v < graph.n; ++v) label[static_cast<size_t>(v)] = find(v);
  return label;
}

PartitionInput make_partition(i64 n, i64 initial_blocks, u64 seed) {
  MP_REQUIRE(n >= 1, "partition over empty ground set");
  MP_REQUIRE(initial_blocks >= 1, "need at least one initial block");
  Rng rng(seed);
  PartitionInput p;
  p.n = n;
  p.succ.resize(static_cast<size_t>(n));
  p.block.resize(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    p.succ[static_cast<size_t>(i)] =
        static_cast<i64>(rng.below(static_cast<u64>(n)));
    p.block[static_cast<size_t>(i)] =
        static_cast<i64>(rng.below(static_cast<u64>(initial_blocks)));
  }
  return p;
}

namespace {

/// One host refinement sweep: new label of i is the least j with the same
/// (block, successor block) signature — the same leader rule the PRAM
/// program's priority-CRCW write implements.
std::vector<i64> refine_once(const PartitionInput& input,
                             const std::vector<i64>& block) {
  const i64 n = input.n;
  std::vector<i64> out(static_cast<size_t>(n));
  // leader[signature] = min index; signatures keyed by (block, succ block)
  // pairs, resolved with a sort over indices for O(n log n) per sweep.
  std::vector<i64> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), i64{0});
  auto sig = [&](i64 i) {
    return std::pair<i64, i64>(
        block[static_cast<size_t>(i)],
        block[static_cast<size_t>(input.succ[static_cast<size_t>(i)])]);
  };
  std::sort(order.begin(), order.end(),
            [&](i64 a, i64 b) { return sig(a) < sig(b) || (sig(a) == sig(b) && a < b); });
  i64 leader = -1;
  for (size_t k = 0; k < order.size(); ++k) {
    if (k == 0 || sig(order[k]) != sig(order[k - 1])) leader = order[k];
    out[static_cast<size_t>(order[k])] = leader;
  }
  return out;
}

}  // namespace

std::vector<i64> reference_refinement(const PartitionInput& input) {
  // Canonicalize the initial labelling to min-member, then refine to the
  // fixpoint. Each sweep only splits blocks, so at most n sweeps happen.
  std::vector<i64> block(static_cast<size_t>(input.n));
  {
    std::map<i64, i64> first_seen;  // initial label -> min member index
    for (i64 i = 0; i < input.n; ++i) {
      auto [it, fresh] =
          first_seen.emplace(input.block[static_cast<size_t>(i)], i);
      block[static_cast<size_t>(i)] = fresh ? i : it->second;
    }
  }
  for (i64 sweep = 0; sweep <= input.n; ++sweep) {
    std::vector<i64> next = refine_once(input, block);
    if (next == block) return block;
    block = std::move(next);
  }
  MP_ASSERT(false, "partition refinement failed to converge");
  return block;
}

std::vector<i64> random_values(i64 n, u64 seed, i64 lo, i64 hi) {
  MP_REQUIRE(n >= 0 && lo <= hi, "bad random_values spec");
  Rng rng(seed);
  std::vector<i64> out(static_cast<size_t>(n));
  for (auto& v : out) v = rng.range(lo, hi);
  return out;
}

std::vector<i64> random_list(i64 n, u64 seed) {
  MP_REQUIRE(n >= 1, "list needs at least one node");
  Rng rng(seed);
  std::vector<i64> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), i64{0});
  rng.shuffle(order);
  std::vector<i64> succ(static_cast<size_t>(n), -1);
  for (i64 k = 0; k + 1 < n; ++k) {
    succ[static_cast<size_t>(order[static_cast<size_t>(k)])] =
        order[static_cast<size_t>(k + 1)];
  }
  return succ;
}

}  // namespace meshpram::algo
