#include "algo/harness.hpp"

#include <algorithm>
#include <chrono>

#include "algo/cc.hpp"
#include "algo/refine.hpp"
#include "algo/staples.hpp"
#include "pram/combining.hpp"
#include "util/error.hpp"

namespace meshpram::algo {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

i64 floor_pow2(i64 n) {
  i64 p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

// ---------------------------------------------------------------------------
// Workload implementations
// ---------------------------------------------------------------------------

class CcWorkload : public Workload {
 public:
  CcWorkload(GraphFamily family, i64 n, u64 seed)
      : fam_(family), graph_(make_graph(family, n, seed)) {}

  std::string name() const override {
    return std::string("cc:") + graph_family_name(fam_);
  }
  std::string family() const override { return graph_family_name(fam_); }
  i64 size() const override { return graph_.n; }
  bool crcw() const override { return true; }
  i64 processors_needed() const override {
    return std::max(graph_.n, static_cast<i64>(graph_.edges.size()));
  }
  i64 vars_needed() const override { return graph_.n + 1; }
  std::unique_ptr<PramProgram> make_program() const override {
    return std::make_unique<ConnectedComponentsProgram>(graph_);
  }
  std::vector<i64> output(const PramProgram& program) const override {
    return static_cast<const ConnectedComponentsProgram&>(program).labels();
  }
  std::vector<i64> reference() const override {
    return reference_components(graph_);
  }

 private:
  GraphFamily fam_;
  GraphInput graph_;
};

class RefineWorkload : public Workload {
 public:
  RefineWorkload(i64 n, u64 seed)
      : input_(make_partition(n, std::max<i64>(2, n / 4), seed)) {}

  std::string name() const override { return "refine"; }
  std::string family() const override { return "functional"; }
  i64 size() const override { return input_.n; }
  bool crcw() const override { return true; }
  i64 processors_needed() const override { return input_.n; }
  i64 vars_needed() const override {
    return input_.n * input_.n + input_.n + 1;
  }
  std::unique_ptr<PramProgram> make_program() const override {
    return std::make_unique<PartitionRefinementProgram>(input_);
  }
  std::vector<i64> output(const PramProgram& program) const override {
    return static_cast<const PartitionRefinementProgram&>(program).blocks();
  }
  std::vector<i64> reference() const override {
    return reference_refinement(input_);
  }

 private:
  PartitionInput input_;
};

class PrefixWorkload : public Workload {
 public:
  PrefixWorkload(i64 n, u64 seed)
      : input_(random_values(n, seed, -1000, 1000)) {}

  std::string name() const override { return "prefix"; }
  std::string family() const override { return "uniform"; }
  i64 size() const override { return static_cast<i64>(input_.size()); }
  bool crcw() const override { return false; }
  i64 processors_needed() const override { return size(); }
  i64 vars_needed() const override { return size(); }
  std::unique_ptr<PramProgram> make_program() const override {
    return std::make_unique<PrefixSumProgram>(input_);
  }
  std::vector<i64> output(const PramProgram& program) const override {
    return static_cast<const PrefixSumProgram&>(program).result();
  }
  std::vector<i64> reference() const override {
    return PrefixSumProgram::expected(input_);
  }

 private:
  std::vector<i64> input_;
};

class ScanWorkload : public Workload {
 public:
  ScanWorkload(i64 n, u64 seed)
      : input_(random_values(n, seed, -1000, 1000)) {}

  std::string name() const override { return "scan"; }
  std::string family() const override { return "uniform"; }
  i64 size() const override { return static_cast<i64>(input_.size()); }
  bool crcw() const override { return false; }
  i64 processors_needed() const override {
    i64 p = 1;
    while (p < size()) p *= 2;
    return p;
  }
  i64 vars_needed() const override { return processors_needed(); }
  std::unique_ptr<PramProgram> make_program() const override {
    return std::make_unique<BlellochScanProgram>(input_);
  }
  std::vector<i64> output(const PramProgram& program) const override {
    return static_cast<const BlellochScanProgram&>(program).result();
  }
  std::vector<i64> reference() const override {
    return PrefixSumProgram::expected(input_);
  }

 private:
  std::vector<i64> input_;
};

class RankWorkload : public Workload {
 public:
  RankWorkload(i64 n, u64 seed) : succ_(random_list(n, seed)) {}

  std::string name() const override { return "rank"; }
  std::string family() const override { return "list"; }
  i64 size() const override { return static_cast<i64>(succ_.size()); }
  bool crcw() const override { return false; }
  i64 processors_needed() const override { return size(); }
  i64 vars_needed() const override { return 2 * size(); }
  std::unique_ptr<PramProgram> make_program() const override {
    return std::make_unique<ListRankingProgram>(succ_);
  }
  std::vector<i64> output(const PramProgram& program) const override {
    return static_cast<const ListRankingProgram&>(program).ranks();
  }
  std::vector<i64> reference() const override {
    return ListRankingProgram::expected(succ_);
  }

 private:
  std::vector<i64> succ_;
};

class SortWorkload : public Workload {
 public:
  SortWorkload(bool bitonic, i64 n, u64 seed)
      : bitonic_(bitonic),
        input_(random_values(bitonic ? floor_pow2(std::max<i64>(2, n)) : n,
                             seed, -100000, 100000)) {}

  std::string name() const override { return bitonic_ ? "bitonic" : "oddeven"; }
  std::string family() const override { return "uniform"; }
  i64 size() const override { return static_cast<i64>(input_.size()); }
  bool crcw() const override { return false; }
  i64 processors_needed() const override { return size(); }
  i64 vars_needed() const override { return size(); }
  std::unique_ptr<PramProgram> make_program() const override {
    if (bitonic_) return std::make_unique<BitonicSortProgram>(input_);
    return std::make_unique<OddEvenSortProgram>(input_);
  }
  std::vector<i64> output(const PramProgram& program) const override {
    if (bitonic_) {
      return static_cast<const BitonicSortProgram&>(program).result();
    }
    return static_cast<const OddEvenSortProgram&>(program).result();
  }
  std::vector<i64> reference() const override {
    std::vector<i64> out = input_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  bool bitonic_;
  std::vector<i64> input_;
};

}  // namespace

std::unique_ptr<Workload> make_workload(const std::string& name, i64 size,
                                        u64 seed) {
  MP_REQUIRE(size >= 1, "workload size " << size);
  if (name == "prefix") return std::make_unique<PrefixWorkload>(size, seed);
  if (name == "scan") return std::make_unique<ScanWorkload>(size, seed);
  if (name == "rank") return std::make_unique<RankWorkload>(size, seed);
  if (name == "oddeven") {
    return std::make_unique<SortWorkload>(false, size, seed);
  }
  if (name == "bitonic") {
    return std::make_unique<SortWorkload>(true, size, seed);
  }
  if (name == "refine") return std::make_unique<RefineWorkload>(size, seed);
  if (name == "cc") {
    return std::make_unique<CcWorkload>(GraphFamily::Grid, size, seed);
  }
  if (name.rfind("cc:", 0) == 0) {
    const std::string fam = name.substr(3);
    for (GraphFamily f : {GraphFamily::Path, GraphFamily::Star,
                          GraphFamily::Grid, GraphFamily::Expander,
                          GraphFamily::RandomForest}) {
      if (fam == graph_family_name(f)) {
        return std::make_unique<CcWorkload>(f, size, seed);
      }
    }
  }
  throw ConfigError("unknown workload '" + name + "'");
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "cc:path", "cc:star", "cc:grid", "cc:expander", "cc:forest",
      "refine",  "prefix",  "scan",    "rank",        "oddeven",
      "bitonic",
  };
  return names;
}

std::unique_ptr<Workload> make_workload_fitting(const std::string& name,
                                                i64 size, i64 processors,
                                                i64 num_vars, u64 seed) {
  for (i64 n = size; n >= 2; --n) {
    auto w = make_workload(name, n, seed);
    if (w->processors_needed() <= processors && w->vars_needed() <= num_vars) {
      return w;
    }
  }
  throw ConfigError("workload '" + name + "' does not fit " +
                    std::to_string(processors) + " processors / " +
                    std::to_string(num_vars) + " vars at any size");
}

// ---------------------------------------------------------------------------
// WorkloadHarness
// ---------------------------------------------------------------------------

WorkloadHarness::WorkloadHarness(const SimConfig& config) : config_(config) {}

HarnessResult WorkloadHarness::run(const Workload& workload,
                                   BackendKind kind) const {
  const i64 mesh_procs =
      static_cast<i64>(config_.mesh_rows) * config_.mesh_cols;
  MP_REQUIRE(workload.processors_needed() <= mesh_procs,
             "workload " << workload.name() << " wants "
                         << workload.processors_needed()
                         << " processors, machine has " << mesh_procs);
  MP_REQUIRE(workload.vars_needed() <= config_.num_vars,
             "workload " << workload.name() << " wants "
                         << workload.vars_needed() << " vars, machine has "
                         << config_.num_vars);

  // Oracle leg: the same program on IdealBackend, checked against the host
  // reference. Re-run per call so every reported row was freshly verified.
  std::vector<i64> oracle;
  {
    IdealBackend ideal(mesh_procs, config_.num_vars);
    auto program = workload.make_program();
    if (workload.crcw()) {
      CombiningBackend combining(ideal);
      run_program(*program, combining);
    } else {
      run_program(*program, ideal);
    }
    oracle = workload.output(*program);
  }
  MP_ASSERT(oracle == workload.reference(),
            "oracle run of " << workload.name()
                             << " disagrees with the host reference");

  HarnessResult result;
  result.workload = workload.name();
  result.backend = backend_kind_name(kind);
  result.family = workload.family();
  result.size = workload.size();
  result.crcw = workload.crcw();
  result.zero_cost_backend = kind == BackendKind::Ideal;

  auto base = make_backend(kind, config_);
  auto program = workload.make_program();
  const double t0 = now_ms();
  if (workload.crcw()) {
    CombiningBackend combining(*base);
    StreamStatsBackend stats(combining);
    result.pram_steps = run_program(*program, stats);
    result.combined_groups = combining.combined_groups();
    result.stream = stats.stats();
  } else {
    StreamStatsBackend stats(*base);
    result.pram_steps = run_program(*program, stats);
    result.stream = stats.stats();
  }
  result.wall_ms = now_ms() - t0;
  result.backend_steps = base->pram_steps();
  result.mesh_steps = base->total_mesh_steps();

  MP_ASSERT(workload.output(*program) == oracle,
            "backend " << result.backend << " output of " << workload.name()
                       << " differs from the IdealBackend oracle");
  return result;
}

std::vector<std::vector<AccessRequest>> WorkloadHarness::record_erew_trace(
    const Workload& workload, i64 processors, i64 num_vars) {
  MP_REQUIRE(workload.processors_needed() <= processors &&
                 workload.vars_needed() <= num_vars,
             "workload " << workload.name() << " does not fit a "
                         << processors << "-processor / " << num_vars
                         << "-var session");
  IdealBackend ideal(processors, num_vars);
  TraceBackend trace(ideal);
  auto program = workload.make_program();
  if (workload.crcw()) {
    CombiningBackend combining(trace);
    run_program(*program, combining);
  } else {
    run_program(*program, trace);
  }
  MP_ASSERT(workload.output(*program) == workload.reference(),
            "trace recording of " << workload.name() << " produced a wrong "
                                  << "answer");
  return trace.trace();
}

}  // namespace meshpram::algo
