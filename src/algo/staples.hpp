// Staple PRAM algorithms, written as PramProgram so they run on both the
// ideal machine and the mesh simulation (promoted here from
// src/pram/algorithms.* when the algo workload subsystem landed).
//
// These are the EREW workloads the examples, tests and the EXP-A1 macro
// bench execute: they validate that the simulation is a drop-in PRAM
// (identical results, measurable slowdown) on programs with non-trivial
// access patterns. The CRCW paper algorithms (connected components,
// partition refinement) live next door in cc.hpp / refine.hpp.
#pragma once

#include <vector>

#include "pram/program.hpp"

namespace meshpram {

/// Hillis–Steele inclusive prefix sums over n values with n processors in
/// O(log n) PRAM steps. Memory layout: x[i] lives at shared variable
/// base + i. Phases per round j: read x[i - 2^j], then write x[i] += it.
class PrefixSumProgram : public PramProgram {
 public:
  PrefixSumProgram(std::vector<i64> input, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  /// Valid after the program ran: inclusive prefix sums of the input.
  const std::vector<i64>& result() const { return local_; }

  /// Reference answer for tests.
  static std::vector<i64> expected(const std::vector<i64>& input);

 private:
  i64 n_;
  i64 base_;
  int rounds_;
  std::vector<i64> local_;    ///< processor-local running value
  std::vector<i64> incoming_; ///< value read this round
};

/// Work-efficient inclusive prefix sums (Blelloch up-sweep/down-sweep) over
/// n values, padded internally to P = 2^ceil(log2 n) processors. O(log n)
/// PRAM steps and O(n) total shared-memory traffic — the work-efficient
/// counterpart of the O(n log n)-traffic Hillis–Steele schedule above, with
/// a tree-shaped address stream (hot near the root) instead of a shifting
/// window. Layout: x[i] at base + i for i in [0, P).
class BlellochScanProgram : public PramProgram {
 public:
  BlellochScanProgram(std::vector<i64> input, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  /// Inclusive prefix sums of the (unpadded) input.
  const std::vector<i64>& result() const { return result_; }

 private:
  /// Down-sweep phase of `step` (0 = read own, 1 = read left, 2 = write
  /// left, 3 = write own), or -1 when `step` is not a down-sweep step.
  i64 n_;         ///< real input length
  i64 padded_;    ///< 2^levels_
  int levels_;
  i64 base_;
  std::vector<i64> input_;
  std::vector<i64> own_;     ///< mirror of x[i] maintained by its writer
  std::vector<i64> left_;    ///< left-child value read this level
  std::vector<i64> result_;
};

/// List ranking by pointer jumping (Wyllie): given a linked list as a
/// successor array (succ[i] = next node, tail has succ = -1), computes each
/// node's distance to the tail in O(log n) rounds of 4 PRAM steps.
/// Layout: succ[i] at base + i, rank[i] at base + n + i.
class ListRankingProgram : public PramProgram {
 public:
  ListRankingProgram(std::vector<i64> succ, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  const std::vector<i64>& ranks() const { return rank_; }

  static std::vector<i64> expected(const std::vector<i64>& succ);

 private:
  i64 n_;
  i64 base_;
  int rounds_;
  std::vector<i64> succ_;      ///< local copy of the current jump pointers
  std::vector<i64> rank_;
  std::vector<i64> read_succ_; ///< succ[succ[i]] read this round
  std::vector<i64> read_rank_; ///< rank[succ[i]] read this round
};

/// Odd-even transposition sort of n shared values with n processors in n
/// rounds of 2 EREW steps (read the partner, then write your own slot).
/// Layout: x[i] at base + i.
class OddEvenSortProgram : public PramProgram {
 public:
  OddEvenSortProgram(std::vector<i64> input, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  const std::vector<i64>& result() const { return local_; }

 private:
  i64 n_;
  i64 base_;
  std::vector<i64> local_;   ///< each processor's current element
  std::vector<i64> partner_; ///< partner value read this round
};

/// Bitonic sort of n = 2^k values with n processors in O(log^2 n) PRAM
/// steps: the classic size/stride double loop, each compare-exchange one
/// read + one write. Input length must be a power of two (callers pad with
/// sentinels; algo::BitonicWorkload does). Layout: x[i] at base + i. The
/// partner index i ^ stride produces the butterfly address stream — long
/// strided exchanges early in every size block, the pattern mesh routing
/// likes least.
class BitonicSortProgram : public PramProgram {
 public:
  BitonicSortProgram(std::vector<i64> input, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  const std::vector<i64>& result() const { return local_; }

 private:
  /// (size, stride) of compare-exchange round r (0-based).
  void round_shape(i64 round, i64* size, i64* stride) const;

  i64 n_;
  int levels_;    ///< log2 n
  i64 rounds_;    ///< levels * (levels + 1) / 2 compare-exchange rounds
  i64 base_;
  std::vector<i64> local_;
  std::vector<i64> partner_;
};

/// Dense matrix-vector product b = A x for an s x s matrix with s
/// processors, using the classic SKEWED access schedule so that all reads
/// are exclusive: in round t, processor i reads A[i][(i+t) mod s] and
/// x[(i+t) mod s]. Layout: A row-major at base, x at base + s^2,
/// b at base + s^2 + s.
class MatVecProgram : public PramProgram {
 public:
  MatVecProgram(i64 s, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  /// Host-side setup: the caller writes A and x into shared memory before
  /// running (see examples/matvec.cpp), or uses preload() on a backend.
  void preload(PramBackend& backend, const std::vector<i64>& a,
               const std::vector<i64>& x) const;

  const std::vector<i64>& result() const { return acc_; }

 private:
  i64 s_;
  i64 base_;
  std::vector<i64> acc_;
  std::vector<i64> a_read_;
};

}  // namespace meshpram
