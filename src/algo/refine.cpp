#include "algo/refine.hpp"

#include <map>

#include "util/error.hpp"

namespace meshpram::algo {

PartitionRefinementProgram::PartitionRefinementProgram(
    const PartitionInput& input, i64 base_var)
    : n_(input.n), base_(base_var), succ_(input.succ),
      bl_(static_cast<size_t>(input.n), 0),
      sb_(static_cast<size_t>(input.n), 0),
      leader_(static_cast<size_t>(input.n), 0) {
  MP_REQUIRE(n_ >= 1, "partition over empty ground set");
  MP_REQUIRE(static_cast<i64>(input.succ.size()) == n_ &&
                 static_cast<i64>(input.block.size()) == n_,
             "succ/block size mismatch");
  for (i64 i = 0; i < n_; ++i) {
    const i64 s = succ_[static_cast<size_t>(i)];
    MP_REQUIRE(0 <= s && s < n_, "bad successor " << s);
  }
  // Canonicalize arbitrary initial labels to min-member indices so block
  // ids index the n x n signature table.
  std::map<i64, i64> first_seen;
  for (i64 i = 0; i < n_; ++i) {
    auto [it, fresh] = first_seen.emplace(input.block[static_cast<size_t>(i)], i);
    bl_[static_cast<size_t>(i)] = fresh ? i : it->second;
  }
}

i64 PartitionRefinementProgram::processors() const { return n_; }

bool PartitionRefinementProgram::done(i64 /*step*/) const { return converged_; }

AccessRequest PartitionRefinementProgram::plan(i64 proc, i64 step) {
  const size_t p = static_cast<size_t>(proc);
  if (step == 0) return {base_ + proc, Op::Write, bl_[p]};
  if (step == 1) {
    if (proc != 0) return {};
    return {base_ + n_ + n_ * n_, Op::Write, 0};
  }
  const i64 phase = (step - 2) % 7;
  switch (phase) {
    case 0:
      return {base_ + succ_[p], Op::Read, 0};
    case 1:  // leader election: lowest index writing the signature wins
      return {base_ + n_ + bl_[p] * n_ + sb_[p], Op::Write, proc};
    case 2:
      return {base_ + n_ + bl_[p] * n_ + sb_[p], Op::Read, 0};
    case 3:
      if (leader_[p] == bl_[p]) return {};
      bl_[p] = leader_[p];
      return {base_ + n_ + n_ * n_, Op::Write, 1};
    case 4:
      return {base_ + proc, Op::Write, bl_[p]};
    case 5:
      if (proc != 0) return {};
      return {base_ + n_ + n_ * n_, Op::Read, 0};
    default:  // 6: reset the flag
      if (proc != 0) return {};
      return {base_ + n_ + n_ * n_, Op::Write, 0};
  }
}

void PartitionRefinementProgram::receive(i64 proc, i64 step, i64 value) {
  const size_t p = static_cast<size_t>(proc);
  const i64 phase = (step - 2) % 7;
  switch (phase) {
    case 0: sb_[p] = value; break;
    case 2: leader_[p] = value; break;
    case 5:
      ++rounds_executed_;
      if (value == 0) converged_ = true;
      break;
    default:
      MP_ASSERT(false, "unexpected read delivery in phase " << phase);
  }
}

const std::vector<i64>& PartitionRefinementProgram::blocks() const {
  MP_REQUIRE(converged_, "blocks() before the program converged");
  return bl_;
}

}  // namespace meshpram::algo
