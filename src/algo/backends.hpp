// PramBackend adapters over every memory scheme the repo models, so a
// workload runs unchanged on all of them and EXP-A1 can put HMOS, the
// ablation and the baselines in one table.
//
// Ideal and Mesh already implement PramBackend (src/pram); this header adds
// adapters for the direct-routing ablation, the single-copy baselines and
// the MPC contention model, plus two wrappers the WorkloadHarness stacks on
// top: StreamStatsBackend (address-stream telemetry above the CRCW->EREW
// reduction) and TraceBackend (records the EREW-ized steps for the serving
// scenario library).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pram/backend.hpp"
#include "pram/baselines/direct.hpp"
#include "pram/baselines/mpc.hpp"
#include "pram/baselines/single_copy.hpp"
#include "protocol/simulator.hpp"

namespace meshpram::algo {

enum class BackendKind {
  Ideal,             ///< flat memory, zero cost (the oracle)
  Mesh,              ///< the paper's HMOS + CULLING + staged routing
  Direct,            ///< HMOS replication without culling/staging (ablation)
  SingleCopyModular, ///< one copy per variable, v mod n placement
  SingleCopyHashed,  ///< one copy per variable, hashed placement
  Mpc,               ///< module-parallel contention model (BIBD majority)
};

const char* backend_kind_name(BackendKind kind);
/// Inverse of backend_kind_name; throws ConfigError on unknown names.
BackendKind backend_kind_from_name(const std::string& name);
/// All kinds, oracle first — the iteration order of the harness and bench.
const std::vector<BackendKind>& all_backend_kinds();

/// Builds a ready backend for `kind` on the given mesh/memory geometry.
/// Every returned backend starts from all-zero memory semantics in the
/// sense that workloads publish every cell before reading it.
std::unique_ptr<PramBackend> make_backend(BackendKind kind,
                                          const SimConfig& config);

/// DirectAllCopiesSim as a PramBackend.
class DirectBackend : public PramBackend {
 public:
  explicit DirectBackend(const SimConfig& config) : sim_(config) {}

  i64 processors() const override { return sim_.processors(); }
  i64 num_vars() const override { return sim_.num_vars(); }
  std::vector<i64> step(const std::vector<AccessRequest>& requests) override;
  i64 total_mesh_steps() const override { return mesh_steps_; }
  i64 pram_steps() const override { return steps_; }

 private:
  DirectAllCopiesSim sim_;
  i64 mesh_steps_ = 0;
  i64 steps_ = 0;
};

/// SingleCopySim as a PramBackend.
class SingleCopyBackend : public PramBackend {
 public:
  SingleCopyBackend(const SimConfig& config, SingleCopyPlacement placement,
                    u64 seed = 1);

  i64 processors() const override { return sim_.processors(); }
  i64 num_vars() const override { return sim_.num_vars(); }
  std::vector<i64> step(const std::vector<AccessRequest>& requests) override;
  i64 total_mesh_steps() const override { return mesh_steps_; }
  i64 pram_steps() const override { return steps_; }

 private:
  SingleCopySim sim_;
  i64 mesh_steps_ = 0;
  i64 steps_ = 0;
};

/// MpcSim as a PramBackend: flat memory for the values (the MPC model only
/// prices contention, it does not move data) plus the BIBD majority-quorum
/// contention charged as the step cost. q = 3, m = the smallest power of 3
/// whose BIBD hosts num_vars.
class MpcBackend : public PramBackend {
 public:
  explicit MpcBackend(const SimConfig& config);

  i64 processors() const override { return processors_; }
  i64 num_vars() const override { return static_cast<i64>(memory_.size()); }
  std::vector<i64> step(const std::vector<AccessRequest>& requests) override;
  i64 total_mesh_steps() const override { return contention_steps_; }
  i64 pram_steps() const override { return steps_; }

  i64 modules() const { return sim_.modules(); }

 private:
  MpcSim sim_;
  i64 processors_;
  std::vector<i64> memory_;
  i64 contention_steps_ = 0;
  i64 steps_ = 0;
};

/// Address-stream telemetry for EXP-A1, collected ABOVE the CRCW->EREW
/// reduction so concurrency is observed before combining flattens it.
struct StreamStats {
  i64 program_steps = 0;     ///< steps seen at this layer
  i64 accesses = 0;          ///< non-idle requests
  i64 reads = 0;
  i64 writes = 0;
  i64 max_concurrency = 1;   ///< largest same-variable group in one step
  i64 distinct_vars = 0;     ///< variables ever touched
  i64 hot_var_accesses = 0;  ///< accesses to the most-touched variable

  /// Variable-reuse skew: mean accesses per touched variable.
  double reuse_factor() const {
    return distinct_vars > 0
               ? static_cast<double>(accesses) / static_cast<double>(distinct_vars)
               : 0.0;
  }
};

/// Pass-through wrapper recording StreamStats. Place it between the program
/// and the CombiningBackend (or directly above an EREW backend for EREW
/// programs).
class StreamStatsBackend : public PramBackend {
 public:
  explicit StreamStatsBackend(PramBackend& inner) : inner_(inner) {}

  i64 processors() const override { return inner_.processors(); }
  i64 num_vars() const override { return inner_.num_vars(); }
  std::vector<i64> step(const std::vector<AccessRequest>& requests) override;
  i64 total_mesh_steps() const override { return inner_.total_mesh_steps(); }
  i64 pram_steps() const override { return inner_.pram_steps(); }

  const StreamStats& stats() const { return stats_; }

 private:
  PramBackend& inner_;
  StreamStats stats_;
  std::unordered_map<i64, i64> var_counts_;
};

/// Records every (EREW) step it executes — the serving scenario library
/// replays these traces as session traffic (tools/serve_loadgen
/// --scenario algo:<name>). Idle slots are dropped from the recording.
class TraceBackend : public PramBackend {
 public:
  explicit TraceBackend(PramBackend& inner) : inner_(inner) {}

  i64 processors() const override { return inner_.processors(); }
  i64 num_vars() const override { return inner_.num_vars(); }
  std::vector<i64> step(const std::vector<AccessRequest>& requests) override;
  i64 total_mesh_steps() const override { return inner_.total_mesh_steps(); }
  i64 pram_steps() const override { return inner_.pram_steps(); }

  const std::vector<std::vector<AccessRequest>>& trace() const {
    return trace_;
  }

 private:
  PramBackend& inner_;
  std::vector<std::vector<AccessRequest>> trace_;
};

}  // namespace meshpram::algo
