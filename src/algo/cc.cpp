#include "algo/cc.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace meshpram::algo {

ConnectedComponentsProgram::ConnectedComponentsProgram(const GraphInput& graph,
                                                       i64 base_var)
    : n_(graph.n), m_(static_cast<i64>(graph.edges.size())), base_(base_var),
      pu_(graph.edges.size(), 0), pv_(graph.edges.size(), 0),
      cur_(graph.edges.size(), 0),
      p1_(static_cast<size_t>(graph.n), 0),
      p2_(static_cast<size_t>(graph.n), 0),
      edge_changed_(graph.edges.size(), 0),
      vert_changed_(static_cast<size_t>(graph.n), 0) {
  MP_REQUIRE(n_ >= 1, "graph needs at least one vertex");
  eu_.reserve(graph.edges.size());
  ev_.reserve(graph.edges.size());
  for (const auto& [u, v] : graph.edges) {
    MP_REQUIRE(0 <= u && u < n_ && 0 <= v && v < n_ && u != v,
               "bad edge (" << u << ", " << v << ")");
    eu_.push_back(u);
    ev_.push_back(v);
  }
}

i64 ConnectedComponentsProgram::processors() const { return std::max(n_, m_); }

bool ConnectedComponentsProgram::done(i64 /*step*/) const { return converged_; }

AccessRequest ConnectedComponentsProgram::plan(i64 proc, i64 step) {
  if (step == 0) {  // parent[v] = v
    if (proc >= n_) return {};
    return {base_ + proc, Op::Write, proc};
  }
  if (step == 1) {  // clear the convergence flag
    if (proc != 0) return {};
    return {base_ + n_, Op::Write, 0};
  }
  const i64 phase = (step - 2) % 10;
  const size_t p = static_cast<size_t>(proc);
  const bool is_edge = proc < m_;
  const bool is_vert = proc < n_;
  switch (phase) {
    case 0:
      if (!is_edge) return {};
      edge_changed_[p] = 0;
      return {base_ + eu_[p], Op::Read, 0};
    case 1:
      if (!is_edge) return {};
      return {base_ + ev_[p], Op::Read, 0};
    case 2:
      if (!is_edge || pu_[p] == pv_[p]) return {};
      return {base_ + std::max(pu_[p], pv_[p]), Op::Read, 0};
    case 3: {
      if (!is_edge || pu_[p] == pv_[p]) return {};
      const i64 lo = std::min(pu_[p], pv_[p]);
      if (lo >= cur_[p]) return {};  // guard: only ever lower a cell
      edge_changed_[p] = 1;
      return {base_ + std::max(pu_[p], pv_[p]), Op::Write, lo};
    }
    case 4:
      if (!is_vert) return {};
      vert_changed_[p] = 0;
      return {base_ + proc, Op::Read, 0};
    case 5:
      if (!is_vert) return {};
      return {base_ + p1_[p], Op::Read, 0};
    case 6:
      if (!is_vert || p2_[p] == p1_[p]) return {};
      vert_changed_[p] = 1;
      return {base_ + proc, Op::Write, p2_[p]};
    case 7: {
      const bool changed = (is_edge && edge_changed_[p]) ||
                           (is_vert && vert_changed_[p]);
      if (!changed) return {};
      return {base_ + n_, Op::Write, 1};
    }
    case 8:
      if (proc != 0) return {};
      return {base_ + n_, Op::Read, 0};
    default:  // 9: reset the flag for the next round
      if (proc != 0) return {};
      return {base_ + n_, Op::Write, 0};
  }
}

void ConnectedComponentsProgram::receive(i64 proc, i64 step, i64 value) {
  const i64 phase = (step - 2) % 10;
  const size_t p = static_cast<size_t>(proc);
  switch (phase) {
    case 0: pu_[p] = value; break;
    case 1: pv_[p] = value; break;
    case 2: cur_[p] = value; break;
    case 4: p1_[p] = value; break;
    case 5: p2_[p] = value; break;
    case 8:
      ++rounds_executed_;
      if (value == 0) converged_ = true;
      break;
    default:
      MP_ASSERT(false, "unexpected read delivery in phase " << phase);
  }
}

std::vector<i64> ConnectedComponentsProgram::labels() const {
  MP_REQUIRE(converged_, "labels() before the program converged");
  // At the fixpoint p1_[v] = parent[v] is a per-component constant but not
  // necessarily the minimum vertex; canonicalize for comparison with
  // reference_components().
  std::map<i64, i64> canon;  // raw label -> min vertex carrying it
  for (i64 v = 0; v < n_; ++v) {
    canon.emplace(p1_[static_cast<size_t>(v)], v);
  }
  std::vector<i64> out(static_cast<size_t>(n_));
  for (i64 v = 0; v < n_; ++v) {
    out[static_cast<size_t>(v)] = canon.at(p1_[static_cast<size_t>(v)]);
  }
  return out;
}

}  // namespace meshpram::algo
