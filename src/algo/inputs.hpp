// Deterministic seeded inputs for the algorithm workload suite.
//
// Every generator is a pure function of (family, size, seed) over the
// repo's own xoshiro Rng, so a workload run is reproducible from its spec
// alone — the property the EXP-A1 baseline and the oracle protocol depend
// on. Host-side reference solvers (union-find components, fixpoint
// partition refinement) live here too: they are the second, independent leg
// of the oracle check next to IdealBackend.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/math.hpp"

namespace meshpram::algo {

using meshpram::i64;

/// Undirected graph families exercised by the connected-components
/// workload. Each stresses the address stream differently: paths maximize
/// shortcutting rounds, stars maximize hooking contention on one cell,
/// grids give the mesh-local pattern, expanders converge in few rounds but
/// with dense irregular traffic, forests add many components.
enum class GraphFamily { Path, Star, Grid, Expander, RandomForest };

const char* graph_family_name(GraphFamily family);

struct GraphInput {
  i64 n = 0;                                 ///< vertices 0..n-1
  std::vector<std::pair<i64, i64>> edges;    ///< undirected, u != v
};

/// Builds the family's graph on n >= 1 vertices. Path/Star/Grid are
/// seed-independent; Expander (cycle + n random chords) and RandomForest
/// (random attachment, ~1 in 8 vertices starts a new tree) draw from `seed`.
GraphInput make_graph(GraphFamily family, i64 n, u64 seed);

/// Union-find reference: component label of each vertex, canonicalized to
/// the minimum vertex id in its component.
std::vector<i64> reference_components(const GraphInput& graph);

/// A partition-refinement instance: a functional graph (succ[i] in [0,n))
/// plus an initial block labelling. Refinement splits blocks by the block
/// of the successor until stable — the kernel of bisimulation checking.
struct PartitionInput {
  i64 n = 0;
  std::vector<i64> succ;
  std::vector<i64> block;   ///< initial block ids (arbitrary values)
};

PartitionInput make_partition(i64 n, i64 initial_blocks, u64 seed);

/// Host fixpoint refinement. Returns final block labels canonicalized to
/// the minimum member index of each block.
std::vector<i64> reference_refinement(const PartitionInput& input);

/// n uniform values in [lo, hi], for sort/scan workloads.
std::vector<i64> random_values(i64 n, u64 seed, i64 lo, i64 hi);

/// Successor array of a uniformly random linked list over n nodes (exactly
/// one tail with succ = -1), for list ranking.
std::vector<i64> random_list(i64 n, u64 seed);

}  // namespace meshpram::algo
