// CRCW parallel partition refinement (the kernel of bisimulation checking).
//
// Given a functional graph succ[] and an initial partition, repeatedly
// split blocks by the block of the successor until stable. Each element
// elects the leader of its (block, successor-block) signature group with a
// single priority-CRCW write into a shared signature table — the
// lowest-index writer wins, so the leader is the minimum member and block
// labels stay canonical (label = min member) throughout. Contention here is
// the opposite shape from connected components: many small write groups
// (one per signature) instead of one hot cell.
#pragma once

#include <vector>

#include "algo/inputs.hpp"
#include "pram/program.hpp"

namespace meshpram::algo {

/// One processor per element. Shared memory: block[i] at base + i (n
/// cells), the signature table at base + n (n^2 cells, row = own block,
/// column = successor's block), a convergence flag at base + n + n^2;
/// vars_needed() = n^2 + n + 1. Signature cells are written before every
/// read of them in the same round, so stale values never leak.
///
/// Step 0 publishes the (canonicalized) initial labels, step 1 clears the
/// flag, then rounds of 7 phases until a round changes nothing:
///   0  read block[succ[i]]                        -> sb
///   1  write i into sig[bl * n + sb]              [leader election, CRCW]
///   2  read sig[bl * n + sb]                      -> leader
///   3  if leader != bl: adopt it, write flag = 1  [combined]
///   4  write block[i] = bl
///   5  processor 0 reads the flag
///   6  processor 0 resets the flag
class PartitionRefinementProgram : public PramProgram {
 public:
  explicit PartitionRefinementProgram(const PartitionInput& input,
                                      i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  /// Final block labels (min member per block), comparable with
  /// reference_refinement().
  const std::vector<i64>& blocks() const;

  i64 vars_needed() const { return n_ * n_ + n_ + 1; }
  i64 rounds_executed() const { return rounds_executed_; }

 private:
  i64 n_;
  i64 base_;
  std::vector<i64> succ_;
  std::vector<i64> bl_;      ///< local copy of own block label
  std::vector<i64> sb_;      ///< successor's block read this round
  std::vector<i64> leader_;  ///< elected signature leader this round
  bool converged_ = false;
  i64 rounds_executed_ = 0;
};

}  // namespace meshpram::algo
