#include "algo/backends.hpp"

#include <algorithm>

#include "pram/mesh_backend.hpp"
#include "util/error.hpp"

namespace meshpram::algo {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Ideal: return "ideal";
    case BackendKind::Mesh: return "mesh";
    case BackendKind::Direct: return "direct";
    case BackendKind::SingleCopyModular: return "single_copy_mod";
    case BackendKind::SingleCopyHashed: return "single_copy_hash";
    case BackendKind::Mpc: return "mpc";
  }
  MP_ASSERT(false, "unknown backend kind");
  return "?";
}

BackendKind backend_kind_from_name(const std::string& name) {
  for (BackendKind kind : all_backend_kinds()) {
    if (name == backend_kind_name(kind)) return kind;
  }
  throw ConfigError("unknown backend '" + name + "'");
}

const std::vector<BackendKind>& all_backend_kinds() {
  static const std::vector<BackendKind> kinds = {
      BackendKind::Ideal,          BackendKind::Mesh,
      BackendKind::Direct,         BackendKind::SingleCopyModular,
      BackendKind::SingleCopyHashed, BackendKind::Mpc,
  };
  return kinds;
}

std::unique_ptr<PramBackend> make_backend(BackendKind kind,
                                          const SimConfig& config) {
  switch (kind) {
    case BackendKind::Ideal:
      return std::make_unique<IdealBackend>(
          static_cast<i64>(config.mesh_rows) * config.mesh_cols,
          config.num_vars);
    case BackendKind::Mesh:
      return std::make_unique<MeshBackend>(config);
    case BackendKind::Direct:
      return std::make_unique<DirectBackend>(config);
    case BackendKind::SingleCopyModular:
      return std::make_unique<SingleCopyBackend>(config,
                                                 SingleCopyPlacement::Modular);
    case BackendKind::SingleCopyHashed:
      return std::make_unique<SingleCopyBackend>(config,
                                                 SingleCopyPlacement::Hashed);
    case BackendKind::Mpc:
      return std::make_unique<MpcBackend>(config);
  }
  MP_ASSERT(false, "unknown backend kind");
  return nullptr;
}

// ---------------------------------------------------------------------------
// DirectBackend / SingleCopyBackend
// ---------------------------------------------------------------------------

std::vector<i64> DirectBackend::step(
    const std::vector<AccessRequest>& requests) {
  DirectStats st;
  auto results = sim_.step(requests, &st);
  mesh_steps_ += st.total_steps;
  ++steps_;
  results.resize(requests.size());
  return results;
}

SingleCopyBackend::SingleCopyBackend(const SimConfig& config,
                                     SingleCopyPlacement placement, u64 seed)
    : sim_(config.mesh_rows, config.mesh_cols, config.num_vars, placement,
           seed) {}

std::vector<i64> SingleCopyBackend::step(
    const std::vector<AccessRequest>& requests) {
  SingleCopyStats st;
  auto results = sim_.step(requests, &st);
  mesh_steps_ += st.total_steps;
  ++steps_;
  results.resize(requests.size());
  return results;
}

// ---------------------------------------------------------------------------
// MpcBackend
// ---------------------------------------------------------------------------

namespace {

/// Smallest power-of-3 module count whose (3^d, 3)-BIBD hosts num_vars.
i64 mpc_module_count(i64 num_vars) {
  int d = 1;
  while (bibd_input_count(3, d) < num_vars) ++d;
  return ipow(3, d);
}

}  // namespace

MpcBackend::MpcBackend(const SimConfig& config)
    : sim_(3, mpc_module_count(config.num_vars), config.num_vars),
      processors_(static_cast<i64>(config.mesh_rows) * config.mesh_cols),
      memory_(static_cast<size_t>(config.num_vars), 0) {}

std::vector<i64> MpcBackend::step(const std::vector<AccessRequest>& requests) {
  MP_REQUIRE(static_cast<i64>(requests.size()) <= processors_,
             "more requests than processors");
  std::vector<i64> results(requests.size(), 0);
  std::vector<i64> vars;
  vars.reserve(requests.size());
  // EREW step: reads before writes would not matter (vars are distinct),
  // but keep the ideal backend's order for clarity.
  for (size_t i = 0; i < requests.size(); ++i) {
    const AccessRequest& r = requests[i];
    if (r.var < 0) continue;
    MP_REQUIRE(0 <= r.var && r.var < num_vars(), "variable " << r.var);
    vars.push_back(r.var);
    if (r.op == Op::Read) {
      results[i] = memory_[static_cast<size_t>(r.var)];
    }
  }
  for (const AccessRequest& r : requests) {
    if (r.var >= 0 && r.op == Op::Write) {
      memory_[static_cast<size_t>(r.var)] = r.value;
    }
  }
  if (!vars.empty()) contention_steps_ += sim_.majority_contention(vars);
  ++steps_;
  return results;
}

// ---------------------------------------------------------------------------
// StreamStatsBackend / TraceBackend
// ---------------------------------------------------------------------------

std::vector<i64> StreamStatsBackend::step(
    const std::vector<AccessRequest>& requests) {
  ++stats_.program_steps;
  std::unordered_map<i64, i64> per_var;
  for (const AccessRequest& r : requests) {
    if (r.var < 0) continue;
    ++stats_.accesses;
    (r.op == Op::Read ? stats_.reads : stats_.writes) += 1;
    ++per_var[r.var];
  }
  for (const auto& [var, count] : per_var) {
    stats_.max_concurrency = std::max(stats_.max_concurrency, count);
    i64& total = var_counts_[var];
    if (total == 0) ++stats_.distinct_vars;
    total += count;
    stats_.hot_var_accesses = std::max(stats_.hot_var_accesses, total);
  }
  return inner_.step(requests);
}

std::vector<i64> TraceBackend::step(const std::vector<AccessRequest>& requests) {
  std::vector<AccessRequest> kept;
  kept.reserve(requests.size());
  for (const AccessRequest& r : requests) {
    if (r.var >= 0) kept.push_back(r);
  }
  if (!kept.empty()) trace_.push_back(std::move(kept));
  return inner_.step(requests);
}

}  // namespace meshpram::algo
