// WorkloadHarness: run a named PRAM workload on any backend, always under
// the oracle protocol.
//
// A Workload bundles a seeded input, the program that solves it, and two
// independent ground truths: the same program executed on IdealBackend and
// a host-side reference solver. WorkloadHarness::run() executes the
// program on the requested backend (CRCW programs go through
// CombiningBackend; StreamStatsBackend sits above the reduction to observe
// raw concurrency) and REQUIREs the canonical output to be bit-identical to
// both ground truths before reporting any numbers — a slow-but-wrong
// backend cannot produce an EXP-A1 row.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algo/backends.hpp"
#include "pram/program.hpp"

namespace meshpram::algo {

/// One reproducible problem instance + its program + its ground truth.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;    ///< registry name, e.g. "cc:star"
  virtual std::string family() const = 0;  ///< input family label
  virtual i64 size() const = 0;            ///< instance size (n)
  virtual bool crcw() const = 0;           ///< needs the CRCW->EREW adapter
  virtual i64 processors_needed() const = 0;
  virtual i64 vars_needed() const = 0;
  /// Fresh program instance for one run (programs are single-shot).
  virtual std::unique_ptr<PramProgram> make_program() const = 0;
  /// Canonical output extracted from a completed program.
  virtual std::vector<i64> output(const PramProgram& program) const = 0;
  /// Host-computed reference answer.
  virtual std::vector<i64> reference() const = 0;
};

/// Names accepted by make_workload: "prefix", "scan", "rank", "oddeven",
/// "bitonic", "refine", "cc" (grid graph) and "cc:<family>" for
/// path/star/grid/expander/forest.
std::unique_ptr<Workload> make_workload(const std::string& name, i64 size,
                                        u64 seed);

/// The default suite enumerated by bench_algo_suite and the scenario list.
const std::vector<std::string>& workload_names();

/// Largest instance of `name` (trying `size` downward) that fits the given
/// processor/variable budget; throws ConfigError if even size 2 does not.
std::unique_ptr<Workload> make_workload_fitting(const std::string& name,
                                                i64 size, i64 processors,
                                                i64 num_vars, u64 seed);

/// One oracle-checked run of a workload on a backend.
struct HarnessResult {
  std::string workload;
  std::string backend;
  std::string family;
  i64 size = 0;
  bool crcw = false;
  i64 pram_steps = 0;     ///< program-level steps (CRCW steps for CRCW runs)
  i64 backend_steps = 0;  ///< EREW steps reaching the backend
  i64 mesh_steps = 0;     ///< backend cost (0 for zero-cost backends)
  /// True when the backend has no cost model at all (IdealBackend): its
  /// mesh_steps is not a measurement, and slowdown columns must not divide
  /// by it. See PramBackend::total_mesh_steps(), which is pure precisely so
  /// backends cannot drift into this state silently.
  bool zero_cost_backend = false;
  i64 combined_groups = 0;  ///< concurrent groups the CRCW adapter combined
  StreamStats stream;       ///< raw (pre-combining) address-stream stats
  double wall_ms = 0;       ///< informational, machine-dependent
};

class WorkloadHarness {
 public:
  explicit WorkloadHarness(const SimConfig& config);

  /// Runs `workload` on `kind`. Throws InternalError if the output differs
  /// from the IdealBackend run or the host reference.
  HarnessResult run(const Workload& workload, BackendKind kind) const;

  const SimConfig& config() const { return config_; }

  /// Executes the workload on IdealBackend and records the EREW-ized step
  /// stream (after the CRCW->EREW reduction for CRCW programs) for a
  /// machine with the given shape. The serving layer replays the trace as
  /// session traffic.
  static std::vector<std::vector<AccessRequest>> record_erew_trace(
      const Workload& workload, i64 processors, i64 num_vars);

 private:
  SimConfig config_;
};

}  // namespace meshpram::algo
