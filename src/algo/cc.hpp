// CRCW connected components by hooking + shortcutting (Liu–Tarjan style).
//
// The first genuinely concurrent workload in the repo: every round, all
// edges concurrently read their endpoints' parents and race priority-CRCW
// writes onto the larger parent cell (hooking), then all vertices compress
// their parent pointers one level (shortcutting). Runs through
// CombiningBackend, which is what makes the CRCW->EREW adapter load-bearing:
// star graphs funnel every hook write into one cell, expanders spread
// contention wide, paths maximize the number of shortcut rounds.
#pragma once

#include <vector>

#include "algo/inputs.hpp"
#include "pram/program.hpp"

namespace meshpram::algo {

/// One processor per max(n, edges); processor i acts as edge i in edge
/// phases and vertex i in vertex phases. Shared memory: parent[v] at
/// base + v, a convergence flag at base + n (vars_needed() = n + 1).
///
/// Step schedule: step 0 initializes parent[v] = v, step 1 clears the flag,
/// then rounds of 10 phases until a round changes nothing:
///   0  edge e reads parent[u_e]
///   1  edge e reads parent[v_e]
///   2  edge e (pu != pv) reads parent[max(pu, pv)]          -> cur
///   3  edge e (min(pu, pv) < cur) writes parent[max] = min  [hook, CRCW]
///   4  vertex v reads parent[v]                             -> p1
///   5  vertex v reads parent[p1]                            -> p2
///   6  vertex v (p2 != p1) writes parent[v] = p2            [shortcut]
///   7  every processor that changed something writes flag = 1  [combined]
///   8  processor 0 reads the flag (round changed nothing -> converged)
///   9  processor 0 resets the flag
///
/// The guard in phase 3 makes every parent cell monotonically
/// non-increasing (a plain hook against a stale read could raise it), which
/// is the termination argument: a non-converged round strictly decreases
/// some cell, and cells are bounded below by 0. At the fixpoint every
/// parent is a root and every edge joins equal labels.
class ConnectedComponentsProgram : public PramProgram {
 public:
  explicit ConnectedComponentsProgram(const GraphInput& graph, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  /// Component labels after the run, canonicalized to the minimum vertex id
  /// per component (directly comparable with reference_components()).
  std::vector<i64> labels() const;

  i64 vars_needed() const { return n_ + 1; }
  i64 rounds_executed() const { return rounds_executed_; }

 private:
  i64 n_;
  i64 m_;
  i64 base_;
  std::vector<i64> eu_, ev_;        ///< edge endpoints (local knowledge)
  std::vector<i64> pu_, pv_, cur_;  ///< per-edge reads this round
  std::vector<i64> p1_, p2_;        ///< per-vertex reads this round; at the
                                    ///< fixpoint p1_ holds the final labels
  std::vector<char> edge_changed_, vert_changed_;
  bool converged_ = false;
  i64 rounds_executed_ = 0;
};

}  // namespace meshpram::algo
