#include "algo/staples.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

namespace {

int ceil_log2(i64 n) {
  int r = 0;
  i64 p = 1;
  while (p < n) {
    p *= 2;
    ++r;
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// PrefixSumProgram
// ---------------------------------------------------------------------------

PrefixSumProgram::PrefixSumProgram(std::vector<i64> input, i64 base_var)
    : n_(static_cast<i64>(input.size())), base_(base_var),
      rounds_(ceil_log2(static_cast<i64>(input.size()))),
      local_(std::move(input)),
      incoming_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "prefix sum over empty input");
}

i64 PrefixSumProgram::processors() const { return n_; }

bool PrefixSumProgram::done(i64 step) const {
  return step >= 1 + 2 * rounds_;
}

AccessRequest PrefixSumProgram::plan(i64 proc, i64 step) {
  if (step == 0) {  // publish the input
    return {base_ + proc, Op::Write, local_[static_cast<size_t>(proc)]};
  }
  const i64 round = (step - 1) / 2;
  const i64 offset = i64{1} << round;
  const bool read_phase = ((step - 1) % 2) == 0;
  if (proc < offset) return {};  // idle this round
  if (read_phase) {
    return {base_ + proc - offset, Op::Read, 0};
  }
  local_[static_cast<size_t>(proc)] += incoming_[static_cast<size_t>(proc)];
  return {base_ + proc, Op::Write, local_[static_cast<size_t>(proc)]};
}

void PrefixSumProgram::receive(i64 proc, i64 /*step*/, i64 value) {
  incoming_[static_cast<size_t>(proc)] = value;
}

std::vector<i64> PrefixSumProgram::expected(const std::vector<i64>& input) {
  std::vector<i64> out(input.size());
  i64 acc = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    acc += input[i];
    out[i] = acc;
  }
  return out;
}

// ---------------------------------------------------------------------------
// BlellochScanProgram
// ---------------------------------------------------------------------------
//
// Step schedule (L = log2 padded):
//   0                       publish x[j] (input, 0-padded)
//   1 .. 2L                 up-sweep, 2 steps per level d = 0..L-1:
//                             read x[j - 2^d], write x[j] += it
//   2L + 1                  clear root: proc P-1 writes x[P-1] = 0
//   2L + 2 .. 6L + 1        down-sweep, 4 steps per level d = L-1..0:
//                             read x[j], read x[j - 2^d],
//                             write x[j - 2^d] = x[j],
//                             write x[j] = sum of the two reads
//   6L + 2                  gather: proc j < n reads x[j] (its exclusive
//                             prefix) and adds its own input locally
//
// Active processors at level d are j with j mod 2^(d+1) == 2^(d+1) - 1; each
// touches only {j, j - 2^d}, and active js are 2^(d+1) apart, so every step
// is EREW. The down-sweep re-reads x[j] from shared memory instead of using
// the up-sweep mirror because parents overwrite their left child's cell.

BlellochScanProgram::BlellochScanProgram(std::vector<i64> input, i64 base_var)
    : n_(static_cast<i64>(input.size())),
      padded_(i64{1} << ceil_log2(static_cast<i64>(input.size()))),
      levels_(ceil_log2(static_cast<i64>(input.size()))),
      base_(base_var),
      input_(std::move(input)),
      own_(static_cast<size_t>(padded_), 0),
      left_(static_cast<size_t>(padded_), 0),
      result_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "scan over empty input");
}

i64 BlellochScanProgram::processors() const { return padded_; }

bool BlellochScanProgram::done(i64 step) const {
  return step >= 6 * levels_ + 3;
}

AccessRequest BlellochScanProgram::plan(i64 proc, i64 step) {
  const size_t p = static_cast<size_t>(proc);
  if (step == 0) {  // publish (identity padding above n)
    const i64 v = proc < n_ ? input_[p] : 0;
    own_[p] = v;
    return {base_ + proc, Op::Write, v};
  }
  const i64 up_end = 2 * levels_;
  if (step <= up_end) {  // up-sweep
    const i64 d = (step - 1) / 2;
    const i64 span = i64{1} << (d + 1);
    if (proc % span != span - 1) return {};
    if ((step - 1) % 2 == 0) return {base_ + proc - span / 2, Op::Read, 0};
    own_[p] += left_[p];
    return {base_ + proc, Op::Write, own_[p]};
  }
  if (step == up_end + 1) {  // clear root
    if (proc != padded_ - 1) return {};
    own_[p] = 0;
    return {base_ + proc, Op::Write, 0};
  }
  const i64 down_start = up_end + 2;
  const i64 down_end = down_start + 4 * levels_ - 1;
  if (step <= down_end) {  // down-sweep
    const i64 lvl = (step - down_start) / 4;
    const i64 d = levels_ - 1 - lvl;
    const i64 span = i64{1} << (d + 1);
    if (proc % span != span - 1) return {};
    switch ((step - down_start) % 4) {
      case 0: return {base_ + proc, Op::Read, 0};
      case 1: return {base_ + proc - span / 2, Op::Read, 0};
      case 2: return {base_ + proc - span / 2, Op::Write, own_[p]};
      default: return {base_ + proc, Op::Write, own_[p] + left_[p]};
    }
  }
  // gather: x[j] now holds the exclusive prefix sum
  if (proc >= n_) return {};
  return {base_ + proc, Op::Read, 0};
}

void BlellochScanProgram::receive(i64 proc, i64 step, i64 value) {
  const size_t p = static_cast<size_t>(proc);
  const i64 up_end = 2 * levels_;
  if (step <= up_end) {  // up-sweep left-child read
    left_[p] = value;
    return;
  }
  const i64 down_start = up_end + 2;
  const i64 down_end = down_start + 4 * levels_ - 1;
  if (step <= down_end) {
    if ((step - down_start) % 4 == 0) {
      own_[p] = value;
    } else {
      left_[p] = value;
    }
    return;
  }
  result_[p] = value + input_[p];  // inclusive = exclusive + own input
}

// ---------------------------------------------------------------------------
// ListRankingProgram
// ---------------------------------------------------------------------------

ListRankingProgram::ListRankingProgram(std::vector<i64> succ, i64 base_var)
    : n_(static_cast<i64>(succ.size())), base_(base_var),
      rounds_(ceil_log2(static_cast<i64>(succ.size()))),
      succ_(std::move(succ)),
      rank_(static_cast<size_t>(n_), 0),
      read_succ_(static_cast<size_t>(n_), -1),
      read_rank_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "list ranking over empty list");
  for (i64 i = 0; i < n_; ++i) {
    const i64 s = succ_[static_cast<size_t>(i)];
    MP_REQUIRE(s == -1 || (0 <= s && s < n_ && s != i),
               "bad successor " << s << " at node " << i);
    rank_[static_cast<size_t>(i)] = (s == -1) ? 0 : 1;
  }
}

i64 ListRankingProgram::processors() const { return n_; }

bool ListRankingProgram::done(i64 step) const {
  return step >= 2 + 4 * rounds_;
}

AccessRequest ListRankingProgram::plan(i64 proc, i64 step) {
  const size_t p = static_cast<size_t>(proc);
  if (step == 0) return {base_ + proc, Op::Write, succ_[p]};
  if (step == 1) return {base_ + n_ + proc, Op::Write, rank_[p]};
  const i64 phase = (step - 2) % 4;
  if (succ_[p] < 0) return {};  // reached the tail: idle
  switch (phase) {
    case 0:  // read succ[succ[i]]
      return {base_ + succ_[p], Op::Read, 0};
    case 1:  // read rank[succ[i]]
      return {base_ + n_ + succ_[p], Op::Read, 0};
    case 2:  // write updated rank[i]
      rank_[p] += read_rank_[p];
      return {base_ + n_ + proc, Op::Write, rank_[p]};
    default:  // write updated succ[i]
      succ_[p] = read_succ_[p];
      return {base_ + proc, Op::Write, succ_[p]};
  }
}

void ListRankingProgram::receive(i64 proc, i64 step, i64 value) {
  const size_t p = static_cast<size_t>(proc);
  const i64 phase = (step - 2) % 4;
  if (phase == 0) {
    read_succ_[p] = value;
  } else if (phase == 1) {
    read_rank_[p] = value;
  }
}

std::vector<i64> ListRankingProgram::expected(const std::vector<i64>& succ) {
  std::vector<i64> out(succ.size(), 0);
  for (size_t i = 0; i < succ.size(); ++i) {
    i64 d = 0;
    i64 at = static_cast<i64>(i);
    while (succ[static_cast<size_t>(at)] != -1) {
      at = succ[static_cast<size_t>(at)];
      ++d;
      MP_REQUIRE(d <= static_cast<i64>(succ.size()), "successor cycle");
    }
    out[i] = d;
  }
  return out;
}

// ---------------------------------------------------------------------------
// OddEvenSortProgram
// ---------------------------------------------------------------------------

OddEvenSortProgram::OddEvenSortProgram(std::vector<i64> input, i64 base_var)
    : n_(static_cast<i64>(input.size())), base_(base_var),
      local_(std::move(input)), partner_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "sorting an empty input");
}

i64 OddEvenSortProgram::processors() const { return n_; }

bool OddEvenSortProgram::done(i64 step) const { return step >= 1 + 2 * n_; }

AccessRequest OddEvenSortProgram::plan(i64 proc, i64 step) {
  const size_t p = static_cast<size_t>(proc);
  if (step == 0) return {base_ + proc, Op::Write, local_[p]};
  const i64 round = (step - 1) / 2;
  const bool read_phase = ((step - 1) % 2) == 0;
  // Matching of round t: pairs (j, j+1) with j = t mod 2, t mod 2 + 2, ...
  const bool low = (proc % 2) == (round % 2);
  const i64 partner = low ? proc + 1 : proc - 1;
  if (partner < 0 || partner >= n_) return {};  // unpaired this round
  if (read_phase) return {base_ + partner, Op::Read, 0};
  // Write phase: low keeps the min, high keeps the max.
  const i64 mine = local_[p];
  const i64 theirs = partner_[p];
  local_[p] = low ? std::min(mine, theirs) : std::max(mine, theirs);
  return {base_ + proc, Op::Write, local_[p]};
}

void OddEvenSortProgram::receive(i64 proc, i64 /*step*/, i64 value) {
  partner_[static_cast<size_t>(proc)] = value;
}

// ---------------------------------------------------------------------------
// BitonicSortProgram
// ---------------------------------------------------------------------------

BitonicSortProgram::BitonicSortProgram(std::vector<i64> input, i64 base_var)
    : n_(static_cast<i64>(input.size())),
      levels_(ceil_log2(static_cast<i64>(input.size()))),
      rounds_(0), base_(base_var),
      local_(std::move(input)), partner_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "sorting an empty input");
  MP_REQUIRE((n_ & (n_ - 1)) == 0,
             "bitonic sort needs a power-of-two input, got " << n_);
  rounds_ = i64{levels_} * (levels_ + 1) / 2;
}

i64 BitonicSortProgram::processors() const { return n_; }

bool BitonicSortProgram::done(i64 step) const {
  return step >= 1 + 2 * rounds_;
}

void BitonicSortProgram::round_shape(i64 round, i64* size, i64* stride) const {
  // Rounds enumerate (size = 2^lvl, stride = 2^(lvl-1) .. 1) for lvl = 1..L.
  i64 r = round;
  for (int lvl = 1; lvl <= levels_; ++lvl) {
    if (r < lvl) {
      *size = i64{1} << lvl;
      *stride = i64{1} << (lvl - 1 - r);
      return;
    }
    r -= lvl;
  }
  MP_ASSERT(false, "bitonic round " << round << " out of range");
}

AccessRequest BitonicSortProgram::plan(i64 proc, i64 step) {
  const size_t p = static_cast<size_t>(proc);
  if (step == 0) return {base_ + proc, Op::Write, local_[p]};
  const i64 round = (step - 1) / 2;
  i64 size = 0;
  i64 stride = 0;
  round_shape(round, &size, &stride);
  const i64 partner = proc ^ stride;
  if ((step - 1) % 2 == 0) return {base_ + partner, Op::Read, 0};
  // Write phase: the block containing proc sorts ascending when the `size`
  // bit of proc is clear; within the pair, the smaller index keeps the
  // smaller value of an ascending block.
  const bool ascending = (proc & size) == 0;
  const bool keep_min = (proc < partner) == ascending;
  const i64 mine = local_[p];
  const i64 theirs = partner_[p];
  local_[p] = keep_min ? std::min(mine, theirs) : std::max(mine, theirs);
  return {base_ + proc, Op::Write, local_[p]};
}

void BitonicSortProgram::receive(i64 proc, i64 /*step*/, i64 value) {
  partner_[static_cast<size_t>(proc)] = value;
}

// ---------------------------------------------------------------------------
// MatVecProgram
// ---------------------------------------------------------------------------

MatVecProgram::MatVecProgram(i64 s, i64 base_var)
    : s_(s), base_(base_var), acc_(static_cast<size_t>(s), 0),
      a_read_(static_cast<size_t>(s), 0) {
  MP_REQUIRE(s >= 1, "matvec with s=" << s);
}

i64 MatVecProgram::processors() const { return s_; }

bool MatVecProgram::done(i64 step) const { return step >= 2 * s_ + 1; }

AccessRequest MatVecProgram::plan(i64 proc, i64 step) {
  if (step == 2 * s_) {  // publish b[i]
    return {base_ + s_ * s_ + s_ + proc, Op::Write,
            acc_[static_cast<size_t>(proc)]};
  }
  const i64 round = step / 2;
  const i64 j = (proc + round) % s_;  // skewed column index: all distinct
  if (step % 2 == 0) return {base_ + proc * s_ + j, Op::Read, 0};  // A[i][j]
  return {base_ + s_ * s_ + j, Op::Read, 0};                        // x[j]
}

void MatVecProgram::receive(i64 proc, i64 step, i64 value) {
  const size_t p = static_cast<size_t>(proc);
  if (step % 2 == 0) {
    a_read_[p] = value;
  } else {
    acc_[p] += a_read_[p] * value;
  }
}

void MatVecProgram::preload(PramBackend& backend, const std::vector<i64>& a,
                            const std::vector<i64>& x) const {
  MP_REQUIRE(static_cast<i64>(a.size()) == s_ * s_, "A must be s x s");
  MP_REQUIRE(static_cast<i64>(x.size()) == s_, "x must have s entries");
  // s write steps for A (one column of rows per step), one for x.
  for (i64 j = 0; j < s_; ++j) {
    std::vector<AccessRequest> reqs(static_cast<size_t>(s_));
    for (i64 i = 0; i < s_; ++i) {
      reqs[static_cast<size_t>(i)] = {base_ + i * s_ + j, Op::Write,
                                      a[static_cast<size_t>(i * s_ + j)]};
    }
    backend.step(reqs);
  }
  std::vector<AccessRequest> reqs(static_cast<size_t>(s_));
  for (i64 i = 0; i < s_; ++i) {
    reqs[static_cast<size_t>(i)] = {base_ + s_ * s_ + i, Op::Write,
                                    x[static_cast<size_t>(i)]};
  }
  backend.step(reqs);
}

}  // namespace meshpram
