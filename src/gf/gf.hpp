// GF(q) for prime powers q, with elements represented as integers 0..q-1.
//
// The paper's BIBD construction (Appendix) identifies field elements with the
// integers 0..q-1 and uses only + and ·. For q = p^e, the integer x encodes
// the polynomial whose base-p digits are its coefficients; add/mul tables are
// precomputed once (q is O(1) in the paper — 3 in all recommended configs).
#pragma once

#include <memory>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace meshpram {

class GF {
 public:
  /// Builds GF(q). Throws ConfigError if q is not a prime power >= 2.
  explicit GF(i64 q);

  i64 order() const { return q_; }
  i64 characteristic() const { return p_; }
  int extension_degree() const { return e_; }

  i64 add(i64 a, i64 b) const { return add_[idx(a, b)]; }
  i64 sub(i64 a, i64 b) const { return add(a, neg(b)); }
  i64 mul(i64 a, i64 b) const { return mul_[idx(a, b)]; }
  i64 neg(i64 a) const { return neg_[check(a)]; }

  /// Multiplicative inverse of a != 0; throws ConfigError on a == 0.
  i64 inv(i64 a) const;

  /// a / b for b != 0.
  i64 div(i64 a, i64 b) const { return mul(a, inv(b)); }

  /// Repeated squaring in the field.
  i64 pow(i64 a, i64 e) const;

  /// Shared, cached instance for order q (field tables are immutable).
  static const GF& get(i64 q);

 private:
  size_t idx(i64 a, i64 b) const {
    return static_cast<size_t>(check(a)) * static_cast<size_t>(q_) +
           static_cast<size_t>(check(b));
  }
  // Inline: the field ops sit under every incidence query on the protocol's
  // hot path (hundreds of millions of calls per simulated step).
  i64 check(i64 a) const {
    MP_REQUIRE(0 <= a && a < q_,
               "element " << a << " outside GF(" << q_ << ')');
    return a;
  }

  i64 q_;
  i64 p_;
  int e_;
  std::vector<i64> add_;
  std::vector<i64> mul_;
  std::vector<i64> neg_;
  std::vector<i64> inv_;
};

}  // namespace meshpram
