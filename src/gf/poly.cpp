#include "gf/poly.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram::gf {

void normalize(Poly& a) {
  while (!a.empty() && a.back() == 0) a.pop_back();
}

int degree(Poly a) {
  normalize(a);
  return static_cast<int>(a.size()) - 1;
}

Poly add(const Poly& a, const Poly& b, i64 p) {
  Poly r(std::max(a.size(), b.size()), 0);
  for (size_t i = 0; i < r.size(); ++i) {
    i64 v = 0;
    if (i < a.size()) v += a[i];
    if (i < b.size()) v += b[i];
    r[i] = v % p;
  }
  normalize(r);
  return r;
}

Poly mul(const Poly& a, const Poly& b, i64 p) {
  if (a.empty() || b.empty()) return {};
  Poly r(a.size() + b.size() - 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      r[i + j] = (r[i + j] + a[i] * b[j]) % p;
    }
  }
  normalize(r);
  return r;
}

Poly mod(Poly a, const Poly& m, i64 p) {
  normalize(a);
  MP_REQUIRE(!m.empty() && m.back() == 1, "modulus must be monic");
  const int dm = static_cast<int>(m.size()) - 1;
  while (static_cast<int>(a.size()) - 1 >= dm) {
    const i64 lead = a.back();
    const size_t shift = a.size() - m.size();
    for (size_t i = 0; i < m.size(); ++i) {
      a[shift + i] = ((a[shift + i] - lead * m[i]) % p + p * p) % p;
    }
    normalize(a);
  }
  return a;
}

namespace {

/// Enumerates the polynomial with coefficient vector = digits of `code` in
/// base p (degree < e), used to iterate all candidates/divisors.
Poly decode(i64 code, i64 p, int max_deg) {
  Poly a;
  for (int i = 0; i <= max_deg && code > 0; ++i) {
    a.push_back(code % p);
    code /= p;
  }
  normalize(a);
  return a;
}

}  // namespace

bool is_irreducible(const Poly& m, i64 p) {
  const int e = degree(m);
  MP_REQUIRE(e >= 1, "irreducibility of constant polynomial");
  if (e == 1) return true;
  // Trial division by every monic polynomial of degree 1..e/2.
  for (int d = 1; d <= e / 2; ++d) {
    const i64 lows = ipow(p, d);  // choices for coefficients below the lead
    for (i64 code = 0; code < lows; ++code) {
      Poly div = decode(code, p, d - 1);
      div.resize(static_cast<size_t>(d) + 1, 0);
      div[static_cast<size_t>(d)] = 1;  // monic
      if (mod(m, div, p).empty()) return false;
    }
  }
  return true;
}

Poly find_irreducible(i64 p, int e) {
  MP_REQUIRE(e >= 1, "find_irreducible: degree " << e);
  const i64 lows = ipow(p, e);
  for (i64 code = 0; code < lows; ++code) {
    Poly m = decode(code, p, e - 1);
    m.resize(static_cast<size_t>(e) + 1, 0);
    m[static_cast<size_t>(e)] = 1;
    if (is_irreducible(m, p)) return m;
  }
  throw InternalError("no irreducible polynomial found (impossible)");
}

}  // namespace meshpram::gf
