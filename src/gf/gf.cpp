#include "gf/gf.hpp"

#include <map>
#include <mutex>

#include "gf/poly.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

/// Integer <-> polynomial encoding: base-p digits are coefficients.
gf::Poly int_to_poly(i64 x, i64 p) {
  gf::Poly a;
  while (x > 0) {
    a.push_back(x % p);
    x /= p;
  }
  return a;
}

i64 poly_to_int(const gf::Poly& a, i64 p) {
  i64 x = 0;
  for (size_t i = a.size(); i > 0; --i) x = x * p + a[i - 1];
  return x;
}

}  // namespace

GF::GF(i64 q) : q_(q) {
  auto [p, e] = prime_power_decompose(q);
  p_ = p;
  e_ = e;
  const auto n = static_cast<size_t>(q);
  add_.resize(n * n);
  mul_.resize(n * n);
  neg_.resize(n);
  inv_.assign(n, -1);

  const gf::Poly modulus =
      e > 1 ? gf::find_irreducible(p, e) : gf::Poly{0, 1};  // unused for e==1

  for (i64 a = 0; a < q; ++a) {
    const gf::Poly pa = int_to_poly(a, p);
    for (i64 b = 0; b < q; ++b) {
      const gf::Poly pb = int_to_poly(b, p);
      if (e == 1) {
        add_[idx(a, b)] = (a + b) % p;
        mul_[idx(a, b)] = (a * b) % p;
      } else {
        add_[idx(a, b)] = poly_to_int(gf::add(pa, pb, p), p);
        mul_[idx(a, b)] = poly_to_int(gf::mod(gf::mul(pa, pb, p), modulus, p), p);
      }
    }
  }
  for (i64 a = 0; a < q; ++a) {
    for (i64 b = 0; b < q; ++b) {
      if (add_[idx(a, b)] == 0) neg_[static_cast<size_t>(a)] = b;
      if (mul_[idx(a, b)] == 1) inv_[static_cast<size_t>(a)] = b;
    }
  }
  for (i64 a = 1; a < q; ++a) {
    MP_ASSERT(inv_[static_cast<size_t>(a)] >= 0,
              "field table broken: no inverse for " << a << " in GF(" << q
                                                    << ')');
  }
}

i64 GF::inv(i64 a) const {
  MP_REQUIRE(a != 0, "inverse of zero in GF(" << q_ << ')');
  return inv_[static_cast<size_t>(check(a))];
}

i64 GF::pow(i64 a, i64 e) const {
  MP_REQUIRE(e >= 0, "GF::pow negative exponent");
  i64 r = 1;
  i64 base = check(a);
  while (e > 0) {
    if (e & 1) r = mul(r, base);
    base = mul(base, base);
    e >>= 1;
  }
  return r;
}

const GF& GF::get(i64 q) {
  static std::mutex mu;
  static std::map<i64, std::unique_ptr<GF>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(q);
  if (it == cache.end()) {
    it = cache.emplace(q, std::make_unique<GF>(q)).first;
  }
  return *it->second;
}

}  // namespace meshpram
