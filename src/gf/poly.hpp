// Polynomial arithmetic over GF(p) used to construct GF(p^e).
//
// Polynomials are coefficient vectors (index = degree), coefficients in
// [0, p). Only what the field-table construction needs: multiplication,
// reduction, and a brute-force monic irreducible search — field orders here
// are tiny (q <= 64), so simplicity beats asymptotics.
#pragma once

#include <vector>

#include "util/math.hpp"

namespace meshpram::gf {

using Poly = std::vector<i64>;

/// Removes leading zero coefficients (the zero polynomial becomes empty).
void normalize(Poly& a);

/// Degree of a (normalized internally); the zero polynomial has degree -1.
int degree(Poly a);

Poly add(const Poly& a, const Poly& b, i64 p);
Poly mul(const Poly& a, const Poly& b, i64 p);

/// Remainder of a modulo the monic polynomial m, coefficients mod p.
Poly mod(Poly a, const Poly& m, i64 p);

/// True if the monic polynomial m of degree e >= 1 has no roots decomposable
/// into lower-degree monic factors (checked by exhaustive trial division —
/// fine for p^e <= a few thousand).
bool is_irreducible(const Poly& m, i64 p);

/// Finds some monic irreducible polynomial of degree e over GF(p).
/// Deterministic: returns the lexicographically smallest one.
Poly find_irreducible(i64 p, int e);

}  // namespace meshpram::gf
