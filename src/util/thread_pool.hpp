// Fixed-size thread pool for the host-parallel execution engine.
//
// The paper's staged protocol runs every phase "in parallel and independently
// in every level-i submesh"; the simulator exploits exactly that structure for
// real host parallelism. The pool hands out loop indices to a fixed set of
// workers (plus the calling thread); the *counted* mesh steps never depend on
// the thread count because every consumer merges per-region costs in region
// order after the join (see src/mesh/parallel.hpp and DESIGN.md §7).
#pragma once

#include <functional>
#include <memory>

#include "util/math.hpp"

namespace meshpram {

class ThreadPool {
 public:
  /// Creates a pool that executes loops on `threads` threads in total
  /// (threads - 1 workers plus the calling thread). threads >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, count), distributing indices dynamically
  /// over the workers and the calling thread; blocks until all indices are
  /// done. The first exception thrown by any fn is rethrown in the caller
  /// (remaining indices still run to completion so the pool stays reusable).
  /// Contract: fn(i) and fn(j) must touch disjoint state for i != j.
  /// Not reentrant: fn must not call back into the same pool.
  void for_each_index(i64 count, const std::function<void(i64)>& fn);

  /// Chunked variant for flat per-node loops: splits [0, count) into at most
  /// threads() * 4 contiguous chunks of at least `min_grain` indices and runs
  /// fn(begin, end) per chunk. Chunk boundaries affect scheduling only: as
  /// long as the per-index work is disjoint, every index computes the same
  /// value under any chunking, so results are thread-count invariant.
  void for_each_chunk(i64 count, i64 min_grain,
                      const std::function<void(i64, i64)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int threads_;
};

/// Pool used by the mesh execution engine for the calling thread. By default
/// every thread shares one process-wide pool, sized by the last
/// set_execution_threads() call, else the MESHPRAM_THREADS environment
/// variable, else std::thread::hardware_concurrency(). A ScopedPool guard
/// overrides the answer for the installing thread only, so independent
/// drivers (one simulator per thread, or a serve scheduler) each get a pool
/// of their own instead of colliding on the shared one — ThreadPool is not
/// reentrant, so two threads racing for_each_index on the same pool was a
/// latent crash, not just unfairness.
ThreadPool& execution_pool();

/// RAII override of execution_pool() for the current thread. While alive,
/// every execution_pool()/execution_threads() call made on this thread (and
/// only this thread — pool worker threads stay serial by the
/// in_parallel_worker() rule, so they never consult the slot) resolves to
/// `pool`. Guards nest; destruction restores the previous override.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool& pool);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* prev_;
};

/// True while the calling thread is executing loop indices handed out by a
/// ThreadPool (including the calling thread's own participation). Kernels
/// that can spawn an intra-region worker team (route_greedy stripes, the
/// meshsort rounds) consult this to stay serial when they are themselves a
/// pool task: the pool is not reentrant, and the per-region disjointness that
/// makes the outer loop deterministic already provides the parallelism.
bool in_parallel_worker();

/// Current size of the execution pool.
int execution_threads();

/// Resizes the execution pool (0 restores the environment/hardware default).
/// Must not be called while a loop is running on the pool.
void set_execution_threads(int threads);

}  // namespace meshpram
