#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace meshpram {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  if (v != 0 && (std::abs(v) >= 1e6 || std::abs(v) < 1e-3)) {
    os << std::scientific << std::setprecision(precision) << v;
  } else {
    os << std::fixed << std::setprecision(precision) << v;
    // Trim trailing zeros (keep at most one decimal digit of padding).
    std::string s = os.str();
    if (s.find('.') != std::string::npos) {
      while (s.back() == '0') s.pop_back();
      if (s.back() == '.') s.pop_back();
    }
    return s;
  }
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MP_REQUIRE(cells.size() == headers_.size(),
             "row arity " << cells.size() << " != header arity "
                          << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::right
         << cells[c] << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

}  // namespace meshpram
