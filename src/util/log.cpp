#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace meshpram {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
LogSink g_sink;  // empty = default clog output

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::clog << "[meshpram " << level_name(level) << "] " << msg << '\n';
}

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

}  // namespace meshpram
