#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/log.hpp"

namespace meshpram {

std::optional<i64> env_i64(const char* name, i64 min, i64 max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    MP_WARN(name << "='" << raw << "' is not an integer; ignoring it");
    return std::nullopt;
  }
  if (v < min || v > max) {
    MP_WARN(name << '=' << v << " outside [" << min << ", " << max
                 << "]; ignoring it");
    return std::nullopt;
  }
  return static_cast<i64>(v);
}

std::optional<std::string> env_str(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

}  // namespace meshpram
