// Bounds-checked little-endian binary encoding.
//
// Shared by the fault-plan serializer, the serve snapshot format and the
// serve wire protocol: one writer/reader pair so every binary surface in the
// tree agrees on endianness and on how truncation is reported. Readers throw
// ConfigError (never read past the end, never trust an embedded length), so a
// corrupted or truncated input becomes a clear message instead of UB.
#pragma once

#include <cstring>
#include <string>
#include <string_view>

#include "util/error.hpp"
#include "util/math.hpp"

namespace meshpram {

/// Appends fixed-width little-endian values to a byte string.
class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(out) {}

  void put_u8(unsigned char v) { out_.push_back(static_cast<char>(v)); }
  void put_u32(u32 v) { put_le(v, 4); }
  void put_u64(u64 v) { put_le(v, 8); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v), 8); }
  void put_f64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits, 8);
  }
  /// Length-prefixed (u32) byte blob.
  void put_blob(std::string_view bytes) {
    put_u32(static_cast<u32>(bytes.size()));
    out_.append(bytes.data(), bytes.size());
  }
  void put_str(std::string_view s) { put_blob(s); }

  size_t size() const { return out_.size(); }

 private:
  void put_le(u64 v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string& out_;
};

/// Reads what ByteWriter wrote; every read is bounds-checked against the
/// underlying view and throws ConfigError on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes, std::string_view what = "input")
      : bytes_(bytes), what_(what) {}

  unsigned char get_u8() { return static_cast<unsigned char>(take(1)[0]); }
  u32 get_u32() { return static_cast<u32>(get_le(4)); }
  u64 get_u64() { return get_le(8); }
  i64 get_i64() { return static_cast<i64>(get_le(8)); }
  double get_f64() {
    const u64 bits = get_le(8);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string_view get_blob() {
    const u32 len = get_u32();
    return take(len);
  }
  std::string get_str() { return std::string(get_blob()); }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }
  size_t pos() const { return pos_; }
  /// Bytes consumed so far (for checksumming a prefix).
  std::string_view consumed() const { return bytes_.substr(0, pos_); }

  /// Fails with a clear message unless exactly everything was consumed.
  void expect_done() const {
    MP_REQUIRE(done(), what_ << ": " << remaining()
                             << " trailing byte(s) after the last field");
  }

 private:
  std::string_view take(size_t n) {
    MP_REQUIRE(n <= remaining(), what_ << ": truncated — needed " << n
                                       << " byte(s) at offset " << pos_
                                       << ", have " << remaining());
    const std::string_view v = bytes_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  u64 get_le(int bytes) {
    const std::string_view v = take(static_cast<size_t>(bytes));
    u64 out = 0;
    for (int i = 0; i < bytes; ++i) {
      out |= static_cast<u64>(
                 static_cast<unsigned char>(v[static_cast<size_t>(i)]))
             << (8 * i);
    }
    return out;
  }

  std::string_view bytes_;
  std::string_view what_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit checksum (the snapshot trailer; not cryptographic, catches
/// truncation and bit corruption).
inline u64 fnv1a64(std::string_view bytes) {
  u64 h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace meshpram
