#include "util/csv.hpp"

#include "util/error.hpp"

namespace meshpram {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& headers)
    : out_(path), arity_(headers.size()) {
  MP_REQUIRE(out_.good(), "cannot open CSV file " << path);
  write_row(headers);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MP_REQUIRE(cells.size() == arity_,
             "CSV row arity " << cells.size() << " != " << arity_);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace meshpram
