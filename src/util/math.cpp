#include "util/math.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace meshpram {

i64 ipow(i64 q, int e) {
  MP_REQUIRE(q >= 0 && e >= 0, "ipow: q=" << q << " e=" << e);
  i64 r = 1;
  for (int i = 0; i < e; ++i) {
    MP_ASSERT(q == 0 || r <= std::numeric_limits<i64>::max() / q,
              "ipow overflow: " << q << '^' << e);
    r *= q;
  }
  return r;
}

i64 isqrt(i64 x) {
  MP_REQUIRE(x >= 0, "isqrt of negative " << x);
  if (x < 2) return x;
  i64 r = static_cast<i64>(std::sqrt(static_cast<double>(x)));
  while (r > 0 && r > x / r) --r;  // r^2 > x, via overflow-safe division
  // Overflow-safe increment check: (r+1)^2 <= x  <=>  r+1 <= x/(r+1).
  while (r + 1 <= x / (r + 1)) ++r;
  return r;
}

int ilog(i64 b, i64 x) {
  MP_REQUIRE(b >= 2 && x >= 1, "ilog: b=" << b << " x=" << x);
  int e = 0;
  i64 p = 1;
  while (p <= x / b) {
    p *= b;
    ++e;
  }
  return e;
}

bool is_prime(i64 p) {
  if (p < 2) return false;
  for (i64 d = 2; d * d <= p; ++d) {
    if (p % d == 0) return false;
  }
  return true;
}

std::pair<i64, int> prime_power_decompose(i64 q) {
  MP_REQUIRE(q >= 2, "prime power must be >= 2, got " << q);
  for (i64 p = 2; p <= q; ++p) {
    if (!is_prime(p)) continue;
    if (q % p != 0) continue;
    i64 r = q;
    int e = 0;
    while (r % p == 0) {
      r /= p;
      ++e;
    }
    MP_REQUIRE(r == 1, q << " is not a prime power (divisible by " << p
                         << " but not a power of it)");
    return {p, e};
  }
  throw ConfigError("unreachable: no prime factor found");
}

i64 bibd_input_count(i64 q, int s) {
  MP_REQUIRE(q >= 2 && s >= 1, "bibd_input_count: q=" << q << " s=" << s);
  return ipow(q, s - 1) * ((ipow(q, s) - 1) / (q - 1));
}

}  // namespace meshpram
