#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace meshpram {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  MP_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
             "fit_linear needs >= 2 paired points, got " << xs.size() << '/'
                                                         << ys.size());
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double den = n * sxx - sx * sx;
  MP_REQUIRE(den != 0, "fit_linear: degenerate x values");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / den;
  f.intercept = (sy - f.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  double sse = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.intercept + f.slope * xs[i]);
    sse += e * e;
  }
  f.r2 = sst > 0 ? 1.0 - sse / sst : 1.0;
  return f;
}

LinearFit fit_power_law(const std::vector<double>& ns,
                        const std::vector<double>& ts) {
  MP_REQUIRE(ns.size() == ts.size(), "fit_power_law: size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(ns.size());
  ly.reserve(ts.size());
  for (size_t i = 0; i < ns.size(); ++i) {
    MP_REQUIRE(ns[i] > 0 && ts[i] > 0, "fit_power_law needs positive data");
    lx.push_back(std::log(ns[i]));
    ly.push_back(std::log(ts[i]));
  }
  return fit_linear(lx, ly);
}

}  // namespace meshpram
