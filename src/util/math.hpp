// Exact integer math helpers used throughout the HMOS parameter calculations.
//
// All quantities in the paper (module counts m_i = q^{d_i}, BIBD sizes
// f(d) = q^{d-1}(q^d-1)/(q-1), tessellation sizes) are exact integers; these
// helpers keep the arithmetic in 64 bits with overflow checks instead of
// drifting through doubles.
#pragma once

#include <cstdint>
#include <utility>

namespace meshpram {

using i16 = std::int16_t;
using u16 = std::uint16_t;
using i32 = std::int32_t;
using u32 = std::uint32_t;
using i64 = std::int64_t;
using u64 = std::uint64_t;

/// q^e with overflow detection (throws InternalError on overflow).
i64 ipow(i64 q, int e);

/// Floor of the square root of x >= 0.
i64 isqrt(i64 x);

/// Ceiling division for non-negative a, positive b.
constexpr i64 ceil_div(i64 a, i64 b) { return (a + b - 1) / b; }

/// Floor of log base b of x (x >= 1, b >= 2).
int ilog(i64 b, i64 x);

/// True if p is prime (trial division; inputs are tiny field orders).
bool is_prime(i64 p);

/// Decomposes q = p^e with p prime, e >= 1. Returns {p, e}; throws ConfigError
/// if q is not a prime power >= 2.
std::pair<i64, int> prime_power_decompose(i64 q);

/// f(s) = q^{s-1} (q^s - 1)/(q - 1): number of inputs of a (q^s, q)-BIBD.
i64 bibd_input_count(i64 q, int s);

}  // namespace meshpram
