#include "util/simd.hpp"

#include <atomic>
#include <cstring>

#include "util/env.hpp"

#if !defined(MESHPRAM_NO_SIMD) && defined(__x86_64__)
#define MESHPRAM_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#else
#define MESHPRAM_HAVE_AVX2_BUILD 0
#endif

namespace meshpram::simd {

namespace {

/// -1 = undecided, 0 = scalar, 1 = avx2. Atomic: under the distributed
/// machine several rank threads can make the first kernel call at once, and
/// all must see a torn-free decision (every writer computes the same value,
/// so relaxed ordering suffices).
std::atomic<int> g_dispatch{-1};

bool cpu_and_env_allow() {
#if MESHPRAM_HAVE_AVX2_BUILD
  if (!__builtin_cpu_supports("avx2")) return false;
  if (const auto v = env_str("MESHPRAM_SIMD")) {
    if (*v == "off" || *v == "0" || *v == "OFF") return false;
  }
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Scalar definitions (the semantic reference).

void transit_scan_scalar(const void* recs, i64 n, i16 at_r, i16 at_c,
                         unsigned char* dirs, u16* rems) {
  const unsigned char* p = static_cast<const unsigned char*>(recs);
  for (i64 i = 0; i < n; ++i, p += 8) {
    i16 dest_r, dest_c;
    std::memcpy(&dest_r, p + 4, sizeof(dest_r));
    std::memcpy(&dest_c, p + 6, sizeof(dest_c));
    const int dr = dest_r - at_r;
    const int dc = dest_c - at_c;
    unsigned char d = 0;  // North (dr < 0) and "arrived" both encode as 0.
    if (dc > 0) {
      d = 1;  // East
    } else if (dc < 0) {
      d = 3;  // West
    } else if (dr > 0) {
      d = 2;  // South
    }
    dirs[i] = d;
    rems[i] = static_cast<u16>((dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc));
  }
}

i64 first_key_violation_scalar(const void* recs, i64 rec_bytes, i64 n) {
  const unsigned char* p = static_cast<const unsigned char*>(recs);
  for (i64 i = 0; i + 1 < n; ++i) {
    u64 a, b;
    std::memcpy(&a, p + i * rec_bytes, sizeof(a));
    std::memcpy(&b, p + (i + 1) * rec_bytes, sizeof(b));
    if (a >= b) return i;
  }
  return n > 0 ? n - 1 : 0;
}

void and_bytes_scalar(unsigned char* dst, const unsigned char* a,
                      const unsigned char* b, i64 n) {
  for (i64 i = 0; i < n; ++i) dst[i] = static_cast<unsigned char>(a[i] & b[i]);
}

// ---------------------------------------------------------------------------
// AVX2 variants. Compiled with a function-level target so the translation
// unit (and everything else) keeps the baseline ISA.
#if MESHPRAM_HAVE_AVX2_BUILD

__attribute__((target("avx2"))) void transit_scan_avx2(
    const void* recs, i64 n, i16 at_r, i16 at_c, unsigned char* dirs,
    u16* rems) {
  // Four 8-byte records per 256-bit vector; each record is four i16 lanes
  // [handle_lo, handle_hi, dest_r, dest_c].
  const __m256i base = _mm256_set_epi16(at_c, at_r, 0, 0, at_c, at_r, 0, 0,
                                        at_c, at_r, 0, 0, at_c, at_r, 0, 0);
  // madd selector: 1 at the dr/dc lanes, 0 at the handle lanes, so the
  // per-pair products sum to [0, |dr|+|dc|] per record.
  const __m256i sel = _mm256_set_epi16(1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1,
                                       1, 0, 0);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi16(1);
  const __m256i two = _mm256_set1_epi16(2);
  const __m256i three = _mm256_set1_epi16(3);
  const unsigned char* p = static_cast<const unsigned char*>(recs);
  i64 i = 0;
  alignas(32) i16 dir16[16];
  alignas(32) i32 rem32[8];
  for (; i + 4 <= n; i += 4, p += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i d = _mm256_sub_epi16(v, base);  // dr at lane 2, dc at 3
    const __m256i rem =
        _mm256_madd_epi16(_mm256_abs_epi16(d), sel);  // [.., rem] epi32 pairs
    _mm256_store_si256(reinterpret_cast<__m256i*>(rem32), rem);
    // Align dc onto the dr lane (per-128 byte shift), then decide the
    // direction branchlessly at lane 4j+2 of each record.
    const __m256i dc = _mm256_srli_si256(d, 2);
    const __m256i east = _mm256_cmpgt_epi16(dc, zero);
    const __m256i west = _mm256_cmpgt_epi16(zero, dc);
    const __m256i south = _mm256_andnot_si256(
        _mm256_or_si256(east, west), _mm256_cmpgt_epi16(d, zero));
    const __m256i dir = _mm256_or_si256(
        _mm256_or_si256(_mm256_and_si256(east, one),
                        _mm256_and_si256(west, three)),
        _mm256_and_si256(south, two));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dir16), dir);
    dirs[i + 0] = static_cast<unsigned char>(dir16[2]);
    dirs[i + 1] = static_cast<unsigned char>(dir16[6]);
    dirs[i + 2] = static_cast<unsigned char>(dir16[10]);
    dirs[i + 3] = static_cast<unsigned char>(dir16[14]);
    rems[i + 0] = static_cast<u16>(rem32[1]);
    rems[i + 1] = static_cast<u16>(rem32[3]);
    rems[i + 2] = static_cast<u16>(rem32[5]);
    rems[i + 3] = static_cast<u16>(rem32[7]);
  }
  if (i < n) transit_scan_scalar(p, n - i, at_r, at_c, dirs + i, rems + i);
}

__attribute__((target("avx2"))) i64 first_key_violation_avx2(
    const void* recs, i64 rec_bytes, i64 n) {
  if (n < 2) return n > 0 ? n - 1 : 0;
  if (rec_bytes != 32) return first_key_violation_scalar(recs, rec_bytes, n);
  // 32-byte records: the leading keys of records i..i+3 sit 32 bytes apart.
  // Gather four keys by interleaving two strided loads, compare against the
  // shifted sequence; unsigned order via the sign-flip trick.
  const unsigned char* p = static_cast<const unsigned char*>(recs);
  const __m256i flip = _mm256_set1_epi64x(static_cast<long long>(1ULL << 63));
  i64 i = 0;
  for (; i + 5 <= n; i += 4) {
    // keys[i..i+4]: load the leading u64 of five consecutive records.
    const __m256i a = _mm256_set_epi64x(
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 3) * 32)),
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 2) * 32)),
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 1) * 32)),
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 0) * 32)));
    const __m256i b = _mm256_set_epi64x(
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 4) * 32)),
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 3) * 32)),
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 2) * 32)),
        static_cast<long long>(*reinterpret_cast<const u64*>(p + (i + 1) * 32)));
    // a[j] >= b[j]  <=>  NOT (a[j] < b[j])  (unsigned)
    const __m256i lt = _mm256_cmpgt_epi64(_mm256_xor_si256(b, flip),
                                          _mm256_xor_si256(a, flip));
    const int mask = _mm256_movemask_epi8(lt);
    if (mask != -1) {
      // Some lane not strictly increasing: find the first one.
      for (i64 j = i; j < i + 4; ++j) {
        u64 ka, kb;
        std::memcpy(&ka, p + j * 32, sizeof(ka));
        std::memcpy(&kb, p + (j + 1) * 32, sizeof(kb));
        if (ka >= kb) return j;
      }
    }
  }
  for (; i + 1 < n; ++i) {
    u64 ka, kb;
    std::memcpy(&ka, p + i * 32, sizeof(ka));
    std::memcpy(&kb, p + (i + 1) * 32, sizeof(kb));
    if (ka >= kb) return i;
  }
  return n - 1;
}

__attribute__((target("avx2"))) void and_bytes_avx2(unsigned char* dst,
                                                    const unsigned char* a,
                                                    const unsigned char* b,
                                                    i64 n) {
  i64 i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = static_cast<unsigned char>(a[i] & b[i]);
}

#endif  // MESHPRAM_HAVE_AVX2_BUILD

int dispatch() {
  int d = g_dispatch.load(std::memory_order_relaxed);
  if (d < 0) {
    d = cpu_and_env_allow() ? 1 : 0;
    g_dispatch.store(d, std::memory_order_relaxed);
  }
  return d;
}

}  // namespace

bool available() { return dispatch() == 1; }

void set_enabled(bool on) {
  g_dispatch.store((on && cpu_and_env_allow()) ? 1 : 0,
                   std::memory_order_relaxed);
}

const char* kernel_name() { return available() ? "avx2" : "scalar"; }

void transit_scan(const void* recs, i64 n, i16 at_r, i16 at_c,
                  unsigned char* dirs, u16* rems) {
#if MESHPRAM_HAVE_AVX2_BUILD
  // The vector body pays a fixed six-constant setup; routing queues are
  // mostly 1-4 deep, where that setup costs more than the whole scalar scan.
  if (n >= 8 && dispatch() == 1) {
    transit_scan_avx2(recs, n, at_r, at_c, dirs, rems);
    return;
  }
#endif
  transit_scan_scalar(recs, n, at_r, at_c, dirs, rems);
}

i64 first_key_violation(const void* recs, i64 rec_bytes, i64 n) {
#if MESHPRAM_HAVE_AVX2_BUILD
  if (dispatch() == 1) return first_key_violation_avx2(recs, rec_bytes, n);
#endif
  return first_key_violation_scalar(recs, rec_bytes, n);
}

void and_bytes(unsigned char* dst, const unsigned char* a,
               const unsigned char* b, i64 n) {
#if MESHPRAM_HAVE_AVX2_BUILD
  if (dispatch() == 1) {
    and_bytes_avx2(dst, a, b, n);
    return;
  }
#endif
  and_bytes_scalar(dst, a, b, n);
}

}  // namespace meshpram::simd
