// Descriptive statistics and scaling-law fits for the experiment harness.
//
// The paper's theorems predict power laws T(n) ~ c * n^e; the benches fit e by
// least squares on (log n, log T) and report it next to the predicted exponent.
#pragma once

#include <cstddef>
#include <vector>

#include "util/math.hpp"

namespace meshpram {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  size_t count = 0;
};

Summary summarize(const std::vector<double>& xs);

/// Least-squares fit y = a + b*x. Returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fits T = c * n^e through (n_i, T_i), all positive: log-log linear fit.
/// Returns {log c, e}.
LinearFit fit_power_law(const std::vector<double>& ns,
                        const std::vector<double>& ts);

}  // namespace meshpram
