// Tiny leveled logger. Default level is Warn so library code stays quiet in
// tests/benches; examples raise it to Info to narrate what the simulator does.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace meshpram {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

/// Redirects log_message into `sink` instead of std::clog (empty function
/// restores the default). For tests that assert on warning text (e.g. the
/// env-var rejection messages); not thread-safe against concurrent logging,
/// so install it only around serial code.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

}  // namespace meshpram

#define MP_LOG(level, msg)                                      \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::meshpram::log_level())) {            \
      std::ostringstream mp_log_os_;                            \
      mp_log_os_ << msg; /* NOLINT */                           \
      ::meshpram::log_message(level, mp_log_os_.str());         \
    }                                                           \
  } while (0)

#define MP_DEBUG(msg) MP_LOG(::meshpram::LogLevel::Debug, msg)
#define MP_INFO(msg) MP_LOG(::meshpram::LogLevel::Info, msg)
#define MP_WARN(msg) MP_LOG(::meshpram::LogLevel::Warn, msg)
#define MP_ERROR(msg) MP_LOG(::meshpram::LogLevel::Error, msg)
