// Error handling primitives shared by all meshpram modules.
//
// Contract-style checks: MP_REQUIRE validates caller-supplied arguments and
// configuration (throws meshpram::ConfigError), MP_ASSERT checks internal
// invariants (throws meshpram::InternalError). Both are always on: the
// simulator's value is its trustworthiness, and the checks are cheap relative
// to the simulated data movement.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace meshpram {

/// Invalid user-facing configuration or argument (bad mesh size, infeasible
/// HMOS parameters, non-prime-power q, ...).
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

/// Broken internal invariant; indicates a bug in meshpram itself.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

template <class Err>
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Err(os.str());
}

}  // namespace detail

}  // namespace meshpram

#define MP_REQUIRE(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream mp_os_;                                          \
      mp_os_ << msg; /* NOLINT */                                         \
      ::meshpram::detail::throw_check_failure<::meshpram::ConfigError>(   \
          "requirement", #cond, __FILE__, __LINE__, mp_os_.str());        \
    }                                                                     \
  } while (0)

#define MP_ASSERT(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream mp_os_;                                          \
      mp_os_ << msg; /* NOLINT */                                         \
      ::meshpram::detail::throw_check_failure<::meshpram::InternalError>( \
          "invariant", #cond, __FILE__, __LINE__, mp_os_.str());          \
    }                                                                     \
  } while (0)
