// Deterministic pseudo-random number generation.
//
// Every randomized workload generator in the benches and tests takes an
// explicit seed, so all experiments are exactly reproducible. We implement
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, rather than
// depending on the unspecified std::mt19937 stream across standard libraries.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/math.hpp"

namespace meshpram {

/// splitmix64 step: used for seeding and as a cheap mixing function.
u64 splitmix64(u64& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform integer in [0, bound) via rejection-free Lemire reduction
  /// (bias is negligible for bound << 2^64; we additionally reject to be exact).
  u64 below(u64 bound);

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (u64 i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// Random sample of k distinct values from [0, n) (k <= n).
  std::vector<i64> sample(i64 n, i64 k);

  /// The 256-bit generator state, for checkpointing a stream mid-sequence
  /// (serve snapshots): set_state(state()) resumes the exact sequence.
  std::array<u64, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<u64, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<size_t>(i)];
  }

 private:
  u64 s_[4];
};

}  // namespace meshpram
