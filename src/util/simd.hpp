// Explicitly vectorized hot-path kernels with runtime dispatch.
//
// Policy (DESIGN.md §12): every kernel has an always-compiled scalar
// implementation that is the semantic definition; the AVX2 variant is an
// exact drop-in (bit-identical outputs, enforced by the layout/SIMD test
// suite) selected at runtime when (a) the build enabled SIMD
// (MESHPRAM_SIMD CMake option, default ON), (b) the CPU reports AVX2, and
// (c) the MESHPRAM_SIMD environment variable is not "off"/"0". The AVX2
// bodies are compiled with a function-level target attribute, so the rest of
// the binary stays portable baseline code.
#pragma once

#include "util/math.hpp"

namespace meshpram::simd {

/// True when the AVX2 kernel variants are in use. Cached after first call;
/// set_enabled() below overrides it (tests force both paths).
bool available();

/// Forces the scalar (false) or, if the build/CPU allow it, the AVX2 (true)
/// kernels, overriding the environment gate. For the equivalence tests.
void set_enabled(bool on);

/// Human-readable dispatch state ("avx2" or "scalar") for bench metadata.
const char* kernel_name();

/// Routing-queue scan over n 8-byte transit records laid out as
/// {u32 handle; i16 dest_r; i16 dest_c} (static_asserted at the call site):
/// for each record, the XY-routing direction from (at_r, at_c) — the Dir
/// values 0=N 1=E 2=S 3=W, column resolved first — into dirs[i], and the
/// remaining Manhattan distance into rems[i]. A record already at the
/// destination gets rem 0 (the caller asserts that never happens).
void transit_scan(const void* recs, i64 n, i16 at_r, i16 at_c,
                  unsigned char* dirs, u16* rems);

/// First index i in [0, n-1) where key[i] >= key[i+1], reading the leading
/// u64 of each `rec_bytes`-sized record; n-1 when the key sequence is
/// strictly increasing (then the records are sorted under any key-first
/// order with no ties to check). The caller resumes its full comparator walk
/// at the returned index. rec_bytes must be a multiple of 8.
i64 first_key_violation(const void* recs, i64 rec_bytes, i64 n);

/// dst[i] = a[i] & b[i] for n bytes (the CULLING candidate-bitmap
/// intersection sweep).
void and_bytes(unsigned char* dst, const unsigned char* a,
               const unsigned char* b, i64 n);

}  // namespace meshpram::simd
