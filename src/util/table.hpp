// Minimal ASCII table printer used by the bench binaries to emit the
// paper-style result tables recorded in EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace meshpram {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell with operator<<.
  template <class... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  void print(std::ostream& os) const;

  size_t rows() const { return rows_.size(); }

 private:
  template <class T>
  static std::string format_cell(const T& v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 3);

}  // namespace meshpram

#include <sstream>
#include <type_traits>

namespace meshpram {

template <class T>
std::string Table::format_cell(const T& v) {
  if constexpr (std::is_same_v<T, double> || std::is_same_v<T, float>) {
    return format_double(static_cast<double>(v));
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}

}  // namespace meshpram
