// Checked environment-variable parsing.
//
// The tuning knobs (MESHPRAM_THREADS, MESHPRAM_STRIPE_MIN_NODES,
// MESHPRAM_BENCH_MAX_SIDE, ...) used to go through atoi/atoll, which silently
// turn garbage into 0 and wrap negatives into nonsense thresholds. env_i64
// parses strictly: the whole value must be a decimal integer within
// [min, max]; anything else logs one warning naming the variable and returns
// nullopt so the caller falls back to its default.
#pragma once

#include <optional>
#include <string>

#include "util/math.hpp"

namespace meshpram {

/// Value of environment variable `name` as an integer in [min, max], or
/// nullopt when the variable is unset, empty, non-numeric (including trailing
/// junk), or out of range. Every rejected set value logs a warning.
std::optional<i64> env_i64(const char* name, i64 min, i64 max);

/// Value of environment variable `name` as a string, or nullopt when unset or
/// empty. The single sanctioned getenv wrapper for string-valued knobs
/// (MESHPRAM_FAULT_PLAN, MESHPRAM_TRACE_DIR, ...), so every env read in the
/// tree goes through util/env and shows up in one grep.
std::optional<std::string> env_str(const char* name);

}  // namespace meshpram
