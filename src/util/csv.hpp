// CSV emission for bench results, so experiment series can be re-plotted
// without re-running the simulations.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace meshpram {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws ConfigError on
  /// I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& headers);

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  size_t arity_;
};

/// Escapes a CSV field (quotes fields containing separators/quotes/newlines).
std::string csv_escape(const std::string& field);

}  // namespace meshpram
