#include "util/rng.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace meshpram {

u64 splitmix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  MP_REQUIRE(bound > 0, "Rng::below(0)");
  // Unbiased: reject values in the truncated final block.
  const u64 limit = max() - max() % bound;
  u64 v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % bound;
}

i64 Rng::range(i64 lo, i64 hi) {
  MP_REQUIRE(lo <= hi, "Rng::range(" << lo << ", " << hi << ")");
  return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::vector<i64> Rng::sample(i64 n, i64 k) {
  MP_REQUIRE(0 <= k && k <= n, "Rng::sample(n=" << n << ", k=" << k << ")");
  // Floyd's algorithm: k iterations, O(k) memory.
  std::unordered_set<i64> chosen;
  std::vector<i64> out;
  out.reserve(static_cast<size_t>(k));
  for (i64 j = n - k; j < n; ++j) {
    i64 t = range(0, j);
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace meshpram
