#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/env.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

// Set while a thread runs indices of a pooled job (see in_parallel_worker()).
// The inline fast path of for_each_index does NOT set it: an inline loop
// never occupies the pool, so nested pool use from inside it stays legal.
thread_local bool tl_in_parallel_worker = false;

struct WorkerFlagGuard {
  bool prev;
  WorkerFlagGuard() : prev(tl_in_parallel_worker) {
    tl_in_parallel_worker = true;
  }
  ~WorkerFlagGuard() { tl_in_parallel_worker = prev; }
};

}  // namespace

bool in_parallel_worker() { return tl_in_parallel_worker; }

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;

  // Current job, published under mu and claimed lock-free via `next`.
  const std::function<void(i64)>* fn = nullptr;
  i64 count = 0;
  std::atomic<i64> next{0};
  int active = 0;     // workers still inside the current job
  u64 generation = 0; // bumped once per job so workers never re-run one
  bool stop = false;
  std::exception_ptr error;

  std::vector<std::thread> workers;

  void record_error(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = e;
  }

  void run_indices() {
    const WorkerFlagGuard guard;
    const i64 c = count;
    const std::function<void(i64)>& f = *fn;
    for (i64 i = next.fetch_add(1, std::memory_order_relaxed); i < c;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        f(i);
      } catch (...) {
        record_error(std::current_exception());
      }
    }
  }

  void worker_loop() {
    u64 seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mu);
      cv_work.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      lock.unlock();
      run_indices();
      lock.lock();
      if (--active == 0) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl), threads_(threads) {
  MP_REQUIRE(threads >= 1, "thread pool size " << threads);
  impl_->workers.reserve(static_cast<size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::for_each_index(i64 count,
                                const std::function<void(i64)>& fn) {
  MP_REQUIRE(count >= 0, "negative loop count " << count);
  if (count == 0) return;
  if (threads_ == 1 || count == 1) {
    // No workers to coordinate: run inline, but keep the error contract
    // (first exception rethrown after all indices ran).
    std::exception_ptr error;
    for (i64 i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    MP_ASSERT(impl_->fn == nullptr, "ThreadPool::for_each_index is not "
                                    "reentrant");
    impl_->fn = &fn;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->active = threads_ - 1;
    ++impl_->generation;
    impl_->error = nullptr;
  }
  impl_->cv_work.notify_all();
  impl_->run_indices();  // the calling thread participates

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv_done.wait(lock, [&] { return impl_->active == 0; });
  impl_->fn = nullptr;
  const std::exception_ptr error = impl_->error;
  impl_->error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::for_each_chunk(i64 count, i64 min_grain,
                                const std::function<void(i64, i64)>& fn) {
  MP_REQUIRE(count >= 0 && min_grain >= 1,
             "for_each_chunk(" << count << ", " << min_grain << ')');
  if (count == 0) return;
  const i64 max_chunks = static_cast<i64>(threads_) * 4;
  const i64 grain = std::max(min_grain, ceil_div(count, max_chunks));
  const i64 chunks = ceil_div(count, grain);
  for_each_index(chunks, [&](i64 c) {
    const i64 begin = c * grain;
    fn(begin, std::min(count, begin + grain));
  });
}

namespace {

int default_threads() {
  if (const auto n = env_i64("MESHPRAM_THREADS", 1, 4096)) {
    return static_cast<int>(*n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

// Per-thread override installed by ScopedPool. Worker threads never read the
// slot (they are serial by the in_parallel_worker() rule), so the override
// only has to be visible to the thread that installed it.
thread_local ThreadPool* tl_pool_override = nullptr;

// Guards lazy construction of the shared default pool: without it, two
// threads stepping simulators concurrently (no ScopedPool installed) could
// both construct the singleton.
std::mutex& pool_slot_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ScopedPool::ScopedPool(ThreadPool& pool) : prev_(tl_pool_override) {
  tl_pool_override = &pool;
}

ScopedPool::~ScopedPool() { tl_pool_override = prev_; }

ThreadPool& execution_pool() {
  if (tl_pool_override != nullptr) return *tl_pool_override;
  std::lock_guard<std::mutex> lock(pool_slot_mu());
  auto& pool = pool_slot();
  if (!pool) pool = std::make_unique<ThreadPool>(default_threads());
  return *pool;
}

int execution_threads() { return execution_pool().threads(); }

void set_execution_threads(int threads) {
  MP_REQUIRE(threads >= 0, "execution thread count " << threads);
  MP_REQUIRE(tl_pool_override == nullptr,
             "set_execution_threads resizes the shared pool; it cannot be "
             "called under a ScopedPool override");
  std::lock_guard<std::mutex> lock(pool_slot_mu());
  pool_slot() =
      std::make_unique<ThreadPool>(threads == 0 ? default_threads() : threads);
}

}  // namespace meshpram
