#include "fault/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace meshpram::fault {

namespace {

/// splitmix64 finalizer — the shared full-avalanche mixer.
u64 mix(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

u64 hash3(u64 seed, u64 a, u64 b) { return mix(mix(mix(seed) ^ a) ^ b); }

/// Pure seeded Bernoulli: P[true] = rate, independent per (seed, entity).
bool coin(u64 seed, u64 entity, double rate) {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  const double u = static_cast<double>(mix(mix(seed) ^ entity) >> 11) *
                   (1.0 / 9007199254740992.0);  // 53-bit uniform in [0,1)
  return u < rate;
}

Dir opposite(Dir d) {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::East: return Dir::West;
    case Dir::South: return Dir::North;
    case Dir::West: return Dir::East;
  }
  return d;
}

}  // namespace

FaultPlan::FaultPlan(int rows, int cols) : rows_(rows), cols_(cols) {
  MP_REQUIRE(rows >= 1 && cols >= 1, "fault plan mesh " << rows << 'x' << cols);
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  node_dead_.assign(n, 0);
  module_dead_.assign(n, 0);
  link_dead_.assign(n * kNumDirs, 0);
  link_stalled_.assign(n * kNumDirs, 0);
}

void FaultPlan::ensure_sized() const {
  MP_REQUIRE(rows_ >= 1 && cols_ >= 1,
             "fault plan not sized — construct with (rows, cols)");
}

void FaultPlan::kill_module(i32 node) {
  ensure_sized();
  MP_REQUIRE(0 <= node && node < static_cast<i32>(module_dead_.size()),
             "fault plan node " << node);
  if (module_dead_[static_cast<size_t>(node)] == 0) {
    module_dead_[static_cast<size_t>(node)] = 1;
    ++dead_module_count_;
  }
}

void FaultPlan::kill_node(i32 node) {
  ensure_sized();
  MP_REQUIRE(0 <= node && node < static_cast<i32>(node_dead_.size()),
             "fault plan node " << node);
  if (node_dead_[static_cast<size_t>(node)] == 0) {
    node_dead_[static_cast<size_t>(node)] = 1;
    ++dead_node_count_;
  }
  kill_module(node);
  for (int d = 0; d < kNumDirs; ++d) kill_link(node, static_cast<Dir>(d));
}

void FaultPlan::kill_link_directed(i32 node, Dir d) {
  const Coord from{node / cols_, node % cols_};
  if (!in_mesh(step_toward(from, d))) return;  // mesh boundary: no link
  unsigned char& cell = link_dead_[link_index(node, d)];
  if (cell == 0) {
    cell = 1;
    ++dead_link_count_;
  }
}

void FaultPlan::kill_link(i32 node, Dir d) {
  ensure_sized();
  MP_REQUIRE(0 <= node && node < rows_ * cols_, "fault plan node " << node);
  const Coord from{node / cols_, node % cols_};
  const Coord to = step_toward(from, d);
  if (!in_mesh(to)) return;
  kill_link_directed(node, d);
  kill_link_directed(to.r * cols_ + to.c, opposite(d));
}

void FaultPlan::add_stall(const StallWindow& w) {
  ensure_sized();
  MP_REQUIRE(0 <= w.node && w.node < rows_ * cols_,
             "stall window node " << w.node);
  const Coord from{w.node / cols_, w.node % cols_};
  const Coord to = step_toward(from, w.dir);
  if (!in_mesh(to)) return;
  // Stalls block the physical wire: record the window for both directions.
  StallWindow fwd = w;
  stalls_.push_back(fwd);
  link_stalled_[link_index(w.node, w.dir)] = 1;
  StallWindow rev = w;
  rev.node = to.r * cols_ + to.c;
  rev.dir = opposite(w.dir);
  stalls_.push_back(rev);
  link_stalled_[link_index(rev.node, rev.dir)] = 1;
}

void FaultPlan::set_drop_rate(double rate, u64 seed) {
  MP_REQUIRE(rate >= 0 && rate <= 1, "drop rate " << rate);
  drop_rate_ = rate;
  drop_seed_ = seed;
  drop_threshold_ =
      rate >= 1 ? ~u64{0}
                : static_cast<u64>(rate * 18446744073709551616.0 /* 2^64 */);
}

bool FaultPlan::link_stalled(i32 node, Dir d, i64 pram_step,
                             i64 route_step) const {
  if (stalls_.empty() || link_stalled_[link_index(node, d)] == 0) {
    return false;
  }
  for (const StallWindow& w : stalls_) {
    if (w.node != node || w.dir != d) continue;
    if (pram_step >= w.pram_from && pram_step < w.pram_to &&
        route_step >= w.route_from && route_step < w.route_to) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::drop(i32 node, Dir d, i64 pram_step, i64 route_step) const {
  if (drop_threshold_ == 0) return false;
  const u64 link = static_cast<u64>(link_index(node, d));
  const u64 h = hash3(drop_seed_, static_cast<u64>(pram_step) * 0x100000001b3ULL ^
                                      static_cast<u64>(route_step),
                      link);
  return h < drop_threshold_;
}

FaultPlan FaultPlan::random(int rows, int cols, const FaultSpec& spec) {
  FaultPlan plan(rows, cols);
  const i64 n = static_cast<i64>(rows) * cols;
  for (i32 node = 0; node < n; ++node) {
    const u64 e = static_cast<u64>(node);
    if (coin(spec.seed ^ 0xA11CEULL, e, spec.node_rate)) {
      plan.kill_node(node);
    } else if (coin(spec.seed ^ 0xB0BULL, e, spec.module_rate)) {
      plan.kill_module(node);
    }
  }
  // Links are generated once per undirected wire: only East/South from each
  // node, so the coin for a wire is flipped exactly once.
  for (i32 node = 0; node < n; ++node) {
    for (Dir d : {Dir::East, Dir::South}) {
      const u64 e = static_cast<u64>(node) * kNumDirs + static_cast<u64>(d);
      if (coin(spec.seed ^ 0x114BULL, e, spec.link_rate)) {
        plan.kill_link(node, d);
      }
      if (spec.stall_rate > 0 && coin(spec.seed ^ 0x57A11ULL, e,
                                      spec.stall_rate)) {
        StallWindow w;
        w.node = node;
        w.dir = d;
        // Deterministic per-link phase so stalls don't all hit step 1.
        w.route_from = spec.stall_from +
                       static_cast<i64>(mix(spec.seed ^ e) % 8);
        w.route_to = w.route_from + spec.stall_len;
        plan.add_stall(w);
      }
    }
  }
  if (spec.drop_rate > 0) plan.set_drop_rate(spec.drop_rate, spec.seed);
  return plan;
}

FaultPlan FaultPlan::parse(int rows, int cols, std::string_view spec) {
  FaultSpec s;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(",; ", pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view tok = spec.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    const size_t eq = tok.find('=');
    MP_REQUIRE(eq != std::string_view::npos,
               "fault spec token '" << tok << "' is not key=value");
    const std::string_view key = tok.substr(0, eq);
    const std::string val(tok.substr(eq + 1));
    char* endp = nullptr;
    const double num = std::strtod(val.c_str(), &endp);
    MP_REQUIRE(endp != val.c_str() && *endp == '\0',
               "fault spec value '" << val << "' for key '" << key
                                    << "' is not a number");
    if (key == "seed") {
      s.seed = static_cast<u64>(num);
    } else if (key == "nodes") {
      s.node_rate = num;
    } else if (key == "modules") {
      s.module_rate = num;
    } else if (key == "links") {
      s.link_rate = num;
    } else if (key == "stalls") {
      s.stall_rate = num;
    } else if (key == "stall_from") {
      s.stall_from = static_cast<i64>(num);
    } else if (key == "stall_len") {
      s.stall_len = static_cast<i64>(num);
    } else if (key == "drop") {
      s.drop_rate = num;
    } else {
      MP_REQUIRE(false, "unknown fault spec key '"
                            << key
                            << "' (known: seed, nodes, modules, links, "
                               "stalls, stall_from, stall_len, drop)");
    }
  }
  return random(rows, cols, s);
}

FaultPlan FaultPlan::from_env(int rows, int cols) {
  const std::optional<std::string> env = env_str("MESHPRAM_FAULT_PLAN");
  if (!env) return FaultPlan(rows, cols);
  FaultPlan plan = parse(rows, cols, *env);
  MP_INFO("MESHPRAM_FAULT_PLAN active: " << plan.summary());
  return plan;
}

void FaultPlan::validate() const {
  ensure_sized();
  const i64 n = static_cast<i64>(rows_) * cols_;
  MP_REQUIRE(dead_node_count_ < n, "fault plan kills every node");
  MP_REQUIRE(dead_module_count_ < n, "fault plan kills every memory module");
}

void FaultPlan::serialize(ByteWriter& w) const {
  ensure_sized();
  w.put_u32(static_cast<u32>(rows_));
  w.put_u32(static_cast<u32>(cols_));
  // Dead entities as index lists (index order, so the bytes are canonical).
  const auto put_set = [&w](const std::vector<unsigned char>& cells) {
    u32 count = 0;
    for (const unsigned char c : cells) count += c != 0;
    w.put_u32(count);
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] != 0) w.put_u32(static_cast<u32>(i));
    }
  };
  put_set(node_dead_);
  put_set(module_dead_);
  put_set(link_dead_);
  w.put_u32(static_cast<u32>(stalls_.size()));
  for (const StallWindow& s : stalls_) {
    w.put_u32(static_cast<u32>(s.node));
    w.put_u8(static_cast<unsigned char>(s.dir));
    w.put_i64(s.pram_from);
    w.put_i64(s.pram_to);
    w.put_i64(s.route_from);
    w.put_i64(s.route_to);
  }
  w.put_f64(drop_rate_);
  w.put_u64(drop_seed_);
}

FaultPlan FaultPlan::deserialize(ByteReader& r) {
  const u32 rows = r.get_u32();
  const u32 cols = r.get_u32();
  MP_REQUIRE(rows >= 1 && cols >= 1 && rows <= 1u << 20 && cols <= 1u << 20,
             "fault plan encoding: implausible mesh " << rows << 'x' << cols);
  FaultPlan plan(static_cast<int>(rows), static_cast<int>(cols));
  const auto get_set = [&r](std::vector<unsigned char>& cells, i64& count,
                            const char* what) {
    const u32 n = r.get_u32();
    for (u32 i = 0; i < n; ++i) {
      const u32 idx = r.get_u32();
      MP_REQUIRE(idx < cells.size(), "fault plan encoding: " << what
                                        << " index " << idx << " out of range");
      MP_REQUIRE(cells[idx] == 0,
                 "fault plan encoding: duplicate " << what << " index " << idx);
      cells[idx] = 1;
      ++count;
    }
  };
  get_set(plan.node_dead_, plan.dead_node_count_, "dead node");
  get_set(plan.module_dead_, plan.dead_module_count_, "dead module");
  get_set(plan.link_dead_, plan.dead_link_count_, "dead link");
  const u32 stalls = r.get_u32();
  for (u32 i = 0; i < stalls; ++i) {
    StallWindow s;
    const u32 node = r.get_u32();
    MP_REQUIRE(node < static_cast<u64>(rows) * cols,
               "fault plan encoding: stall node " << node);
    s.node = static_cast<i32>(node);
    const unsigned char dir = r.get_u8();
    MP_REQUIRE(dir < kNumDirs, "fault plan encoding: stall direction "
                                   << static_cast<int>(dir));
    s.dir = static_cast<Dir>(dir);
    s.pram_from = r.get_i64();
    s.pram_to = r.get_i64();
    s.route_from = r.get_i64();
    s.route_to = r.get_i64();
    // Raw windows were recorded per direction already (add_stall mirrors
    // them), so restore the vector and the per-link bit directly.
    plan.stalls_.push_back(s);
    plan.link_stalled_[plan.link_index(s.node, s.dir)] = 1;
  }
  const double drop_rate = r.get_f64();
  const u64 drop_seed = r.get_u64();
  if (drop_rate > 0) plan.set_drop_rate(drop_rate, drop_seed);
  return plan;
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << dead_node_count_ << " dead nodes, " << dead_module_count_
     << " dead modules, " << dead_link_count_ << " dead link dirs, "
     << stalls_.size() << " stall windows, drop rate " << drop_rate_;
  return os.str();
}

}  // namespace meshpram::fault
