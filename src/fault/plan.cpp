#include "fault/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace meshpram::fault {

namespace {

/// splitmix64 finalizer — the shared full-avalanche mixer.
u64 mix(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

u64 hash3(u64 seed, u64 a, u64 b) { return mix(mix(mix(seed) ^ a) ^ b); }

/// Pure seeded Bernoulli: P[true] = rate, independent per (seed, entity).
bool coin(u64 seed, u64 entity, double rate) {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  const double u = static_cast<double>(mix(mix(seed) ^ entity) >> 11) *
                   (1.0 / 9007199254740992.0);  // 53-bit uniform in [0,1)
  return u < rate;
}

Dir opposite(Dir d) {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::East: return Dir::West;
    case Dir::South: return Dir::North;
    case Dir::West: return Dir::East;
  }
  return d;
}

}  // namespace

FaultPlan::FaultPlan(int rows, int cols) : rows_(rows), cols_(cols) {
  MP_REQUIRE(rows >= 1 && cols >= 1, "fault plan mesh " << rows << 'x' << cols);
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  node_dead_.assign(n, 0);
  module_dead_.assign(n, 0);
  link_dead_.assign(n * kNumDirs, 0);
  link_stalled_.assign(n * kNumDirs, 0);
}

void FaultPlan::ensure_sized() const {
  MP_REQUIRE(rows_ >= 1 && cols_ >= 1,
             "fault plan not sized — construct with (rows, cols)");
}

void FaultPlan::kill_module(i32 node) {
  ensure_sized();
  MP_REQUIRE(0 <= node && node < static_cast<i32>(module_dead_.size()),
             "fault plan node " << node);
  if (module_dead_[static_cast<size_t>(node)] == 0) {
    module_dead_[static_cast<size_t>(node)] = 1;
    ++dead_module_count_;
  }
}

void FaultPlan::kill_node(i32 node) {
  ensure_sized();
  MP_REQUIRE(0 <= node && node < static_cast<i32>(node_dead_.size()),
             "fault plan node " << node);
  if (node_dead_[static_cast<size_t>(node)] == 0) {
    node_dead_[static_cast<size_t>(node)] = 1;
    ++dead_node_count_;
  }
  kill_module(node);
  for (int d = 0; d < kNumDirs; ++d) kill_link(node, static_cast<Dir>(d));
}

void FaultPlan::kill_link_directed(i32 node, Dir d) {
  const Coord from{node / cols_, node % cols_};
  if (!in_mesh(step_toward(from, d))) return;  // mesh boundary: no link
  unsigned char& cell = link_dead_[link_index(node, d)];
  if (cell == 0) {
    cell = 1;
    ++dead_link_count_;
  }
}

void FaultPlan::kill_link(i32 node, Dir d) {
  ensure_sized();
  MP_REQUIRE(0 <= node && node < rows_ * cols_, "fault plan node " << node);
  const Coord from{node / cols_, node % cols_};
  const Coord to = step_toward(from, d);
  if (!in_mesh(to)) return;
  kill_link_directed(node, d);
  kill_link_directed(to.r * cols_ + to.c, opposite(d));
}

void FaultPlan::add_stall(const StallWindow& w) {
  ensure_sized();
  MP_REQUIRE(0 <= w.node && w.node < rows_ * cols_,
             "stall window node " << w.node);
  const Coord from{w.node / cols_, w.node % cols_};
  const Coord to = step_toward(from, w.dir);
  if (!in_mesh(to)) return;
  // Stalls block the physical wire: record the window for both directions.
  StallWindow fwd = w;
  stalls_.push_back(fwd);
  link_stalled_[link_index(w.node, w.dir)] = 1;
  StallWindow rev = w;
  rev.node = to.r * cols_ + to.c;
  rev.dir = opposite(w.dir);
  stalls_.push_back(rev);
  link_stalled_[link_index(rev.node, rev.dir)] = 1;
}

void FaultPlan::set_drop_rate(double rate, u64 seed) {
  MP_REQUIRE(rate >= 0 && rate <= 1, "drop rate " << rate);
  drop_rate_ = rate;
  drop_seed_ = seed;
  drop_threshold_ =
      rate >= 1 ? ~u64{0}
                : static_cast<u64>(rate * 18446744073709551616.0 /* 2^64 */);
}

bool FaultPlan::link_stalled(i32 node, Dir d, i64 pram_step,
                             i64 route_step) const {
  if (stalls_.empty() || link_stalled_[link_index(node, d)] == 0) {
    return false;
  }
  for (const StallWindow& w : stalls_) {
    if (w.node != node || w.dir != d) continue;
    if (pram_step >= w.pram_from && pram_step < w.pram_to &&
        route_step >= w.route_from && route_step < w.route_to) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::drop(i32 node, Dir d, i64 pram_step, i64 route_step) const {
  if (drop_threshold_ == 0) return false;
  const u64 link = static_cast<u64>(link_index(node, d));
  const u64 h = hash3(drop_seed_, static_cast<u64>(pram_step) * 0x100000001b3ULL ^
                                      static_cast<u64>(route_step),
                      link);
  return h < drop_threshold_;
}

FaultPlan FaultPlan::random(int rows, int cols, const FaultSpec& spec) {
  FaultPlan plan(rows, cols);
  const i64 n = static_cast<i64>(rows) * cols;
  for (i32 node = 0; node < n; ++node) {
    const u64 e = static_cast<u64>(node);
    if (coin(spec.seed ^ 0xA11CEULL, e, spec.node_rate)) {
      plan.kill_node(node);
    } else if (coin(spec.seed ^ 0xB0BULL, e, spec.module_rate)) {
      plan.kill_module(node);
    }
  }
  // Links are generated once per undirected wire: only East/South from each
  // node, so the coin for a wire is flipped exactly once.
  for (i32 node = 0; node < n; ++node) {
    for (Dir d : {Dir::East, Dir::South}) {
      const u64 e = static_cast<u64>(node) * kNumDirs + static_cast<u64>(d);
      if (coin(spec.seed ^ 0x114BULL, e, spec.link_rate)) {
        plan.kill_link(node, d);
      }
      if (spec.stall_rate > 0 && coin(spec.seed ^ 0x57A11ULL, e,
                                      spec.stall_rate)) {
        StallWindow w;
        w.node = node;
        w.dir = d;
        // Deterministic per-link phase so stalls don't all hit step 1.
        w.route_from = spec.stall_from +
                       static_cast<i64>(mix(spec.seed ^ e) % 8);
        w.route_to = w.route_from + spec.stall_len;
        plan.add_stall(w);
      }
    }
  }
  if (spec.drop_rate > 0) plan.set_drop_rate(spec.drop_rate, spec.seed);
  return plan;
}

FaultPlan FaultPlan::parse(int rows, int cols, std::string_view spec) {
  FaultSpec s;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(",; ", pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view tok = spec.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    const size_t eq = tok.find('=');
    MP_REQUIRE(eq != std::string_view::npos,
               "fault spec token '" << tok << "' is not key=value");
    const std::string_view key = tok.substr(0, eq);
    const std::string val(tok.substr(eq + 1));
    char* endp = nullptr;
    const double num = std::strtod(val.c_str(), &endp);
    MP_REQUIRE(endp != val.c_str() && *endp == '\0',
               "fault spec value '" << val << "' for key '" << key
                                    << "' is not a number");
    if (key == "seed") {
      s.seed = static_cast<u64>(num);
    } else if (key == "nodes") {
      s.node_rate = num;
    } else if (key == "modules") {
      s.module_rate = num;
    } else if (key == "links") {
      s.link_rate = num;
    } else if (key == "stalls") {
      s.stall_rate = num;
    } else if (key == "stall_from") {
      s.stall_from = static_cast<i64>(num);
    } else if (key == "stall_len") {
      s.stall_len = static_cast<i64>(num);
    } else if (key == "drop") {
      s.drop_rate = num;
    } else {
      MP_REQUIRE(false, "unknown fault spec key '"
                            << key
                            << "' (known: seed, nodes, modules, links, "
                               "stalls, stall_from, stall_len, drop)");
    }
  }
  return random(rows, cols, s);
}

FaultPlan FaultPlan::from_env(int rows, int cols) {
  const char* env = std::getenv("MESHPRAM_FAULT_PLAN");
  if (env == nullptr || *env == '\0') return FaultPlan(rows, cols);
  FaultPlan plan = parse(rows, cols, env);
  MP_INFO("MESHPRAM_FAULT_PLAN active: " << plan.summary());
  return plan;
}

void FaultPlan::validate() const {
  ensure_sized();
  const i64 n = static_cast<i64>(rows_) * cols_;
  MP_REQUIRE(dead_node_count_ < n, "fault plan kills every node");
  MP_REQUIRE(dead_module_count_ < n, "fault plan kills every memory module");
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << dead_node_count_ << " dead nodes, " << dead_module_count_
     << " dead modules, " << dead_link_count_ << " dead link dirs, "
     << stalls_.size() << " stall windows, drop rate " << drop_rate_;
  return os.str();
}

}  // namespace meshpram::fault
