// Deterministic, seeded fault plans for the simulated mesh (DESIGN.md §10).
//
// The fault model follows Chlebus–Gąsieniec–Pelc (static processor and memory
// faults, known before the computation starts) extended with the transient
// link faults a physical mesh adds:
//
//   node fault    — fail-stop processor + its memory module. A dead node
//                   issues no requests, serves no copies, is never chosen as
//                   an intermediate stop of the staged protocol, and its four
//                   incident links are dead: the greedy routing layer detours
//                   around it (dimension-order detour).
//   module fault  — the node's memory bank only: every copy stored there is
//                   lost, but the processor still computes and routes.
//   link fault    — a permanently dead link; packets detour around it.
//   link stall    — a transient fault: during the scheduled window the link
//                   transmits nothing, and packets queue up behind it with
//                   step-tagged exponential backoff until the window passes
//                   (or, past the retry timeout, detour as if it were dead).
//   packet drop   — Bernoulli per-traversal corruption (seeded hash of
//                   (plan seed, PRAM step, routing step, link)): the word is
//                   detected bad by link-level ARQ and retransmitted, costing
//                   steps but never data.
//
// Determinism: a FaultPlan is immutable once installed on a Mesh; every query
// is a pure function of (plan, PRAM step, routing step, link), so fault
// behaviour is bit-identical across runs and thread counts. No fault ever
// destroys an in-flight packet — data loss happens only through the static
// dead modules, which the protocol sees up front (copies lost), keeping the
// degraded-mode equivalence guarantee testable.
//
// The sort/scan/rank phases run on the hardened systolic sort network (the
// switch fabric of a dead node keeps relaying); fault injection bites in copy
// availability, greedy packet routing, and final access. One consequence of
// that boundary: a sort may leave words resident in a dead node's fabric, so
// the router lets a packet ALREADY AT a dead node flush outward to an alive
// neighbor — but never hands a dead node new packets (its incident links are
// dead for everyone else). DESIGN.md §10 spells out this model boundary.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mesh/geometry.hpp"
#include "util/bytes.hpp"
#include "util/math.hpp"

namespace meshpram::fault {

/// A request the degraded-mode protocol could not serve (variable with no
/// surviving target set under HardFail policy, or an invalid plan).
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-step fault accounting, surfaced through StepStats/DegradedResult
/// instead of asserting. All totals are thread-count invariant (serial
/// protocol passes plus commutative atomic sums from the routing kernels).
struct FaultReport {
  i64 dead_nodes = 0;        ///< static: dead processors in the plan
  i64 dead_modules = 0;      ///< static: dead memory modules (incl. node faults)
  i64 copies_lost = 0;       ///< dead copies among this step's requested vars
  i64 requests_failed = 0;   ///< no surviving target set / dead origin
  i64 requests_degraded = 0; ///< served at CULLING degradation level > 0
  i64 packets_retried = 0;   ///< hop attempts blocked (stall backoff) or dropped
  i64 packets_dropped = 0;   ///< link-level drops (detected and retransmitted)
  i64 packets_detoured = 0;  ///< hops taken off the XY path around dead links

  bool any_failures() const { return requests_failed > 0; }
  bool any_faults_hit() const {
    return copies_lost > 0 || requests_failed > 0 || requests_degraded > 0 ||
           packets_retried > 0 || packets_detoured > 0;
  }
};

/// Rates for randomly generated plans (FaultPlan::random). Every entity's
/// fate is a pure hash of (seed, entity), so the same spec always yields the
/// same plan regardless of iteration order.
struct FaultSpec {
  u64 seed = 1;
  double node_rate = 0;    ///< P[node fail-stop]
  double module_rate = 0;  ///< P[memory-only fault] (on top of node faults)
  double link_rate = 0;    ///< P[permanent symmetric link death]
  double stall_rate = 0;   ///< P[link gets one stall window per route call]
  i64 stall_from = 1;      ///< first routing step of generated stall windows
  i64 stall_len = 4;       ///< length of generated stall windows
  double drop_rate = 0;    ///< P[drop per link traversal]
};

/// A transient link stall: link (node, dir) transmits nothing while
/// pram_from <= PRAM step < pram_to AND route_from <= routing step < route_to
/// (routing steps are 1-based within each route_greedy call).
struct StallWindow {
  i32 node = -1;
  Dir dir = Dir::North;
  i64 pram_from = 0;
  i64 pram_to = kForever;
  i64 route_from = 1;
  i64 route_to = kForever;

  static constexpr i64 kForever = i64{1} << 60;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(int rows, int cols);

  // ---- construction (before installing on a Mesh) ----
  /// Fail-stop: processor + module dead, incident links dead (both ends).
  void kill_node(i32 node);
  /// Memory-only fault: copies lost, processor/routing unaffected.
  void kill_module(i32 node);
  /// Permanently kills the link between `node` and its `d` neighbor, in both
  /// directions. Out-of-mesh directions are ignored.
  void kill_link(i32 node, Dir d);
  /// Adds a transient stall window (both directions of the link).
  void add_stall(const StallWindow& w);
  /// Bernoulli drop rate per link traversal, decided by a seeded hash.
  void set_drop_rate(double rate, u64 seed);

  /// Seeded random plan over a rows x cols mesh.
  static FaultPlan random(int rows, int cols, const FaultSpec& spec);
  /// Plan from a "key=value,key=value" spec string (keys: seed, nodes,
  /// modules, links, stalls, stall_from, stall_len, drop). Throws ConfigError
  /// on unknown keys or malformed values.
  static FaultPlan parse(int rows, int cols, std::string_view spec);
  /// Plan from the MESHPRAM_FAULT_PLAN environment variable (empty plan when
  /// unset).
  static FaultPlan from_env(int rows, int cols);

  /// Rejects plans the protocol cannot even start on (no alive node, no
  /// alive module). Called by the simulator at installation.
  void validate() const;

  // ---- queries (hot paths; all pure) ----
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const {
    return dead_node_count_ == 0 && dead_module_count_ == 0 &&
           dead_link_count_ == 0 && stalls_.empty() && drop_rate_ <= 0;
  }

  bool node_dead(i32 node) const {
    return dead_node_count_ > 0 && node_dead_[static_cast<size_t>(node)] != 0;
  }
  /// True for module faults AND node faults (a dead node's module is dead).
  bool module_dead(i32 node) const {
    return dead_module_count_ > 0 &&
           module_dead_[static_cast<size_t>(node)] != 0;
  }
  bool link_dead(i32 node, Dir d) const {
    return dead_link_count_ > 0 &&
           link_dead_[link_index(node, d)] != 0;
  }
  /// Stalled (but not dead) at (PRAM step, routing step)?
  bool link_stalled(i32 node, Dir d, i64 pram_step, i64 route_step) const;
  /// Seeded per-traversal drop decision.
  bool drop(i32 node, Dir d, i64 pram_step, i64 route_step) const;

  bool has_dead_nodes() const { return dead_node_count_ > 0; }
  bool has_dead_modules() const { return dead_module_count_ > 0; }
  /// Any fault the greedy routing layer must handle (dead/stalled links or a
  /// positive drop rate). Dead modules alone route on the fast path.
  bool affects_routing() const {
    return dead_link_count_ > 0 || !stalls_.empty() || drop_rate_ > 0;
  }
  i64 dead_node_count() const { return dead_node_count_; }
  i64 dead_module_count() const { return dead_module_count_; }
  i64 dead_link_count() const { return dead_link_count_; }

  /// Human-readable one-liner for logs and bench tables.
  std::string summary() const;

  /// Appends a self-contained binary encoding of the plan (the serve
  /// snapshot format embeds it, so a restored session reproduces the exact
  /// fault behaviour without re-reading MESHPRAM_FAULT_PLAN). deserialize
  /// reads what serialize wrote and throws ConfigError on malformed input.
  void serialize(ByteWriter& w) const;
  static FaultPlan deserialize(ByteReader& r);

 private:
  size_t link_index(i32 node, Dir d) const {
    return static_cast<size_t>(node) * kNumDirs + static_cast<size_t>(d);
  }
  bool in_mesh(Coord x) const {
    return 0 <= x.r && x.r < rows_ && 0 <= x.c && x.c < cols_;
  }
  void kill_link_directed(i32 node, Dir d);
  void ensure_sized() const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<unsigned char> node_dead_;
  std::vector<unsigned char> module_dead_;
  std::vector<unsigned char> link_dead_;     // [node*4 + dir]
  std::vector<unsigned char> link_stalled_;  // [node*4 + dir]: any window?
  std::vector<StallWindow> stalls_;
  i64 dead_node_count_ = 0;
  i64 dead_module_count_ = 0;
  i64 dead_link_count_ = 0;
  double drop_rate_ = 0;
  u64 drop_threshold_ = 0;
  u64 drop_seed_ = 0;
};

}  // namespace meshpram::fault
