// Classic EREW PRAM algorithms, written as PramProgram so they run on both
// the ideal machine and the mesh simulation.
//
// These are the workloads the examples and benches execute: they validate
// that the simulation is a drop-in PRAM (identical results, measurable
// slowdown) on programs with non-trivial access patterns.
#pragma once

#include <vector>

#include "pram/program.hpp"

namespace meshpram {

/// Hillis–Steele inclusive prefix sums over n values with n processors in
/// O(log n) PRAM steps. Memory layout: x[i] lives at shared variable
/// base + i. Phases per round j: read x[i - 2^j], then write x[i] += it.
class PrefixSumProgram : public PramProgram {
 public:
  PrefixSumProgram(std::vector<i64> input, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  /// Valid after the program ran: inclusive prefix sums of the input.
  const std::vector<i64>& result() const { return local_; }

  /// Reference answer for tests.
  static std::vector<i64> expected(const std::vector<i64>& input);

 private:
  i64 n_;
  i64 base_;
  int rounds_;
  std::vector<i64> local_;    ///< processor-local running value
  std::vector<i64> incoming_; ///< value read this round
};

/// List ranking by pointer jumping: given a linked list as a successor
/// array (succ[i] = next node, tail has succ = -1), computes each node's
/// distance to the tail in O(log n) rounds of 4 PRAM steps.
/// Layout: succ[i] at base + i, rank[i] at base + n + i.
class ListRankingProgram : public PramProgram {
 public:
  ListRankingProgram(std::vector<i64> succ, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  const std::vector<i64>& ranks() const { return rank_; }

  static std::vector<i64> expected(const std::vector<i64>& succ);

 private:
  i64 n_;
  i64 base_;
  int rounds_;
  std::vector<i64> succ_;      ///< local copy of the current jump pointers
  std::vector<i64> rank_;
  std::vector<i64> read_succ_; ///< succ[succ[i]] read this round
  std::vector<i64> read_rank_; ///< rank[succ[i]] read this round
};

}  // namespace meshpram

namespace meshpram {

/// Odd-even transposition sort of n shared values with n processors in n
/// rounds of 2 EREW steps (read the partner, then write your own slot).
/// Layout: x[i] at base + i.
class OddEvenSortProgram : public PramProgram {
 public:
  OddEvenSortProgram(std::vector<i64> input, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  const std::vector<i64>& result() const { return local_; }

 private:
  i64 n_;
  i64 base_;
  std::vector<i64> local_;   ///< each processor's current element
  std::vector<i64> partner_; ///< partner value read this round
};

/// Dense matrix-vector product b = A x for an s x s matrix with s
/// processors, using the classic SKEWED access schedule so that all reads
/// are exclusive: in round t, processor i reads A[i][(i+t) mod s] and
/// x[(i+t) mod s]. Layout: A row-major at base, x at base + s^2,
/// b at base + s^2 + s.
class MatVecProgram : public PramProgram {
 public:
  MatVecProgram(i64 s, i64 base_var = 0);

  i64 processors() const override;
  bool done(i64 step) const override;
  AccessRequest plan(i64 proc, i64 step) override;
  void receive(i64 proc, i64 step, i64 value) override;

  /// Host-side setup: the caller writes A and x into shared memory before
  /// running (see examples/matvec.cpp), or uses preload() on a backend.
  void preload(PramBackend& backend, const std::vector<i64>& a,
               const std::vector<i64>& x) const;

  const std::vector<i64>& result() const { return acc_; }

 private:
  i64 s_;
  i64 base_;
  std::vector<i64> acc_;
  std::vector<i64> a_read_;
};

}  // namespace meshpram
