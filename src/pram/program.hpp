// PRAM programs: synchronous supersteps against a PramBackend.
//
// A program declares how many processors it uses; each superstep the driver
// asks every processor to plan() its (at most one) shared-memory access,
// executes them as one EREW PRAM step, and hands read results back through
// receive(). Local computation lives inside plan()/receive() — exactly the
// PRAM's free local work. The same program object runs unchanged on
// IdealBackend and MeshBackend.
#pragma once

#include "pram/backend.hpp"

namespace meshpram {

class PramProgram {
 public:
  virtual ~PramProgram() = default;

  virtual i64 processors() const = 0;
  /// True when the program has finished before superstep `step`.
  virtual bool done(i64 step) const = 0;
  /// The access processor `proc` issues in superstep `step` (var = -1 idle).
  virtual AccessRequest plan(i64 proc, i64 step) = 0;
  /// Read result delivery for superstep `step` (called only for reads).
  virtual void receive(i64 proc, i64 step, i64 value) = 0;
};

/// Runs `program` to completion on `backend`; returns PRAM steps executed.
i64 run_program(PramProgram& program, PramBackend& backend);

}  // namespace meshpram
