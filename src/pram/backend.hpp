// PRAM execution backends.
//
// A backend realizes one synchronous EREW PRAM memory step: n processors
// each issue at most one read or write to distinct shared variables and (for
// reads) get the value back. IdealBackend is the semantic ground truth (a
// flat array, zero cost); MeshBackend is the paper's simulation and reports
// the mesh step cost of every PRAM step. Programs written against
// PramBackend run on both, which is how the tests prove the simulation
// faithful.
#pragma once

#include <vector>

#include "protocol/access.hpp"

namespace meshpram {

class PramBackend {
 public:
  virtual ~PramBackend() = default;

  virtual i64 processors() const = 0;
  virtual i64 num_vars() const = 0;

  /// One EREW PRAM step; requests.size() <= processors(). Returns read
  /// results indexed like `requests` (0 for writes/idle).
  virtual std::vector<i64> step(const std::vector<AccessRequest>& requests) = 0;

  /// Total simulated cost so far. Pure on purpose: a backend that silently
  /// inherited a 0 here would make slowdown-vs-ideal columns divide by a
  /// bogus baseline. Zero-cost backends (IdealBackend) return 0 explicitly
  /// and the workload harness flags them (HarnessResult::zero_cost_backend).
  virtual i64 total_mesh_steps() const = 0;
  /// Number of PRAM steps executed.
  virtual i64 pram_steps() const = 0;
};

/// Flat-memory reference machine.
class IdealBackend : public PramBackend {
 public:
  IdealBackend(i64 processors, i64 num_vars);

  i64 processors() const override { return processors_; }
  i64 num_vars() const override { return static_cast<i64>(memory_.size()); }
  std::vector<i64> step(const std::vector<AccessRequest>& requests) override;
  /// The ideal machine has no cost model: explicitly zero, not a default.
  i64 total_mesh_steps() const override { return 0; }
  i64 pram_steps() const override { return steps_; }

 private:
  i64 processors_;
  std::vector<i64> memory_;
  i64 steps_ = 0;
};

}  // namespace meshpram
