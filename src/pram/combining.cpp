#include "pram/combining.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "util/error.hpp"

namespace meshpram {

std::vector<i64> CombiningBackend::step(
    const std::vector<AccessRequest>& requests) {
  MP_REQUIRE(static_cast<i64>(requests.size()) <= processors(),
             "more requests than processors");

  // Group requests by variable. For each variable choose:
  //   * the winning write (lowest processor index), if any;
  //   * whether anyone reads it.
  struct Group {
    i64 writer = -1;   // processor index of the winning writer
    i64 write_value = 0;
    i64 writers = 0;   // total concurrent writers (for accounting)
    std::vector<i64> readers;
  };
  std::map<i64, Group> groups;
  for (size_t i = 0; i < requests.size(); ++i) {
    const AccessRequest& r = requests[i];
    if (r.var < 0) continue;
    Group& g = groups[r.var];
    if (r.op == Op::Write) {
      ++g.writers;
      if (g.writer < 0) {  // lowest index wins (requests scanned in order)
        g.writer = static_cast<i64>(i);
        g.write_value = r.value;
      }
    } else {
      g.readers.push_back(static_cast<i64>(i));
    }
  }
  for (const auto& [var, g] : groups) {
    // A group was genuinely combined when the variable drew more than one
    // access of any kind: fan-out reads, racing writes, or read+write.
    if (static_cast<i64>(g.readers.size()) + g.writers > 1) {
      ++combined_groups_;
    }
  }

  // Phase 1 (if needed): representatives READ every variable someone reads.
  // Readers must observe the pre-step value even when the variable is also
  // written this step, so reads go first as their own EREW step.
  std::vector<i64> results(requests.size(), 0);
  {
    std::vector<AccessRequest> reads(requests.size());
    std::vector<i64> rep_of(requests.size(), -1);
    bool any = false;
    size_t slot = 0;
    for (auto& [var, g] : groups) {
      if (g.readers.empty()) continue;
      any = true;
      reads[slot] = {var, Op::Read, 0};
      rep_of[slot] = var;
      ++slot;
    }
    if (any) {
      const auto vals = inner_.step(reads);
      for (size_t s = 0; s < slot; ++s) {
        const Group& g = groups.at(rep_of[s]);
        for (i64 reader : g.readers) {
          results[static_cast<size_t>(reader)] = vals[s];
        }
      }
    }
  }

  // Phase 2: winning writes, one representative per variable.
  {
    std::vector<AccessRequest> writes(requests.size());
    bool any = false;
    size_t slot = 0;
    for (auto& [var, g] : groups) {
      if (g.writer < 0) continue;
      any = true;
      writes[slot++] = {var, Op::Write, g.write_value};
    }
    if (any) inner_.step(writes);
  }
  return results;
}

}  // namespace meshpram
