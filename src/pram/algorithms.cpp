#include "pram/algorithms.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

namespace {

int ceil_log2(i64 n) {
  int r = 0;
  i64 p = 1;
  while (p < n) {
    p *= 2;
    ++r;
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// PrefixSumProgram
// ---------------------------------------------------------------------------

PrefixSumProgram::PrefixSumProgram(std::vector<i64> input, i64 base_var)
    : n_(static_cast<i64>(input.size())), base_(base_var),
      rounds_(ceil_log2(static_cast<i64>(input.size()))),
      local_(std::move(input)),
      incoming_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "prefix sum over empty input");
}

i64 PrefixSumProgram::processors() const { return n_; }

bool PrefixSumProgram::done(i64 step) const {
  return step >= 1 + 2 * rounds_;
}

AccessRequest PrefixSumProgram::plan(i64 proc, i64 step) {
  if (step == 0) {  // publish the input
    return {base_ + proc, Op::Write, local_[static_cast<size_t>(proc)]};
  }
  const i64 round = (step - 1) / 2;
  const i64 offset = i64{1} << round;
  const bool read_phase = ((step - 1) % 2) == 0;
  if (proc < offset) return {};  // idle this round
  if (read_phase) {
    return {base_ + proc - offset, Op::Read, 0};
  }
  local_[static_cast<size_t>(proc)] += incoming_[static_cast<size_t>(proc)];
  return {base_ + proc, Op::Write, local_[static_cast<size_t>(proc)]};
}

void PrefixSumProgram::receive(i64 proc, i64 /*step*/, i64 value) {
  incoming_[static_cast<size_t>(proc)] = value;
}

std::vector<i64> PrefixSumProgram::expected(const std::vector<i64>& input) {
  std::vector<i64> out(input.size());
  i64 acc = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    acc += input[i];
    out[i] = acc;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ListRankingProgram
// ---------------------------------------------------------------------------

ListRankingProgram::ListRankingProgram(std::vector<i64> succ, i64 base_var)
    : n_(static_cast<i64>(succ.size())), base_(base_var),
      rounds_(ceil_log2(static_cast<i64>(succ.size()))),
      succ_(std::move(succ)),
      rank_(static_cast<size_t>(n_), 0),
      read_succ_(static_cast<size_t>(n_), -1),
      read_rank_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "list ranking over empty list");
  for (i64 i = 0; i < n_; ++i) {
    const i64 s = succ_[static_cast<size_t>(i)];
    MP_REQUIRE(s == -1 || (0 <= s && s < n_ && s != i),
               "bad successor " << s << " at node " << i);
    rank_[static_cast<size_t>(i)] = (s == -1) ? 0 : 1;
  }
}

i64 ListRankingProgram::processors() const { return n_; }

bool ListRankingProgram::done(i64 step) const {
  return step >= 2 + 4 * rounds_;
}

AccessRequest ListRankingProgram::plan(i64 proc, i64 step) {
  const size_t p = static_cast<size_t>(proc);
  if (step == 0) return {base_ + proc, Op::Write, succ_[p]};
  if (step == 1) return {base_ + n_ + proc, Op::Write, rank_[p]};
  const i64 phase = (step - 2) % 4;
  if (succ_[p] < 0) return {};  // reached the tail: idle
  switch (phase) {
    case 0:  // read succ[succ[i]]
      return {base_ + succ_[p], Op::Read, 0};
    case 1:  // read rank[succ[i]]
      return {base_ + n_ + succ_[p], Op::Read, 0};
    case 2:  // write updated rank[i]
      rank_[p] += read_rank_[p];
      return {base_ + n_ + proc, Op::Write, rank_[p]};
    default:  // write updated succ[i]
      succ_[p] = read_succ_[p];
      return {base_ + proc, Op::Write, succ_[p]};
  }
}

void ListRankingProgram::receive(i64 proc, i64 step, i64 value) {
  const size_t p = static_cast<size_t>(proc);
  const i64 phase = (step - 2) % 4;
  if (phase == 0) {
    read_succ_[p] = value;
  } else if (phase == 1) {
    read_rank_[p] = value;
  }
}

std::vector<i64> ListRankingProgram::expected(const std::vector<i64>& succ) {
  std::vector<i64> out(succ.size(), 0);
  for (size_t i = 0; i < succ.size(); ++i) {
    i64 d = 0;
    i64 at = static_cast<i64>(i);
    while (succ[static_cast<size_t>(at)] != -1) {
      at = succ[static_cast<size_t>(at)];
      ++d;
      MP_REQUIRE(d <= static_cast<i64>(succ.size()), "successor cycle");
    }
    out[i] = d;
  }
  return out;
}

}  // namespace meshpram

namespace meshpram {

// ---------------------------------------------------------------------------
// OddEvenSortProgram
// ---------------------------------------------------------------------------

OddEvenSortProgram::OddEvenSortProgram(std::vector<i64> input, i64 base_var)
    : n_(static_cast<i64>(input.size())), base_(base_var),
      local_(std::move(input)), partner_(static_cast<size_t>(n_), 0) {
  MP_REQUIRE(n_ >= 1, "sorting an empty input");
}

i64 OddEvenSortProgram::processors() const { return n_; }

bool OddEvenSortProgram::done(i64 step) const { return step >= 1 + 2 * n_; }

AccessRequest OddEvenSortProgram::plan(i64 proc, i64 step) {
  const size_t p = static_cast<size_t>(proc);
  if (step == 0) return {base_ + proc, Op::Write, local_[p]};
  const i64 round = (step - 1) / 2;
  const bool read_phase = ((step - 1) % 2) == 0;
  // Matching of round t: pairs (j, j+1) with j = t mod 2, t mod 2 + 2, ...
  const bool low = (proc % 2) == (round % 2);
  const i64 partner = low ? proc + 1 : proc - 1;
  if (partner < 0 || partner >= n_) return {};  // unpaired this round
  if (read_phase) return {base_ + partner, Op::Read, 0};
  // Write phase: low keeps the min, high keeps the max.
  const i64 mine = local_[p];
  const i64 theirs = partner_[p];
  local_[p] = low ? std::min(mine, theirs) : std::max(mine, theirs);
  return {base_ + proc, Op::Write, local_[p]};
}

void OddEvenSortProgram::receive(i64 proc, i64 /*step*/, i64 value) {
  partner_[static_cast<size_t>(proc)] = value;
}

// ---------------------------------------------------------------------------
// MatVecProgram
// ---------------------------------------------------------------------------

MatVecProgram::MatVecProgram(i64 s, i64 base_var)
    : s_(s), base_(base_var), acc_(static_cast<size_t>(s), 0),
      a_read_(static_cast<size_t>(s), 0) {
  MP_REQUIRE(s >= 1, "matvec with s=" << s);
}

i64 MatVecProgram::processors() const { return s_; }

bool MatVecProgram::done(i64 step) const { return step >= 2 * s_ + 1; }

AccessRequest MatVecProgram::plan(i64 proc, i64 step) {
  if (step == 2 * s_) {  // publish b[i]
    return {base_ + s_ * s_ + s_ + proc, Op::Write,
            acc_[static_cast<size_t>(proc)]};
  }
  const i64 round = step / 2;
  const i64 j = (proc + round) % s_;  // skewed column index: all distinct
  if (step % 2 == 0) return {base_ + proc * s_ + j, Op::Read, 0};  // A[i][j]
  return {base_ + s_ * s_ + j, Op::Read, 0};                        // x[j]
}

void MatVecProgram::receive(i64 proc, i64 step, i64 value) {
  const size_t p = static_cast<size_t>(proc);
  if (step % 2 == 0) {
    a_read_[p] = value;
  } else {
    acc_[p] += a_read_[p] * value;
  }
}

void MatVecProgram::preload(PramBackend& backend, const std::vector<i64>& a,
                            const std::vector<i64>& x) const {
  MP_REQUIRE(static_cast<i64>(a.size()) == s_ * s_, "A must be s x s");
  MP_REQUIRE(static_cast<i64>(x.size()) == s_, "x must have s entries");
  // s write steps for A (one column of rows per step), one for x.
  for (i64 j = 0; j < s_; ++j) {
    std::vector<AccessRequest> reqs(static_cast<size_t>(s_));
    for (i64 i = 0; i < s_; ++i) {
      reqs[static_cast<size_t>(i)] = {base_ + i * s_ + j, Op::Write,
                                      a[static_cast<size_t>(i * s_ + j)]};
    }
    backend.step(reqs);
  }
  std::vector<AccessRequest> reqs(static_cast<size_t>(s_));
  for (i64 i = 0; i < s_; ++i) {
    reqs[static_cast<size_t>(i)] = {base_ + s_ * s_ + i, Op::Write,
                                    x[static_cast<size_t>(i)]};
  }
  backend.step(reqs);
}

}  // namespace meshpram
