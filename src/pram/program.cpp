#include "pram/program.hpp"

#include "util/error.hpp"

namespace meshpram {

i64 run_program(PramProgram& program, PramBackend& backend) {
  MP_REQUIRE(program.processors() <= backend.processors(),
             "program wants " << program.processors() << " processors, "
                              << "backend has " << backend.processors());
  i64 step = 0;
  while (!program.done(step)) {
    std::vector<AccessRequest> reqs(
        static_cast<size_t>(program.processors()));
    for (i64 p = 0; p < program.processors(); ++p) {
      reqs[static_cast<size_t>(p)] = program.plan(p, step);
    }
    const auto results = backend.step(reqs);
    for (i64 p = 0; p < program.processors(); ++p) {
      if (reqs[static_cast<size_t>(p)].var >= 0 &&
          reqs[static_cast<size_t>(p)].op == Op::Read) {
        program.receive(p, step, results[static_cast<size_t>(p)]);
      }
    }
    ++step;
  }
  return step;
}

}  // namespace meshpram
