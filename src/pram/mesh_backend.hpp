// MeshBackend: the paper's simulation as a PramBackend.
#pragma once

#include "pram/backend.hpp"
#include "protocol/simulator.hpp"

namespace meshpram {

class MeshBackend : public PramBackend {
 public:
  explicit MeshBackend(const SimConfig& config) : sim_(config) {}

  i64 processors() const override { return sim_.processors(); }
  i64 num_vars() const override { return sim_.num_vars(); }

  std::vector<i64> step(const std::vector<AccessRequest>& requests) override {
    StepStats st;
    auto results = sim_.step(requests, &st);
    mesh_steps_ += st.total_steps;
    results.resize(requests.size());
    return results;
  }

  i64 total_mesh_steps() const override { return mesh_steps_; }
  i64 pram_steps() const override { return sim_.now(); }

  PramMeshSimulator& simulator() { return sim_; }

 private:
  PramMeshSimulator sim_;
  i64 mesh_steps_ = 0;
};

}  // namespace meshpram
