// Concurrent-access combining frontend (CRCW -> EREW adapter).
//
// The paper simulates EREW steps: the n requested variables must be
// distinct. Classic PRAM theory reduces concurrent access to exclusive
// access by sorting the requests, letting one representative per variable
// perform the access, and fanning the result back out — an O(log n)-step
// EREW transformation. CombiningBackend implements that reduction at the
// request level: duplicates are grouped, one representative executes in the
// underlying (EREW) backend, and results/write-winners are resolved per the
// Priority CRCW rule (lowest processor index wins concurrent writes).
//
// Cost accounting: one CRCW step becomes at most two EREW steps in the
// underlying backend (a read step for all read groups, then a write step for
// the winning writes), each charged at the backend's usual cost. The sort
// that a real machine would run to group the requests is the same
// O(l1·sqrt(n)) mesh sort the protocol already uses everywhere; it is
// dominated by the two EREW steps charged here.
#pragma once

#include <memory>

#include "pram/backend.hpp"

namespace meshpram {

class CombiningBackend : public PramBackend {
 public:
  /// Does not take ownership; `inner` must outlive this object.
  explicit CombiningBackend(PramBackend& inner) : inner_(inner) {}

  i64 processors() const override { return inner_.processors(); }
  i64 num_vars() const override { return inner_.num_vars(); }

  /// Accepts ARBITRARY request vectors: concurrent reads of a variable all
  /// receive its value; concurrent writes resolve to the lowest-index
  /// writer (Priority CRCW). Read+write of the same variable in one step:
  /// readers see the pre-step value (standard CRCW semantics).
  std::vector<i64> step(const std::vector<AccessRequest>& requests) override;

  i64 total_mesh_steps() const override { return inner_.total_mesh_steps(); }
  i64 pram_steps() const override { return inner_.pram_steps(); }

  /// Number of variables that drew more than one access in some step —
  /// fan-out reads, racing writes, or read+write — i.e. the groups the
  /// reduction actually had to combine (diagnostic; EXP-A1 contention
  /// column).
  i64 combined_groups() const { return combined_groups_; }

 private:
  PramBackend& inner_;
  i64 combined_groups_ = 0;
};

}  // namespace meshpram
