#include "pram/backend.hpp"

#include <set>

#include "util/error.hpp"

namespace meshpram {

IdealBackend::IdealBackend(i64 processors, i64 num_vars)
    : processors_(processors),
      memory_(static_cast<size_t>(num_vars), 0) {
  MP_REQUIRE(processors >= 1 && num_vars >= 1,
             "ideal PRAM with " << processors << " processors, " << num_vars
                                << " vars");
}

std::vector<i64> IdealBackend::step(
    const std::vector<AccessRequest>& requests) {
  MP_REQUIRE(static_cast<i64>(requests.size()) <= processors_,
             "more requests than processors");
  std::set<i64> used;
  std::vector<i64> results(requests.size(), 0);
  // EREW check + reads first (PRAM semantics: reads see the PREVIOUS step's
  // memory; with distinct variables per step the order is immaterial, but we
  // keep read-before-write for clarity).
  for (size_t i = 0; i < requests.size(); ++i) {
    const AccessRequest& r = requests[i];
    if (r.var < 0) continue;
    MP_REQUIRE(0 <= r.var && r.var < num_vars(), "variable " << r.var);
    MP_REQUIRE(used.insert(r.var).second,
               "EREW violation: variable " << r.var << " accessed twice");
    if (r.op == Op::Read) {
      results[i] = memory_[static_cast<size_t>(r.var)];
    }
  }
  for (const AccessRequest& r : requests) {
    if (r.var >= 0 && r.op == Op::Write) {
      memory_[static_cast<size_t>(r.var)] = r.value;
    }
  }
  ++steps_;
  return results;
}

}  // namespace meshpram
