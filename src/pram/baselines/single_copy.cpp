#include "pram/baselines/single_copy.hpp"

#include <algorithm>
#include <set>

#include "routing/lroute.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram {

SingleCopySim::SingleCopySim(int mesh_rows, int mesh_cols, i64 num_vars,
                             SingleCopyPlacement placement, u64 seed,
                             SortOptions sort_opts)
    : mesh_(mesh_rows, mesh_cols), num_vars_(num_vars), placement_(placement),
      seed_(seed), sort_opts_(sort_opts) {
  MP_REQUIRE(num_vars >= 1, "num_vars " << num_vars);
}

i32 SingleCopySim::home(i64 var) const {
  MP_REQUIRE(0 <= var && var < num_vars_, "variable " << var);
  if (placement_ == SingleCopyPlacement::Modular) {
    return static_cast<i32>(var % mesh_.size());
  }
  u64 state = seed_ ^ (static_cast<u64>(var) * 0x9e3779b97f4a7c15ULL);
  return static_cast<i32>(splitmix64(state) %
                          static_cast<u64>(mesh_.size()));
}

std::vector<i64> SingleCopySim::step(
    const std::vector<AccessRequest>& requests, SingleCopyStats* stats) {
  MP_REQUIRE(static_cast<i64>(requests.size()) <= mesh_.size(),
             "more requests than processors");
  SingleCopyStats local;
  SingleCopyStats& st = stats != nullptr ? *stats : local;
  st = SingleCopyStats{};

  std::set<i64> used;
  for (size_t node = 0; node < requests.size(); ++node) {
    const AccessRequest& r = requests[node];
    if (r.var < 0) continue;
    MP_REQUIRE(used.insert(r.var).second,
               "EREW violation: variable " << r.var);
    Packet p;
    p.var = r.var;
    p.origin = static_cast<i32>(node);
    p.dest = home(r.var);
    p.op = r.op;
    p.value = r.value;
    mesh_.buf(static_cast<i32>(node)).push_back(p);
  }

  // Forward routing (sort-based to be fair to the baseline).
  st.route_steps += route_sorted(mesh_, mesh_.whole(), sort_opts_).steps;

  // Service: each node answers one request per step.
  i64 service = 0;
  for (i32 id = 0; id < mesh_.size(); ++id) {
    auto& b = mesh_.buf(id);
    service = std::max(service, static_cast<i64>(b.size()));
    for (Packet& p : b) {
      if (p.op == Op::Write) {
        memory_[p.var] = p.value;
      } else {
        const auto it = memory_.find(p.var);
        p.value = it == memory_.end() ? 0 : it->second;
      }
      p.dest = p.origin;
    }
  }
  st.service_steps = service;

  // Return routing.
  st.route_steps += route_sorted(mesh_, mesh_.whole(), sort_opts_).steps;

  std::vector<i64> results(requests.size(), 0);
  for (i32 id = 0; id < mesh_.size(); ++id) {
    auto& b = mesh_.buf(id);
    for (const Packet& p : b) {
      MP_ASSERT(p.origin == id, "packet lost on return");
      if (p.op == Op::Read && static_cast<size_t>(id) < results.size()) {
        results[static_cast<size_t>(id)] = p.value;
      }
    }
    b.clear();
  }
  st.total_steps = st.route_steps + st.service_steps;
  ++now_;
  return results;
}

}  // namespace meshpram
