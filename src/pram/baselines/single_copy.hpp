// Baseline: single-copy memory distribution on the mesh (no replication).
//
// This is the scheme the paper's deterministic machinery exists to beat:
// each variable lives in exactly one module, either
//   * Modular:  node(v) = v mod n               (the naive deterministic map
//     an adversary defeats by requesting one module's variables), or
//   * Hashed:   node(v) = mix64(seed, v) mod n  (the randomized-simulation
//     stand-in — good on random inputs, still adversary-defeatable because
//     a worst case always exists and the map is fixed).
//
// One PRAM step = route all request packets to their home nodes (sort-based
// (l1,l2)-routing), serve them at one access per node per step (memory
// contention = max node load), and route answers back. Fully consistent —
// used by bench_baselines to reproduce the §1 motivation numbers.
#pragma once

#include <unordered_map>
#include <vector>

#include "mesh/machine.hpp"
#include "protocol/access.hpp"
#include "routing/meshsort.hpp"

namespace meshpram {

enum class SingleCopyPlacement { Modular, Hashed };

struct SingleCopyStats {
  i64 total_steps = 0;
  i64 route_steps = 0;    ///< forward + return routing
  i64 service_steps = 0;  ///< max per-node request queue (memory contention)
};

class SingleCopySim {
 public:
  SingleCopySim(int mesh_rows, int mesh_cols, i64 num_vars,
                SingleCopyPlacement placement, u64 seed = 1,
                SortOptions sort_opts = {});

  i64 processors() const { return mesh_.size(); }
  i64 num_vars() const { return num_vars_; }

  /// Home node of a variable (exposed so benches can build adversarial
  /// request sets — the adversary knows the memory map, as in the paper's
  /// worst-case setting).
  i32 home(i64 var) const;

  std::vector<i64> step(const std::vector<AccessRequest>& requests,
                        SingleCopyStats* stats = nullptr);

 private:
  Mesh mesh_;
  i64 num_vars_;
  SingleCopyPlacement placement_;
  u64 seed_;
  SortOptions sort_opts_;
  std::unordered_map<i64, i64> memory_;
  i64 now_ = 0;
};

}  // namespace meshpram
