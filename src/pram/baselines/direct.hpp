// Ablation baseline: HMOS replication WITHOUT culling or staged routing.
//
// Every request simply sends one packet to each of its q^k copies, routed
// directly (sort-based routing over the whole mesh, no tessellation stages),
// writes update all copies and reads return any copy (all copies are always
// coherent here, so no timestamps are needed). This isolates what CULLING +
// staged routing buy: same memory layout and redundancy, but page congestion
// is whatever the request set inflicts (compare bench_baselines,
// bench_culling ablation rows).
#pragma once

#include <vector>

#include "hmos/placement.hpp"
#include "mesh/machine.hpp"
#include "protocol/access.hpp"
#include "protocol/simulator.hpp"
#include "routing/meshsort.hpp"

namespace meshpram {

struct DirectStats {
  i64 total_steps = 0;
  i64 route_steps = 0;
  i64 service_steps = 0;  ///< max per-node delivered packets
};

class DirectAllCopiesSim {
 public:
  DirectAllCopiesSim(const SimConfig& config);

  i64 processors() const { return mesh_.size(); }
  i64 num_vars() const { return params_.num_vars(); }
  const Placement& placement() const { return placement_; }

  std::vector<i64> step(const std::vector<AccessRequest>& requests,
                        DirectStats* stats = nullptr);

 private:
  HmosParams params_;
  MemoryMap map_;
  Mesh mesh_;
  Placement placement_;
  SortOptions sort_opts_;
};

}  // namespace meshpram
