#include "pram/baselines/mpc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

namespace {

int log_base(i64 q, i64 m) {
  int d = 0;
  i64 p = 1;
  while (p < m) {
    p *= q;
    ++d;
  }
  MP_REQUIRE(p == m, "MPC module count " << m << " is not a power of q=" << q);
  return d;
}

}  // namespace

MpcSim::MpcSim(i64 q, i64 m, i64 num_vars)
    : q_(q), m_(m), num_vars_(num_vars),
      graph_(q, log_base(q, m), num_vars) {
  MP_REQUIRE(num_vars >= 1, "num_vars " << num_vars);
}

i64 MpcSim::single_copy_contention(const std::vector<i64>& vars) const {
  std::vector<i64> load(static_cast<size_t>(m_), 0);
  for (i64 v : vars) {
    MP_REQUIRE(0 <= v && v < num_vars_, "variable " << v);
    ++load[static_cast<size_t>(v % m_)];
  }
  return *std::max_element(load.begin(), load.end());
}

i64 MpcSim::majority_contention(const std::vector<i64>& vars) const {
  const i64 need = q_ / 2 + 1;
  std::vector<i64> load(static_cast<size_t>(m_), 0);
  for (i64 v : vars) {
    MP_REQUIRE(0 <= v && v < num_vars_, "variable " << v);
    // Greedy: access the `need` currently least-loaded copies.
    auto copies = graph_.neighbors(v);
    std::stable_sort(copies.begin(), copies.end(), [&](i64 a, i64 b) {
      return load[static_cast<size_t>(a)] < load[static_cast<size_t>(b)];
    });
    for (i64 t = 0; t < need; ++t) ++load[static_cast<size_t>(copies[static_cast<size_t>(t)])];
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace meshpram
