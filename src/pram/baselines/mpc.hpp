// Module Parallel Computer (MPC) contention models.
//
// The MPC (complete interconnection, §1) isolates MEMORY CONTENTION from
// routing: a step costs the maximum number of accesses any module serves.
// Two placements are modeled:
//   * single copy per variable (v -> module v mod m): the classic worst case
//     — an adversary puts all n requests in one module, contention n;
//   * the [PP93a] (m, q)-BIBD with majority quorums: reads/writes access
//     ceil(q/2)+... a majority of the q copies; copies are chosen greedily
//     against current module loads (a simple stand-in for the paper's
//     involved access protocol — it measures how replication + choice caps
//     contention, which is the phenomenon the HMOS lifts onto the mesh).
//
// Used by bench_baselines to show the contention landscape the mesh scheme
// inherits from [PP93a].
#pragma once

#include <vector>

#include "bibd/subgraph.hpp"
#include "util/math.hpp"

namespace meshpram {

struct MpcStats {
  i64 contention = 0;  ///< max accesses served by one module
};

class MpcSim {
 public:
  /// m modules, M variables distributed via a (q^d, q)-BIBD subgraph with
  /// q^d = m (m must be a power of q).
  MpcSim(i64 q, i64 m, i64 num_vars);

  i64 modules() const { return m_; }
  i64 num_vars() const { return num_vars_; }

  /// Contention of serving `vars` with a single copy per variable.
  i64 single_copy_contention(const std::vector<i64>& vars) const;

  /// Contention with BIBD majority quorums and greedy least-loaded copy
  /// choice.
  i64 majority_contention(const std::vector<i64>& vars) const;

  const BibdSubgraph& graph() const { return graph_; }

 private:
  i64 q_;
  i64 m_;
  i64 num_vars_;
  BibdSubgraph graph_;
};

}  // namespace meshpram
