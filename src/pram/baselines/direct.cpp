#include "pram/baselines/direct.hpp"

#include <algorithm>
#include <set>

#include "routing/lroute.hpp"
#include "util/error.hpp"

namespace meshpram {

DirectAllCopiesSim::DirectAllCopiesSim(const SimConfig& config)
    : params_(config.q, config.k, config.num_vars, config.mesh_rows,
              config.mesh_cols),
      map_(params_),
      mesh_(config.mesh_rows, config.mesh_cols),
      placement_(map_, mesh_.whole()),
      sort_opts_{config.sort_mode} {}

std::vector<i64> DirectAllCopiesSim::step(
    const std::vector<AccessRequest>& requests, DirectStats* stats) {
  MP_REQUIRE(static_cast<i64>(requests.size()) <= mesh_.size(),
             "more requests than processors");
  DirectStats local;
  DirectStats& st = stats != nullptr ? *stats : local;
  st = DirectStats{};

  std::set<i64> used;
  for (size_t node = 0; node < requests.size(); ++node) {
    const AccessRequest& r = requests[node];
    if (r.var < 0) continue;
    MP_REQUIRE(used.insert(r.var).second,
               "EREW violation: variable " << r.var);
    for (i64 code = 0; code < params_.redundancy(); ++code) {
      Packet p;
      p.var = r.var;
      p.copy = static_cast<u64>(r.var) *
                   static_cast<u64>(params_.redundancy()) +
               static_cast<u64>(code);
      p.origin = static_cast<i32>(node);
      p.dest = mesh_.node_id(placement_.locate(p.copy).node);
      p.op = r.op;
      p.value = r.value;
      mesh_.buf(static_cast<i32>(node)).push_back(p);
    }
  }

  st.route_steps += route_sorted(mesh_, mesh_.whole(), sort_opts_).steps;

  i64 service = 0;
  for (i32 id = 0; id < mesh_.size(); ++id) {
    auto& b = mesh_.buf(id);
    service = std::max(service, static_cast<i64>(b.size()));
    auto& store = mesh_.store(id);
    for (Packet& p : b) {
      if (p.op == Op::Write) {
        store[p.copy] = CopySlot{p.value, 0};
      } else {
        const CopySlot* slot = store.find(p.copy);
        p.value = slot == nullptr ? 0 : slot->value;
      }
      p.dest = p.origin;
    }
  }
  st.service_steps = service;

  st.route_steps += route_sorted(mesh_, mesh_.whole(), sort_opts_).steps;

  std::vector<i64> results(requests.size(), 0);
  for (i32 id = 0; id < mesh_.size(); ++id) {
    auto& b = mesh_.buf(id);
    for (const Packet& p : b) {
      if (p.op == Op::Read && static_cast<size_t>(id) < results.size()) {
        results[static_cast<size_t>(id)] = p.value;
      }
    }
    b.clear();
  }
  st.total_steps = st.route_steps + st.service_steps;
  return results;
}

}  // namespace meshpram
