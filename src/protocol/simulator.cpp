#include "protocol/simulator.hpp"

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

const telemetry::Label kPramStep = telemetry::intern("pram.step");

}  // namespace

PramMeshSimulator::PramMeshSimulator(const SimConfig& config)
    : config_(config) {
  params_ = std::make_unique<HmosParams>(config.q, config.k, config.num_vars,
                                         config.mesh_rows, config.mesh_cols);
  map_ = std::make_unique<MemoryMap>(*params_);
  mesh_ = std::make_unique<Mesh>(config.mesh_rows, config.mesh_cols);
  placement_ = std::make_unique<Placement>(*map_, mesh_->whole());
  protocol_ = std::make_unique<AccessProtocol>(
      *mesh_, *placement_, SortOptions{config.sort_mode});
  fault_policy_ = config.fault_policy;
  fault::FaultPlan plan =
      config.fault_plan.empty() && config.fault_plan_from_env
          ? fault::FaultPlan::from_env(config.mesh_rows, config.mesh_cols)
          : config.fault_plan;
  if (!plan.empty()) {
    plan.validate();
    fault_plan_ = std::make_unique<fault::FaultPlan>(std::move(plan));
    mesh_->set_fault_plan(fault_plan_.get());
    config_.fault_plan = *fault_plan_;  // retain the effective plan
  }
}

std::vector<i64> PramMeshSimulator::step(
    const std::vector<AccessRequest>& requests, StepStats* stats,
    bool feed_clock) {
  telemetry::begin_frame();  // sampling granularity = one PRAM step
  std::vector<AccessRequest> padded = requests;
  MP_REQUIRE(static_cast<i64>(padded.size()) <= processors(),
             "more requests (" << padded.size() << ") than processors ("
                               << processors() << ')');
  padded.resize(static_cast<size_t>(processors()));
  StepStats local;
  StepStats& st = stats != nullptr ? *stats : local;
  std::vector<i64> results;
  {
    telemetry::Span step_span(telemetry::Cat::Step, kPramStep, now_);
    results = protocol_->execute(padded, now_, &st);
    step_span.set_steps(st.total_steps);
  }
  ++now_;
  if (stats != nullptr && feed_clock) {
    mesh_->clock().add("pram_step", stats->total_steps);
  }
  if (fault_policy_ == FaultPolicy::HardFail && st.fault.any_failures()) {
    throw fault::FaultError(
        std::to_string(st.fault.requests_failed) +
        " request(s) failed under the installed fault plan "
        "(FaultPolicy::HardFail)");
  }
  return results;
}

std::vector<i64> PramMeshSimulator::step_grouped(
    const std::vector<const std::vector<AccessRequest>*>& groups,
    StepStats* stats) {
  MP_REQUIRE(!groups.empty(), "step_grouped: no groups");
  MP_REQUIRE(fault_plan() == nullptr,
             "step_grouped: coalesced steps are not supported under a fault "
             "plan");
  telemetry::begin_frame();
  const i64 n = processors();
  std::vector<AccessRequest> padded;
  padded.reserve(static_cast<size_t>(n));
  std::vector<i32> group_of;
  group_of.reserve(static_cast<size_t>(n));
  for (size_t g = 0; g < groups.size(); ++g) {
    MP_REQUIRE(groups[g] != nullptr, "step_grouped: null group");
    for (const AccessRequest& a : *groups[g]) {
      padded.push_back(a);
      group_of.push_back(static_cast<i32>(g));
    }
  }
  MP_REQUIRE(static_cast<i64>(padded.size()) <= n,
             "step_grouped: " << padded.size() << " accesses across "
                              << groups.size() << " groups exceed " << n
                              << " processors");
  padded.resize(static_cast<size_t>(n));
  group_of.resize(static_cast<size_t>(n), 0);
  StepStats local;
  StepStats& st = stats != nullptr ? *stats : local;
  std::vector<i64> results;
  {
    telemetry::Span step_span(telemetry::Cat::Step, kPramStep, now_);
    results = protocol_->execute(padded, now_, &st, group_of.data());
    step_span.set_steps(st.total_steps);
  }
  now_ += static_cast<i64>(groups.size());
  return results;
}

DegradedResult PramMeshSimulator::step_degraded(
    const std::vector<AccessRequest>& requests, StepStats* stats) {
  StepStats local;
  StepStats& st = stats != nullptr ? *stats : local;
  DegradedResult r;
  r.values = step(requests, &st);
  r.report = st.fault;
  if (st.request_ok.empty()) {
    r.ok.assign(static_cast<size_t>(processors()), 1);
  } else {
    r.ok = st.request_ok;
  }
  return r;
}

void PramMeshSimulator::write_step(const std::vector<i64>& vars,
                                   const std::vector<i64>& values,
                                   StepStats* stats) {
  MP_REQUIRE(vars.size() == values.size(), "vars/values size mismatch");
  std::vector<AccessRequest> reqs(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    reqs[i] = AccessRequest{vars[i], Op::Write, values[i]};
  }
  step(reqs, stats);
}

std::vector<i64> PramMeshSimulator::read_step(const std::vector<i64>& vars,
                                              StepStats* stats) {
  std::vector<AccessRequest> reqs(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    reqs[i] = AccessRequest{vars[i], Op::Read, 0};
  }
  auto all = step(reqs, stats);
  all.resize(vars.size());
  return all;
}

}  // namespace meshpram
