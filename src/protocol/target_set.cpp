#include "protocol/target_set.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

TargetSelector::TargetSelector(i64 q, int k) : q_(q), k_(k) {
  MP_REQUIRE(q >= 3, "target sets need q >= 3, got " << q);
  MP_REQUIRE(1 <= k && k <= 6, "tree depth k=" << k);
  codes_ = ipow(q, k);
  qpow_.resize(static_cast<size_t>(k) + 1);
  for (int i = 0; i <= k; ++i) qpow_[static_cast<size_t>(i)] = ipow(q, i);
}

TargetSelector::Node TargetSelector::solve(
    int depth, i64 prefix, int level, const std::vector<char>& candidate,
    const std::vector<char>& marked) const {
  Node node;
  if (depth == k_) {
    node.feasible = candidate[static_cast<size_t>(prefix)] != 0;
    if (node.feasible) {
      node.cost = marked[static_cast<size_t>(prefix)] ? 0 : 1;
      node.codes = {prefix};
    }
    return node;
  }
  // Children of the node at tree depth `depth`: vary digit c_{depth+1}.
  std::vector<Node> kids;
  kids.reserve(static_cast<size_t>(q_));
  for (i64 c = 0; c < q_; ++c) {
    kids.push_back(solve(depth + 1, prefix + c * qpow_[static_cast<size_t>(depth)],
                         level, candidate, marked));
  }
  const i64 need = (depth >= level) ? extensive() : majority();
  // Pick the `need` cheapest feasible children (stable order for determinism).
  std::vector<size_t> order;
  for (size_t i = 0; i < kids.size(); ++i) {
    if (kids[i].feasible) order.push_back(i);
  }
  if (static_cast<i64>(order.size()) < need) return node;  // infeasible
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return kids[a].cost < kids[b].cost;
  });
  node.feasible = true;
  for (i64 t = 0; t < need; ++t) {
    const Node& kid = kids[order[static_cast<size_t>(t)]];
    node.cost += kid.cost;
    node.codes.insert(node.codes.end(), kid.codes.begin(), kid.codes.end());
  }
  return node;
}

TargetSelector::Selection TargetSelector::select(
    int level, const std::vector<char>& candidate,
    const std::vector<char>& marked) const {
  MP_REQUIRE(0 <= level && level <= k_, "target level " << level);
  MP_REQUIRE(static_cast<i64>(candidate.size()) == codes_ &&
                 static_cast<i64>(marked.size()) == codes_,
             "bitmap size mismatch: " << candidate.size() << '/'
                                      << marked.size() << " vs " << codes_);
  Node root = solve(0, 0, level, candidate, marked);
  Selection sel;
  sel.feasible = root.feasible;
  if (root.feasible) {
    std::sort(root.codes.begin(), root.codes.end());
    sel.codes = std::move(root.codes);
    sel.unmarked = root.cost;
  }
  return sel;
}

std::vector<i64> TargetSelector::initial(int level) const {
  const std::vector<char> all(static_cast<size_t>(codes_), 1);
  const Selection sel = select(level, all, all);
  MP_ASSERT(sel.feasible, "full copy tree cannot satisfy level " << level);
  return sel.codes;
}

bool TargetSelector::accessed(int depth, i64 prefix, int level,
                              const std::vector<char>& leaves) const {
  if (depth == k_) return leaves[static_cast<size_t>(prefix)] != 0;
  const i64 need = (depth >= level) ? extensive() : majority();
  i64 got = 0;
  for (i64 c = 0; c < q_; ++c) {
    if (accessed(depth + 1, prefix + c * qpow_[static_cast<size_t>(depth)],
                 level, leaves)) {
      ++got;
    }
  }
  return got >= need;
}

bool TargetSelector::is_target_set(const std::vector<char>& leaves) const {
  // Plain Definition 2 access = level-(k+1) rule: every internal node uses
  // plain majority. Passing level = k makes depth >= level only hold at
  // leaves, which have no children; use k_ (internal depths 0..k-1 < k).
  return is_level_target_set(leaves, k_);
}

bool TargetSelector::is_level_target_set(const std::vector<char>& leaves,
                                         int level) const {
  MP_REQUIRE(static_cast<i64>(leaves.size()) == codes_, "bitmap size");
  MP_REQUIRE(0 <= level && level <= k_, "target level " << level);
  return accessed(0, 0, level, leaves);
}

bool TargetSelector::intersects(const std::vector<i64>& a,
                                const std::vector<i64>& b) {
  // Both inputs sorted (select() sorts).
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace meshpram
