#include "protocol/access.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <tuple>

#include "mesh/parallel.hpp"
#include "routing/greedy.hpp"
#include "routing/rank.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

namespace {

/// Chunk size for the flat per-node sweeps (same grain as culling.cpp). All
/// of them touch only the node's own buffer/store/result cell, so the
/// chunking never shows in the results.
constexpr i64 kNodeGrain = 64;

// Stage-cat spans partition StepStats::total_steps (telemetry.hpp): CULLING
// iterations + forward stages + delivery + return stages; everything else
// here is Phase-cat detail nested inside them.
const telemetry::Label kCullingRun = telemetry::intern("culling.run");
const telemetry::Label kGenPackets = telemetry::intern("access.gen_packets");
const telemetry::Label kDistribute = telemetry::intern("access.distribute");
const telemetry::Label kForwardStage = telemetry::intern("access.forward");
const telemetry::Label kDeliverStage = telemetry::intern("access.deliver");
const telemetry::Label kApplyAccess = telemetry::intern("access.apply");
const telemetry::Label kReturnStage = telemetry::intern("access.return");
const telemetry::Label kCollect = telemetry::intern("access.collect");

}  // namespace

AccessProtocol::AccessProtocol(Mesh& mesh, const Placement& placement,
                               SortOptions sort_opts)
    : mesh_(mesh), placement_(placement), sort_opts_(sort_opts) {
  const int k = placement.map().params().k();
  level_regions_.resize(static_cast<size_t>(k) + 1);
  for (int i = 1; i <= k; ++i) {
    std::set<std::tuple<int, int, int, int>> seen;
    for (const PageInfo& page : placement.pages(i)) {
      const Region& g = page.region;
      if (seen.insert({g.r0(), g.c0(), g.rows(), g.cols()}).second) {
        level_regions_[static_cast<size_t>(i)].push_back(g);
      }
    }
  }
}

i64 AccessProtocol::distribute_stage(const Region& region, int dest_level) {
  telemetry::Span span(telemetry::Cat::Phase, kDistribute, dest_level);
  // Key every packet by its destination page at dest_level. Chunk-parallel
  // when called for the whole mesh (stage k+1); the per-region calls come
  // from pool workers and stay serial (for_each_region_chunk gates on that).
  for_each_region_chunk(
      mesh_, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          for (Packet& p : mesh_.buf(cur.id())) {
            p.key = static_cast<u64>(placement_.page_at(p.copy, dest_level));
          }
        }
      });
  i64 steps = sort_region(mesh_, region, sort_opts_);
  steps += rank_within_groups(mesh_, region);

  const auto& pages = placement_.pages(dest_level);
  const fault::FaultPlan* plan = mesh_.fault_plan();
  const bool skip_dead = plan != nullptr && plan->has_dead_nodes();
  for_each_region_chunk(
      mesh_, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          for (Packet& p : mesh_.buf(cur.id())) {
            const Region& sub = pages[static_cast<size_t>(p.key)].region;
            MP_ASSERT(region.contains(sub.at_snake(0)),
                      "destination page region escapes the stage region");
            if (skip_dead) {
              // Degraded mode: spread rank r over the page's alive nodes
              // only — dead processors host no intermediate stops. With no
              // dead node in the page this equals the fault-free formula.
              const auto& alive =
                  alive_slots_[static_cast<size_t>(dest_level)]
                              [static_cast<size_t>(p.key)];
              MP_ASSERT(!alive.empty(),
                        "packet targets a fully dead page region; its copies "
                        "should have been culled");
              p.dest = alive[static_cast<size_t>(
                  static_cast<i64>(p.rank) %
                  static_cast<i64>(alive.size()))];
            } else {
              p.dest = mesh_.node_id(
                  sub.at_snake(static_cast<i64>(p.rank) % sub.size()));
            }
          }
        }
      });
  // Under routing faults a detour may have to leave the stage submesh (a dead
  // link inside a 1-wide strip disconnects the strip internally, while the
  // surrounding mesh still has paths around), so route at whole-mesh scope.
  // execute() serializes the stage loop in that case: only this region's
  // packets are in flight — every other buffered packet is already at its
  // node (dest == id) and stays in place at zero cost.
  const bool routing_faults = plan != nullptr && plan->affects_routing();
  steps += route_greedy(mesh_, routing_faults ? mesh_.whole() : region).steps;

  // Record the stop for the return journey.
  for_each_region_chunk(
      mesh_, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          const i32 id = cur.id();
          for (Packet& p : mesh_.buf(id)) p.push_trail(id);
        }
      });
  span.set_steps(steps);
  return steps;
}

void AccessProtocol::build_alive_slots(const fault::FaultPlan* plan) {
  const int k = placement_.map().params().k();
  alive_slots_.assign(static_cast<size_t>(k) + 1, {});
  for (int level = 1; level <= k; ++level) {
    const auto& pages = placement_.pages(level);
    auto& lvl = alive_slots_[static_cast<size_t>(level)];
    lvl.resize(pages.size());
    for (size_t pg = 0; pg < pages.size(); ++pg) {
      const Region& g = pages[pg].region;
      auto& slots = lvl[pg];
      slots.reserve(static_cast<size_t>(g.size()));
      for (i64 s = 0; s < g.size(); ++s) {
        const i32 id = mesh_.node_id(g.at_snake(s));
        if (!plan->node_dead(id)) slots.push_back(id);
      }
      // A fully dead page region is legal: every copy under it sits on a
      // dead module (node faults kill the module too), so CULLING never
      // selects one and no packet ever targets the page. The slot list stays
      // empty; distribute_stage asserts it is never consulted.
    }
  }
  alive_plan_ = plan;
}

std::vector<i64> AccessProtocol::execute(
    const std::vector<AccessRequest>& requests, i64 timestamp,
    StepStats* stats, const i32* write_group) {
  const HmosParams& params = placement_.map().params();
  const int k = params.k();
  const i64 n = mesh_.size();
  MP_REQUIRE(static_cast<i64>(requests.size()) == n,
             "requests size " << requests.size() << " != mesh size " << n);
  MP_REQUIRE(mesh_.total_packets(mesh_.whole()) == 0,
             "mesh buffers must be empty before an access step");
  MP_REQUIRE(write_group == nullptr || mesh_.fault_plan() == nullptr,
             "coalesced (grouped) steps are not supported under a fault plan");

  // EREW: requested variables must be pairwise distinct.
  {
    std::set<i64> vars;
    for (const AccessRequest& r : requests) {
      if (r.var < 0) continue;
      MP_REQUIRE(r.var < params.num_vars(), "variable " << r.var);
      MP_REQUIRE(vars.insert(r.var).second,
                 "EREW violation: variable " << r.var
                                             << " requested twice in a step");
    }
  }

  StepStats local;
  StepStats& st = stats != nullptr ? *stats : local;
  st = StepStats{};

  // ---- Fault-plan setup ---------------------------------------------------
  const fault::FaultPlan* plan = mesh_.fault_plan();
  std::vector<char> request_ok;
  if (plan != nullptr) {
    mesh_.set_fault_now(timestamp);
    mesh_.fault_tally().reset();
    st.fault.dead_nodes = plan->dead_node_count();
    st.fault.dead_modules = plan->dead_module_count();
    request_ok.assign(static_cast<size_t>(n), 1);
    if (plan->has_dead_nodes() && alive_plan_ != plan) {
      build_alive_slots(plan);
    }
  }

  // ---- Copy selection -----------------------------------------------------
  std::vector<i64> request_vars(static_cast<size_t>(n), -1);
  for (i64 node = 0; node < n; ++node) {
    request_vars[static_cast<size_t>(node)] =
        requests[static_cast<size_t>(node)].var;
  }
  if (plan != nullptr && plan->has_dead_nodes()) {
    // A fail-stop processor issues no requests: its access fails up front.
    for (i64 node = 0; node < n; ++node) {
      if (request_vars[static_cast<size_t>(node)] >= 0 &&
          plan->node_dead(static_cast<i32>(node))) {
        request_vars[static_cast<size_t>(node)] = -1;
        request_ok[static_cast<size_t>(node)] = 0;
        ++st.fault.requests_failed;
      }
    }
  }
  Culling culling(mesh_, placement_, sort_opts_);
  std::vector<std::vector<i64>> selections;
  {
    telemetry::Span culling_span(telemetry::Cat::Phase, kCullingRun);
    selections = culling.run(request_vars, &st.culling,
                             plan != nullptr ? &request_ok : nullptr);
    st.culling_steps = st.culling.steps;
    culling_span.set_steps(st.culling_steps);
  }
  st.fault.copies_lost += st.culling.copies_lost;
  st.fault.requests_degraded += st.culling.requests_degraded;
  st.fault.requests_failed += st.culling.requests_failed;

  // ---- Packet generation --------------------------------------------------
  {
    telemetry::Span gen_span(telemetry::Cat::Phase, kGenPackets);
    std::atomic<i64> packets{0};  // commutative sum: thread-count invariant
    // Chunked over physical slots so the buffer writes stream the slab.
    execution_pool().for_each_chunk(n, kNodeGrain, [&](i64 begin, i64 end) {
      i64 local = 0;
      for (i64 slot = begin; slot < end; ++slot) {
        const i32 node = mesh_.order().id_of(static_cast<i32>(slot));
        const AccessRequest& req = requests[static_cast<size_t>(node)];
        if (req.var < 0) continue;
        for (i64 code : selections[static_cast<size_t>(node)]) {
          Packet p;
          p.var = req.var;
          p.copy = static_cast<u64>(req.var) *
                       static_cast<u64>(params.redundancy()) +
                   static_cast<u64>(code);
          p.origin = node;
          p.op = req.op;
          p.value = req.value;
          if (req.op == Op::Write) {
            // Writes carry their logical time with them: grouped steps stamp
            // each origin's group offset here so one routing pass leaves the
            // same timestamps sequential execution would.
            p.timestamp =
                timestamp + (write_group != nullptr ? write_group[node] : 0);
          }
          mesh_.buf(node).push_back(p);
          ++local;
        }
      }
      packets.fetch_add(local, std::memory_order_relaxed);
    });
    st.packets += packets.load(std::memory_order_relaxed);
  }

  // ---- Forward stages k+1 .. 2 -------------------------------------------
  // Stage k+1 spans the whole mesh; the inner stages run one worker per
  // level-i submesh (disjoint regions, see mesh/parallel.hpp). Under routing
  // faults the submeshes cannot run concurrently (detours may cross their
  // boundaries, see distribute_stage), so the stage loop runs serially and
  // is charged the sum of its submesh costs instead of the max.
  const bool routing_faults = plan != nullptr && plan->affects_routing();
  for (int stage = k + 1; stage >= 2; --stage) {
    telemetry::Span stage_span(telemetry::Cat::Stage, kForwardStage, stage);
    ParallelCost pc;
    if (stage == k + 1) {
      pc.observe(distribute_stage(mesh_.whole(), k));
    } else if (routing_faults) {
      i64 sum = 0;
      for (const Region& g : level_regions_[static_cast<size_t>(stage)]) {
        sum += distribute_stage(g, stage - 1);
      }
      pc.observe(sum);
    } else {
      pc.observe_all(parallel_for_regions(
          mesh_, level_regions_[static_cast<size_t>(stage)],
          [&](const Region& g) { return distribute_stage(g, stage - 1); }));
    }
    st.forward_stage_steps.push_back(pc.max());
    st.forward_steps += pc.max();
    stage_span.set_steps(pc.max());
  }

  // ---- Stage 1: deliver and access ----------------------------------------
  {
    telemetry::Span deliver_span(telemetry::Cat::Stage, kDeliverStage, 1);
    ParallelCost pc;
    auto deliver = [&](const Region& g) -> i64 {
      for (RegionCursor cur = mesh_.cursor(g); cur.valid(); cur.advance()) {
        for (Packet& p : mesh_.buf(cur.id())) {
          p.dest = mesh_.node_id(placement_.locate(p.copy).node);
        }
      }
      return route_greedy(mesh_, routing_faults ? mesh_.whole() : g).steps;
    };
    if (routing_faults) {
      i64 sum = 0;
      for (const Region& g : level_regions_[1]) sum += deliver(g);
      pc.observe(sum);
    } else {
      pc.observe_all(parallel_for_regions(mesh_, level_regions_[1], deliver));
    }
    st.forward_stage_steps.push_back(pc.max());
    st.forward_steps += pc.max();
    deliver_span.set_steps(pc.max());
  }
  {
    // Perform the accesses at the destination processors.
    telemetry::Span apply_span(telemetry::Cat::Phase, kApplyAccess);
    const bool count_touches = telemetry::sampling_on();
    mesh_.for_each_node(kNodeGrain, [&](i32 node) {
      if (apply_shard_ != nullptr && !apply_shard_->owns_node(node)) return;
      auto& store = mesh_.store(node);
      auto& b = mesh_.buf(node);
      if (count_touches && !b.empty()) {
        mesh_.counters().add_copies_touched(node, static_cast<i64>(b.size()));
      }
      for (Packet& p : b) {
        if (p.op == Op::Write) {
          store[p.copy] = CopySlot{p.value, p.timestamp};
        } else {
          const CopySlot* slot = store.find(p.copy);
          if (slot != nullptr) {
            p.value = slot->value;
            p.timestamp = slot->timestamp;
          } else {
            p.value = 0;
            p.timestamp = -1;
          }
        }
      }
    });
    if (apply_shard_ != nullptr) apply_shard_->exchange_fills(mesh_);
  }

  // ---- Return journey ------------------------------------------------------
  // Retrace trail stops: level-1 regions first, then level 2, ..., then the
  // whole mesh back to the origins.
  for (int stage = 1; stage <= k; ++stage) {
    telemetry::Span stage_span(telemetry::Cat::Stage, kReturnStage, stage);
    const int trail_idx = k - stage;  // trail[k-1] = innermost stop
    ParallelCost pc;
    auto retrace = [&](const Region& g) -> i64 {
      bool any = false;
      for (RegionCursor cur = mesh_.cursor(g); cur.valid(); cur.advance()) {
        for (Packet& p : mesh_.buf(cur.id())) {
          MP_ASSERT(p.trail_len == k, "packet with incomplete trail");
          p.dest = p.trail[static_cast<size_t>(trail_idx)];
          any = true;
        }
      }
      if (!any) return 0;
      return route_greedy(mesh_, routing_faults ? mesh_.whole() : g).steps;
    };
    if (routing_faults) {
      i64 sum = 0;
      for (const Region& g : level_regions_[static_cast<size_t>(stage)]) {
        sum += retrace(g);
      }
      pc.observe(sum);
    } else {
      pc.observe_all(parallel_for_regions(
          mesh_, level_regions_[static_cast<size_t>(stage)], retrace));
    }
    st.return_steps += pc.max();
    stage_span.set_steps(pc.max());
  }
  {
    telemetry::Span stage_span(telemetry::Cat::Stage, kReturnStage, k + 1);
    mesh_.for_each_node(kNodeGrain, [&](i32 node) {
      for (Packet& p : mesh_.buf(node)) p.dest = p.origin;
    });
    const i64 steps = route_greedy(mesh_, mesh_.whole()).steps;
    st.return_steps += steps;
    stage_span.set_steps(steps);
  }

  // ---- Collect results -----------------------------------------------------
  telemetry::Span collect_span(telemetry::Cat::Phase, kCollect);
  std::vector<i64> results(static_cast<size_t>(n), 0);
  mesh_.for_each_node(kNodeGrain, [&](i32 node) {
    auto& b = mesh_.buf(node);
    const AccessRequest& req = requests[static_cast<size_t>(node)];
    i64 best_ts = -2;
    i64 best_val = 0;
    i64 got = 0;
    for (const Packet& p : b) {
      MP_ASSERT(p.origin == node && p.var == req.var,
                "packet returned to the wrong origin");
      ++got;
      if (p.op == Op::Read && p.timestamp > best_ts) {
        best_ts = p.timestamp;
        best_val = p.value;
      }
    }
    if (req.var >= 0) {
      if (request_ok.empty() || request_ok[static_cast<size_t>(node)] != 0) {
        // No fault ever destroys an in-flight packet (drops are
        // retransmitted, stalls delay, detours reroute), so conservation
        // holds even under an active plan.
        MP_ASSERT(
            got == static_cast<i64>(
                       selections[static_cast<size_t>(node)].size()),
            "lost packets: " << got << " of "
                             << selections[static_cast<size_t>(node)].size()
                             << " returned");
        if (req.op == Op::Read) {
          results[static_cast<size_t>(node)] = best_val;
        }
      } else {
        MP_ASSERT(got == 0, "failed request received " << got << " packets");
      }
    }
    b.clear();
  });

  if (plan != nullptr) {
    mesh_.fault_tally().drain_into(st.fault);
    st.request_ok = std::move(request_ok);
  }
  st.total_steps = st.culling_steps + st.forward_steps + st.return_steps;
  return results;
}

}  // namespace meshpram
