// Target-set machinery on the copy tree T_v (§3.1 Definition 2, §3.2).
//
// The q^k copies of a variable are the leaves of a complete q-ary tree of
// depth k; a copy is addressed by its child-choice code (c_1, ..., c_k)
// packed as sum c_i q^{i-1} (c_1 = child of the root). Definition 2: a leaf
// is accessed if reached; an internal node is accessed if a MAJORITY
// (floor(q/2)+1) of its children are accessed. A target set is a leaf set
// that accesses the root.
//
// CULLING works with *level-i target sets*: internal nodes at tree levels
// >= i need MORE than a majority (floor(q/2)+2) of extensively accessed
// children; below level i plain majority suffices. A minimal level-i target
// set therefore has (floor(q/2)+1)^i * (floor(q/2)+2)^{k-i} leaves; at i = k
// it is an ordinary minimal target set.
//
// select() extracts a minimal level-i target set from a candidate leaf set
// while MINIMIZING the number of chosen leaves outside `marked` — exactly
// the "extract from M if possible, otherwise add a cheapest S" step of the
// CULLING pseudo-code, done with a bottom-up DP over the q-ary tree.
#pragma once

#include <vector>

#include "util/math.hpp"

namespace meshpram {

class TargetSelector {
 public:
  TargetSelector(i64 q, int k);

  i64 q() const { return q_; }
  int k() const { return k_; }
  i64 num_codes() const { return codes_; }
  i64 majority() const { return q_ / 2 + 1; }
  i64 extensive() const { return q_ / 2 + 2; }

  struct Selection {
    bool feasible = false;
    std::vector<i64> codes;  ///< chosen leaves (sorted)
    i64 unmarked = 0;        ///< chosen leaves outside `marked`
  };

  /// Minimal level-`level` target set within `candidate` (bitmaps over
  /// [0, q^k)), minimizing |chosen \ marked|. level in [0, k].
  Selection select(int level, const std::vector<char>& candidate,
                   const std::vector<char>& marked) const;

  /// Minimal level-`level` target set assuming all copies are available.
  std::vector<i64> initial(int level) const;

  /// Definition 2: does `leaves` access the root of T_v?
  bool is_target_set(const std::vector<char>& leaves) const;

  /// Extensive-access check: is `leaves` a level-`level` target set?
  bool is_level_target_set(const std::vector<char>& leaves, int level) const;

  /// Quorum property behind consistency: any two target sets intersect.
  /// (Exposed for the property tests.)
  static bool intersects(const std::vector<i64>& a, const std::vector<i64>& b);

 private:
  struct Node {
    bool feasible = false;
    i64 cost = 0;
    std::vector<i64> codes;
  };
  Node solve(int depth, i64 prefix, int level,
             const std::vector<char>& candidate,
             const std::vector<char>& marked) const;
  bool accessed(int depth, i64 prefix, int level,
                const std::vector<char>& leaves) const;

  i64 q_;
  int k_;
  i64 codes_;
  std::vector<i64> qpow_;
};

}  // namespace meshpram
