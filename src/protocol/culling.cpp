#include "protocol/culling.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "routing/lroute.hpp"
#include "routing/rank.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

namespace {

/// Per-node loops below are data-parallel (each node touches only its own
/// buffer / bitmap); chunks smaller than this are not worth a handoff.
constexpr i64 kNodeGrain = 64;

/// Stage-cat spans partition StepStats::total_steps (telemetry.hpp): each
/// CULLING iteration is one stage, charged the steps it added to st.steps.
const telemetry::Label kCullIter = telemetry::intern("culling.iter");

}  // namespace

Culling::Culling(Mesh& mesh, const Placement& placement,
                 SortOptions sort_opts)
    : mesh_(mesh), placement_(placement), sort_opts_(sort_opts),
      selector_(placement.map().params().q(),
                placement.map().params().k()) {}

std::vector<std::vector<i64>> Culling::run(
    const std::vector<i64>& request_vars, CullingStats* stats,
    std::vector<char>* request_ok) {
  const HmosParams& params = placement_.map().params();
  const i64 n = mesh_.size();
  MP_REQUIRE(static_cast<i64>(request_vars.size()) == n,
             "request vector size " << request_vars.size() << " != mesh size "
                                    << n);
  const Region whole = mesh_.whole();
  MP_REQUIRE(mesh_.total_packets(whole) == 0,
             "mesh buffers must be empty before CULLING");

  CullingStats local_stats;
  CullingStats& st = stats != nullptr ? *stats : local_stats;
  st = CullingStats{};

  const fault::FaultPlan* plan = mesh_.fault_plan();
  const bool degraded = plan != nullptr && plan->has_dead_modules();
  const bool count_lost = degraded && telemetry::sampling_on();

  // Effective requests: failed variables are culled out up front so every
  // loop below treats them exactly like idle processors.
  std::vector<i64> vars = request_vars;
  // Per-node degradation level (0 = full strength): iteration i extracts at
  // level max(i, deg). Allocated only in degraded mode.
  std::vector<int> deg;
  if (degraded) deg.assign(static_cast<size_t>(n), 0);

  // Per-node candidate bitmaps over the q^k codes: C_v^0 = minimal level-0
  // target set (at degradation level d, a minimal level-d target set within
  // the surviving copies). One flat slab indexed by PHYSICAL slot — node
  // `id`'s row is candidate[order.slot_of(id) * ncodes ...] — so the
  // slot-order sweeps below stream the slab front to back.
  const i64 ncodes = selector_.num_codes();
  const NodeOrder& order = mesh_.order();
  std::vector<char> candidate(static_cast<size_t>(n * ncodes), 0);
  std::vector<char> marked(static_cast<size_t>(n * ncodes), 0);
  // Level-i page id of each selected copy, cached by the emit loop (same
  // slab indexing). The selection loop only ever shrinks a node's candidate
  // set, so entries written at emit time cover every later read this iter.
  std::vector<i64> pages(static_cast<size_t>(n * ncodes), 0);
  const auto row_of = [&](i64 slot, std::vector<char>& slab) -> char* {
    return slab.data() + slot * ncodes;
  };
  const auto init_codes = selector_.initial(0);
  std::vector<char> avail;
  for (i64 node = 0; node < n; ++node) {
    const i64 var = vars[static_cast<size_t>(node)];
    if (var < 0) continue;
    MP_REQUIRE(var < params.num_vars(),
               "variable " << var << " outside shared memory");
    char* bits = row_of(order.slot_of(static_cast<i32>(node)), candidate);
    if (!degraded) {
      for (i64 code : init_codes) bits[code] = 1;
      continue;
    }
    // Surviving-copy bitmap: a copy is available iff the module of the node
    // it lives on is alive. The plan is static, so this is decided once.
    avail.assign(static_cast<size_t>(ncodes), 1);
    i64 lost = 0;
    for (i64 code = 0; code < ncodes; ++code) {
      const u64 copy = static_cast<u64>(var) *
                           static_cast<u64>(params.redundancy()) +
                       static_cast<u64>(code);
      const i32 holder = mesh_.node_id(placement_.locate(copy).node);
      if (plan->module_dead(holder)) {
        avail[static_cast<size_t>(code)] = 0;
        ++lost;
        if (count_lost) mesh_.counters().add_copies_lost(holder, 1);
      }
    }
    st.copies_lost += lost;
    if (lost == 0) {
      for (i64 code : init_codes) bits[static_cast<size_t>(code)] = 1;
      continue;
    }
    // Smallest degradation level whose requirement the survivors still meet.
    // Level k = ordinary target set; failing even that means the variable is
    // unreadable, reported instead of asserted.
    TargetSelector::Selection sel;
    int d = -1;
    for (int lvl = 0; lvl <= params.k(); ++lvl) {
      sel = selector_.select(lvl, avail, avail);
      if (sel.feasible) {
        d = lvl;
        break;
      }
    }
    if (d < 0) {
      ++st.requests_failed;
      if (request_ok != nullptr) (*request_ok)[static_cast<size_t>(node)] = 0;
      vars[static_cast<size_t>(node)] = -1;
      continue;
    }
    if (d > 0) ++st.requests_degraded;
    deg[static_cast<size_t>(node)] = d;
    for (i64 code : sel.codes) bits[code] = 1;
  }
  const std::vector<i64>& request_vars_eff = vars;

  for (int iter = 1; iter <= params.k(); ++iter) {
    telemetry::Span iter_span(telemetry::Cat::Stage, kCullIter, iter);
    const i64 steps_before = st.steps;
    const i64 tau = params.culling_threshold(iter);

    // Emit one packet per selected copy, keyed by its level-i page (cached
    // for the load instrumentation below). Each node fills only its own
    // buffer and slab row, so the loop chunks over physical slots.
    execution_pool().for_each_chunk(n, kNodeGrain, [&](i64 lo, i64 hi) {
      for (i64 slot = lo; slot < hi; ++slot) {
        const i32 node = order.id_of(static_cast<i32>(slot));
        const i64 var = request_vars_eff[static_cast<size_t>(node)];
        if (var < 0) continue;
        const char* bits = row_of(slot, candidate);
        i64* page_row = pages.data() + slot * ncodes;
        auto& b = mesh_.buf(node);
        for (i64 code = 0; code < ncodes; ++code) {
          if (!bits[code]) continue;
          Packet p;
          p.var = var;
          p.copy = static_cast<u64>(var) *
                       static_cast<u64>(params.redundancy()) +
                   static_cast<u64>(code);
          p.key = static_cast<u64>(placement_.page_at(p.copy, iter));
          p.origin = node;
          page_row[code] = static_cast<i64>(p.key);
          b.push_back(p);
        }
      }
    });

    // Sort by page, rank within page, mark the first tau of each page.
    st.steps += sort_region(mesh_, whole, sort_opts_);
    st.steps += rank_within_groups(mesh_, whole);
    mesh_.for_each_node(kNodeGrain, [&](i32 id) {
      for (Packet& p : mesh_.buf(id)) {
        p.value = (static_cast<i64>(p.rank) < tau) ? 1 : 0;
        p.dest = p.origin;
      }
    });

    // Return the mark bits to the owners.
    st.steps += route_sorted(mesh_, whole, sort_opts_).steps;

    // Local selection: prefer marked copies; add unmarked only if needed.
    // A node only writes its own slab rows and drains its own buffer, so
    // both passes chunk over physical slots.
    execution_pool().for_each_chunk(n, kNodeGrain, [&](i64 lo, i64 hi) {
      for (i64 slot = lo; slot < hi; ++slot) {
        const i32 id = order.id_of(static_cast<i32>(slot));
        char* mk = row_of(slot, marked);
        std::memset(mk, 0, static_cast<size_t>(ncodes));
        auto& b = mesh_.buf(id);
        for (const Packet& p : b) {
          MP_ASSERT(p.dest == id, "mark bit went astray");
          if (p.value != 0) {
            const i64 code = static_cast<i64>(
                p.copy % static_cast<u64>(params.redundancy()));
            mk[code] = 1;
          }
        }
        b.clear();
      }
    });
    execution_pool().for_each_chunk(n, /*min_grain=*/8, [&](i64 lo, i64 hi) {
      std::vector<char> m_only(static_cast<size_t>(ncodes), 0);
      std::vector<char> cand_vec;  // select() wants a vector view of the row
      for (i64 slot = lo; slot < hi; ++slot) {
        const i32 node = order.id_of(static_cast<i32>(slot));
        if (request_vars_eff[static_cast<size_t>(node)] < 0) continue;
        char* cand = row_of(slot, candidate);
        const char* mk = row_of(slot, marked);
        // Degraded variables extract at max(iter, d): a level-j target set
        // is also a level-j' target set for every j' >= j, so the invariant
        // below carries from iteration to iteration unchanged.
        const int level =
            degraded ? std::max(iter, deg[static_cast<size_t>(node)]) : iter;
        // Try M alone first (the pseudo-code's "if M contains a target set").
        simd::and_bytes(reinterpret_cast<unsigned char*>(m_only.data()),
                        reinterpret_cast<const unsigned char*>(cand),
                        reinterpret_cast<const unsigned char*>(mk), ncodes);
        TargetSelector::Selection sel =
            selector_.select(level, m_only, m_only);
        if (!sel.feasible) {
          // Augment with the fewest possible unmarked copies from C.
          cand_vec.assign(cand, cand + ncodes);
          sel = selector_.select(level, cand_vec, m_only);
          MP_ASSERT(sel.feasible,
                    "C_v^{i-1} lost the level-" << level
                                                << " target set invariant");
        }
        std::memset(cand, 0, static_cast<size_t>(ncodes));
        for (i64 code : sel.codes) cand[code] = 1;
      }
    });
    // Local DP over the q^k-leaf tree: O(q^k) per processor (Eq. 2 charge).
    st.steps += params.redundancy();

    // Instrumentation: per-level-i page load of the union of C_v^i, read
    // from the page cache the emit loop filled (C_v^i is a subset of the
    // emitted C_v^{i-1}, so every live code has a cached page). Each chunk
    // counts into its own map; maps sum-merge under a mutex, which is
    // commutative, so the final counts are thread-count invariant.
    std::unordered_map<i64, i64> load;
    std::mutex load_mu;
    execution_pool().for_each_chunk(n, kNodeGrain, [&](i64 lo, i64 hi) {
      std::unordered_map<i64, i64> chunk_load;
      for (i64 slot = lo; slot < hi; ++slot) {
        const i32 node = order.id_of(static_cast<i32>(slot));
        if (request_vars_eff[static_cast<size_t>(node)] < 0) continue;
        const char* bits = row_of(slot, candidate);
        const i64* page_row = pages.data() + slot * ncodes;
        for (i64 code = 0; code < ncodes; ++code) {
          if (bits[code]) ++chunk_load[page_row[code]];
        }
      }
      const std::lock_guard<std::mutex> lock(load_mu);
      for (const auto& [page, cnt] : chunk_load) load[page] += cnt;
    });
    i64 max_load = 0;
    for (const auto& [page, cnt] : load) max_load = std::max(max_load, cnt);
    st.max_page_load.push_back(max_load);
    st.bound.push_back(params.theorem3_bound(iter));
    iter_span.set_steps(st.steps - steps_before);
  }

  // Emit the final selections.
  const bool count_survivors = telemetry::sampling_on();
  std::vector<std::vector<i64>> out(static_cast<size_t>(n));
  for (i64 node = 0; node < n; ++node) {
    if (request_vars_eff[static_cast<size_t>(node)] < 0) continue;
    const char* bits = row_of(order.slot_of(static_cast<i32>(node)), candidate);
    for (i64 code = 0; code < ncodes; ++code) {
      if (bits[code]) {
        out[static_cast<size_t>(node)].push_back(code);
        ++st.selected_copies;
      }
    }
    if (count_survivors) {
      mesh_.counters().add_survivors(
          static_cast<i32>(node),
          static_cast<i64>(out[static_cast<size_t>(node)].size()));
    }
  }
  return out;
}

}  // namespace meshpram
