// PramMeshSimulator — the library facade.
//
// Owns the whole stack (mesh machine, HMOS parameters, level graphs,
// placement) and exposes PRAM access steps. This is the class a downstream
// user instantiates; examples/quickstart.cpp shows the 10-line version.
#pragma once

#include <memory>
#include <vector>

#include "hmos/memory_map.hpp"
#include "hmos/params.hpp"
#include "hmos/placement.hpp"
#include "mesh/machine.hpp"
#include "protocol/access.hpp"

namespace meshpram {

struct SimConfig {
  int mesh_rows = 32;
  int mesh_cols = 32;
  i64 num_vars = 4096;  ///< shared-memory size M (>= n)
  i64 q = 3;            ///< replication branching (prime power >= 3)
  int k = 2;            ///< HMOS depth; redundancy = q^k
  SortMode sort_mode = SortMode::Simulated;
};

class PramMeshSimulator {
 public:
  explicit PramMeshSimulator(const SimConfig& config);

  i64 processors() const { return mesh_->size(); }
  i64 num_vars() const { return params_->num_vars(); }

  /// One synchronous PRAM step: requests[i] is processor i's access
  /// (var = -1 for idle). Variables must be distinct (EREW). Returns the
  /// per-processor read results; stats (optional) receives the step costs.
  std::vector<i64> step(const std::vector<AccessRequest>& requests,
                        StepStats* stats = nullptr);

  /// Convenience: every processor writes values[i] to vars[i] (one step).
  void write_step(const std::vector<i64>& vars, const std::vector<i64>& values,
                  StepStats* stats = nullptr);
  /// Convenience: every processor reads vars[i] (one step).
  std::vector<i64> read_step(const std::vector<i64>& vars,
                             StepStats* stats = nullptr);

  /// Logical time = number of executed PRAM steps.
  i64 now() const { return now_; }

  const HmosParams& params() const { return *params_; }
  const MemoryMap& memory_map() const { return *map_; }
  const Placement& placement() const { return *placement_; }
  Mesh& mesh() { return *mesh_; }
  const Mesh& mesh() const { return *mesh_; }

 private:
  std::unique_ptr<HmosParams> params_;
  std::unique_ptr<MemoryMap> map_;
  std::unique_ptr<Mesh> mesh_;
  std::unique_ptr<Placement> placement_;
  std::unique_ptr<AccessProtocol> protocol_;
  i64 now_ = 0;
};

}  // namespace meshpram
