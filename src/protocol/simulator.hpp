// PramMeshSimulator — the library facade.
//
// Owns the whole stack (mesh machine, HMOS parameters, level graphs,
// placement) and exposes PRAM access steps. This is the class a downstream
// user instantiates; examples/quickstart.cpp shows the 10-line version.
#pragma once

#include <memory>
#include <vector>

#include "fault/plan.hpp"
#include "hmos/memory_map.hpp"
#include "hmos/params.hpp"
#include "hmos/placement.hpp"
#include "mesh/machine.hpp"
#include "protocol/access.hpp"

namespace meshpram {

/// What to do when a request cannot be served under the installed fault plan
/// (dead origin, or no surviving target set for the variable).
enum class FaultPolicy {
  Degrade,   ///< serve the survivors; failures reported per step
  HardFail,  ///< throw fault::FaultError on the first failed request
};

struct SimConfig {
  int mesh_rows = 32;
  int mesh_cols = 32;
  i64 num_vars = 4096;  ///< shared-memory size M (>= n)
  i64 q = 3;            ///< replication branching (prime power >= 3)
  int k = 2;            ///< HMOS depth; redundancy = q^k
  SortMode sort_mode = SortMode::Simulated;
  /// Fault plan to install (copied). An empty plan (the default) falls back
  /// to MESHPRAM_FAULT_PLAN; if that is unset too, the run is fault-free.
  fault::FaultPlan fault_plan;
  FaultPolicy fault_policy = FaultPolicy::Degrade;
  /// Snapshot restore sets this false: a restored simulator must reproduce
  /// the captured run exactly, so an empty embedded plan means fault-free
  /// even when MESHPRAM_FAULT_PLAN is set in the restoring process.
  bool fault_plan_from_env = true;
};

/// Per-step outcome under fault injection: read values, per-processor
/// success flags, and the step's FaultReport.
struct DegradedResult {
  std::vector<i64> values;
  std::vector<char> ok;  ///< ok[i] = 0 iff processor i's request failed
  fault::FaultReport report;

  bool all_ok() const { return report.requests_failed == 0; }
};

class PramMeshSimulator {
 public:
  explicit PramMeshSimulator(const SimConfig& config);

  i64 processors() const { return mesh_->size(); }
  i64 num_vars() const { return params_->num_vars(); }

  /// One synchronous PRAM step: requests[i] is processor i's access
  /// (var = -1 for idle). Variables must be distinct (EREW). Returns the
  /// per-processor read results; stats (optional) receives the step costs.
  /// `feed_clock` false skips the mesh accounting-clock add (the serving
  /// layer passes false so snapshots stay a pure function of the machine
  /// state regardless of how requests were batched; see step_grouped).
  std::vector<i64> step(const std::vector<AccessRequest>& requests,
                        StepStats* stats = nullptr, bool feed_clock = true);

  /// Executes several logically consecutive PRAM steps in ONE physical mesh
  /// routing pass (the serving layer's cross-request coalescing, DESIGN.md
  /// §14). groups[g] is the access list of logical step g; the union must be
  /// EREW-disjoint and the concatenation must fit the processor count.
  /// Group g's writes are stamped with logical time now()+g and the logical
  /// clock advances by groups.size(), so the resulting machine state (copy
  /// values AND timestamps) is bit-identical to executing the groups
  /// sequentially with step(). Read results come back concatenated in group
  /// order: group g's access i sits at slot sum(|groups[<g]|) + i.
  ///
  /// Not supported under a fault plan (fault behavior is keyed to a single
  /// step time). Unlike step(), the mesh accounting clock is NOT fed: the
  /// serving layer owns its own accounting (SessionStats), and the machine
  /// clock must stay a pure function of the direct-API step history so
  /// coalesced and sequential runs snapshot identically.
  std::vector<i64> step_grouped(
      const std::vector<const std::vector<AccessRequest>*>& groups,
      StepStats* stats = nullptr);

  /// Like step(), but surfaces the degraded-mode outcome (per-processor
  /// success flags + FaultReport) instead of burying it in StepStats. Under
  /// FaultPolicy::HardFail both step() and step_degraded() throw
  /// fault::FaultError as soon as any request fails.
  DegradedResult step_degraded(const std::vector<AccessRequest>& requests,
                               StepStats* stats = nullptr);

  /// Convenience: every processor writes values[i] to vars[i] (one step).
  void write_step(const std::vector<i64>& vars, const std::vector<i64>& values,
                  StepStats* stats = nullptr);
  /// Convenience: every processor reads vars[i] (one step).
  std::vector<i64> read_step(const std::vector<i64>& vars,
                             StepStats* stats = nullptr);

  /// Logical time = number of executed PRAM steps.
  i64 now() const { return now_; }

  /// The configuration this simulator was built from (fault_plan holds the
  /// effective installed plan, resolved from the env fallback if that was
  /// the source). Rebuilding from it reproduces identical placements.
  const SimConfig& config() const { return config_; }

  /// Snapshot-restore hook (serve/snapshot.cpp): sets the logical clock of a
  /// freshly built simulator to the captured step count so timestamps of
  /// subsequent writes continue the original sequence. Not for general use —
  /// rewinding time would violate the strictly-increasing timestamp contract.
  void set_logical_time(i64 now) { now_ = now; }

  const HmosParams& params() const { return *params_; }
  const MemoryMap& memory_map() const { return *map_; }
  const Placement& placement() const { return *placement_; }
  Mesh& mesh() { return *mesh_; }
  const Mesh& mesh() const { return *mesh_; }

  /// The installed fault plan, or nullptr for a fault-free run.
  const fault::FaultPlan* fault_plan() const { return mesh_->fault_plan(); }
  FaultPolicy fault_policy() const { return fault_policy_; }

 private:
  SimConfig config_;
  std::unique_ptr<HmosParams> params_;
  std::unique_ptr<MemoryMap> map_;
  std::unique_ptr<Mesh> mesh_;
  std::unique_ptr<Placement> placement_;
  std::unique_ptr<AccessProtocol> protocol_;
  /// Owned copy of the active plan; unique_ptr so the address handed to the
  /// mesh stays stable if the simulator is moved.
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  FaultPolicy fault_policy_ = FaultPolicy::Degrade;
  i64 now_ = 0;
};

}  // namespace meshpram
