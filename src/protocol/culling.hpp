// Procedure CULLING (§3.2): parallel copy selection.
//
// Each of the n processors is in charge of (at most) one requested variable
// and starts from a minimal level-0 target set C_v^0. Iteration i = 1..k:
//
//   1. every processor emits one packet per currently selected copy, keyed
//      by the copy's level-i page; the mesh sorts and ranks the packets, and
//      the first tau_i = 2 q^k n^{1-1/2^i} copies of every page are MARKED
//      (greedy marking — a page with unmarked copies is saturated);
//   2. packets return their mark bit to the owners;
//   3. every owner extracts a minimal level-i target set, preferring marked
//      copies (set M_v^i) and adding unmarked ones (set S_v^i) only when M
//      alone contains no level-i target set.
//
// Theorem 3 then guarantees <= 4 q^k n^{1-1/2^i} selected copies per level-i
// page — measured by CullingStats and asserted by tests/test_protocol.cpp.
#pragma once

#include <vector>

#include "hmos/placement.hpp"
#include "mesh/machine.hpp"
#include "protocol/target_set.hpp"
#include "routing/meshsort.hpp"

namespace meshpram {

struct CullingStats {
  i64 steps = 0;  ///< total mesh steps charged to copy selection
  /// max_page_load[i-1]: after iteration i, the largest number of selected
  /// copies in any level-i page (to compare against theorem3_bound(i)).
  std::vector<i64> max_page_load;
  std::vector<i64> bound;  ///< theorem3_bound(i), aligned with the above
  i64 selected_copies = 0; ///< |union of final target sets|
  // Degraded-mode accounting (all zero without dead memory modules):
  i64 copies_lost = 0;        ///< requested copies on dead modules
  i64 requests_degraded = 0;  ///< served at degradation level > 0
  i64 requests_failed = 0;    ///< no surviving target set at any level
};

class Culling {
 public:
  Culling(Mesh& mesh, const Placement& placement, SortOptions sort_opts = {});

  /// request_vars[node] = variable the processor wants, or -1 for idle.
  /// Returns per-node selected copy codes (empty for idle processors).
  ///
  /// Degraded mode: when the mesh carries a fault plan with dead memory
  /// modules, copies on dead modules are excluded up front and each affected
  /// variable is served at the smallest degradation level d for which its
  /// surviving copies still contain a level-d target set (iteration i then
  /// extracts at level max(i, d)). Level k is the ordinary target set, so
  /// consistency (quorum intersection) survives at every degradation level —
  /// only the congestion bounds of Theorem 3 weaken (DESIGN.md §10). A
  /// variable with no surviving level-k target set is reported through
  /// `request_ok` (cell set to 0) and stats instead of asserting; its
  /// selection stays empty.
  std::vector<std::vector<i64>> run(const std::vector<i64>& request_vars,
                                    CullingStats* stats,
                                    std::vector<char>* request_ok = nullptr);

 private:
  Mesh& mesh_;
  const Placement& placement_;
  SortOptions sort_opts_;
  TargetSelector selector_;
};

}  // namespace meshpram
