// The staged access protocol (§3.3).
//
// After CULLING selects the copies, each selected copy gets a request packet
// routed origin -> copy -> origin through the nested tessellations:
//
//   stage k+1 (whole mesh): sort by destination level-k submesh, rank, send
//     rank r to node (r mod size) of that submesh;
//   stage i, k >= i >= 2 (within every level-i submesh in parallel): same,
//     toward the destination level-(i-1) submeshes;
//   stage 1 (within every level-1 submesh): deliver to the copy's processor
//     and perform the access (read value+timestamp / write value,timestamp);
//   return: retrace the recorded intermediate stops in reverse, then report
//     to the origin. Reads take the value with the newest timestamp among
//     their target set (majority consistency, Definition 2).
//
// Parallel stages are charged the maximum cost over their submeshes.
#pragma once

#include <vector>

#include "hmos/placement.hpp"
#include "mesh/machine.hpp"
#include "protocol/culling.hpp"
#include "routing/meshsort.hpp"

namespace meshpram {

namespace dist {
class DistProtocol;
}

/// Apply-phase sharding hook for the distributed machine (src/dist). In the
/// replicated-fallback mode every rank runs the full protocol on its own
/// mesh replica, but the copy stores stay partitioned: the hook restricts
/// the apply phase to the nodes the rank owns, then exchanges the read
/// fills (value/timestamp written into the buffered packets) so every
/// replica carries identical packets into the return journey.
class ApplyShard {
 public:
  virtual ~ApplyShard() = default;
  virtual bool owns_node(i32 node) const = 0;
  virtual void exchange_fills(Mesh& mesh) = 0;
};

struct AccessRequest {
  i64 var = -1;  ///< requested variable, -1 = processor idle this step
  Op op = Op::Read;
  i64 value = 0;  ///< payload for writes
};

struct StepStats {
  i64 total_steps = 0;
  i64 culling_steps = 0;
  i64 forward_steps = 0;
  i64 return_steps = 0;
  CullingStats culling;
  i64 packets = 0;
  /// forward_stage_steps[0] = stage k+1, ..., last = stage 1.
  std::vector<i64> forward_stage_steps;
  /// Fault accounting for the step (all zero without an installed plan).
  fault::FaultReport fault;
  /// request_ok[node] = 0 iff that processor's request failed (dead origin
  /// or no surviving target set). Empty when the mesh has no fault plan.
  std::vector<char> request_ok;
};

class AccessProtocol {
 public:
  AccessProtocol(Mesh& mesh, const Placement& placement,
                 SortOptions sort_opts = {});

  /// Executes one PRAM access step at logical time `timestamp` (strictly
  /// increasing across steps). requests[node] describes the access issued by
  /// that processor. Variables must be distinct (EREW). Returns per-node
  /// read results (0 for idle processors and writers).
  ///
  /// Degraded mode (mesh carries a fault plan): requests from dead
  /// processors and variables without a surviving target set fail up front
  /// (StepStats::request_ok / StepStats::fault) and everything else is
  /// served — copies on dead modules are excluded by CULLING, intermediate
  /// stops land only on alive processors, and the routing layer retries or
  /// detours around link faults. Every surviving read still returns the
  /// newest surviving timestamp, so reads that succeed agree with the
  /// fault-free values.
  ///
  /// Coalesced steps (`write_group` non-null, one i32 per node): node i's
  /// write is stamped `timestamp + write_group[i]` instead of `timestamp`,
  /// so several logically consecutive PRAM steps with disjoint variable
  /// sets can share one physical routing pass and still leave the copy
  /// stores bit-identical to sequential execution (the serving layer's
  /// cross-request coalescing, DESIGN.md §14). Only supported fault-free:
  /// fault behavior is keyed to a single step time.
  std::vector<i64> execute(const std::vector<AccessRequest>& requests,
                           i64 timestamp, StepStats* stats = nullptr,
                           const i32* write_group = nullptr);

  /// Installs (or clears, with nullptr) the apply-phase shard hook. Owned by
  /// the caller; must outlive every execute() made while installed.
  void set_apply_shard(ApplyShard* shard) { apply_shard_ = shard; }

 private:
  /// The distributed protocol reuses distribute_stage for the forward stages
  /// that stay inside one rank band.
  friend class dist::DistProtocol;

  /// Sort-by-subregion, rank, distribute: one forward stage inside `region`.
  /// `dest_level` = the level of the pages packets are heading into
  /// (0 = final processor delivery).
  i64 distribute_stage(const Region& region, int dest_level);

  /// Rebuilds alive_slots_ for the installed plan (per-level, per-page alive
  /// node ids in snake order). A fully dead page region gets an empty list —
  /// legal, because no surviving copy can target it.
  void build_alive_slots(const fault::FaultPlan* plan);

  Mesh& mesh_;
  const Placement& placement_;
  SortOptions sort_opts_;
  /// Deduplicated page regions per level (shared 1x1 regions collapse).
  std::vector<std::vector<Region>> level_regions_;
  /// Degraded-mode intermediate-stop slots: alive_slots_[level][page] = alive
  /// node ids of that page's region in snake order. Built lazily per plan
  /// (static, so rebuilt only when the installed plan changes) and empty on
  /// the fault-free path.
  std::vector<std::vector<std::vector<i32>>> alive_slots_;
  const fault::FaultPlan* alive_plan_ = nullptr;
  ApplyShard* apply_shard_ = nullptr;
};

}  // namespace meshpram
