// One served simulation session (DESIGN.md §11).
//
// A session owns a PramMeshSimulator (plus its effective fault plan, carried
// inside SimConfig), a bounded queue of pending requests, a session-scoped
// workload RNG stream, and per-session accounting. Sessions never share
// simulator state, which is what makes the fair scheduler's interleaving
// invisible: a session's results are bit-identical to running it alone.
//
// Lifecycle:   Idle <-> Running          (queue empty <-> queue non-empty)
//                |          |
//            Suspended   Draining        (suspend(): scheduler skips, queue
//                                         kept; drain(): no new admissions,
//                                         queue executes to empty)
// destroy() is legal in any state and drops whatever is queued.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "protocol/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace meshpram::serve {

enum class SessionState : unsigned char {
  Idle = 0,       ///< no pending work; schedulable the moment work arrives
  Running = 1,    ///< pending requests; the scheduler serves it round-robin
  Suspended = 2,  ///< queue retained but the scheduler skips it
  Draining = 3,   ///< admissions rejected; remaining queue executes to empty
};

const char* state_name(SessionState s);

struct SessionLimits {
  /// Backpressure bound: pending requests beyond this are rejected.
  i64 queue_capacity = 64;
};

/// One queued unit of work: a full PRAM step's worth of accesses.
/// accesses[i] is processor i's access; shorter vectors are padded with idle
/// processors exactly like PramMeshSimulator::step.
struct Request {
  u64 id = 0;  ///< client correlation id (echoed in the Response)
  std::vector<AccessRequest> accesses;
};

struct Response {
  u64 id = 0;
  u32 session = 0;
  bool ok = true;
  std::string error;        ///< failure reason when !ok
  std::vector<i64> values;  ///< per-processor read results (see step())
  i64 mesh_steps = 0;       ///< counted mesh steps of the executed PRAM step
  i64 slice = -1;           ///< scheduler slice index that executed it
  /// Requests merged into the routing pass that served this one (1 = ran
  /// alone, >1 = coalesced, 0 = never executed, e.g. rejected).
  i64 coalesced = 0;
};

/// Pluggable step engine for sessions not backed by an in-process
/// PramMeshSimulator — e.g. a dist::DistMachine (src/dist/serve.hpp). The
/// closures capture the engine; `engine` keeps it alive for the session's
/// lifetime. `write_core` serializes the engine's machine state in the
/// simulator-core snapshot format (serve::write_simulator_core), so a
/// custom-engine session snapshot restores through the ordinary path.
struct EngineHooks {
  std::shared_ptr<void> engine;
  std::function<std::vector<i64>(const std::vector<AccessRequest>&,
                                 StepStats*)>
      step;
  std::function<void(ByteWriter&)> write_core;
  i64 processors = 0;
};

struct SessionStats {
  i64 steps_executed = 0;    ///< PRAM steps run by the scheduler
  i64 mesh_steps = 0;        ///< counted mesh steps over those PRAM steps
  i64 accepted = 0;          ///< requests admitted to the queue
  i64 rejected = 0;          ///< requests refused by admission control
  i64 queue_depth = 0;       ///< current pending requests
  i64 peak_queue_depth = 0;  ///< high-water mark of queue_depth
};

class Session {
 public:
  /// Fresh session: builds the simulator from `config`. The workload RNG
  /// stream is seeded from the session name so two sessions with different
  /// names draw different workloads by default.
  Session(u32 id, std::string name, const SimConfig& config,
          SessionLimits limits);
  /// Restore path: adopts an already-rebuilt simulator (serve/snapshot.cpp).
  Session(u32 id, std::string name, std::unique_ptr<PramMeshSimulator> sim,
          SessionLimits limits);
  /// Custom-engine session: steps and snapshots go through `hooks` instead
  /// of an owned simulator (sim() is then unavailable).
  Session(u32 id, std::string name, EngineHooks hooks, SessionLimits limits);

  u32 id() const { return id_; }
  const std::string& name() const { return name_; }
  SessionState state() const { return state_; }
  const SessionLimits& limits() const { return limits_; }
  /// The owned simulator; throws ConfigError on a custom-engine session.
  PramMeshSimulator& sim();
  const PramMeshSimulator& sim() const;
  bool has_sim() const { return sim_ != nullptr; }

  /// One PRAM step through whichever engine backs the session.
  std::vector<i64> step(const std::vector<AccessRequest>& accesses,
                        StepStats* stats);

  /// True when the scheduler may merge this session's queued requests into
  /// one routing pass: sim-backed and fault-free. Custom engines and
  /// fault-plan sessions always step one request at a time.
  bool supports_coalescing() const {
    return sim_ != nullptr && sim_->fault_plan() == nullptr;
  }

  /// Several logically consecutive requests in one routing pass — see
  /// PramMeshSimulator::step_grouped. Sim-backed sessions only.
  std::vector<i64> step_grouped(
      const std::vector<const std::vector<AccessRequest>*>& groups,
      StepStats* stats);

  /// Session-scoped deterministic workload stream; captured by snapshots so
  /// a restored session continues the exact sequence.
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

  const SessionStats& stats() const { return stats_; }
  SessionStats& stats() { return stats_; }

  // ---- queue (called by the scheduler under its admission rules) ----
  bool queue_full() const {
    return static_cast<i64>(queue_.size()) >= limits_.queue_capacity;
  }
  i64 queue_depth() const { return static_cast<i64>(queue_.size()); }
  void enqueue(Request req);
  bool has_work() const { return !queue_.empty(); }
  Request dequeue();
  const std::deque<Request>& pending() const { return queue_; }

  /// True when the scheduler may execute this session's next request.
  bool runnable() const {
    return has_work() &&
           (state_ == SessionState::Running || state_ == SessionState::Draining);
  }
  /// True when admission control may accept new work.
  bool admissible() const {
    return state_ == SessionState::Idle || state_ == SessionState::Running;
  }

  // ---- lifecycle ----
  void suspend();
  void resume();
  void drain();
  /// Draining session whose queue has emptied: safe to reap.
  bool drained() const {
    return state_ == SessionState::Draining && queue_.empty();
  }

  /// Interned telemetry labels ("serve.<name>" span per executed request,
  /// "serve.queue.<name>" instant queue-depth samples).
  telemetry::Label span_label() const { return span_label_; }
  telemetry::Label queue_label() const { return queue_label_; }

  /// Serializes the full session (simulator machine state + RNG stream +
  /// pending queue + accounting) into the versioned snapshot format.
  std::string snapshot() const;

 private:
  friend class SessionManager;  // restore path re-seats queue/rng/stats

  void after_dequeue();

  u32 id_;
  std::string name_;
  SessionLimits limits_;
  std::unique_ptr<PramMeshSimulator> sim_;
  EngineHooks hooks_;  ///< set iff sim_ is null (custom-engine session)
  Rng rng_;
  SessionState state_ = SessionState::Idle;
  std::deque<Request> queue_;
  SessionStats stats_;
  telemetry::Label span_label_ = 0;
  telemetry::Label queue_label_ = 0;
};

}  // namespace meshpram::serve
