// Work-conserving deterministic fair scheduler over N sessions.
//
// One slice = at most one PRAM step per runnable session, executed in
// ascending session-id order. That is round-robin fairness with a
// deterministic schedule: because sessions share no simulator state, the
// interleaving cannot change any session's results — every session's values
// and mesh_steps are bit-identical to running it alone (the invariant
// bench_serve_multisession and tests/test_serve.cpp enforce).
//
// Admission control (submit): a request is rejected with a reason when the
// session is unknown / suspended / draining, its bounded queue is full, or
// the global in-flight budget is exceeded — so an over-capacity load shows
// bounded queues and explicit rejections, never unbounded memory growth.
//
// Pool injection: a scheduler built with threads > 0 owns a ThreadPool and
// installs it (util ScopedPool) around every step it executes, so concurrent
// schedulers/simulators on other threads never contend on the process pool.
// threads == 0 uses the ambient execution_pool() of the calling thread.
//
// Coalescing (coalesce_window > 1, DESIGN.md §14): within a slice, a
// runnable session's FIFO prefix of mergeable requests (plan_coalesce)
// executes as ONE routing pass via Session::step_grouped. The admitted order
// is preserved and the resulting simulator state is bit-identical to
// sequential execution; SessionStats::mesh_steps records the real (smaller)
// coalesced cost — that is the measured win. MESHPRAM_SERVE_VALIDATE=1 arms
// a shadow-execution tripwire that replays every coalesced batch
// sequentially on a restored copy and throws InternalError on any
// divergence (values or snapshot bytes).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/manager.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::serve {

struct SchedulerConfig {
  /// Size of the scheduler-owned pool; 0 = use the ambient execution pool.
  int threads = 0;
  /// Global admission budget: total pending requests across all sessions.
  i64 global_inflight = 256;
  /// Max requests merged into one routing pass; 1 = coalescing off.
  i64 coalesce_window = 1;
  /// Shadow-replay every coalesced batch sequentially and throw on any
  /// divergence. Forced on by MESHPRAM_SERVE_VALIDATE=1. Expensive (a
  /// snapshot/restore round trip per batch) — a soak/test mode.
  bool validate_coalescing = false;
};

/// Coalescing accounting (process-lifetime, reset never).
struct CoalesceStats {
  i64 batches = 0;           ///< routing passes that merged >= 2 requests
  i64 merged_requests = 0;   ///< requests served inside those passes
  i64 validations = 0;       ///< shadow replays run (validate mode)
};

/// Admission-control verdict for one submitted request.
struct Admission {
  bool accepted = false;
  std::string reason;  ///< human-readable rejection reason when !accepted
};

class FairScheduler {
 public:
  FairScheduler(SessionManager& manager, SchedulerConfig config = {});
  ~FairScheduler();
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Admission control + enqueue. Accepted requests execute during a later
  /// run_slice(); their Response goes to the completion sink.
  Admission submit(u32 session_id, Request req);

  /// Executes at most one pending request per runnable session, in ascending
  /// session-id order. Returns the number of requests executed (0 = idle).
  i64 run_slice();

  /// Runs slices until no session is runnable (or max_slices, if >= 0, is
  /// exhausted). Returns the total requests executed.
  i64 run_until_idle(i64 max_slices = -1);

  /// Slices executed so far (the logical clock completions are stamped with).
  i64 slices() const { return slices_; }

  /// Current pending total across sessions (admission gauge).
  i64 inflight() const;

  const SchedulerConfig& config() const { return config_; }
  SessionManager& manager() { return manager_; }

  const CoalesceStats& coalesce_stats() const { return cstats_; }

  /// Receives every completed Response (also rejected executions — ok=false
  /// with the error text). Defaults to discarding.
  void set_completion_sink(std::function<void(Response&&)> sink);

 private:
  void execute(Session& s, Request req);
  void execute_batch(Session& s, std::vector<Request> batch);
  /// Shadow tripwire: replays `batch` sequentially on a simulator restored
  /// from `before` (the pre-batch core snapshot) and throws InternalError if
  /// any read value or the resulting snapshot bytes diverge from the
  /// coalesced run.
  void validate_batch(Session& s, const std::string& before,
                      const std::vector<Request>& batch,
                      const std::vector<Response>& responses);

  SessionManager& manager_;
  SchedulerConfig config_;
  std::unique_ptr<ThreadPool> pool_;  ///< owned pool when config.threads > 0
  std::function<void(Response&&)> sink_;
  i64 slices_ = 0;
  CoalesceStats cstats_;
};

}  // namespace meshpram::serve
