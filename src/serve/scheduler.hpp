// Work-conserving deterministic fair scheduler over N sessions.
//
// One slice = at most one PRAM step per runnable session, executed in
// ascending session-id order. That is round-robin fairness with a
// deterministic schedule: because sessions share no simulator state, the
// interleaving cannot change any session's results — every session's values
// and mesh_steps are bit-identical to running it alone (the invariant
// bench_serve_multisession and tests/test_serve.cpp enforce).
//
// Admission control (submit): a request is rejected with a reason when the
// session is unknown / suspended / draining, its bounded queue is full, or
// the global in-flight budget is exceeded — so an over-capacity load shows
// bounded queues and explicit rejections, never unbounded memory growth.
//
// Pool injection: a scheduler built with threads > 0 owns a ThreadPool and
// installs it (util ScopedPool) around every step it executes, so concurrent
// schedulers/simulators on other threads never contend on the process pool.
// threads == 0 uses the ambient execution_pool() of the calling thread.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "serve/manager.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::serve {

struct SchedulerConfig {
  /// Size of the scheduler-owned pool; 0 = use the ambient execution pool.
  int threads = 0;
  /// Global admission budget: total pending requests across all sessions.
  i64 global_inflight = 256;
};

/// Admission-control verdict for one submitted request.
struct Admission {
  bool accepted = false;
  std::string reason;  ///< human-readable rejection reason when !accepted
};

class FairScheduler {
 public:
  FairScheduler(SessionManager& manager, SchedulerConfig config = {});
  ~FairScheduler();
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Admission control + enqueue. Accepted requests execute during a later
  /// run_slice(); their Response goes to the completion sink.
  Admission submit(u32 session_id, Request req);

  /// Executes at most one pending request per runnable session, in ascending
  /// session-id order. Returns the number of requests executed (0 = idle).
  i64 run_slice();

  /// Runs slices until no session is runnable (or max_slices, if >= 0, is
  /// exhausted). Returns the total requests executed.
  i64 run_until_idle(i64 max_slices = -1);

  /// Slices executed so far (the logical clock completions are stamped with).
  i64 slices() const { return slices_; }

  /// Current pending total across sessions (admission gauge).
  i64 inflight() const;

  const SchedulerConfig& config() const { return config_; }
  SessionManager& manager() { return manager_; }

  /// Receives every completed Response (also rejected executions — ok=false
  /// with the error text). Defaults to discarding.
  void set_completion_sink(std::function<void(Response&&)> sink);

 private:
  void execute(Session& s, Request req);

  SessionManager& manager_;
  SchedulerConfig config_;
  std::unique_ptr<ThreadPool> pool_;  ///< owned pool when config.threads > 0
  std::function<void(Response&&)> sink_;
  i64 slices_ = 0;
};

}  // namespace meshpram::serve
