// Open-loop load generator for the serving subsystem.
//
// Arrivals are a seeded Poisson process over *virtual time* (scheduler
// slices): request i arrives at slice floor(sum of exponential gaps), is
// submitted through the wire API, and completes at the slice that executes
// it. Because arrival times, session choice and access patterns are all pure
// functions of the seed, the offered load — and therefore accepted/rejected
// counts, queue depths and per-request latencies in slices — is bit-identical
// across runs and thread counts. Open-loop means arrivals do NOT wait for
// completions, so an over-capacity rate exercises admission control instead
// of silently self-throttling.
//
// Wall-clock timings (per-request microseconds, goodput in requests/s) are
// measured alongside and reported separately; they are informational and
// machine-dependent, never part of the deterministic record.
#pragma once

#include <string>
#include <vector>

#include "serve/api.hpp"

namespace meshpram::serve {

struct LoadgenConfig {
  i64 requests = 256;              ///< total offered requests
  double arrivals_per_slice = 2.0; ///< Poisson rate over virtual time
  u64 seed = 1;
  /// Accesses per request; 0 = one full PRAM step (all processors).
  i64 accesses_per_request = 0;
  double write_fraction = 0.5;     ///< per-access probability of a write
  /// Safety bound on the driving loop (a stuck scheduler fails loudly
  /// instead of spinning forever).
  i64 max_slices = 1 << 20;
  /// Scenario label for reports. "random" = the Poisson access sampling
  /// above; tools/serve_loadgen sets "algo:<name>" when it installs a trace.
  std::string scenario = "random";
  /// Non-empty = algorithm scenario: each request replays the next step of
  /// this EREW step trace for its session (per-session cursor, cycling)
  /// instead of the sampled random accesses. The generator consumes the
  /// random scenario's full per-request draw sequence either way, so
  /// "random" output stays byte-stable and both scenarios share the exact
  /// arrival schedule and session fan-out — only the address streams
  /// differ. Every step must fit every session shape (EREW: at most
  /// `processors` accesses, vars < num_vars).
  std::vector<std::vector<AccessRequest>> trace;
};

/// One pre-generated client request (pure function of LoadgenConfig + the
/// per-session shapes). The bench replays a session's slice of these on a
/// solo simulator to check bit-identity.
struct GeneratedRequest {
  u64 id = 0;
  i64 session_index = 0;  ///< index into the session list, not a session id
  i64 arrival_slice = 0;
  std::vector<AccessRequest> accesses;
};

/// Shape of one target session, enough to generate valid EREW workloads.
struct SessionShape {
  i64 processors = 0;
  i64 num_vars = 0;
};

/// Deterministically expands the config into the full offered-request list
/// (ids 1..requests, arrival slices non-decreasing).
std::vector<GeneratedRequest> generate_workload(
    const LoadgenConfig& config, const std::vector<SessionShape>& shapes);

struct LoadgenReport {
  i64 offered = 0;
  i64 accepted = 0;
  i64 rejected = 0;   ///< refused by admission control (never executed)
  i64 completed = 0;  ///< executed successfully
  i64 failed = 0;     ///< executed but the step threw (ok=false, slice >= 0)
  i64 slices = 0;     ///< virtual slices the run took
  i64 total_mesh_steps = 0;
  i64 peak_queue_depth = 0;  ///< max per-session high-water mark
  // Deterministic latency record, in slices (completion - arrival + 1).
  double p50_slices = 0, p95_slices = 0, p99_slices = 0;
  double goodput_per_slice = 0;  ///< completed / slices
  // Wall-clock record (informational, machine-dependent).
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double wall_seconds = 0;
  double goodput_rps = 0;  ///< completed / wall_seconds
};

/// Drives `sessions` (names resolved through the driver's manager) with the
/// generated workload through the wire API until every offered request is
/// resolved. The scheduler is advanced one slice per virtual time unit.
LoadgenReport run_loadgen(LoopbackDriver& driver, FairScheduler& scheduler,
                          const std::vector<std::string>& session_names,
                          const std::vector<SessionShape>& shapes,
                          const LoadgenConfig& config);

// ---- real-transport mode (NetServer on the other end) ----------------------

enum class Transport { Loopback = 0, Unix = 1, Tcp = 2 };
const char* transport_name(Transport t);

struct NetEndpoint {
  Transport transport = Transport::Unix;
  std::string unix_path;             ///< Transport::Unix
  std::string host = "127.0.0.1";    ///< Transport::Tcp
  int port = 0;                      ///< Transport::Tcp
};

/// Per-connection accounting of a net loadgen run (satellite of EXP-S2).
struct ConnReport {
  std::string session;
  i64 offered = 0;
  i64 completed = 0;
  i64 rejected = 0;  ///< admission rejections (never executed)
  i64 failed = 0;    ///< executed but errored
  double p50_us = 0, p95_us = 0, p99_us = 0;  ///< submit -> response wall time
  i64 bytes_out = 0, bytes_in = 0;
  i64 coalesced_responses = 0;  ///< responses served by a merged pass (>1)
  std::string error;  ///< non-empty when the connection's thread threw
};

struct NetLoadgenReport {
  i64 offered = 0, completed = 0, rejected = 0, failed = 0;
  double wall_seconds = 0;
  double rps = 0;  ///< completed / wall_seconds
  double p50_us = 0, p95_us = 0, p99_us = 0;
  i64 coalesced_responses = 0;
  std::vector<ConnReport> conns;
};

/// Closed-loop pipelined driver over a REAL transport: one connection per
/// session, one client thread per connection, each keeping up to
/// `pipeline_depth` requests in flight on its socket. The server loop must
/// be running on another thread (or process). Unlike the open-loop loopback
/// driver, arrival slices are ignored — each connection offers its session's
/// share of the generated workload as fast as the pipeline allows, which is
/// the saturating load EXP-S2 measures coalescing under. Wall-clock numbers
/// are machine-dependent (informational); offered/completed/rejected counts
/// and all session state remain deterministic per connection.
NetLoadgenReport run_loadgen_net(const NetEndpoint& endpoint,
                                 const std::vector<std::string>& session_names,
                                 const std::vector<SessionShape>& shapes,
                                 const LoadgenConfig& config,
                                 i64 pipeline_depth);

}  // namespace meshpram::serve
