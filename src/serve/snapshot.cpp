#include "serve/snapshot.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace meshpram::serve {

namespace {

constexpr u32 kMagic = 0x4e53504dU;  // "MPSN" in little-endian byte order

/// Simulator machine state: config (with effective plan), logical time,
/// per-phase step counters, every node's copy store in canonical order.
void write_core(ByteWriter& w, const PramMeshSimulator& sim) {
  const SimConfig& cfg = sim.config();
  w.put_u32(static_cast<u32>(cfg.mesh_rows));
  w.put_u32(static_cast<u32>(cfg.mesh_cols));
  w.put_i64(cfg.num_vars);
  w.put_i64(cfg.q);
  w.put_u32(static_cast<u32>(cfg.k));
  w.put_u8(static_cast<unsigned char>(cfg.sort_mode));
  w.put_u8(static_cast<unsigned char>(cfg.fault_policy));
  const fault::FaultPlan* plan = sim.fault_plan();
  w.put_u8(plan != nullptr ? 1 : 0);
  if (plan != nullptr) plan->serialize(w);

  w.put_i64(sim.now());

  const std::map<std::string, i64> phases = sim.mesh().clock().by_phase();
  w.put_u32(static_cast<u32>(phases.size()));
  for (const auto& [label, steps] : phases) {
    w.put_str(label);
    w.put_i64(steps);
  }

  const Mesh& mesh = sim.mesh();
  w.put_u32(static_cast<u32>(mesh.size()));
  std::vector<std::pair<u64, CopySlot>> copies;
  for (i32 node = 0; node < mesh.size(); ++node) {
    const CopyStore& store = mesh.store(node);
    copies.clear();
    copies.reserve(static_cast<size_t>(store.size()));
    store.for_each(
        [&copies](u64 key, const CopySlot& slot) { copies.emplace_back(key, slot); });
    std::sort(copies.begin(), copies.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.put_u32(static_cast<u32>(copies.size()));
    for (const auto& [key, slot] : copies) {
      w.put_u64(key);
      w.put_i64(slot.value);
      w.put_i64(slot.timestamp);
    }
  }
}

std::unique_ptr<PramMeshSimulator> read_core(ByteReader& r) {
  SimConfig cfg;
  cfg.mesh_rows = static_cast<int>(r.get_u32());
  cfg.mesh_cols = static_cast<int>(r.get_u32());
  cfg.num_vars = r.get_i64();
  cfg.q = r.get_i64();
  cfg.k = static_cast<int>(r.get_u32());
  const unsigned char sort_mode = r.get_u8();
  MP_REQUIRE(sort_mode <= static_cast<unsigned char>(SortMode::Analytic),
             "snapshot: unknown sort mode " << static_cast<int>(sort_mode));
  cfg.sort_mode = static_cast<SortMode>(sort_mode);
  const unsigned char policy = r.get_u8();
  MP_REQUIRE(policy <= static_cast<unsigned char>(FaultPolicy::HardFail),
             "snapshot: unknown fault policy " << static_cast<int>(policy));
  cfg.fault_policy = static_cast<FaultPolicy>(policy);
  cfg.fault_plan_from_env = false;  // the embedded plan is authoritative
  if (r.get_u8() != 0) {
    cfg.fault_plan = fault::FaultPlan::deserialize(r);
    MP_REQUIRE(cfg.fault_plan.rows() == cfg.mesh_rows &&
                   cfg.fault_plan.cols() == cfg.mesh_cols,
               "snapshot: embedded fault plan sized "
                   << cfg.fault_plan.rows() << 'x' << cfg.fault_plan.cols()
                   << " for a " << cfg.mesh_rows << 'x' << cfg.mesh_cols
                   << " mesh");
  }

  // Rebuilding from the config reproduces params/map/placement exactly
  // (they are deterministic functions of it); only mutable state follows.
  auto sim = std::make_unique<PramMeshSimulator>(cfg);
  sim->set_logical_time(r.get_i64());

  const u32 phases = r.get_u32();
  for (u32 i = 0; i < phases; ++i) {
    const std::string label = r.get_str();
    const i64 steps = r.get_i64();
    MP_REQUIRE(steps >= 0, "snapshot: negative step count for phase '"
                               << label << "'");
    sim->mesh().clock().add(label, steps);
  }

  const u32 nodes = r.get_u32();
  MP_REQUIRE(nodes == static_cast<u64>(sim->mesh().size()),
             "snapshot: " << nodes << " node stores for a "
                          << sim->mesh().size() << "-node mesh");
  for (u32 node = 0; node < nodes; ++node) {
    const u32 count = r.get_u32();
    CopyStore& store = sim->mesh().store(static_cast<i32>(node));
    u64 prev_key = 0;
    for (u32 c = 0; c < count; ++c) {
      const u64 key = r.get_u64();
      MP_REQUIRE(c == 0 || key > prev_key,
                 "snapshot: node " << node << " copy ids not strictly "
                                   << "increasing (corrupt store dump)");
      prev_key = key;
      CopySlot& slot = store[key];
      slot.value = r.get_i64();
      slot.timestamp = r.get_i64();
    }
  }
  return sim;
}

void write_session_extras(ByteWriter& w, const Session& s) {
  w.put_str(s.name());
  for (const u64 word : s.rng().state()) w.put_u64(word);
  w.put_i64(s.limits().queue_capacity);
  const SessionStats& st = s.stats();
  w.put_i64(st.steps_executed);
  w.put_i64(st.mesh_steps);
  w.put_i64(st.accepted);
  w.put_i64(st.rejected);
  w.put_i64(st.peak_queue_depth);
  w.put_u32(static_cast<u32>(s.pending().size()));
  for (const Request& req : s.pending()) {
    w.put_u64(req.id);
    w.put_u32(static_cast<u32>(req.accesses.size()));
    for (const AccessRequest& a : req.accesses) {
      w.put_i64(a.var);
      w.put_u8(static_cast<unsigned char>(a.op));
      w.put_i64(a.value);
    }
  }
}

void read_session_extras(ByteReader& r, ParsedSnapshot& out) {
  out.has_session = true;
  out.session_name = r.get_str();
  for (u64& word : out.rng_state) word = r.get_u64();
  out.limits.queue_capacity = r.get_i64();
  MP_REQUIRE(out.limits.queue_capacity >= 1,
             "snapshot: queue capacity " << out.limits.queue_capacity);
  out.stats.steps_executed = r.get_i64();
  out.stats.mesh_steps = r.get_i64();
  out.stats.accepted = r.get_i64();
  out.stats.rejected = r.get_i64();
  out.stats.peak_queue_depth = r.get_i64();
  const u32 pending = r.get_u32();
  for (u32 i = 0; i < pending; ++i) {
    Request req;
    req.id = r.get_u64();
    const u32 accesses = r.get_u32();
    req.accesses.reserve(accesses);
    for (u32 a = 0; a < accesses; ++a) {
      AccessRequest ar;
      ar.var = r.get_i64();
      const unsigned char op = r.get_u8();
      MP_REQUIRE(op <= static_cast<unsigned char>(Op::Write),
                 "snapshot: unknown access op " << static_cast<int>(op));
      ar.op = static_cast<Op>(op);
      ar.value = r.get_i64();
      req.accesses.push_back(ar);
    }
    out.queue.push_back(std::move(req));
  }
  out.stats.queue_depth = static_cast<i64>(out.queue.size());
}

std::string finish(std::string payload) {
  std::string out = std::move(payload);
  ByteWriter w(out);
  w.put_u64(fnv1a64(std::string_view(out.data(), out.size() )));
  return out;
}

}  // namespace

std::string snapshot_simulator(const PramMeshSimulator& sim) {
  std::string bytes;
  ByteWriter w(bytes);
  w.put_u32(kMagic);
  w.put_u32(kSnapshotVersion);
  write_core(w, sim);
  w.put_u8(0);  // no session extras
  return finish(std::move(bytes));
}

void write_simulator_core(ByteWriter& w, const PramMeshSimulator& sim) {
  write_core(w, sim);
}

std::string Session::snapshot() const {
  std::string bytes;
  ByteWriter w(bytes);
  w.put_u32(kMagic);
  w.put_u32(kSnapshotVersion);
  if (sim_ != nullptr) {
    write_core(w, *sim_);
  } else {
    hooks_.write_core(w);
  }
  w.put_u8(1);
  write_session_extras(w, *this);
  return finish(std::move(bytes));
}

ParsedSnapshot parse_snapshot(std::string_view bytes) {
  // Checksum first: parse only verified bytes.
  if (bytes.size() < 4 + 4 + 8) {
    throw SnapshotError("snapshot rejected: " + std::to_string(bytes.size()) +
                        " bytes is shorter than the smallest valid snapshot");
  }
  const std::string_view payload = bytes.substr(0, bytes.size() - 8);
  ByteReader trailer(bytes.substr(bytes.size() - 8), "snapshot trailer");
  const u64 stored = trailer.get_u64();
  const u64 computed = fnv1a64(payload);
  if (stored != computed) {
    throw SnapshotError(
        "snapshot rejected: checksum mismatch (corrupted or truncated "
        "snapshot bytes)");
  }
  try {
    ByteReader r(payload, "snapshot");
    const u32 magic = r.get_u32();
    if (magic != kMagic) {
      throw SnapshotError("snapshot rejected: bad magic (not a meshpram "
                          "snapshot)");
    }
    const u32 version = r.get_u32();
    if (version != kSnapshotVersion) {
      throw SnapshotError("snapshot rejected: format version " +
                          std::to_string(version) + " (this build reads " +
                          std::to_string(kSnapshotVersion) + ")");
    }
    ParsedSnapshot out;
    out.sim = read_core(r);
    if (r.get_u8() != 0) read_session_extras(r, out);
    r.expect_done();
    return out;
  } catch (const SnapshotError&) {
    throw;
  } catch (const ConfigError& e) {
    // Bounds/validation failures inside the decoders carry the detail.
    throw SnapshotError(std::string("snapshot rejected: ") + e.what());
  }
}

std::unique_ptr<PramMeshSimulator> restore_simulator(std::string_view bytes) {
  return parse_snapshot(bytes).sim;
}

}  // namespace meshpram::serve
