#include "serve/manager.hpp"

#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace meshpram::serve {

Session& SessionManager::create(const std::string& name,
                                const SimConfig& config,
                                SessionLimits limits) {
  MP_REQUIRE(find_by_name(name) == nullptr,
             "session name '" << name << "' already exists");
  const u32 id = next_id_++;
  auto session = std::make_unique<Session>(id, name, config, limits);
  Session& ref = *session;
  sessions_.emplace(id, std::move(session));
  MP_INFO("session " << id << " '" << name << "' created ("
                     << config.mesh_rows << 'x' << config.mesh_cols << ", M="
                     << config.num_vars << ")");
  return ref;
}

Session& SessionManager::restore(const std::string& name,
                                 std::string_view snapshot_bytes) {
  MP_REQUIRE(find_by_name(name) == nullptr,
             "session name '" << name << "' already exists");
  ParsedSnapshot parsed = parse_snapshot(snapshot_bytes);
  const u32 id = next_id_++;
  const SessionLimits limits =
      parsed.has_session ? parsed.limits : SessionLimits{};
  auto session =
      std::make_unique<Session>(id, name, std::move(parsed.sim), limits);
  if (parsed.has_session) {
    session->rng_.set_state(parsed.rng_state);
    session->stats_ = parsed.stats;
    session->queue_ = std::move(parsed.queue);
    if (!session->queue_.empty()) session->state_ = SessionState::Running;
  }
  Session& ref = *session;
  sessions_.emplace(id, std::move(session));
  MP_INFO("session " << id << " '" << name << "' restored from snapshot"
                     << (parsed.has_session
                             ? " (captured as '" + parsed.session_name + "')"
                             : ""));
  return ref;
}

Session& SessionManager::create_custom(const std::string& name,
                                       EngineHooks hooks,
                                       SessionLimits limits) {
  MP_REQUIRE(find_by_name(name) == nullptr,
             "session name '" << name << "' already exists");
  const u32 id = next_id_++;
  auto session =
      std::make_unique<Session>(id, name, std::move(hooks), limits);
  Session& ref = *session;
  sessions_.emplace(id, std::move(session));
  MP_INFO("session " << id << " '" << name
                     << "' created (custom engine, "
                     << ref.limits().queue_capacity << "-deep queue)");
  return ref;
}

Session& SessionManager::restore_custom(const std::string& name,
                                        std::string_view snapshot_bytes,
                                        const EngineBinder& binder) {
  MP_REQUIRE(find_by_name(name) == nullptr,
             "session name '" << name << "' already exists");
  ParsedSnapshot parsed = parse_snapshot(snapshot_bytes);
  EngineHooks hooks = binder(parsed);
  const u32 id = next_id_++;
  const SessionLimits limits =
      parsed.has_session ? parsed.limits : SessionLimits{};
  auto session =
      std::make_unique<Session>(id, name, std::move(hooks), limits);
  if (parsed.has_session) {
    session->rng_.set_state(parsed.rng_state);
    session->stats_ = parsed.stats;
    session->queue_ = std::move(parsed.queue);
    if (!session->queue_.empty()) session->state_ = SessionState::Running;
  }
  Session& ref = *session;
  sessions_.emplace(id, std::move(session));
  MP_INFO("session " << id << " '" << name
                     << "' restored from snapshot onto a custom engine"
                     << (parsed.has_session
                             ? " (captured as '" + parsed.session_name + "')"
                             : ""));
  return ref;
}

void SessionManager::destroy(u32 id) {
  const auto it = sessions_.find(id);
  MP_REQUIRE(it != sessions_.end(), "unknown session id " << id);
  MP_INFO("session " << id << " '" << it->second->name() << "' destroyed ("
                     << it->second->queue_depth() << " queued request(s) "
                     << "dropped)");
  sessions_.erase(it);
}

i64 SessionManager::reap_drained() {
  i64 reaped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->drained()) {
      it = sessions_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

Session* SessionManager::find(u32 id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

Session* SessionManager::find_by_name(std::string_view name) {
  for (auto& [id, session] : sessions_) {
    if (session->name() == name) return session.get();
  }
  return nullptr;
}

std::vector<Session*> SessionManager::sessions() {
  std::vector<Session*> out;
  out.reserve(sessions_.size());
  for (auto& [id, session] : sessions_) out.push_back(session.get());
  return out;
}

i64 SessionManager::total_pending() const {
  i64 total = 0;
  for (const auto& [id, session] : sessions_) total += session->queue_depth();
  return total;
}

}  // namespace meshpram::serve
