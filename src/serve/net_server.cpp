#include "serve/net_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace meshpram::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MP_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(O_NONBLOCK): " << std::strerror(errno));
}

}  // namespace

NetServer::NetServer(SessionManager& manager, FairScheduler& scheduler,
                     NetServerConfig config)
    : manager_(manager), scheduler_(scheduler), config_(std::move(config)) {
  MP_REQUIRE(!config_.unix_path.empty() || config_.tcp,
             "NetServer needs at least one listener (unix_path or tcp)");
  MP_REQUIRE(config_.read_chunk >= 1, "read_chunk " << config_.read_chunk);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  MP_REQUIRE(epoll_fd_ >= 0, "epoll_create1: " << std::strerror(errno));
  if (!config_.unix_path.empty()) unix_fd_ = listen_unix(config_.unix_path);
  if (config_.tcp) tcp_fd_ = listen_tcp(config_.tcp_port);
  scheduler_.set_completion_sink(
      [this](Response&& done) { on_completion(std::move(done)); });
}

NetServer::~NetServer() {
  scheduler_.set_completion_sink({});
  for (auto& [fd, c] : conns_) ::close(fd);
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(config_.unix_path.c_str());
  }
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

int NetServer::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MP_REQUIRE(path.size() < sizeof(addr.sun_path),
             "unix socket path too long (" << path.size() << " bytes): "
                                           << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MP_REQUIRE(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
  ::unlink(path.c_str());  // stale rendezvous from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    MP_REQUIRE(false, "bind/listen(" << path << "): " << err);
  }
  set_nonblocking(fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  MP_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
             "epoll_ctl(listener): " << std::strerror(errno));
  return fd;
}

int NetServer::listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MP_REQUIRE(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local serving only
  addr.sin_port = htons(static_cast<unsigned short>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    MP_REQUIRE(false, "bind/listen(127.0.0.1:" << port << "): " << err);
  }
  socklen_t len = sizeof(addr);
  MP_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
             "getsockname: " << std::strerror(errno));
  tcp_port_ = static_cast<int>(ntohs(addr.sin_port));
  set_nonblocking(fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  MP_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
             "epoll_ctl(listener): " << std::strerror(errno));
  return fd;
}

void NetServer::arm(Conn& c) {
  epoll_event ev{};
  ev.events = 0;
  if (c.reading && !c.closing) ev.events |= EPOLLIN;
  if (c.want_write) ev.events |= EPOLLOUT;
  ev.data.fd = c.fd;
  MP_ASSERT(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev) == 0,
            "epoll_ctl(MOD): " << std::strerror(errno));
}

void NetServer::accept_ready(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: accepted everything pending
    }
    set_nonblocking(fd);
    if (listen_fd == tcp_fd_) {
      // Pipelined small frames must not wait out Nagle's algorithm.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    Conn c;
    c.fd = fd;
    conns_.emplace(fd, std::move(c));
    stats_.accepted += 1;
  }
}

void NetServer::read_ready(Conn& c) {
  std::vector<char> chunk(static_cast<size_t>(config_.read_chunk));
  for (;;) {
    const ssize_t n = ::read(c.fd, chunk.data(), chunk.size());
    if (n > 0) {
      stats_.bytes_in += n;
      c.in.append(chunk.data(), static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      // EOF. Flush whatever is queued, then close; frames the client
      // abandoned mid-parse simply disappear with the connection.
      c.closing = true;
      c.reading = false;
      arm(c);
      if (c.out.size() == c.out_off) dead_.push_back(c.fd);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    dead_.push_back(c.fd);  // ECONNRESET and friends
    return;
  }
  if (!c.closing) process_inbox(c);
}

void NetServer::process_inbox(Conn& c) {
  while (c.reading && !c.closing) {
    std::optional<std::string> payload;
    WireRequest req;
    try {
      payload = c.in.next_payload();
      if (!payload.has_value()) return;
      req = decode_request(*payload);
    } catch (const std::exception& e) {
      // The stream cannot be resynchronized after a framing/decode error:
      // answer with the failure and drop the connection.
      protocol_error(c, e.what());
      return;
    }
    stats_.frames_in += 1;
    if (!dispatch(c, std::move(req))) return;  // parked
  }
}

bool NetServer::dispatch(Conn& c, WireRequest req) {
  switch (req.type) {
    case MsgType::BatchRead:
    case MsgType::BatchWrite:
    case MsgType::Step:
      break;
    case MsgType::Snapshot:
    case MsgType::Restore:
    case MsgType::Stats:
      send_response(c, handle_control(manager_, req));
      return true;
  }
  Session* s = manager_.find_by_name(req.session);
  if (s == nullptr) {
    WireResponse resp;
    resp.type = req.type;
    resp.request_id = req.request_id;
    resp.ok = false;
    resp.error = "unknown session '" + req.session + "'";
    stats_.rejected += 1;
    send_response(c, resp);
    return true;
  }
  if (s->admissible() && s->queue_full()) {
    // Backpressure, not rejection: hold the request, stop reading, and let
    // the kernel socket buffer push back on the client.
    c.parked = std::move(req);
    c.reading = false;
    arm(c);
    stats_.parked += 1;
    return false;
  }
  submit_execution(c, *s, std::move(req));
  return true;
}

void NetServer::submit_execution(Conn& c, Session& s, WireRequest req) {
  // Client request ids are connection-local: rewrite onto the server's
  // private id space so two connections may both use id 1.
  const u64 internal = next_internal_id_++;
  Request work;
  work.id = internal;
  work.accesses = std::move(req.accesses);
  const Admission verdict = scheduler_.submit(s.id(), std::move(work));
  if (!verdict.accepted) {
    WireResponse resp;
    resp.type = req.type;
    resp.request_id = req.request_id;
    resp.ok = false;
    resp.error = verdict.reason;
    stats_.rejected += 1;
    send_response(c, resp);
    return;
  }
  inflight_.emplace(internal, Inflight{c.fd, req.request_id, req.type});
}

void NetServer::retry_parked() {
  for (auto& [fd, c] : conns_) {
    if (!c.parked.has_value() || c.closing) continue;
    Session* s = manager_.find_by_name(c.parked->session);
    if (s != nullptr && s->admissible() && s->queue_full()) continue;
    WireRequest req = std::move(*c.parked);
    c.parked.reset();
    if (s == nullptr) {
      WireResponse resp;
      resp.type = req.type;
      resp.request_id = req.request_id;
      resp.ok = false;
      resp.error = "unknown session '" + req.session + "'";
      stats_.rejected += 1;
      send_response(c, resp);
    } else {
      submit_execution(c, *s, std::move(req));
    }
    c.reading = true;
    arm(c);
    process_inbox(c);  // drain frames buffered while parked (may re-park)
  }
}

void NetServer::send_response(Conn& c, const WireResponse& resp) {
  c.out += encode_response(resp);
  stats_.frames_out += 1;
}

void NetServer::flush(Conn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::write(c.fd, c.out.data() + c.out_off,
                              c.out.size() - c.out_off);
    if (n > 0) {
      stats_.bytes_out += n;
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        arm(c);
      }
      return;
    }
    dead_.push_back(c.fd);  // EPIPE and friends
    return;
  }
  c.out.clear();
  c.out_off = 0;
  if (c.want_write) {
    c.want_write = false;
    arm(c);
  }
  if (c.closing) dead_.push_back(c.fd);
}

void NetServer::flush_all() {
  for (auto& [fd, c] : conns_) {
    if (c.out_off < c.out.size() || c.closing) flush(c);
  }
}

void NetServer::protocol_error(Conn& c, const std::string& what) {
  stats_.protocol_errors += 1;
  WireResponse resp;
  resp.ok = false;
  resp.error = what;
  send_response(c, resp);
  c.in.clear();
  c.parked.reset();
  c.reading = false;
  c.closing = true;
  arm(c);
}

void NetServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  stats_.closed += 1;
}

void NetServer::on_completion(Response&& done) {
  const auto it = inflight_.find(done.id);
  if (it == inflight_.end()) return;  // not ours (direct scheduler user)
  const Inflight rec = it->second;
  inflight_.erase(it);
  const auto cit = conns_.find(rec.fd);
  if (cit == conns_.end()) return;  // connection went away; drop the result
  WireResponse resp;
  resp.type = rec.type;
  resp.request_id = rec.client_id;
  resp.ok = done.ok;
  resp.error = std::move(done.error);
  // Write-only steps return no data (mirrors the LoopbackDriver).
  if (rec.type != MsgType::BatchWrite) resp.values = std::move(done.values);
  resp.mesh_steps = done.mesh_steps;
  resp.slice = done.slice;
  resp.coalesced = done.coalesced;
  send_response(cit->second, resp);
}

i64 NetServer::poll_once(int timeout_ms) {
  std::vector<epoll_event> events(static_cast<size_t>(config_.max_events));
  int n = ::epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    MP_ASSERT(errno == EINTR, "epoll_wait: " << std::strerror(errno));
    n = 0;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<size_t>(i)].data.fd;
    const u32 flags = events[static_cast<size_t>(i)].events;
    if (fd == unix_fd_ || fd == tcp_fd_) {
      accept_ready(fd);
      continue;
    }
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& c = it->second;
    if ((flags & (EPOLLHUP | EPOLLERR)) != 0 &&
        (flags & (EPOLLIN | EPOLLOUT)) == 0) {
      dead_.push_back(fd);
      continue;
    }
    if ((flags & EPOLLIN) != 0) read_ready(c);
    if (conns_.count(fd) != 0 && (flags & EPOLLOUT) != 0) flush(c);
  }
  const i64 executed = scheduler_.run_slice();
  retry_parked();
  flush_all();
  for (const int fd : dead_) close_conn(fd);
  dead_.clear();
  return executed;
}

void NetServer::run(const std::atomic<bool>& stop) {
  while (!stop) {
    poll_once(busy() ? 0 : 5);
  }
}

bool NetServer::busy() const {
  if (manager_.total_pending() > 0) return true;
  for (const auto& [fd, c] : conns_) {
    if (c.parked.has_value() || c.out_off < c.out.size() || c.in.buffered() > 0)
      return true;
  }
  return false;
}

}  // namespace meshpram::serve
