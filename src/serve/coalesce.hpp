// Coalescing batch planner (DESIGN.md §14).
//
// Every PRAM step pays the full O(log n · sqrt(n)) routing slowdown whether
// it carries 1 access or n, so serving throughput is won by amortizing that
// fixed pass cost over many requests. The planner decides, per session and
// per slice, how many queued requests the scheduler may merge into ONE
// physical routing pass (PramMeshSimulator::step_grouped) while keeping the
// result bit-identical to sequential execution:
//
//   - FIFO prefix only — admitted order is never reordered;
//   - the merged variable sets must be pairwise disjoint (the union stays
//     EREW, and disjointness is exactly what makes the grouped write
//     timestamps reproduce the sequential copy stores);
//   - the concatenated accesses must fit the processor count;
//   - at most `window` requests per pass (the operator's latency/throughput
//     dial);
//   - a request that would fail on its own (variable out of range, internal
//     EREW violation) is never merged, so it alone receives the error the
//     sequential path would have produced.
#pragma once

#include <deque>

#include "serve/session.hpp"

namespace meshpram::serve {

struct CoalescePlan {
  i64 count = 0;           ///< requests from the queue front to merge
  i64 total_accesses = 0;  ///< concatenated access slots across them
};

/// Pure planning function over a session's pending queue. Returns count >= 1
/// for a non-empty queue (count == 1 means "run the head alone").
CoalescePlan plan_coalesce(const std::deque<Request>& queue, i64 window,
                           i64 processors, i64 num_vars);

}  // namespace meshpram::serve
