// Blocking pipelined client for the frame protocol — the test/loadgen/bench
// counterpart of NetServer. One socket, synchronous sends, and a pull-based
// receive side over an incremental FrameBuffer, so a caller can keep many
// frames in flight and harvest responses in whatever order the server
// interleaves them (execution replies trail scheduler slices; control
// replies and rejections come back immediately).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/api.hpp"

namespace meshpram::serve {

struct NetClientStats {
  i64 frames_out = 0;
  i64 frames_in = 0;
  i64 bytes_out = 0;
  i64 bytes_in = 0;
  i64 connect_retries = 0;  ///< failed connect() attempts that were retried
};

/// Connect retry policy: a freshly exec'd server may not have bound its
/// socket yet, so callers can ask for a bounded retry loop instead of
/// hand-rolling sleeps around connect_*.
struct ConnectOptions {
  int attempts = 1;     ///< total connect() tries before the error propagates
  int backoff_ms = 20;  ///< sleep before each retry, doubled per retry
};

class NetClient {
 public:
  static NetClient connect_unix(const std::string& path,
                                const ConnectOptions& opts = {});
  static NetClient connect_tcp(const std::string& host, int port,
                               const ConnectOptions& opts = {});
  ~NetClient();
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&&) = delete;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Writes one complete frame (length prefix included); blocks until the
  /// kernel accepted every byte. Throws ConfigError on a broken connection.
  void send_frame(std::string_view frame);

  /// Sends raw bytes verbatim — no framing. For protocol-abuse tests.
  void send_raw(std::string_view bytes);

  /// Blocks until one complete response frame arrives. `timeout_ms` is an
  /// overall deadline across however many reads the frame needs — signal
  /// interrupts and partial reads re-arm the wait with the remaining budget
  /// instead of resetting (or prematurely expiring) it. Throws ConfigError on
  /// deadline or when the server closes the connection first.
  WireResponse recv_response(int timeout_ms = 30000);

  /// Non-blocking harvest: a response if one is already buffered/readable,
  /// nullopt otherwise.
  std::optional<WireResponse> try_recv();

  /// Half-close: no more requests; the server may still flush responses.
  void shutdown_writes();
  void close();
  bool connected() const { return fd_ >= 0; }
  const NetClientStats& stats() const { return stats_; }

 private:
  explicit NetClient(int fd) : fd_(fd) {}
  /// Reads whatever is available; blocks up to timeout_ms for the first
  /// byte when `wait` is set (EINTR re-arms the poll with the remaining
  /// time). Returns false on EOF.
  bool fill(bool wait, int timeout_ms);

  int fd_ = -1;
  FrameBuffer in_;
  NetClientStats stats_;
};

}  // namespace meshpram::serve
