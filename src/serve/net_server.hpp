// Epoll-based network server for the length-prefixed frame protocol
// (DESIGN.md §14).
//
// Single-threaded event loop over nonblocking TCP (127.0.0.1) and
// unix-domain listeners. Each connection carries an incremental FrameBuffer
// inbox and a byte outbox, so partial reads and short writes are first-class
// and clients may pipeline arbitrarily many frames. One poll_once() round:
//
//   1. drain ready sockets (accept / read+decode+dispatch / flush writes);
//   2. run ONE scheduler slice — with coalescing enabled, the frames that
//      piled up across connections since the last slice merge into single
//      routing passes (plan_coalesce);
//   3. retry parked requests, then flush every outbox.
//
// Backpressure state machine (per connection):
//
//   READING --(session queue full)--> PARKED: the decoded request is held on
//     the connection, EPOLLIN interest is dropped, and the inbox stops
//     draining — the kernel socket buffer, and eventually the client, absorb
//     the pressure instead of server memory.
//   PARKED --(queue has room after a slice)--> READING: the parked request
//     is submitted, EPOLLIN is re-armed, and the inbox resumes draining.
//
// Hard overload (global in-flight budget, unknown/suspended/draining
// session) is a *rejection*, not backpressure: the existing ok=false
// admission frame goes out immediately and the connection keeps reading.
//
// Request ids are connection-local: the server rewrites them onto a private
// id space before admission (two clients may both use id 1) and restores the
// client's id on the way out.
//
// Threading: everything — listeners, connections, sessions, scheduler — is
// owned by whichever thread calls poll_once()/run(). Clients talk to the
// server through sockets only, so driving the loop from a dedicated thread
// while many client threads connect is data-race-free by construction
// (enforced under the tsan-serve-net preset).
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/api.hpp"

namespace meshpram::serve {

struct NetServerConfig {
  /// Unix-domain listener path; empty = no unix listener. An existing socket
  /// file at the path is replaced (the server owns its rendezvous path).
  std::string unix_path;
  /// TCP listener on 127.0.0.1; port 0 = kernel-assigned (see tcp_port()).
  bool tcp = false;
  int tcp_port = 0;
  /// Bytes per ::read call while draining a readable socket.
  i64 read_chunk = 64 * 1024;
  int max_events = 64;
};

struct NetServerStats {
  i64 accepted = 0;        ///< connections accepted
  i64 closed = 0;          ///< connections closed (either side)
  i64 frames_in = 0;       ///< complete request frames decoded
  i64 frames_out = 0;      ///< response frames fully written
  i64 bytes_in = 0;
  i64 bytes_out = 0;
  i64 rejected = 0;        ///< admission rejection frames sent
  i64 parked = 0;          ///< backpressure park transitions
  i64 protocol_errors = 0; ///< malformed streams dropped
};

class NetServer {
 public:
  /// Binds the configured listeners and installs itself as the scheduler's
  /// completion sink. Throws ConfigError when no listener is configured or a
  /// bind fails.
  NetServer(SessionManager& manager, FairScheduler& scheduler,
            NetServerConfig config);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (resolved when config.tcp_port was 0); -1 without a
  /// TCP listener.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  /// One event-loop round (see the file comment). `timeout_ms` bounds the
  /// epoll wait; 0 polls. Returns the number of requests the embedded
  /// scheduler slice executed.
  i64 poll_once(int timeout_ms);

  /// Loops poll_once until `stop` becomes true (checked every round).
  void run(const std::atomic<bool>& stop);

  /// Pending work anywhere: queued requests, parked requests, undrained
  /// outboxes. When false and no client writes, poll_once is idle.
  bool busy() const;

  i64 open_connections() const { return static_cast<i64>(conns_.size()); }
  const NetServerStats& stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    FrameBuffer in;
    std::string out;
    size_t out_off = 0;
    bool want_write = false;  ///< EPOLLOUT armed
    bool reading = true;      ///< EPOLLIN armed (false while parked)
    bool closing = false;     ///< flush the outbox, then close
    std::optional<WireRequest> parked;  ///< request awaiting queue space
  };
  /// Routing record for an admitted execution request.
  struct Inflight {
    int fd = -1;
    u64 client_id = 0;
    MsgType type = MsgType::Step;
  };

  int listen_unix(const std::string& path);
  int listen_tcp(int port);
  void arm(Conn& c);  ///< syncs epoll interest with reading/want_write
  void accept_ready(int listen_fd);
  void read_ready(Conn& c);
  void process_inbox(Conn& c);
  /// Dispatches one decoded request; returns false when the request parked
  /// (stop draining this connection's inbox).
  bool dispatch(Conn& c, WireRequest req);
  void submit_execution(Conn& c, Session& s, WireRequest req);
  void retry_parked();
  void send_response(Conn& c, const WireResponse& resp);
  void flush(Conn& c);
  void flush_all();
  void protocol_error(Conn& c, const std::string& what);
  void close_conn(int fd);
  void on_completion(Response&& done);

  SessionManager& manager_;
  FairScheduler& scheduler_;
  NetServerConfig config_;
  int epoll_fd_ = -1;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::map<int, Conn> conns_;  ///< ordered: parked retries scan fd-ascending
  std::map<u64, Inflight> inflight_;
  u64 next_internal_id_ = 1;
  NetServerStats stats_;
  std::vector<int> dead_;  ///< fds to close after the event sweep
};

}  // namespace meshpram::serve
