#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <utility>

#include "serve/net_client.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram::serve {

namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<GeneratedRequest> generate_workload(
    const LoadgenConfig& config, const std::vector<SessionShape>& shapes) {
  MP_REQUIRE(!shapes.empty(), "loadgen: no target sessions");
  MP_REQUIRE(config.requests >= 1, "loadgen: " << config.requests
                                               << " requests");
  MP_REQUIRE(config.arrivals_per_slice > 0.0,
             "loadgen: arrival rate " << config.arrivals_per_slice);
  MP_REQUIRE(config.write_fraction >= 0.0 && config.write_fraction <= 1.0,
             "loadgen: write fraction " << config.write_fraction);

  Rng rng(config.seed);
  std::vector<GeneratedRequest> out;
  out.reserve(static_cast<size_t>(config.requests));
  // Algorithm scenarios: each session walks the shared trace at its own
  // cursor, so interleaved sessions still submit the program's steps in
  // order (cycling when the trace is shorter than the session's share).
  std::vector<size_t> cursor(shapes.size(), 0);
  double t = 0.0;
  for (i64 i = 0; i < config.requests; ++i) {
    // Exponential inter-arrival gap; 1-uniform() keeps log() away from 0.
    t += -std::log(1.0 - rng.uniform()) / config.arrivals_per_slice;
    GeneratedRequest req;
    req.id = static_cast<u64>(i + 1);
    req.session_index = static_cast<i64>(rng.below(shapes.size()));
    req.arrival_slice = static_cast<i64>(t);
    const SessionShape& shape = shapes[static_cast<size_t>(req.session_index)];
    // The random body is always sampled — even when a trace then replaces
    // it — so both scenarios consume identical rng draws per request and
    // therefore share the exact arrival schedule and session fan-out. That
    // keeps "random" byte-stable AND makes scenario comparisons apples to
    // apples: same offered-load envelope, different address stream.
    i64 accesses = config.accesses_per_request > 0
                       ? std::min(config.accesses_per_request,
                                  shape.processors)
                       : shape.processors;
    accesses = std::min(accesses, shape.num_vars);  // EREW: distinct vars
    const std::vector<i64> vars = rng.sample(shape.num_vars, accesses);
    req.accesses.reserve(static_cast<size_t>(accesses));
    for (const i64 var : vars) {
      AccessRequest a;
      a.var = var;
      if (rng.uniform() < config.write_fraction) {
        a.op = Op::Write;
        a.value = rng.range(-1'000'000, 1'000'000);
      }
      req.accesses.push_back(a);
    }
    if (!config.trace.empty()) {
      size_t& cur = cursor[static_cast<size_t>(req.session_index)];
      const std::vector<AccessRequest>& step =
          config.trace[cur % config.trace.size()];
      ++cur;
      MP_REQUIRE(static_cast<i64>(step.size()) <= shape.processors,
                 "trace step with " << step.size()
                                    << " accesses exceeds a session's "
                                    << shape.processors << " processors");
      for (const AccessRequest& a : step) {
        MP_REQUIRE(0 <= a.var && a.var < shape.num_vars,
                   "trace variable " << a.var << " outside session memory of "
                                     << shape.num_vars);
      }
      req.accesses = step;
    }
    out.push_back(std::move(req));
  }
  return out;
}

LoadgenReport run_loadgen(LoopbackDriver& driver, FairScheduler& scheduler,
                          const std::vector<std::string>& session_names,
                          const std::vector<SessionShape>& shapes,
                          const LoadgenConfig& config) {
  MP_REQUIRE(session_names.size() == shapes.size(),
             "loadgen: " << session_names.size() << " session names vs "
                         << shapes.size() << " shapes");
  const std::vector<GeneratedRequest> workload =
      generate_workload(config, shapes);

  struct Inflight {
    i64 arrival_slice = 0;
    double submit_seconds = 0.0;
  };
  std::map<u64, Inflight> inflight;

  LoadgenReport report;
  report.offered = static_cast<i64>(workload.size());
  std::vector<double> lat_slices;
  std::vector<double> lat_us;
  lat_slices.reserve(workload.size());
  lat_us.reserve(workload.size());

  const double wall_start = now_seconds();
  size_t next = 0;       // next workload entry to submit
  i64 resolved = 0;      // rejected + completed + failed
  i64 slice = 0;
  for (; resolved < report.offered; ++slice) {
    MP_REQUIRE(slice <= config.max_slices,
               "loadgen: exceeded " << config.max_slices
                                    << " slices with " << resolved << '/'
                                    << report.offered << " resolved — "
                                    << "scheduler is not making progress");
    // Open loop: everything whose arrival time has passed goes in now,
    // regardless of how far behind the scheduler is.
    for (; next < workload.size() &&
           workload[next].arrival_slice <= slice;
         ++next) {
      const GeneratedRequest& req = workload[next];
      const std::string& name =
          session_names[static_cast<size_t>(req.session_index)];
      inflight[req.id] = {slice, now_seconds()};
      driver.submit(encode_step(req.id, name, req.accesses));
    }
    scheduler.run_slice();
    for (const std::string& frame : driver.poll()) {
      std::string_view buf = frame;
      const auto payload = next_frame(buf);
      MP_ASSERT(payload.has_value(), "driver emitted an incomplete frame");
      const WireResponse resp = decode_response(*payload);
      const auto it = inflight.find(resp.request_id);
      MP_ASSERT(it != inflight.end(),
                "response for unknown request id " << resp.request_id);
      ++resolved;
      if (!resp.ok && resp.slice < 0) {
        report.rejected += 1;
      } else {
        (resp.ok ? report.completed : report.failed) += 1;
        report.total_mesh_steps += resp.mesh_steps;
        lat_slices.push_back(
            static_cast<double>(slice - it->second.arrival_slice + 1));
        lat_us.push_back((now_seconds() - it->second.submit_seconds) * 1e6);
      }
      inflight.erase(it);
    }
  }
  report.slices = slice;
  report.wall_seconds = now_seconds() - wall_start;

  // Per-session accounting: peak queue depth + rejections the driver turned
  // into immediate responses are already counted above; the high-water mark
  // lives in the session stats.
  for (Session* s : scheduler.manager().sessions()) {
    report.peak_queue_depth =
        std::max(report.peak_queue_depth, s->stats().peak_queue_depth);
  }

  std::sort(lat_slices.begin(), lat_slices.end());
  std::sort(lat_us.begin(), lat_us.end());
  report.p50_slices = percentile(lat_slices, 0.50);
  report.p95_slices = percentile(lat_slices, 0.95);
  report.p99_slices = percentile(lat_slices, 0.99);
  report.p50_us = percentile(lat_us, 0.50);
  report.p95_us = percentile(lat_us, 0.95);
  report.p99_us = percentile(lat_us, 0.99);
  if (report.slices > 0) {
    report.goodput_per_slice = static_cast<double>(report.completed) /
                               static_cast<double>(report.slices);
  }
  if (report.wall_seconds > 0.0) {
    report.goodput_rps =
        static_cast<double>(report.completed) / report.wall_seconds;
  }
  return report;
}

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::Loopback: return "loopback";
    case Transport::Unix: return "unix";
    case Transport::Tcp: return "tcp";
  }
  return "?";
}

namespace {

/// One connection's closed-loop pipelined run (executed on its own thread).
/// Latencies in microseconds are appended to `lat_us`.
void drive_connection(const NetEndpoint& endpoint, const std::string& session,
                      const std::vector<const GeneratedRequest*>& reqs,
                      i64 pipeline_depth, ConnReport& report,
                      std::vector<double>& lat_us) {
  report.session = session;
  report.offered = static_cast<i64>(reqs.size());
  NetClient client = endpoint.transport == Transport::Unix
                         ? NetClient::connect_unix(endpoint.unix_path)
                         : NetClient::connect_tcp(endpoint.host,
                                                  endpoint.port);
  std::map<u64, double> sent;  // request id -> submit time
  const auto harvest = [&](const WireResponse& resp) {
    const auto it = sent.find(resp.request_id);
    MP_ASSERT(it != sent.end(),
              "response for unknown request id " << resp.request_id);
    if (!resp.ok && resp.slice < 0) {
      report.rejected += 1;
    } else {
      (resp.ok ? report.completed : report.failed) += 1;
      lat_us.push_back((now_seconds() - it->second) * 1e6);
    }
    if (resp.coalesced > 1) report.coalesced_responses += 1;
    sent.erase(it);
  };
  for (const GeneratedRequest* req : reqs) {
    while (static_cast<i64>(sent.size()) >= pipeline_depth) {
      harvest(client.recv_response());
    }
    sent[req->id] = now_seconds();
    client.send_frame(encode_step(req->id, session, req->accesses));
  }
  while (!sent.empty()) {
    harvest(client.recv_response());
  }
  report.bytes_out = client.stats().bytes_out;
  report.bytes_in = client.stats().bytes_in;
}

}  // namespace

NetLoadgenReport run_loadgen_net(const NetEndpoint& endpoint,
                                 const std::vector<std::string>& session_names,
                                 const std::vector<SessionShape>& shapes,
                                 const LoadgenConfig& config,
                                 i64 pipeline_depth) {
  MP_REQUIRE(endpoint.transport != Transport::Loopback,
             "run_loadgen_net needs a real transport (use run_loadgen for "
             "loopback)");
  MP_REQUIRE(session_names.size() == shapes.size(),
             "loadgen: " << session_names.size() << " session names vs "
                         << shapes.size() << " shapes");
  MP_REQUIRE(pipeline_depth >= 1, "pipeline depth " << pipeline_depth);
  const std::vector<GeneratedRequest> workload =
      generate_workload(config, shapes);

  // Connection i carries session i: every request of a session flows over
  // one socket in generated order, so each session's admitted order — and
  // therefore its final machine state — is deterministic even though the
  // cross-connection interleaving is not.
  std::vector<std::vector<const GeneratedRequest*>> per_conn(
      session_names.size());
  for (const GeneratedRequest& req : workload) {
    per_conn[static_cast<size_t>(req.session_index)].push_back(&req);
  }

  NetLoadgenReport report;
  report.offered = static_cast<i64>(workload.size());
  report.conns.resize(session_names.size());
  std::vector<std::vector<double>> lat_us(session_names.size());

  const double wall_start = now_seconds();
  std::vector<std::thread> threads;
  threads.reserve(session_names.size());
  for (size_t i = 0; i < session_names.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        drive_connection(endpoint, session_names[i], per_conn[i],
                         pipeline_depth, report.conns[i], lat_us[i]);
      } catch (const std::exception& e) {
        report.conns[i].error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  report.wall_seconds = now_seconds() - wall_start;
  for (const ConnReport& c : report.conns) {
    MP_REQUIRE(c.error.empty(), "loadgen connection for session '"
                                    << c.session << "' failed: " << c.error);
  }

  std::vector<double> all_us;
  for (size_t i = 0; i < report.conns.size(); ++i) {
    ConnReport& c = report.conns[i];
    report.completed += c.completed;
    report.rejected += c.rejected;
    report.failed += c.failed;
    report.coalesced_responses += c.coalesced_responses;
    std::sort(lat_us[i].begin(), lat_us[i].end());
    c.p50_us = percentile(lat_us[i], 0.50);
    c.p95_us = percentile(lat_us[i], 0.95);
    c.p99_us = percentile(lat_us[i], 0.99);
    all_us.insert(all_us.end(), lat_us[i].begin(), lat_us[i].end());
  }
  std::sort(all_us.begin(), all_us.end());
  report.p50_us = percentile(all_us, 0.50);
  report.p95_us = percentile(all_us, 0.95);
  report.p99_us = percentile(all_us, 0.99);
  if (report.wall_seconds > 0.0) {
    report.rps = static_cast<double>(report.completed) / report.wall_seconds;
  }
  return report;
}

}  // namespace meshpram::serve
