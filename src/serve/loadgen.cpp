#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram::serve {

namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<GeneratedRequest> generate_workload(
    const LoadgenConfig& config, const std::vector<SessionShape>& shapes) {
  MP_REQUIRE(!shapes.empty(), "loadgen: no target sessions");
  MP_REQUIRE(config.requests >= 1, "loadgen: " << config.requests
                                               << " requests");
  MP_REQUIRE(config.arrivals_per_slice > 0.0,
             "loadgen: arrival rate " << config.arrivals_per_slice);
  MP_REQUIRE(config.write_fraction >= 0.0 && config.write_fraction <= 1.0,
             "loadgen: write fraction " << config.write_fraction);

  Rng rng(config.seed);
  std::vector<GeneratedRequest> out;
  out.reserve(static_cast<size_t>(config.requests));
  double t = 0.0;
  for (i64 i = 0; i < config.requests; ++i) {
    // Exponential inter-arrival gap; 1-uniform() keeps log() away from 0.
    t += -std::log(1.0 - rng.uniform()) / config.arrivals_per_slice;
    GeneratedRequest req;
    req.id = static_cast<u64>(i + 1);
    req.session_index = static_cast<i64>(rng.below(shapes.size()));
    req.arrival_slice = static_cast<i64>(t);
    const SessionShape& shape = shapes[static_cast<size_t>(req.session_index)];
    i64 accesses = config.accesses_per_request > 0
                       ? std::min(config.accesses_per_request,
                                  shape.processors)
                       : shape.processors;
    accesses = std::min(accesses, shape.num_vars);  // EREW needs distinct vars
    const std::vector<i64> vars = rng.sample(shape.num_vars, accesses);
    req.accesses.reserve(static_cast<size_t>(accesses));
    for (const i64 var : vars) {
      AccessRequest a;
      a.var = var;
      if (rng.uniform() < config.write_fraction) {
        a.op = Op::Write;
        a.value = rng.range(-1'000'000, 1'000'000);
      }
      req.accesses.push_back(a);
    }
    out.push_back(std::move(req));
  }
  return out;
}

LoadgenReport run_loadgen(LoopbackDriver& driver, FairScheduler& scheduler,
                          const std::vector<std::string>& session_names,
                          const std::vector<SessionShape>& shapes,
                          const LoadgenConfig& config) {
  MP_REQUIRE(session_names.size() == shapes.size(),
             "loadgen: " << session_names.size() << " session names vs "
                         << shapes.size() << " shapes");
  const std::vector<GeneratedRequest> workload =
      generate_workload(config, shapes);

  struct Inflight {
    i64 arrival_slice = 0;
    double submit_seconds = 0.0;
  };
  std::map<u64, Inflight> inflight;

  LoadgenReport report;
  report.offered = static_cast<i64>(workload.size());
  std::vector<double> lat_slices;
  std::vector<double> lat_us;
  lat_slices.reserve(workload.size());
  lat_us.reserve(workload.size());

  const double wall_start = now_seconds();
  size_t next = 0;       // next workload entry to submit
  i64 resolved = 0;      // rejected + completed + failed
  i64 slice = 0;
  for (; resolved < report.offered; ++slice) {
    MP_REQUIRE(slice <= config.max_slices,
               "loadgen: exceeded " << config.max_slices
                                    << " slices with " << resolved << '/'
                                    << report.offered << " resolved — "
                                    << "scheduler is not making progress");
    // Open loop: everything whose arrival time has passed goes in now,
    // regardless of how far behind the scheduler is.
    for (; next < workload.size() &&
           workload[next].arrival_slice <= slice;
         ++next) {
      const GeneratedRequest& req = workload[next];
      const std::string& name =
          session_names[static_cast<size_t>(req.session_index)];
      inflight[req.id] = {slice, now_seconds()};
      driver.submit(encode_step(req.id, name, req.accesses));
    }
    scheduler.run_slice();
    for (const std::string& frame : driver.poll()) {
      std::string_view buf = frame;
      const auto payload = next_frame(buf);
      MP_ASSERT(payload.has_value(), "driver emitted an incomplete frame");
      const WireResponse resp = decode_response(*payload);
      const auto it = inflight.find(resp.request_id);
      MP_ASSERT(it != inflight.end(),
                "response for unknown request id " << resp.request_id);
      ++resolved;
      if (!resp.ok && resp.slice < 0) {
        report.rejected += 1;
      } else {
        (resp.ok ? report.completed : report.failed) += 1;
        report.total_mesh_steps += resp.mesh_steps;
        lat_slices.push_back(
            static_cast<double>(slice - it->second.arrival_slice + 1));
        lat_us.push_back((now_seconds() - it->second.submit_seconds) * 1e6);
      }
      inflight.erase(it);
    }
  }
  report.slices = slice;
  report.wall_seconds = now_seconds() - wall_start;

  // Per-session accounting: peak queue depth + rejections the driver turned
  // into immediate responses are already counted above; the high-water mark
  // lives in the session stats.
  for (Session* s : scheduler.manager().sessions()) {
    report.peak_queue_depth =
        std::max(report.peak_queue_depth, s->stats().peak_queue_depth);
  }

  std::sort(lat_slices.begin(), lat_slices.end());
  std::sort(lat_us.begin(), lat_us.end());
  report.p50_slices = percentile(lat_slices, 0.50);
  report.p95_slices = percentile(lat_slices, 0.95);
  report.p99_slices = percentile(lat_slices, 0.99);
  report.p50_us = percentile(lat_us, 0.50);
  report.p95_us = percentile(lat_us, 0.95);
  report.p99_us = percentile(lat_us, 0.99);
  if (report.slices > 0) {
    report.goodput_per_slice = static_cast<double>(report.completed) /
                               static_cast<double>(report.slices);
  }
  if (report.wall_seconds > 0.0) {
    report.goodput_rps =
        static_cast<double>(report.completed) / report.wall_seconds;
  }
  return report;
}

}  // namespace meshpram::serve
