// Versioned binary snapshot/restore of simulator state (DESIGN.md §11).
//
// A snapshot captures everything a PramMeshSimulator needs to continue a
// workload bit-identically in a fresh process: the SimConfig (including the
// *effective* fault plan, so the restoring process never consults
// MESHPRAM_FAULT_PLAN), the logical clock, the per-phase step counters, and
// every node's copy store (values + timestamps). Derived structures (HMOS
// parameters, memory map, placement, level regions) are deliberately NOT
// serialized — they are pure functions of the config and are rebuilt on
// restore, which keeps the format small and forward-portable.
//
// Canonical bytes: stores are dumped sorted by copy id and counters in
// label-sorted order, so the same machine state always produces the same
// snapshot bytes regardless of thread count or hash-table history. A trailing
// FNV-1a checksum makes truncation and bit corruption a clear SnapshotError
// instead of a quiet wrong restore.
//
// Snapshots are taken between PRAM steps (the only quiescent points: packet
// buffers are empty and no parallel work is in flight).
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "serve/session.hpp"
#include "util/error.hpp"

namespace meshpram::serve {

/// Rejected snapshot bytes (bad magic, unsupported version, checksum
/// mismatch, truncation, or implausible embedded fields).
class SnapshotError : public ConfigError {
 public:
  explicit SnapshotError(const std::string& what) : ConfigError(what) {}
};

/// Current snapshot format version. History:
///   1 — initial: config + fault plan + logical time + step counters +
///       copy stores + session extras (RNG stream, pending queue, stats)
inline constexpr u32 kSnapshotVersion = 1;

/// Serializes the simulator's machine state. The simulator must be quiescent
/// (between PRAM steps).
std::string snapshot_simulator(const PramMeshSimulator& sim);

/// Writes the raw simulator-core section (config + clock + copy stores, no
/// magic/version framing) into `w`. Custom engines (EngineHooks::write_core)
/// use this to make their session snapshots byte-compatible with classic
/// simulator snapshots.
void write_simulator_core(ByteWriter& w, const PramMeshSimulator& sim);

/// Rebuilds a simulator from snapshot bytes; throws SnapshotError on any
/// malformed input. The restored simulator reproduces the captured run
/// bit-identically (same mesh_steps, same values) at any thread count.
std::unique_ptr<PramMeshSimulator> restore_simulator(std::string_view bytes);

/// Fully decoded snapshot: the rebuilt simulator plus the session extras
/// (present iff the snapshot came from Session::snapshot rather than
/// snapshot_simulator). SessionManager::restore re-seats the extras.
struct ParsedSnapshot {
  std::unique_ptr<PramMeshSimulator> sim;
  bool has_session = false;
  std::string session_name;  ///< name at capture time
  std::array<u64, 4> rng_state{};
  SessionLimits limits;
  SessionStats stats;
  std::deque<Request> queue;
};

/// Validates (magic, version, checksum) and decodes `bytes`; throws
/// SnapshotError on malformed input.
ParsedSnapshot parse_snapshot(std::string_view bytes);

}  // namespace meshpram::serve
