#include "serve/net_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace meshpram::serve {

NetClient NetClient::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MP_REQUIRE(path.size() < sizeof(addr.sun_path),
             "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MP_REQUIRE(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    MP_REQUIRE(false, "connect(" << path << "): " << err);
  }
  return NetClient(fd);
}

NetClient NetClient::connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<unsigned short>(port));
  MP_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "not an IPv4 address: " << host);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MP_REQUIRE(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    MP_REQUIRE(false, "connect(" << host << ':' << port << "): " << err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return NetClient(fd);
}

NetClient::~NetClient() { close(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(other.fd_), in_(std::move(other.in_)), stats_(other.stats_) {
  other.fd_ = -1;
}

void NetClient::send_frame(std::string_view frame) {
  send_raw(frame);
  stats_.frames_out += 1;
}

void NetClient::send_raw(std::string_view bytes) {
  MP_REQUIRE(fd_ >= 0, "send on a closed client");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      MP_REQUIRE(false, "send: " << std::strerror(errno));
    }
    off += static_cast<size_t>(n);
    stats_.bytes_out += n;
  }
}

bool NetClient::fill(bool wait, int timeout_ms) {
  MP_REQUIRE(fd_ >= 0, "recv on a closed client");
  pollfd pfd{fd_, POLLIN, 0};
  const int r = ::poll(&pfd, 1, wait ? timeout_ms : 0);
  MP_REQUIRE(r >= 0 || errno == EINTR, "poll: " << std::strerror(errno));
  if (r <= 0) {
    MP_REQUIRE(!wait, "timed out after " << timeout_ms
                                         << " ms waiting for a response");
    return true;  // nothing readable right now
  }
  char chunk[65536];
  const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n == 0) return false;  // server closed
  if (n < 0) {
    MP_REQUIRE(errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK,
               "recv: " << std::strerror(errno));
    return true;
  }
  stats_.bytes_in += n;
  in_.append(chunk, static_cast<size_t>(n));
  return true;
}

WireResponse NetClient::recv_response(int timeout_ms) {
  for (;;) {
    std::optional<std::string> payload = in_.next_payload();
    if (payload.has_value()) {
      stats_.frames_in += 1;
      return decode_response(*payload);
    }
    MP_REQUIRE(fill(true, timeout_ms),
               "connection closed by the server mid-stream");
  }
}

std::optional<WireResponse> NetClient::try_recv() {
  std::optional<std::string> payload = in_.next_payload();
  if (!payload.has_value()) {
    if (!fill(false, 0)) {
      MP_REQUIRE(in_.buffered() == 0,
                 "connection closed by the server mid-frame");
      return std::nullopt;
    }
    payload = in_.next_payload();
    if (!payload.has_value()) return std::nullopt;
  }
  stats_.frames_in += 1;
  return decode_response(*payload);
}

void NetClient::shutdown_writes() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace meshpram::serve
