#include "serve/net_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.hpp"

namespace meshpram::serve {
namespace {

/// Milliseconds left before `deadline`, clamped to >= 0 (poll-friendly).
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// Runs one connect attempt per iteration with doubling backoff between
/// tries. `dial` returns a connected fd or -1 with errno set (it owns
/// closing its own fd on failure).
template <typename Dial>
int connect_with_retry(const ConnectOptions& opts, const std::string& label,
                       i64* retries, Dial&& dial) {
  MP_REQUIRE(opts.attempts >= 1,
             "connect attempts must be >= 1, got " << opts.attempts);
  MP_REQUIRE(opts.backoff_ms >= 0,
             "connect backoff must be >= 0 ms, got " << opts.backoff_ms);
  int backoff = opts.backoff_ms;
  for (int attempt = 1;; ++attempt) {
    const int fd = dial();
    if (fd >= 0) return fd;
    const std::string err = std::strerror(errno);
    MP_REQUIRE(attempt < opts.attempts, "connect(" << label << "): " << err
                                                   << " after " << attempt
                                                   << " attempt(s)");
    *retries += 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    if (backoff < 1 << 20) backoff *= 2;
  }
}

}  // namespace

NetClient NetClient::connect_unix(const std::string& path,
                                  const ConnectOptions& opts) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MP_REQUIRE(path.size() < sizeof(addr.sun_path),
             "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  i64 retries = 0;
  const int fd = connect_with_retry(opts, path, &retries, [&]() {
    const int s = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    MP_REQUIRE(s >= 0, "socket(AF_UNIX): " << std::strerror(errno));
    if (::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(s);
      errno = saved;
      return -1;
    }
    return s;
  });
  NetClient client(fd);
  client.stats_.connect_retries = retries;
  return client;
}

NetClient NetClient::connect_tcp(const std::string& host, int port,
                                 const ConnectOptions& opts) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<unsigned short>(port));
  MP_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "not an IPv4 address: " << host);
  i64 retries = 0;
  const std::string label = host + ':' + std::to_string(port);
  const int fd = connect_with_retry(opts, label, &retries, [&]() {
    const int s = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    MP_REQUIRE(s >= 0, "socket(AF_INET): " << std::strerror(errno));
    if (::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(s);
      errno = saved;
      return -1;
    }
    return s;
  });
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NetClient client(fd);
  client.stats_.connect_retries = retries;
  return client;
}

NetClient::~NetClient() { close(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(other.fd_), in_(std::move(other.in_)), stats_(other.stats_) {
  other.fd_ = -1;
}

void NetClient::send_frame(std::string_view frame) {
  send_raw(frame);
  stats_.frames_out += 1;
}

void NetClient::send_raw(std::string_view bytes) {
  MP_REQUIRE(fd_ >= 0, "send on a closed client");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      MP_REQUIRE(false, "send: " << std::strerror(errno));
    }
    off += static_cast<size_t>(n);
    stats_.bytes_out += n;
  }
}

bool NetClient::fill(bool wait, int timeout_ms) {
  MP_REQUIRE(fd_ >= 0, "recv on a closed client");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, wait ? remaining_ms(deadline) : 0);
    if (r < 0) {
      MP_REQUIRE(errno == EINTR, "poll: " << std::strerror(errno));
      continue;  // interrupted: re-arm with the remaining budget
    }
    if (r == 0) {
      MP_REQUIRE(!wait, "timed out after " << timeout_ms
                                           << " ms waiting for a response");
      return true;  // nothing readable right now
    }
    break;
  }
  char chunk[65536];
  const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n == 0) return false;  // server closed
  if (n < 0) {
    MP_REQUIRE(errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK,
               "recv: " << std::strerror(errno));
    return true;
  }
  stats_.bytes_in += n;
  in_.append(chunk, static_cast<size_t>(n));
  return true;
}

WireResponse NetClient::recv_response(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::optional<std::string> payload = in_.next_payload();
    if (payload.has_value()) {
      stats_.frames_in += 1;
      return decode_response(*payload);
    }
    // Partial frames re-enter fill with the remaining budget, so the caller's
    // timeout bounds the whole response, not each network read.
    MP_REQUIRE(fill(true, remaining_ms(deadline)),
               "connection closed by the server mid-stream");
  }
}

std::optional<WireResponse> NetClient::try_recv() {
  std::optional<std::string> payload = in_.next_payload();
  if (!payload.has_value()) {
    if (!fill(false, 0)) {
      MP_REQUIRE(in_.buffered() == 0,
                 "connection closed by the server mid-frame");
      return std::nullopt;
    }
    payload = in_.next_payload();
    if (!payload.has_value()) return std::nullopt;
  }
  stats_.frames_in += 1;
  return decode_response(*payload);
}

void NetClient::shutdown_writes() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace meshpram::serve
