#include "serve/api.hpp"

#include <utility>

#include "serve/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace meshpram::serve {

namespace {

/// Frames larger than this are a protocol error, not a big request.
constexpr u64 kMaxFrameBytes = u64{1} << 30;

void put_frame_prefix(std::string& out) {
  // Placeholder length; patched once the payload is known.
  out.append(4, '\0');
}

void patch_frame_prefix(std::string& out) {
  const u64 payload = out.size() - 4;
  MP_REQUIRE(payload <= kMaxFrameBytes, "frame payload " << payload
                                                         << " bytes");
  for (int i = 0; i < 4; ++i) {
    out[static_cast<size_t>(i)] =
        static_cast<char>((payload >> (8 * i)) & 0xff);
  }
}

void put_accesses(ByteWriter& w, const std::vector<AccessRequest>& accesses) {
  w.put_u32(static_cast<u32>(accesses.size()));
  for (const AccessRequest& a : accesses) {
    w.put_i64(a.var);
    w.put_u8(static_cast<unsigned char>(a.op));
    w.put_i64(a.value);
  }
}

std::vector<AccessRequest> get_accesses(ByteReader& r) {
  const u32 n = r.get_u32();
  std::vector<AccessRequest> out;
  out.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    AccessRequest a;
    a.var = r.get_i64();
    const unsigned char op = r.get_u8();
    MP_REQUIRE(op <= static_cast<unsigned char>(Op::Write),
               "frame: unknown access op " << static_cast<int>(op));
    a.op = static_cast<Op>(op);
    a.value = r.get_i64();
    out.push_back(a);
  }
  return out;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::BatchRead: return "batch_read";
    case MsgType::BatchWrite: return "batch_write";
    case MsgType::Step: return "step";
    case MsgType::Snapshot: return "snapshot";
    case MsgType::Restore: return "restore";
    case MsgType::Stats: return "stats";
  }
  return "?";
}

std::string encode_request(const WireRequest& req) {
  std::string out;
  put_frame_prefix(out);
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(req.type));
  w.put_u64(req.request_id);
  w.put_str(req.session);
  switch (req.type) {
    case MsgType::BatchRead:
    case MsgType::BatchWrite:
    case MsgType::Step:
      put_accesses(w, req.accesses);
      break;
    case MsgType::Restore:
      w.put_blob(req.snapshot_bytes);
      break;
    case MsgType::Snapshot:
    case MsgType::Stats:
      break;
  }
  patch_frame_prefix(out);
  return out;
}

std::string encode_response(const WireResponse& resp) {
  std::string out;
  put_frame_prefix(out);
  ByteWriter w(out);
  w.put_u8(static_cast<unsigned char>(resp.type));
  w.put_u64(resp.request_id);
  w.put_u8(resp.ok ? 1 : 0);
  w.put_str(resp.error);
  w.put_u32(static_cast<u32>(resp.values.size()));
  for (const i64 v : resp.values) w.put_i64(v);
  w.put_i64(resp.mesh_steps);
  w.put_i64(resp.slice);
  w.put_i64(resp.coalesced);
  w.put_blob(resp.snapshot_bytes);
  w.put_i64(resp.stats.steps_executed);
  w.put_i64(resp.stats.mesh_steps);
  w.put_i64(resp.stats.accepted);
  w.put_i64(resp.stats.rejected);
  w.put_i64(resp.stats.queue_depth);
  w.put_i64(resp.stats.peak_queue_depth);
  patch_frame_prefix(out);
  return out;
}

std::string encode_batch_read(u64 request_id, const std::string& session,
                              const std::vector<i64>& vars) {
  WireRequest req;
  req.type = MsgType::BatchRead;
  req.request_id = request_id;
  req.session = session;
  req.accesses.reserve(vars.size());
  for (const i64 var : vars) {
    AccessRequest a;
    a.var = var;
    a.op = Op::Read;
    req.accesses.push_back(a);
  }
  return encode_request(req);
}

std::string encode_batch_write(u64 request_id, const std::string& session,
                               const std::vector<i64>& vars,
                               const std::vector<i64>& values) {
  MP_REQUIRE(vars.size() == values.size(),
             "batch write: " << vars.size() << " vars vs " << values.size()
                             << " values");
  WireRequest req;
  req.type = MsgType::BatchWrite;
  req.request_id = request_id;
  req.session = session;
  req.accesses.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    AccessRequest a;
    a.var = vars[i];
    a.op = Op::Write;
    a.value = values[i];
    req.accesses.push_back(a);
  }
  return encode_request(req);
}

std::string encode_step(u64 request_id, const std::string& session,
                        const std::vector<AccessRequest>& accesses) {
  WireRequest req;
  req.type = MsgType::Step;
  req.request_id = request_id;
  req.session = session;
  req.accesses = accesses;
  return encode_request(req);
}

std::string encode_control(MsgType type, u64 request_id,
                           const std::string& session,
                           std::string_view snapshot_bytes) {
  MP_REQUIRE(type == MsgType::Snapshot || type == MsgType::Restore ||
                 type == MsgType::Stats,
             "encode_control: " << msg_type_name(type)
                                << " is not a control message");
  WireRequest req;
  req.type = type;
  req.request_id = request_id;
  req.session = session;
  req.snapshot_bytes.assign(snapshot_bytes);
  return encode_request(req);
}

std::optional<std::string_view> next_frame(std::string_view& buf) {
  if (buf.size() < 4) return std::nullopt;
  u64 len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<u64>(static_cast<unsigned char>(buf[static_cast<size_t>(i)]))
           << (8 * i);
  }
  MP_REQUIRE(len <= kMaxFrameBytes, "frame prefix declares " << len
                                                             << " bytes");
  if (buf.size() < 4 + len) return std::nullopt;
  const std::string_view payload = buf.substr(4, len);
  buf.remove_prefix(4 + len);
  return payload;
}

void FrameBuffer::append(const char* data, size_t n) {
  // Compact once the consumed prefix dominates, so the buffer never grows
  // proportionally to the connection's lifetime traffic.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(data, n);
}

std::optional<std::string> FrameBuffer::next_payload() {
  std::string_view rest(buf_.data() + off_, buf_.size() - off_);
  const std::optional<std::string_view> payload = next_frame(rest);
  if (!payload.has_value()) return std::nullopt;
  std::string out(*payload);
  off_ = buf_.size() - rest.size();
  return out;
}

void FrameBuffer::clear() {
  buf_.clear();
  off_ = 0;
}

WireResponse handle_control(SessionManager& manager, const WireRequest& req) {
  WireResponse resp;
  resp.type = req.type;
  resp.request_id = req.request_id;

  if (req.type == MsgType::Restore) {
    try {
      manager.restore(req.session, req.snapshot_bytes);
    } catch (const std::exception& e) {
      resp.ok = false;
      resp.error = e.what();
    }
    return resp;
  }

  Session* s = manager.find_by_name(req.session);
  if (s == nullptr) {
    resp.ok = false;
    resp.error = "unknown session '" + req.session + "'";
    return resp;
  }
  switch (req.type) {
    case MsgType::Snapshot:
      try {
        resp.snapshot_bytes = s->snapshot();
      } catch (const std::exception& e) {
        resp.ok = false;
        resp.error = e.what();
      }
      break;
    case MsgType::Stats:
      resp.stats = s->stats();
      break;
    default:
      MP_ASSERT(false, "handle_control: " << msg_type_name(req.type)
                                          << " is not a control message");
  }
  return resp;
}

WireRequest decode_request(std::string_view payload) {
  ByteReader r(payload, "request frame");
  WireRequest req;
  const unsigned char type = r.get_u8();
  MP_REQUIRE(type >= static_cast<unsigned char>(MsgType::BatchRead) &&
                 type <= static_cast<unsigned char>(MsgType::Stats),
             "frame: unknown message type " << static_cast<int>(type));
  req.type = static_cast<MsgType>(type);
  req.request_id = r.get_u64();
  req.session = r.get_str();
  switch (req.type) {
    case MsgType::BatchRead:
    case MsgType::BatchWrite:
    case MsgType::Step:
      req.accesses = get_accesses(r);
      break;
    case MsgType::Restore:
      req.snapshot_bytes = r.get_blob();
      break;
    case MsgType::Snapshot:
    case MsgType::Stats:
      break;
  }
  r.expect_done();
  return req;
}

WireResponse decode_response(std::string_view payload) {
  ByteReader r(payload, "response frame");
  WireResponse resp;
  const unsigned char type = r.get_u8();
  MP_REQUIRE(type >= static_cast<unsigned char>(MsgType::BatchRead) &&
                 type <= static_cast<unsigned char>(MsgType::Stats),
             "frame: unknown message type " << static_cast<int>(type));
  resp.type = static_cast<MsgType>(type);
  resp.request_id = r.get_u64();
  resp.ok = r.get_u8() != 0;
  resp.error = r.get_str();
  const u32 n = r.get_u32();
  resp.values.reserve(n);
  for (u32 i = 0; i < n; ++i) resp.values.push_back(r.get_i64());
  resp.mesh_steps = r.get_i64();
  resp.slice = r.get_i64();
  resp.coalesced = r.get_i64();
  resp.snapshot_bytes = r.get_blob();
  resp.stats.steps_executed = r.get_i64();
  resp.stats.mesh_steps = r.get_i64();
  resp.stats.accepted = r.get_i64();
  resp.stats.rejected = r.get_i64();
  resp.stats.queue_depth = r.get_i64();
  resp.stats.peak_queue_depth = r.get_i64();
  r.expect_done();
  return resp;
}

LoopbackDriver::LoopbackDriver(SessionManager& manager,
                               FairScheduler& scheduler)
    : manager_(manager), scheduler_(scheduler) {
  scheduler_.set_completion_sink([this](Response&& done) {
    WireResponse resp;
    const auto it = inflight_types_.find(done.id);
    resp.type = it == inflight_types_.end() ? MsgType::Step : it->second;
    if (it != inflight_types_.end()) inflight_types_.erase(it);
    resp.request_id = done.id;
    resp.ok = done.ok;
    resp.error = std::move(done.error);
    // Write-only steps return no data; reads return per-processor values.
    if (resp.type != MsgType::BatchWrite) resp.values = std::move(done.values);
    resp.mesh_steps = done.mesh_steps;
    resp.slice = done.slice;
    resp.coalesced = done.coalesced;
    push(std::move(resp));
  });
}

void LoopbackDriver::submit(std::string_view frame) {
  WireResponse err;
  err.ok = false;
  try {
    std::string_view buf = frame;
    const std::optional<std::string_view> payload = next_frame(buf);
    MP_REQUIRE(payload.has_value(), "incomplete frame (" << frame.size()
                                                         << " bytes)");
    MP_REQUIRE(buf.empty(), "trailing bytes after frame");
    handle(decode_request(*payload));
    return;
  } catch (const std::exception& e) {
    err.error = e.what();
  }
  push(std::move(err));
}

void LoopbackDriver::handle(const WireRequest& req) {
  switch (req.type) {
    case MsgType::BatchRead:
    case MsgType::BatchWrite:
    case MsgType::Step: {
      WireResponse resp;
      resp.type = req.type;
      resp.request_id = req.request_id;
      Session* s = manager_.find_by_name(req.session);
      if (s == nullptr) {
        resp.ok = false;
        resp.error = "unknown session '" + req.session + "'";
        push(std::move(resp));
        return;
      }
      Request work;
      work.id = req.request_id;
      work.accesses = req.accesses;
      const Admission verdict = scheduler_.submit(s->id(), std::move(work));
      if (!verdict.accepted) {
        resp.ok = false;
        resp.error = verdict.reason;
        push(std::move(resp));
      } else {
        inflight_types_[req.request_id] = req.type;
      }
      return;
    }
    case MsgType::Snapshot:
    case MsgType::Restore:
    case MsgType::Stats:
      push(handle_control(manager_, req));
      return;
  }
}

void LoopbackDriver::push(WireResponse resp) {
  outbox_.push_back(encode_response(resp));
}

std::vector<std::string> LoopbackDriver::poll() {
  std::vector<std::string> out;
  out.reserve(outbox_.size());
  while (!outbox_.empty()) {
    out.push_back(std::move(outbox_.front()));
    outbox_.pop_front();
  }
  return out;
}

}  // namespace meshpram::serve
