// Session registry: create / restore / destroy named sessions.
//
// Sessions get monotonically increasing ids in creation order; the fair
// scheduler iterates them in id order, which is what makes its round-robin
// deterministic. Names are unique among live sessions (create throws
// ConfigError on a duplicate).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/session.hpp"

namespace meshpram::serve {

struct ParsedSnapshot;

/// Builds the EngineHooks for a custom-engine restore from the decoded
/// snapshot (the binder typically consumes parsed.sim to seed its engine —
/// e.g. dist::DistMachine::from_simulator).
using EngineBinder = std::function<EngineHooks(ParsedSnapshot&)>;

class SessionManager {
 public:
  SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a fresh session; throws ConfigError if `name` is taken.
  Session& create(const std::string& name, const SimConfig& config,
                  SessionLimits limits = {});

  /// Rebuilds a session from snapshot bytes under `name` (the name may
  /// differ from the captured one — restoring under a new name forks the
  /// workload). Limits, RNG stream, stats and the pending queue come from
  /// the snapshot when it carries session extras. Throws SnapshotError on
  /// malformed bytes, ConfigError on a duplicate name.
  Session& restore(const std::string& name, std::string_view snapshot_bytes);

  /// Creates a session backed by a custom engine (EngineHooks) instead of an
  /// owned simulator; throws ConfigError if `name` is taken.
  Session& create_custom(const std::string& name, EngineHooks hooks,
                         SessionLimits limits = {});

  /// Restore variant for custom-engine sessions: decodes `snapshot_bytes`,
  /// hands the ParsedSnapshot to `binder` to build the engine, and re-seats
  /// the session extras exactly like restore().
  Session& restore_custom(const std::string& name,
                          std::string_view snapshot_bytes,
                          const EngineBinder& binder);

  /// Removes a session in any state, dropping queued work. Throws
  /// ConfigError for an unknown id.
  void destroy(u32 id);

  /// Removes every drained session (Draining with an empty queue); returns
  /// how many were reaped.
  i64 reap_drained();

  Session* find(u32 id);
  Session* find_by_name(std::string_view name);

  /// Live sessions in ascending id order — the scheduler's round-robin order.
  std::vector<Session*> sessions();

  i64 size() const { return static_cast<i64>(sessions_.size()); }

  /// Total pending requests across all sessions (the scheduler's global
  /// in-flight gauge).
  i64 total_pending() const;

 private:
  std::map<u32, std::unique_ptr<Session>> sessions_;  // keyed by id, ordered
  u32 next_id_ = 1;
};

}  // namespace meshpram::serve
