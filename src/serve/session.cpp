#include "serve/session.hpp"

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace meshpram::serve {

namespace {

/// Stable session seed: splitmix64 over the name bytes, so a session's
/// default workload stream depends only on its name.
u64 name_seed(const std::string& name) {
  u64 h = 0x5e55ed5e55ed5e55ULL;
  for (const char c : name) {
    u64 s = h ^ static_cast<unsigned char>(c);
    h = splitmix64(s);
  }
  return h;
}

telemetry::Label intern_span(const std::string& name) {
  return telemetry::intern("serve." + name);
}

telemetry::Label intern_queue(const std::string& name) {
  return telemetry::intern("serve.queue." + name);
}

}  // namespace

const char* state_name(SessionState s) {
  switch (s) {
    case SessionState::Idle: return "idle";
    case SessionState::Running: return "running";
    case SessionState::Suspended: return "suspended";
    case SessionState::Draining: return "draining";
  }
  return "?";
}

Session::Session(u32 id, std::string name, const SimConfig& config,
                 SessionLimits limits)
    : id_(id),
      name_(std::move(name)),
      limits_(limits),
      sim_(std::make_unique<PramMeshSimulator>(config)),
      rng_(name_seed(name_)),
      span_label_(intern_span(name_)),
      queue_label_(intern_queue(name_)) {
  MP_REQUIRE(!name_.empty(), "session name must be non-empty");
  MP_REQUIRE(limits_.queue_capacity >= 1,
             "session queue capacity " << limits_.queue_capacity);
}

Session::Session(u32 id, std::string name,
                 std::unique_ptr<PramMeshSimulator> sim, SessionLimits limits)
    : id_(id),
      name_(std::move(name)),
      limits_(limits),
      sim_(std::move(sim)),
      rng_(name_seed(name_)),
      span_label_(intern_span(name_)),
      queue_label_(intern_queue(name_)) {
  MP_REQUIRE(!name_.empty(), "session name must be non-empty");
  MP_REQUIRE(limits_.queue_capacity >= 1,
             "session queue capacity " << limits_.queue_capacity);
}

Session::Session(u32 id, std::string name, EngineHooks hooks,
                 SessionLimits limits)
    : id_(id),
      name_(std::move(name)),
      limits_(limits),
      hooks_(std::move(hooks)),
      rng_(name_seed(name_)),
      span_label_(intern_span(name_)),
      queue_label_(intern_queue(name_)) {
  MP_REQUIRE(!name_.empty(), "session name must be non-empty");
  MP_REQUIRE(limits_.queue_capacity >= 1,
             "session queue capacity " << limits_.queue_capacity);
  MP_REQUIRE(hooks_.step && hooks_.write_core && hooks_.processors > 0,
             "custom-engine session needs step, write_core and a positive "
             "processor count");
}

PramMeshSimulator& Session::sim() {
  MP_REQUIRE(sim_ != nullptr, "session '" << name_
                                          << "' is backed by a custom engine, "
                                             "not an in-process simulator");
  return *sim_;
}

const PramMeshSimulator& Session::sim() const {
  MP_REQUIRE(sim_ != nullptr, "session '" << name_
                                          << "' is backed by a custom engine, "
                                             "not an in-process simulator");
  return *sim_;
}

std::vector<i64> Session::step(const std::vector<AccessRequest>& accesses,
                               StepStats* stats) {
  // feed_clock = false: serving accounts in SessionStats, and the machine
  // clock must not depend on whether requests ran solo or coalesced
  // (step_grouped never feeds it) — session snapshots stay batch-invariant.
  if (sim_ != nullptr) return sim_->step(accesses, stats, false);
  return hooks_.step(accesses, stats);
}

std::vector<i64> Session::step_grouped(
    const std::vector<const std::vector<AccessRequest>*>& groups,
    StepStats* stats) {
  MP_REQUIRE(sim_ != nullptr, "coalesced steps need a sim-backed session");
  return sim_->step_grouped(groups, stats);
}

void Session::enqueue(Request req) {
  MP_ASSERT(!queue_full(), "enqueue past capacity — admission control must "
                           "run first");
  queue_.push_back(std::move(req));
  if (state_ == SessionState::Idle) state_ = SessionState::Running;
  stats_.accepted += 1;
  stats_.queue_depth = queue_depth();
  if (stats_.queue_depth > stats_.peak_queue_depth) {
    stats_.peak_queue_depth = stats_.queue_depth;
  }
  if (telemetry::sampling_on()) {
    telemetry::record_counter(queue_label_, telemetry::Cat::Counter,
                              stats_.queue_depth);
  }
}

Request Session::dequeue() {
  MP_ASSERT(!queue_.empty(), "dequeue from an empty session queue");
  Request req = std::move(queue_.front());
  queue_.pop_front();
  after_dequeue();
  return req;
}

void Session::after_dequeue() {
  stats_.queue_depth = queue_depth();
  if (queue_.empty() && state_ == SessionState::Running) {
    state_ = SessionState::Idle;
  }
  if (telemetry::sampling_on()) {
    telemetry::record_counter(queue_label_, telemetry::Cat::Counter,
                              stats_.queue_depth);
  }
}

void Session::suspend() {
  MP_REQUIRE(state_ != SessionState::Draining,
             "cannot suspend a draining session");
  state_ = SessionState::Suspended;
}

void Session::resume() {
  MP_REQUIRE(state_ == SessionState::Suspended,
             "resume on a session in state " << state_name(state_));
  state_ = queue_.empty() ? SessionState::Idle : SessionState::Running;
}

void Session::drain() { state_ = SessionState::Draining; }

}  // namespace meshpram::serve
