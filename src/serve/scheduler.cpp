#include "serve/scheduler.hpp"

#include <exception>
#include <utility>

#include "serve/coalesce.hpp"
#include "serve/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace meshpram::serve {

FairScheduler::FairScheduler(SessionManager& manager, SchedulerConfig config)
    : manager_(manager), config_(config) {
  MP_REQUIRE(config_.threads >= 0,
             "scheduler thread count " << config_.threads);
  MP_REQUIRE(config_.global_inflight >= 1,
             "scheduler global in-flight budget " << config_.global_inflight);
  MP_REQUIRE(config_.coalesce_window >= 1,
             "coalesce window " << config_.coalesce_window);
  if (env_i64("MESHPRAM_SERVE_VALIDATE", 0, 1).value_or(0) != 0) {
    config_.validate_coalescing = true;
  }
  if (config_.threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
}

FairScheduler::~FairScheduler() = default;

void FairScheduler::set_completion_sink(std::function<void(Response&&)> sink) {
  sink_ = std::move(sink);
}

Admission FairScheduler::submit(u32 session_id, Request req) {
  Session* s = manager_.find(session_id);
  if (s == nullptr) {
    return {false, "unknown session id " + std::to_string(session_id)};
  }
  if (!s->admissible()) {
    s->stats().rejected += 1;
    return {false, std::string("session '") + s->name() + "' is " +
                       state_name(s->state())};
  }
  if (s->queue_full()) {
    s->stats().rejected += 1;
    return {false, "queue full (capacity " +
                       std::to_string(s->limits().queue_capacity) + ")"};
  }
  if (manager_.total_pending() >= config_.global_inflight) {
    s->stats().rejected += 1;
    return {false, "global in-flight budget exceeded (" +
                       std::to_string(config_.global_inflight) + " pending)"};
  }
  s->enqueue(std::move(req));
  return {true, {}};
}

i64 FairScheduler::run_slice() {
  i64 executed = 0;
  for (Session* s : manager_.sessions()) {
    if (!s->runnable()) continue;
    if (config_.coalesce_window > 1 && s->supports_coalescing() &&
        s->queue_depth() > 1) {
      const CoalescePlan plan =
          plan_coalesce(s->pending(), config_.coalesce_window,
                        s->sim().processors(), s->sim().num_vars());
      if (plan.count > 1) {
        std::vector<Request> batch;
        batch.reserve(static_cast<size_t>(plan.count));
        for (i64 i = 0; i < plan.count; ++i) batch.push_back(s->dequeue());
        execute_batch(*s, std::move(batch));
        executed += plan.count;
        continue;
      }
    }
    execute(*s, s->dequeue());
    ++executed;
  }
  if (executed > 0) ++slices_;
  return executed;
}

i64 FairScheduler::run_until_idle(i64 max_slices) {
  i64 total = 0;
  while (max_slices < 0 || max_slices-- > 0) {
    const i64 n = run_slice();
    if (n == 0) break;
    total += n;
  }
  return total;
}

i64 FairScheduler::inflight() const { return manager_.total_pending(); }

void FairScheduler::execute(Session& s, Request req) {
  // Install the scheduler-owned pool (if any) for the duration of the step so
  // this scheduler never contends with other simulators on the process pool.
  std::unique_ptr<ScopedPool> guard;
  if (pool_) guard = std::make_unique<ScopedPool>(*pool_);

  telemetry::Span span(telemetry::Cat::Serve, s.span_label(),
                       static_cast<i64>(req.id));
  Response resp;
  resp.id = req.id;
  resp.session = s.id();
  resp.slice = slices_;
  resp.coalesced = 1;
  try {
    StepStats stats;
    resp.values = s.step(req.accesses, &stats);
    resp.mesh_steps = stats.total_steps;
    s.stats().steps_executed += 1;
    s.stats().mesh_steps += stats.total_steps;
    span.set_steps(stats.total_steps);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  if (sink_) sink_(std::move(resp));
}

void FairScheduler::execute_batch(Session& s, std::vector<Request> batch) {
  std::unique_ptr<ScopedPool> guard;
  if (pool_) guard = std::make_unique<ScopedPool>(*pool_);

  telemetry::Span span(telemetry::Cat::Serve, s.span_label(),
                       static_cast<i64>(batch.front().id));
  std::string before;
  if (config_.validate_coalescing) {
    before = snapshot_simulator(s.sim());
  }
  const i64 n = s.sim().processors();
  std::vector<const std::vector<AccessRequest>*> groups;
  groups.reserve(batch.size());
  for (const Request& r : batch) groups.push_back(&r.accesses);

  std::vector<Response> responses(batch.size());
  for (size_t g = 0; g < batch.size(); ++g) {
    responses[g].id = batch[g].id;
    responses[g].session = s.id();
    responses[g].slice = slices_;
    responses[g].coalesced = static_cast<i64>(batch.size());
  }
  try {
    StepStats stats;
    const std::vector<i64> merged = s.step_grouped(groups, &stats);
    size_t offset = 0;
    for (size_t g = 0; g < batch.size(); ++g) {
      // Each response carries the full per-processor layout the request
      // would have produced alone: its accesses at slots 0.. then zeros.
      std::vector<i64> values(static_cast<size_t>(n), 0);
      const size_t sz = batch[g].accesses.size();
      for (size_t i = 0; i < sz; ++i) values[i] = merged[offset + i];
      offset += sz;
      responses[g].values = std::move(values);
      responses[g].mesh_steps = stats.total_steps;
    }
    s.stats().steps_executed += static_cast<i64>(batch.size());
    s.stats().mesh_steps += stats.total_steps;
    cstats_.batches += 1;
    cstats_.merged_requests += static_cast<i64>(batch.size());
    span.set_steps(stats.total_steps);
    if (config_.validate_coalescing) {
      validate_batch(s, before, batch, responses);
    }
  } catch (const InternalError&) {
    // Tripwire or invariant break: determinism is broken — fail loudly
    // instead of answering clients from a corrupt state.
    throw;
  } catch (const std::exception& e) {
    // plan_coalesce only merges requests that execute cleanly alone, so a
    // failure here is unexpected — report it on every member.
    for (Response& r : responses) {
      r.ok = false;
      r.error = e.what();
      r.values.clear();
    }
  }
  if (sink_) {
    for (Response& r : responses) sink_(std::move(r));
  }
}

void FairScheduler::validate_batch(Session& s, const std::string& before,
                                   const std::vector<Request>& batch,
                                   const std::vector<Response>& responses) {
  cstats_.validations += 1;
  std::unique_ptr<PramMeshSimulator> shadow = restore_simulator(before);
  for (size_t g = 0; g < batch.size(); ++g) {
    // stats == nullptr keeps the shadow's accounting clock untouched, like
    // step_grouped on the primary, so the final snapshots stay comparable.
    const std::vector<i64> values = shadow->step(batch[g].accesses, nullptr);
    const size_t sz = batch[g].accesses.size();
    for (size_t i = 0; i < sz; ++i) {
      if (values[i] != responses[g].values[i]) {
        throw InternalError(
            "coalescing tripwire: read value diverged from sequential replay "
            "(session '" +
            s.name() + "', request " + std::to_string(batch[g].id) + ")");
      }
    }
  }
  if (snapshot_simulator(*shadow) != snapshot_simulator(s.sim())) {
    throw InternalError(
        "coalescing tripwire: machine state diverged from sequential replay "
        "(session '" +
        s.name() + "')");
  }
}

}  // namespace meshpram::serve
