#include "serve/scheduler.hpp"

#include <exception>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace meshpram::serve {

FairScheduler::FairScheduler(SessionManager& manager, SchedulerConfig config)
    : manager_(manager), config_(config) {
  MP_REQUIRE(config_.threads >= 0,
             "scheduler thread count " << config_.threads);
  MP_REQUIRE(config_.global_inflight >= 1,
             "scheduler global in-flight budget " << config_.global_inflight);
  if (config_.threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
}

FairScheduler::~FairScheduler() = default;

void FairScheduler::set_completion_sink(std::function<void(Response&&)> sink) {
  sink_ = std::move(sink);
}

Admission FairScheduler::submit(u32 session_id, Request req) {
  Session* s = manager_.find(session_id);
  if (s == nullptr) {
    return {false, "unknown session id " + std::to_string(session_id)};
  }
  if (!s->admissible()) {
    s->stats().rejected += 1;
    return {false, std::string("session '") + s->name() + "' is " +
                       state_name(s->state())};
  }
  if (s->queue_full()) {
    s->stats().rejected += 1;
    return {false, "queue full (capacity " +
                       std::to_string(s->limits().queue_capacity) + ")"};
  }
  if (manager_.total_pending() >= config_.global_inflight) {
    s->stats().rejected += 1;
    return {false, "global in-flight budget exceeded (" +
                       std::to_string(config_.global_inflight) + " pending)"};
  }
  s->enqueue(std::move(req));
  return {true, {}};
}

i64 FairScheduler::run_slice() {
  i64 executed = 0;
  for (Session* s : manager_.sessions()) {
    if (!s->runnable()) continue;
    execute(*s, s->dequeue());
    ++executed;
  }
  if (executed > 0) ++slices_;
  return executed;
}

i64 FairScheduler::run_until_idle(i64 max_slices) {
  i64 total = 0;
  while (max_slices < 0 || max_slices-- > 0) {
    const i64 n = run_slice();
    if (n == 0) break;
    total += n;
  }
  return total;
}

i64 FairScheduler::inflight() const { return manager_.total_pending(); }

void FairScheduler::execute(Session& s, Request req) {
  // Install the scheduler-owned pool (if any) for the duration of the step so
  // this scheduler never contends with other simulators on the process pool.
  std::unique_ptr<ScopedPool> guard;
  if (pool_) guard = std::make_unique<ScopedPool>(*pool_);

  telemetry::Span span(telemetry::Cat::Serve, s.span_label(),
                       static_cast<i64>(req.id));
  Response resp;
  resp.id = req.id;
  resp.session = s.id();
  resp.slice = slices_;
  try {
    StepStats stats;
    resp.values = s.step(req.accesses, &stats);
    resp.mesh_steps = stats.total_steps;
    s.stats().steps_executed += 1;
    s.stats().mesh_steps += stats.total_steps;
    span.set_steps(stats.total_steps);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  if (sink_) sink_(std::move(resp));
}

}  // namespace meshpram::serve
