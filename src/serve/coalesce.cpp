#include "serve/coalesce.hpp"

#include <unordered_set>

namespace meshpram::serve {

namespace {

/// A request the sequential path would execute without throwing: every
/// non-idle variable in range and no variable repeated within the request.
/// Anything else must run alone so it alone gets the error response.
bool clean_request(const Request& req, i64 num_vars,
                   std::unordered_set<i64>& scratch) {
  scratch.clear();
  for (const AccessRequest& a : req.accesses) {
    if (a.var < 0) continue;
    if (a.var >= num_vars) return false;
    if (!scratch.insert(a.var).second) return false;
  }
  return true;
}

}  // namespace

CoalescePlan plan_coalesce(const std::deque<Request>& queue, i64 window,
                           i64 processors, i64 num_vars) {
  CoalescePlan plan;
  if (queue.empty()) return plan;
  plan.count = 1;
  plan.total_accesses = static_cast<i64>(queue.front().accesses.size());
  std::unordered_set<i64> scratch;
  if (window <= 1 || !clean_request(queue.front(), num_vars, scratch)) {
    return plan;
  }
  std::unordered_set<i64> merged;
  for (const AccessRequest& a : queue.front().accesses) {
    if (a.var >= 0) merged.insert(a.var);
  }
  while (plan.count < window &&
         plan.count < static_cast<i64>(queue.size())) {
    const Request& next = queue[static_cast<size_t>(plan.count)];
    if (!clean_request(next, num_vars, scratch)) break;
    const i64 slots = static_cast<i64>(next.accesses.size());
    if (plan.total_accesses + slots > processors) break;
    bool disjoint = true;
    for (const AccessRequest& a : next.accesses) {
      if (a.var >= 0 && merged.count(a.var) != 0) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) break;
    for (const AccessRequest& a : next.accesses) {
      if (a.var >= 0) merged.insert(a.var);
    }
    plan.total_accesses += slots;
    plan.count += 1;
  }
  return plan;
}

}  // namespace meshpram::serve
