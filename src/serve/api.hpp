// Batched request API: length-prefixed binary wire format + loopback driver.
//
// Frame = u32 little-endian payload length, then the payload. Request payload:
//   u8 MsgType | u64 request_id | str session-name | type-specific body
// Response payload:
//   u8 MsgType | u64 request_id | u8 ok | str error | u32 n + n*i64 values |
//   i64 mesh_steps | i64 slice | blob snapshot | 6*i64 stats
// (responses carry every field; unused ones are empty/zero — the format is a
// loopback protocol, not a space-optimised one).
//
// The LoopbackDriver is the in-process server half: feed it request frames
// with submit(), advance the scheduler, and drain encoded response frames
// with poll(). Execution responses (BatchRead/BatchWrite/Step) appear after
// the scheduler slice that runs them; control responses (Snapshot/Restore/
// Stats and every rejection) appear immediately.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/scheduler.hpp"

namespace meshpram::serve {

enum class MsgType : unsigned char {
  BatchRead = 1,   ///< one PRAM step of reads: body = u32 n, n*i64 vars
  BatchWrite = 2,  ///< one PRAM step of writes: body = u32 n, n*(var, value)
  Step = 3,        ///< mixed step: body = u32 n, n*(i64 var, u8 op, i64 value)
  Snapshot = 4,    ///< serialize the named session (no body)
  Restore = 5,     ///< body = blob of snapshot bytes; creates session-name
  Stats = 6,       ///< per-session accounting (no body)
};

const char* msg_type_name(MsgType t);

/// Decoded request frame (see the format comment above).
struct WireRequest {
  MsgType type = MsgType::Step;
  u64 request_id = 0;
  std::string session;  ///< session name (Restore: the name to create)
  std::vector<AccessRequest> accesses;  ///< BatchRead/BatchWrite/Step
  std::string snapshot_bytes;           ///< Restore
};

/// Decoded response frame.
struct WireResponse {
  MsgType type = MsgType::Step;
  u64 request_id = 0;
  bool ok = true;
  std::string error;
  std::vector<i64> values;     ///< per-processor read results
  i64 mesh_steps = 0;          ///< counted mesh steps of the executed step
  i64 slice = -1;              ///< scheduler slice that executed it (-1: none)
  /// Requests merged into the routing pass that served this one (1 = ran
  /// alone, >1 = coalesced, 0 = not executed — rejection/control reply).
  i64 coalesced = 0;
  std::string snapshot_bytes;  ///< Snapshot reply payload
  SessionStats stats;          ///< Stats reply payload
};

// ---- encoding (each returns one complete frame incl. the length prefix) ----
std::string encode_request(const WireRequest& req);
std::string encode_response(const WireResponse& resp);

/// Convenience builders for the three execution requests.
std::string encode_batch_read(u64 request_id, const std::string& session,
                              const std::vector<i64>& vars);
std::string encode_batch_write(u64 request_id, const std::string& session,
                               const std::vector<i64>& vars,
                               const std::vector<i64>& values);
std::string encode_step(u64 request_id, const std::string& session,
                        const std::vector<AccessRequest>& accesses);
std::string encode_control(MsgType type, u64 request_id,
                           const std::string& session,
                           std::string_view snapshot_bytes = {});

// ---- decoding ----
/// Strips one frame off the front of `buf` (advancing it); nullopt when the
/// buffer holds less than a complete frame. Throws ConfigError on a frame
/// whose declared length is implausible (> 1 GiB).
std::optional<std::string_view> next_frame(std::string_view& buf);

/// Decodes a frame *payload* (what next_frame returns). Throws ConfigError on
/// malformed bytes.
WireRequest decode_request(std::string_view payload);
WireResponse decode_response(std::string_view payload);

/// Incremental frame assembly over a byte-stream transport: append() bytes
/// as they arrive (partial reads are fine — a frame may span many appends),
/// next_payload() carves complete frame payloads off the front. Consumed
/// bytes are compacted lazily, so cost is amortized O(bytes).
class FrameBuffer {
 public:
  void append(const char* data, size_t n);
  /// The next complete frame's payload (owned copy), or nullopt when the
  /// buffered bytes end mid-frame. Throws ConfigError on an implausible
  /// length prefix — a protocol error; the caller should drop the stream.
  std::optional<std::string> next_payload();
  i64 buffered() const { return static_cast<i64>(buf_.size() - off_); }
  void clear();

 private:
  std::string buf_;
  size_t off_ = 0;  ///< consumed prefix of buf_ (compacted when it dominates)
};

/// Shared control-plane execution for the loopback and network servers:
/// handles Snapshot / Restore / Stats against `manager` and returns the
/// reply. Execution messages must not be routed here (they go through the
/// scheduler's admission control).
WireResponse handle_control(SessionManager& manager, const WireRequest& req);

/// In-process server half: decodes request frames, routes them through the
/// session manager / fair scheduler, and queues encoded response frames.
/// Installs itself as the scheduler's completion sink.
class LoopbackDriver {
 public:
  LoopbackDriver(SessionManager& manager, FairScheduler& scheduler);
  LoopbackDriver(const LoopbackDriver&) = delete;
  LoopbackDriver& operator=(const LoopbackDriver&) = delete;

  /// Accepts one request frame (prefix + payload). Malformed frames produce
  /// an ok=false response rather than throwing: the driver is the process
  /// boundary, so client errors must not kill the server loop.
  void submit(std::string_view frame);

  /// Drains every queued response frame (each incl. its length prefix).
  std::vector<std::string> poll();

  i64 pending_responses() const { return static_cast<i64>(outbox_.size()); }

 private:
  void handle(const WireRequest& req);
  void push(WireResponse resp);

  SessionManager& manager_;
  FairScheduler& scheduler_;
  std::deque<std::string> outbox_;
  /// request_id -> MsgType for in-flight execution requests, so completions
  /// from the scheduler sink are encoded with the right response type.
  std::map<u64, MsgType> inflight_types_;
};

}  // namespace meshpram::serve
