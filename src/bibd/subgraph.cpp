#include "bibd/subgraph.hpp"

#include "util/error.hpp"

namespace meshpram {

BibdSubgraph::BibdSubgraph(i64 q, int d, i64 m)
    : bibd_(q, d), m_(m), qd1_(ipow(q, d - 1)) {
  MP_REQUIRE(1 <= m && m <= bibd_.num_inputs(),
             "subgraph input count m=" << m << " outside [1, "
                                       << bibd_.num_inputs() << ']');
  const i64 qd1 = qd1_;
  // l = largest value with q^{d-1}(q^l - 1)/(q - 1) <= m (l may equal d when
  // m = f(d), in which case V2 and V3 are empty).
  l_ = 0;
  base_l_ = 0;
  while (l_ < d) {
    const i64 next = qd1 * ((ipow(q, l_ + 1) - 1) / (q - 1));
    if (next > m) break;
    base_l_ = next;
    ++l_;
  }
  const i64 rest = m - base_l_;
  w_ = rest / qd1;
  z_ = rest % qd1;
  MP_ASSERT(l_ == d ? (w_ == 0 && z_ == 0) : w_ < ipow(q, l_),
            "Appendix decomposition out of range: l=" << l_ << " w=" << w_
                                                      << " z=" << z_);
  const i64 qm = q * m;
  rho_floor_ = qm / bibd_.num_outputs();
  rho_ceil_ = ceil_div(qm, bibd_.num_outputs());
}

i64 BibdSubgraph::to_full(i64 v) const {
  MP_REQUIRE(0 <= v && v < m_, "subgraph input " << v << " outside [0, " << m_
                                                 << ')');
  if (v < base_l_) {
    // V1: identical layout to the full design for blocks h < l.
    return v;
  }
  const i64 qd1 = qd1_;
  i64 local = v - base_l_;
  if (local < qd1 * w_) {
    // V2: h = l, B in [0, w), position A*w + B.
    return bibd_.encode_input({l_, local / w_, local % w_});
  }
  // V3: h = l, B = w, A in [0, z).
  local -= qd1 * w_;
  MP_ASSERT(local < z_, "V3 index out of range");
  return bibd_.encode_input({l_, local, w_});
}

i64 BibdSubgraph::from_full(i64 w_full) const {
  const Bibd::Phi phi = bibd_.decode_input(w_full);
  if (phi.h < l_) return w_full;  // V1 keeps the full layout
  if (phi.h > l_) return -1;
  if (phi.B < w_) return base_l_ + phi.A * w_ + phi.B;
  if (phi.B == w_ && phi.A < z_) {
    return base_l_ + qd1_ * w_ + phi.A;
  }
  return -1;
}

bool BibdSubgraph::has_v3_edge(i64 u) const {
  if (z_ == 0) return false;
  // The (unique) full-design neighbor of u at (h = l, B = w) sits at rank
  // (q^l - 1)/(q - 1) + w in u's canonical order; it survives iff its A < z.
  const i64 r = (ipow(q(), l_) - 1) / (q() - 1) + w_;
  const i64 w_full = bibd_.output_neighbor(u, r);
  return bibd_.decode_input(w_full).A < z_;
}

i64 BibdSubgraph::output_degree(i64 u) const {
  MP_REQUIRE(0 <= u && u < num_outputs(), "output index " << u);
  return (ipow(q(), l_) - 1) / (q() - 1) + w_ + (has_v3_edge(u) ? 1 : 0);
}

i64 BibdSubgraph::neighbor(i64 v, i64 x) const {
  return bibd_.neighbor(to_full(v), x);
}

std::vector<i64> BibdSubgraph::neighbors(i64 v) const {
  return bibd_.neighbors(to_full(v));
}

i64 BibdSubgraph::output_neighbor(i64 u, i64 r) const {
  MP_REQUIRE(0 <= r && r < output_degree(u),
             "neighbor rank " << r << " >= degree " << output_degree(u)
                              << " of output " << u);
  // Selected inputs are a prefix of u's canonical neighbor order, so the
  // subgraph rank equals the full-design rank.
  const i64 v = from_full(bibd_.output_neighbor(u, r));
  MP_ASSERT(v >= 0, "prefix property violated for output " << u << " rank "
                                                           << r);
  return v;
}

i64 BibdSubgraph::edge_rank(i64 v, i64 u) const {
  return bibd_.edge_rank(to_full(v), u);
}

bool BibdSubgraph::adjacent(i64 v, i64 u) const {
  return bibd_.adjacent(to_full(v), u);
}

}  // namespace meshpram
