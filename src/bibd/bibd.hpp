// The explicit (q^d, q)-Balanced Incomplete Block Design of [PP93a], as used
// by the paper (Definition 1 and Appendix).
//
// The design is a bipartite graph G = (W, U; E):
//   * outputs U = d-dimensional vectors over GF(q), encoded as integers in
//     [0, q^d) whose base-q digits are the vector entries;
//   * inputs W = pairs Φ(h, A, B) with h in [0, d), A in [0, q^{d-1}),
//     B in [0, q^h), encoding the vector pair
//        (a_{d-2}, ..., a_h, 0, a_{h-1}, ..., a_0)
//        (0,      ..., 0,   1, b_{h-1}, ..., b_0);
//   * the input Φ(h, A, B) is adjacent, for every x in GF(q), to the output
//        (a_{d-2}, ..., a_h, x, a_{h-1} + x·b_{h-1}, ..., a_0 + x·b_0),
//     all arithmetic in GF(q).
//
// Properties (tested in tests/test_bibd.cpp):
//   * every input has degree q;
//   * every output has degree (q^d - 1)/(q - 1);
//   * any two distinct outputs share exactly one input (λ = 1), which gives
//     the strong expansion property of Lemma 1;
//   * all incidence queries run in O(d) time with O(1) state — this is what
//     makes the paper's memory map "fully constructive" and space-efficient.
//
// Input index encoding (canonical, used by the whole HMOS): inputs are laid
// out in blocks by h = 0, 1, ..., d-1; block h starts at offset
// q^{d-1}(q^h - 1)/(q - 1) and holds A·q^h + B at position A·q^h + B.
#pragma once

#include <vector>

#include "gf/gf.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace meshpram {

class Bibd {
 public:
  /// Constructs the (q^d, q)-BIBD. q must be a prime power >= 2, d >= 1.
  Bibd(i64 q, int d);

  i64 q() const { return q_; }
  int d() const { return d_; }

  /// |U| = q^d.
  i64 num_outputs() const { return num_outputs_; }
  /// |W| = q^{d-1}(q^d - 1)/(q - 1).
  i64 num_inputs() const { return num_inputs_; }
  /// Degree of every input node: q.
  i64 input_degree() const { return q_; }
  /// Degree of every output node: (q^d - 1)/(q - 1).
  i64 output_degree() const { return output_degree_; }

  /// The Φ(h, A, B) triple of the paper's Appendix.
  struct Phi {
    int h;
    i64 A;
    i64 B;
  };

  // Inline: decode_input sits under neighbor/adjacent on the protocol's hot
  // path (tens of millions of calls per simulated step). The h-scan is O(d)
  // over a vector that fits in one cache line for the paper's configs.
  Phi decode_input(i64 w) const {
    MP_REQUIRE(0 <= w && w < num_inputs_,
               "input index " << w << " outside [0, " << num_inputs_ << ')');
    int h = 0;
    while (w >= block_offset_[static_cast<size_t>(h) + 1]) ++h;
    const i64 local = w - block_offset_[static_cast<size_t>(h)];
    Phi phi;
    phi.h = h;
    phi.A = local / qpow_[static_cast<size_t>(h)];
    phi.B = local % qpow_[static_cast<size_t>(h)];
    return phi;
  }
  i64 encode_input(const Phi& phi) const;

  /// The output adjacent to input w via field element x (x in [0, q)).
  i64 neighbor(i64 w, i64 x) const;

  /// All q outputs adjacent to input w, indexed by x.
  std::vector<i64> neighbors(i64 w) const;

  /// The input at rank r (r in [0, output_degree())) among the neighbors of
  /// output u. Neighbors of u are canonically ordered by (h, B) lexicographic,
  /// i.e. rank = (q^h - 1)/(q - 1) + B.
  i64 output_neighbor(i64 u, i64 r) const;

  /// Rank of the edge (w, u) in u's canonical neighbor order. Throws
  /// InternalError if (w, u) is not an edge.
  i64 edge_rank(i64 w, i64 u) const;

  /// The unique input adjacent to both distinct outputs u1 and u2 (λ = 1).
  i64 common_input(i64 u1, i64 u2) const;

  /// True if input w and output u are adjacent.
  bool adjacent(i64 w, i64 u) const;

 private:
  /// Base-q digit j of v. Inline for the same reason as decode_input.
  i64 digit(i64 v, int j) const {
    return (v / qpow_[static_cast<size_t>(j)]) % q_;
  }

  /// neighbor() with q fixed at compile time, so every base-q divmod
  /// compiles to a multiply-shift instead of a hardware divide. The generic
  /// digit() path costs ~8 i64 divisions per call, and neighbor dominates
  /// the protocol's module-path computations.
  template <i64 Q>
  i64 neighbor_fixed(i64 w, i64 x) const;

  const GF& field_;
  i64 q_;
  int d_;
  i64 num_outputs_;
  i64 num_inputs_;
  i64 output_degree_;
  std::vector<i64> block_offset_;  // block_offset_[h] = start of block h
  std::vector<i64> qpow_;          // qpow_[j] = q^j, j in [0, d]
};

}  // namespace meshpram
