#include "bibd/bibd.hpp"

#include "util/error.hpp"

namespace meshpram {

Bibd::Bibd(i64 q, int d) : field_(GF::get(q)), q_(q), d_(d) {
  MP_REQUIRE(d >= 1, "BIBD needs d >= 1, got " << d);
  qpow_.resize(static_cast<size_t>(d) + 1);
  qpow_[0] = 1;
  for (int j = 1; j <= d; ++j) qpow_[static_cast<size_t>(j)] = qpow_[static_cast<size_t>(j - 1)] * q;
  num_outputs_ = qpow_[static_cast<size_t>(d)];
  num_inputs_ = bibd_input_count(q, d);
  output_degree_ = (num_outputs_ - 1) / (q - 1);
  block_offset_.resize(static_cast<size_t>(d) + 1);
  block_offset_[0] = 0;
  for (int h = 0; h < d; ++h) {
    // Block h holds q^{d-1} * q^h inputs.
    block_offset_[static_cast<size_t>(h) + 1] =
        block_offset_[static_cast<size_t>(h)] + qpow_[static_cast<size_t>(d - 1)] * qpow_[static_cast<size_t>(h)];
  }
  MP_ASSERT(block_offset_[static_cast<size_t>(d)] == num_inputs_,
            "input block layout inconsistent");
}

i64 Bibd::encode_input(const Phi& phi) const {
  MP_REQUIRE(0 <= phi.h && phi.h < d_, "Phi.h = " << phi.h);
  MP_REQUIRE(0 <= phi.A && phi.A < qpow_[static_cast<size_t>(d_ - 1)],
             "Phi.A = " << phi.A);
  MP_REQUIRE(0 <= phi.B && phi.B < qpow_[static_cast<size_t>(phi.h)],
             "Phi.B = " << phi.B);
  return block_offset_[static_cast<size_t>(phi.h)] +
         phi.A * qpow_[static_cast<size_t>(phi.h)] + phi.B;
}

template <i64 Q>
i64 Bibd::neighbor_fixed(i64 w, i64 x) const {
  MP_REQUIRE(0 <= w && w < num_inputs_,
             "input index " << w << " outside [0, " << num_inputs_ << ')');
  int h = 0;
  while (w >= block_offset_[static_cast<size_t>(h) + 1]) ++h;
  i64 local = w - block_offset_[static_cast<size_t>(h)];
  // local = A·q^h + B with B < q^h, so its base-q digits are B's digits in
  // positions [0, h) followed by A's digits in positions [h, h + d - 1).
  // One divmod chain replaces the two divisions digit() pays per digit.
  i64 dig[126];  // h + d - 1 <= 2d - 2, and q^{2d-2} <= |W|·q fits in i64
  const int nd = h + d_ - 1;
  for (int j = 0; j < nd; ++j) {
    dig[j] = local % Q;
    local /= Q;
  }
  i64 u = 0;
  // Top digits j in (h, d-1]: a_{j-1}.
  for (int j = d_ - 1; j > h; --j) u = u * Q + dig[h + j - 1];
  // Digit h: x.
  u = u * Q + x;
  // Low digits j in [0, h): a_j + x·b_j.
  for (int j = h - 1; j >= 0; --j) {
    u = u * Q + field_.add(dig[h + j], field_.mul(x, dig[j]));
  }
  return u;
}

i64 Bibd::neighbor(i64 w, i64 x) const {
  MP_REQUIRE(0 <= x && x < q_, "field element " << x);
  // Fixed-q bodies let the compiler strength-reduce every base-q divmod;
  // the switch covers the small prime powers the paper's configs use.
  switch (q_) {
    case 2: return neighbor_fixed<2>(w, x);
    case 3: return neighbor_fixed<3>(w, x);
    case 4: return neighbor_fixed<4>(w, x);
    case 5: return neighbor_fixed<5>(w, x);
    case 7: return neighbor_fixed<7>(w, x);
    case 8: return neighbor_fixed<8>(w, x);
    case 9: return neighbor_fixed<9>(w, x);
    default: break;
  }
  const Phi phi = decode_input(w);
  // Digits of A are (a_{d-2}, ..., a_0); digits of B are (b_{h-1}, ..., b_0).
  i64 u = 0;
  // Top digits j in (h, d-1]: a_{j-1}.
  for (int j = d_ - 1; j > phi.h; --j) {
    u = u * q_ + digit(phi.A, j - 1);
  }
  // Digit h: x.
  u = u * q_ + x;
  // Low digits j in [0, h): a_j + x * b_j.
  for (int j = phi.h - 1; j >= 0; --j) {
    u = u * q_ + field_.add(digit(phi.A, j), field_.mul(x, digit(phi.B, j)));
  }
  return u;
}

std::vector<i64> Bibd::neighbors(i64 w) const {
  std::vector<i64> out;
  out.reserve(static_cast<size_t>(q_));
  for (i64 x = 0; x < q_; ++x) out.push_back(neighbor(w, x));
  return out;
}

i64 Bibd::output_neighbor(i64 u, i64 r) const {
  MP_REQUIRE(0 <= u && u < num_outputs_, "output index " << u);
  MP_REQUIRE(0 <= r && r < output_degree_, "neighbor rank " << r);
  // Find h with (q^h - 1)/(q - 1) <= r < (q^{h+1} - 1)/(q - 1).
  int h = 0;
  i64 base = 0;
  while (base + qpow_[static_cast<size_t>(h)] <= r) {
    base += qpow_[static_cast<size_t>(h)];
    ++h;
  }
  const i64 B = r - base;
  const i64 x = digit(u, h);
  // Reconstruct A: a_j = u_j - x*b_j for j < h; a_j = u_{j+1} for j >= h.
  i64 A = 0;
  for (int j = d_ - 2; j >= h; --j) A = A * q_ + digit(u, j + 1);
  for (int j = h - 1; j >= 0; --j) {
    const i64 bj = (B / qpow_[static_cast<size_t>(j)]) % q_;
    A = A * q_ + field_.sub(digit(u, j), field_.mul(x, bj));
  }
  return encode_input({h, A, B});
}

i64 Bibd::edge_rank(i64 w, i64 u) const {
  MP_ASSERT(adjacent(w, u),
            "edge_rank: (" << w << ", " << u << ") is not an edge");
  const Phi phi = decode_input(w);
  return (qpow_[static_cast<size_t>(phi.h)] - 1) / (q_ - 1) + phi.B;
}

bool Bibd::adjacent(i64 w, i64 u) const {
  const Phi phi = decode_input(w);
  return neighbor(w, digit(u, phi.h)) == u;
}

i64 Bibd::common_input(i64 u1, i64 u2) const {
  MP_REQUIRE(u1 != u2, "common_input of identical outputs");
  MP_REQUIRE(0 <= u1 && u1 < num_outputs_ && 0 <= u2 && u2 < num_outputs_,
             "output index out of range");
  // h = most significant digit where u1 and u2 differ.
  int h = d_ - 1;
  while (digit(u1, h) == digit(u2, h)) --h;
  const i64 x1 = digit(u1, h);
  const i64 x2 = digit(u2, h);
  // For j < h: u1_j = a_j + x1 b_j, u2_j = a_j + x2 b_j
  //   => b_j = (u1_j - u2_j)/(x1 - x2), a_j = u1_j - x1 b_j.
  const i64 dx_inv = field_.inv(field_.sub(x1, x2));
  i64 A = 0;
  i64 B = 0;
  for (int j = d_ - 2; j >= h; --j) A = A * q_ + digit(u1, j + 1);
  std::vector<i64> a_low(static_cast<size_t>(h)), b_low(static_cast<size_t>(h));
  for (int j = 0; j < h; ++j) {
    const i64 bj =
        field_.mul(field_.sub(digit(u1, j), digit(u2, j)), dx_inv);
    b_low[static_cast<size_t>(j)] = bj;
    a_low[static_cast<size_t>(j)] = field_.sub(digit(u1, j), field_.mul(x1, bj));
  }
  for (int j = h - 1; j >= 0; --j) {
    A = A * q_ + a_low[static_cast<size_t>(j)];
    B = B * q_ + b_low[static_cast<size_t>(j)];
  }
  const i64 w = encode_input({h, A, B});
  MP_ASSERT(adjacent(w, u1) && adjacent(w, u2),
            "common_input reconstruction failed");
  return w;
}

}  // namespace meshpram
