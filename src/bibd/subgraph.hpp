// Balanced input-subset subgraph of a (q^d, q)-BIBD — the paper's Appendix.
//
// Given m with 1 <= m <= f(d) = q^{d-1}(q^d - 1)/(q - 1), selects m inputs
// V = V1 ∪ V2 ∪ V3 (Appendix, eq. (11)) so that every output keeps degree
//   ρ in { floor(q m / q^d), ceil(q m / q^d) }            (Theorem 5)
// while every selected input keeps its full degree q. This is the graph used
// between consecutive HMOS levels: inputs are level-(i-1) modules (or the
// variables at level 0), outputs are level-i modules.
//
// Subgraph input indices live in [0, m) with the canonical layout:
//   V1: blocks h = 0..l-1 (all A, all B), block h at offset
//       q^{d-1}(q^h - 1)/(q - 1), position A·q^h + B within the block;
//   V2: h = l, B < w: offset base_l, position A·w + B;
//   V3: h = l, B = w, A < z: offset base_l + q^{d-1}·w, position A.
// Neighbors of an output u are canonically ordered by (h, B); within the
// subgraph this order is contiguous, so edge ranks stay O(d)-computable.
#pragma once

#include <vector>

#include "bibd/bibd.hpp"

namespace meshpram {

class BibdSubgraph {
 public:
  /// Subgraph of the (q^d, q)-BIBD with m selected inputs.
  BibdSubgraph(i64 q, int d, i64 m);

  i64 q() const { return bibd_.q(); }
  int d() const { return bibd_.d(); }
  i64 num_inputs() const { return m_; }
  i64 num_outputs() const { return bibd_.num_outputs(); }

  /// Output degree bounds of Theorem 5.
  i64 min_output_degree() const { return rho_floor_; }
  i64 max_output_degree() const { return rho_ceil_; }

  /// Exact degree of output u (either min_ or max_output_degree()).
  i64 output_degree(i64 u) const;

  /// The x-th neighbor (x in [0, q)) of subgraph input v.
  i64 neighbor(i64 v, i64 x) const;
  std::vector<i64> neighbors(i64 v) const;

  /// The subgraph input at rank r among output u's surviving neighbors
  /// (r in [0, output_degree(u))).
  i64 output_neighbor(i64 u, i64 r) const;

  /// Rank of edge (v, u) among u's surviving neighbors; O(d).
  i64 edge_rank(i64 v, i64 u) const;

  bool adjacent(i64 v, i64 u) const;

  /// Access to the underlying full design (for tests).
  const Bibd& full() const { return bibd_; }

  /// Appendix decomposition parameters (exposed for tests):
  /// m = q^{d-1}((q^l - 1)/(q - 1) + w) + z.
  int l() const { return l_; }
  i64 w() const { return w_; }
  i64 z() const { return z_; }

 private:
  /// Translates a subgraph input index in [0, m) to a full-BIBD input index.
  i64 to_full(i64 v) const;
  /// Translates a full-BIBD input index to a subgraph index, or -1 if the
  /// input was not selected.
  i64 from_full(i64 w_full) const;
  /// True if output u is adjacent to the V3 input at (h = l, B = w).
  bool has_v3_edge(i64 u) const;

  Bibd bibd_;
  i64 m_;
  i64 qd1_;     // q^{d-1}, hoisted off the per-query translation path
  int l_;       // largest l with q^{d-1}(q^l-1)/(q-1) <= m
  i64 w_;       // full B-columns kept at h = l
  i64 z_;       // partial column: inputs with B = w and A < z
  i64 base_l_;  // |V1| = q^{d-1}(q^l - 1)/(q - 1)
  i64 rho_floor_;
  i64 rho_ceil_;
};

}  // namespace meshpram
