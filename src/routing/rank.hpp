// Ranking packets within equal-key groups after a sort.
//
// Both CULLING and every stage of the access protocol sort packets by a
// destination key (a page / submesh id) and then need each packet's rank
// within its key group (§2 step 2, §3.3). With the region snake-sorted by
// key, groups are contiguous; a node resolves the ranks of all its packets
// locally except for its leading run, which needs the length of the
// equal-key run immediately preceding the node. That quantity comes from one
// associative scan over small per-node summaries.
#pragma once

#include "mesh/machine.hpp"
#include "mesh/region.hpp"

namespace meshpram {

/// Assigns Packet::rank = index of the packet within its Packet::key group,
/// for all packets in the (snake-sorted by key) region. Returns steps
/// charged. Throws InternalError if the region is not sorted.
i64 rank_within_groups(Mesh& mesh, const Region& region);

/// Count of packets in the largest key group of the region (validation /
/// congestion measurement helper; free of charge).
i64 max_group_size(const Mesh& mesh, const Region& region);

}  // namespace meshpram
