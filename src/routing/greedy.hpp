// Cycle-accurate greedy XY (dimension-order) store-and-forward routing.
//
// Every packet first corrects its column (east/west), then its row
// (north/south). Per machine step, every directed link carries at most one
// packet; when several queued packets want the same outgoing link, the one
// with the largest remaining distance goes first (farthest-first is the
// classic priority that makes greedy routing optimal for permutations).
// Queues are unbounded (store-and-forward with buffering at the nodes);
// congestion and queueing delay are therefore emergent, which is exactly
// what the (l1,l2)-routing benches measure against Theorem 2.
#pragma once

#include "mesh/machine.hpp"
#include "mesh/region.hpp"

namespace meshpram {

struct RouteStats {
  i64 steps = 0;          ///< parallel machine steps (cycles)
  i64 max_queue = 0;      ///< peak per-node transit queue occupancy
  i64 packets = 0;        ///< packets routed
  i64 total_distance = 0; ///< sum of source-destination Manhattan distances
};

/// Routes every packet buffered in `region` to its Packet::dest node buffer.
/// All destinations must lie inside `region`. Returns cycle-accurate stats.
///
/// Regions of at least stripe_min_nodes() nodes (mesh/parallel.hpp) are
/// decomposed into row stripes executed by a worker team with a barrier per
/// sweep; results, RouteStats, and the congestion counter grids are
/// bit-identical to the serial path at any thread count (see DESIGN.md §9
/// for the determinism argument).
RouteStats route_greedy(Mesh& mesh, const Region& region);

}  // namespace meshpram
