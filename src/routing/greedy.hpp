// Cycle-accurate greedy XY (dimension-order) store-and-forward routing.
//
// Every packet first corrects its column (east/west), then its row
// (north/south). Per machine step, every directed link carries at most one
// packet; when several queued packets want the same outgoing link, the one
// with the largest remaining distance goes first (farthest-first is the
// classic priority that makes greedy routing optimal for permutations).
// Queues are unbounded (store-and-forward with buffering at the nodes);
// congestion and queueing delay are therefore emergent, which is exactly
// what the (l1,l2)-routing benches measure against Theorem 2.
#pragma once

#include "mesh/machine.hpp"
#include "mesh/region.hpp"

namespace meshpram {

struct RouteStats {
  i64 steps = 0;          ///< parallel machine steps (cycles)
  i64 max_queue = 0;      ///< peak per-node transit queue occupancy
  i64 packets = 0;        ///< packets routed
  i64 total_distance = 0; ///< sum of source-destination Manhattan distances
  // Fault-injection accounting (all zero without an active fault plan that
  // affects routing; see fault/plan.hpp for the event semantics).
  i64 fault_retried = 0;  ///< hop attempts blocked by stall backoff or drops
  i64 fault_dropped = 0;  ///< link-level drops (detected and retransmitted)
  i64 fault_detoured = 0; ///< hops taken off the XY path around dead links
};

/// Routes every packet buffered in `region` to its Packet::dest node buffer.
/// All destinations must lie inside `region`. Returns cycle-accurate stats.
///
/// Regions of at least stripe_min_nodes() nodes (mesh/parallel.hpp) are
/// decomposed into row stripes executed by a worker team with a barrier per
/// sweep; results, RouteStats, and the congestion counter grids are
/// bit-identical to the serial path at any thread count (see DESIGN.md §9
/// for the determinism argument).
///
/// When the mesh carries a fault plan that affects routing (dead or stalled
/// links, a positive drop rate), the call switches to the serial fault-aware
/// kernel (greedy_fault.cpp): stalled hops back off and retry, dead links are
/// detoured, drops are retransmitted — no packet is ever lost. Plans that
/// only kill memory modules stay on the fast path, so their step counts are
/// bit-identical to the fault-free run.
RouteStats route_greedy(Mesh& mesh, const Region& region);

/// Test hook: extra per-node queue capacity laid out beyond the setup-time
/// maximum depth (default 2). Raising it pre-grows the arena so the overflow
/// grow path never triggers; the adversarial-burst tests compare the two
/// configurations for bit-identical delivery. Not thread-safe; set it before
/// spawning work.
void set_route_initial_headroom(i64 slots);
i64 route_initial_headroom();

namespace detail {
/// Serial fault-aware greedy kernel. Called by route_greedy after arena
/// setup; `in_flight` is the number of in-transit records already scattered
/// into `ar`'s queues. Fills steps/max_queue/fault_* of `stats` and adds the
/// fault events to mesh.fault_tally(). Throws fault::FaultError if the plan
/// leaves some packet unroutable (step cap exceeded).
void route_greedy_fault(Mesh& mesh, const Region& region, RouteArena& ar,
                        i64 in_flight, RouteStats& stats);
}  // namespace detail

}  // namespace meshpram
