// The (l1,l2)-routing strategies of §2.
//
// General (l1,l2)-routing — each node sends at most l1 and receives at most
// l2 packets — is served by sort-based routing: sort packets by destination
// (which spreads the senders of any hot spot evenly over the mesh), then
// greedy-route. This stands in for the [SK93] algorithm behind Theorem 2
// (sqrt(l1*l2*n) + O(l1*sqrt(n)) steps); DESIGN.md §2.3.
//
// Tessellated (l1,l2,δ,m)-routing — when every m-node submesh receives at
// most δ*m packets — is the paper's own 4-step algorithm: sort by destination
// submesh, rank, send rank i to submesh node i mod m (balancing the load),
// then finish inside each submesh in parallel. It beats the general strategy
// when l1, δ ∈ o(l2), the regime the HMOS creates on purpose.
#pragma once

#include <vector>

#include "mesh/machine.hpp"
#include "routing/greedy.hpp"
#include "routing/meshsort.hpp"

namespace meshpram {

struct StagedRouteStats {
  i64 steps = 0;       ///< total charged steps (sort + rank + routes)
  i64 sort_steps = 0;
  i64 rank_steps = 0;
  i64 route_steps = 0; ///< greedy cycles (max over parallel subregions where applicable)
  i64 max_queue = 0;
};

/// Direct greedy routing of whatever is buffered in `region` (baseline).
StagedRouteStats route_direct(Mesh& mesh, const Region& region);

/// Sort-based (l1,l2)-routing: sort by destination snake position, then
/// greedy-route.
StagedRouteStats route_sorted(Mesh& mesh, const Region& region,
                              const SortOptions& opts = {});

/// The paper's (l1,l2,δ,m)-routing over the given tessellation of `region`.
/// `subs` must be disjoint subrectangles of `region` covering every packet
/// destination. Stage A routes each packet to a balanced position inside its
/// destination subregion; stage B finishes inside all subregions in parallel
/// (charged the max cost).
StagedRouteStats route_two_stage(Mesh& mesh, const Region& region,
                                 const std::vector<Region>& subs,
                                 const SortOptions& opts = {});

}  // namespace meshpram
