// XY (dimension-order) routing decisions and lane conventions shared by the
// fast greedy kernel (greedy.cpp) and the fault-aware kernel
// (greedy_fault.cpp). Both kernels must agree on these exactly: the fault
// path falls back to plain XY wherever no fault is in the way, and the
// fault-rate-0 parity tests compare the two step-for-step.
#pragma once

#include "mesh/geometry.hpp"

namespace meshpram {

/// XY routing decision: east/west until the column matches, then north/south.
/// Returns false when the packet is at its destination.
inline bool xy_next_dir(Coord at, int dest_r, int dest_c, Dir* out) {
  if (at.c < dest_c) {
    *out = Dir::East;
  } else if (at.c > dest_c) {
    *out = Dir::West;
  } else if (at.r < dest_r) {
    *out = Dir::South;
  } else if (at.r > dest_r) {
    *out = Dir::North;
  } else {
    return false;
  }
  return true;
}

/// Incoming lane of a packet that moved in direction d (indexed by Dir value
/// N,E,S,W): moved South = sent by the row above, etc. Lane numbering is
/// chosen so lanes 0..3 in order are the serial absorb's arrival order for an
/// east-going snake row; see kLaneOrder* below.
constexpr int kLaneOfMove[kNumDirs] = {/*North*/ 3, /*East*/ 1, /*South*/ 0,
                                       /*West*/ 2};

/// Absorb order over lanes, reproducing the serial path's arrival order: the
/// serial forward sweep visits source nodes in snake order, so a node's
/// arrivals come from the row above first (lane 0 = moved South), then the
/// same-row neighbors in the row's snake direction (on an east-going row the
/// west neighbor precedes the east neighbor, i.e. lane 1 = moved East before
/// lane 2 = moved West; reversed on west-going rows), then the row below
/// (lane 3 = moved North). Each source forwards at most one packet per
/// direction, so one slot per lane always suffices.
constexpr int kLaneOrderEast[kNumDirs] = {0, 1, 2, 3};
constexpr int kLaneOrderWest[kNumDirs] = {0, 2, 1, 3};

}  // namespace meshpram
