#include "routing/lroute.hpp"

#include <algorithm>

#include "mesh/parallel.hpp"
#include "routing/rank.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

const telemetry::Label kRouteSorted = telemetry::intern("route.sorted");
const telemetry::Label kRouteTwoStage = telemetry::intern("route.two_stage");

/// Chunk size for the per-node keying sweeps (same grain as the protocol's
/// node loops). Each node only rewrites its own packets, so the chunking
/// never shows in the results.
constexpr i64 kNodeGrain = 64;

}  // namespace

StagedRouteStats route_direct(Mesh& mesh, const Region& region) {
  StagedRouteStats out;
  const RouteStats rs = route_greedy(mesh, region);
  out.route_steps = rs.steps;
  out.max_queue = rs.max_queue;
  out.steps = rs.steps;
  return out;
}

StagedRouteStats route_sorted(Mesh& mesh, const Region& region,
                              const SortOptions& opts) {
  telemetry::Span span(telemetry::Cat::Phase, kRouteSorted);
  StagedRouteStats out;
  for_each_region_chunk(
      mesh, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          for (Packet& p : mesh.buf(cur.id())) {
            MP_REQUIRE(p.dest >= 0, "packet without destination");
            p.key = static_cast<u64>(region.snake_of(mesh.coord(p.dest)));
          }
        }
      });
  out.sort_steps = sort_region(mesh, region, opts);
  const RouteStats rs = route_greedy(mesh, region);
  out.route_steps = rs.steps;
  out.max_queue = rs.max_queue;
  out.steps = out.sort_steps + out.route_steps;
  span.set_steps(out.steps);
  return out;
}

StagedRouteStats route_two_stage(Mesh& mesh, const Region& region,
                                 const std::vector<Region>& subs,
                                 const SortOptions& opts) {
  MP_REQUIRE(!subs.empty(), "tessellated routing needs subregions");
  telemetry::Span span(telemetry::Cat::Phase, kRouteTwoStage);
  StagedRouteStats out;

  // Map node -> subregion index for destination lookup.
  std::vector<i32> sub_of(static_cast<size_t>(mesh.size()), -1);
  for (size_t i = 0; i < subs.size(); ++i) {
    for (RegionCursor cur = mesh.cursor(subs[i]); cur.valid(); cur.advance()) {
      i32& cell = sub_of[static_cast<size_t>(cur.id())];
      MP_ASSERT(cell == -1, "overlapping subregions in tessellated routing");
      cell = static_cast<i32>(i);
    }
  }

  // Key by destination subregion; remember the true destination.
  for_each_region_chunk(
      mesh, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          for (Packet& p : mesh.buf(cur.id())) {
            MP_REQUIRE(p.dest >= 0, "packet without destination");
            const i32 sub = sub_of[static_cast<size_t>(p.dest)];
            MP_REQUIRE(sub >= 0, "destination "
                                     << p.dest
                                     << " not covered by a subregion");
            p.key = static_cast<u64>(sub);
            p.stash = p.dest;
          }
        }
      });

  // Sort by destination subregion and rank within it.
  out.sort_steps = sort_region(mesh, region, opts);
  out.rank_steps = rank_within_groups(mesh, region);

  // Stage A: rank i goes to node (i mod m) of the destination subregion —
  // the even spread that makes the second stage a (δ, l2)-problem.
  for_each_region_chunk(
      mesh, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          for (Packet& p : mesh.buf(cur.id())) {
            const Region& sub = subs[static_cast<size_t>(p.key)];
            p.dest = mesh.node_at(sub, static_cast<i64>(p.rank) % sub.size());
          }
        }
      });
  const RouteStats stage_a = route_greedy(mesh, region);
  out.max_queue = stage_a.max_queue;

  // Stage B: all subregions finish "in parallel" — on the host too. Each
  // worker owns one disjoint subregion; per-region costs are merged after
  // the join in subregion order, so the charged max (and max_queue) are
  // independent of the thread count.
  for_each_region_chunk(
      mesh, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          for (Packet& p : mesh.buf(cur.id())) {
            p.dest = p.stash;
            p.stash = -1;
          }
        }
      });
  ParallelCost stage_b;
  {
    std::vector<i64> queues(subs.size(), 0);
    stage_b.observe_all(parallel_for_regions(
        mesh, subs, [&](const Region& sub, size_t i) {
          const RouteStats rs = route_greedy(mesh, sub);
          queues[i] = rs.max_queue;
          return rs.steps;
        }));
    for (const i64 q : queues) out.max_queue = std::max(out.max_queue, q);
  }

  out.route_steps = stage_a.steps + stage_b.max();
  out.steps = out.sort_steps + out.rank_steps + out.route_steps;
  span.set_steps(out.steps);
  return out;
}

}  // namespace meshpram
