#include "routing/lroute.hpp"

#include <algorithm>

#include "routing/rank.hpp"
#include "util/error.hpp"

namespace meshpram {

StagedRouteStats route_direct(Mesh& mesh, const Region& region) {
  StagedRouteStats out;
  const RouteStats rs = route_greedy(mesh, region);
  out.route_steps = rs.steps;
  out.max_queue = rs.max_queue;
  out.steps = rs.steps;
  return out;
}

StagedRouteStats route_sorted(Mesh& mesh, const Region& region,
                              const SortOptions& opts) {
  StagedRouteStats out;
  for (i64 s = 0; s < region.size(); ++s) {
    for (Packet& p : mesh.buf(mesh.node_id(region.at_snake(s)))) {
      MP_REQUIRE(p.dest >= 0, "packet without destination");
      p.key = static_cast<u64>(region.snake_of(mesh.coord(p.dest)));
    }
  }
  out.sort_steps = sort_region(mesh, region, opts);
  const RouteStats rs = route_greedy(mesh, region);
  out.route_steps = rs.steps;
  out.max_queue = rs.max_queue;
  out.steps = out.sort_steps + out.route_steps;
  return out;
}

StagedRouteStats route_two_stage(Mesh& mesh, const Region& region,
                                 const std::vector<Region>& subs,
                                 const SortOptions& opts) {
  MP_REQUIRE(!subs.empty(), "tessellated routing needs subregions");
  StagedRouteStats out;

  // Map node -> subregion index for destination lookup.
  std::vector<i32> sub_of(static_cast<size_t>(mesh.size()), -1);
  for (size_t i = 0; i < subs.size(); ++i) {
    const Region& sub = subs[i];
    for (i64 s = 0; s < sub.size(); ++s) {
      const i32 id = mesh.node_id(sub.at_snake(s));
      MP_ASSERT(sub_of[static_cast<size_t>(id)] == -1,
                "overlapping subregions in tessellated routing");
      sub_of[static_cast<size_t>(id)] = static_cast<i32>(i);
    }
  }

  // Key by destination subregion; remember the true destination.
  for (i64 s = 0; s < region.size(); ++s) {
    for (Packet& p : mesh.buf(mesh.node_id(region.at_snake(s)))) {
      MP_REQUIRE(p.dest >= 0, "packet without destination");
      const i32 sub = sub_of[static_cast<size_t>(p.dest)];
      MP_REQUIRE(sub >= 0, "destination " << p.dest
                                          << " not covered by a subregion");
      p.key = static_cast<u64>(sub);
      p.stash = p.dest;
    }
  }

  // Sort by destination subregion and rank within it.
  out.sort_steps = sort_region(mesh, region, opts);
  out.rank_steps = rank_within_groups(mesh, region);

  // Stage A: rank i goes to node (i mod m) of the destination subregion —
  // the even spread that makes the second stage a (δ, l2)-problem.
  for (i64 s = 0; s < region.size(); ++s) {
    for (Packet& p : mesh.buf(mesh.node_id(region.at_snake(s)))) {
      const Region& sub = subs[static_cast<size_t>(p.key)];
      p.dest = mesh.node_at(sub, static_cast<i64>(p.rank) % sub.size());
    }
  }
  const RouteStats stage_a = route_greedy(mesh, region);
  out.max_queue = stage_a.max_queue;

  // Stage B: all subregions finish in parallel; charge the max.
  for (i64 s = 0; s < region.size(); ++s) {
    for (Packet& p : mesh.buf(mesh.node_id(region.at_snake(s)))) {
      p.dest = p.stash;
      p.stash = -1;
    }
  }
  ParallelCost stage_b;
  for (const Region& sub : subs) {
    const RouteStats rs = route_greedy(mesh, sub);
    stage_b.observe(rs.steps);
    out.max_queue = std::max(out.max_queue, rs.max_queue);
  }

  out.route_steps = stage_a.steps + stage_b.max();
  out.steps = out.sort_steps + out.rank_steps + out.route_steps;
  return out;
}

}  // namespace meshpram
