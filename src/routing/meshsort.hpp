// Deterministic k-k sorting on a rectangular submesh.
//
// The paper relies on mesh sorting/ranking in O(l1 * sqrt(n)) steps
// [KSS94, Kun93]. We implement block SHEARSORT: every node holds a fixed
// block of L = max-initial-load slots (padded with hole sentinels), blocks
// are kept locally sorted, and rows/columns run odd-even block transposition
// (a merge-split comparator per neighboring pair) in alternating passes:
//
//   repeat <= ceil(log2 rows) + 1 times:
//     sort all rows in snake direction   (cols rounds, L words per round)
//     sort all columns downward          (rows rounds, L words per round)
//   final row pass in snake direction
//
// Correctness follows from the 0-1 principle (every merge-split is a monotone
// block comparator). The step count is O(L * (rows + cols) * log rows) — a
// log factor above the cited bound; DESIGN.md §2.2 records this substitution.
// Hole sentinels (key = kHoleKey) sort to the tail of the snake, so real
// packets end up packed at the front of the snake order.
//
// SortMode::Simulated performs every merge-split for real, with early exit
// when a full pass makes no exchange, and charges the rounds actually
// executed. SortMode::Analytic produces the identical final placement but
// charges the full data-independent worst-case round count (the algorithm is
// oblivious, so this is exactly what a hardware run would cost without the
// early-exit wire); it exists so that large benches stay fast.
#pragma once

#include "mesh/machine.hpp"
#include "mesh/region.hpp"

namespace meshpram {

inline constexpr u64 kHoleKey = ~0ULL;

enum class SortMode { Simulated, Analytic };

struct SortOptions {
  SortMode mode = SortMode::Simulated;
};

/// Sorts all packets buffered in `region` by Packet::key (ties broken by
/// Packet::copy, then origin, for determinism) into snake order, packed at
/// the front. Returns the number of machine steps charged; the caller adds
/// them to the clock (possibly max-ed across parallel regions).
i64 sort_region(Mesh& mesh, const Region& region,
                const SortOptions& opts = {});

/// Worst-case step count of block shearsort on `region` with node capacity L
/// (the Analytic charge).
i64 shearsort_step_bound(const Region& region, i64 capacity);

/// Validation helper: true if the packets in `region` are in ascending key
/// order along the snake, packed at the front.
bool region_sorted(const Mesh& mesh, const Region& region);

}  // namespace meshpram
