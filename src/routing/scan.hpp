// Parallel prefix (scan) over the snake order of a submesh.
//
// Standard mesh prefix: (1) each node folds its local value, (2) a pipeline
// pass along each row accumulates row prefixes (cols steps), (3) a pipeline
// down the last column accumulates row offsets (rows steps), (4) a pass back
// along each row delivers the offsets (cols steps). Total
// (2*cols + rows) * words steps for an associative combine whose values fit
// in `words` machine words.
//
// Because the combine is associative, the parallel algorithm's result equals
// the sequential fold; we compute it directly and charge the parallel cost.
#pragma once

#include <vector>

#include "mesh/region.hpp"
#include "util/error.hpp"

namespace meshpram {

template <class T>
struct ScanResult {
  /// prefix[s] = fold of values at snake positions [0, s) — exclusive prefix.
  std::vector<T> prefix;
  i64 steps = 0;
};

/// Exclusive prefix scan of `values` (one per snake position of `region`)
/// under the associative `combine`, charging the mesh-parallel cost.
template <class T, class Combine>
ScanResult<T> scan_snake(const Region& region, const std::vector<T>& values,
                         T identity, Combine combine, i64 words = 1) {
  MP_REQUIRE(static_cast<i64>(values.size()) == region.size(),
             "scan over " << values.size() << " values on region of size "
                          << region.size());
  MP_REQUIRE(words >= 1, "scan word size " << words);
  ScanResult<T> out;
  out.prefix.reserve(values.size());
  T acc = identity;
  for (const T& v : values) {
    out.prefix.push_back(acc);
    acc = combine(acc, v);
  }
  out.steps = words * (2 * region.cols() + region.rows());
  return out;
}

}  // namespace meshpram
