// Serial fault-aware variant of the greedy XY kernel (DESIGN.md §10).
//
// route_greedy dispatches here when the mesh's fault plan affects routing
// (dead or stalled links, a positive drop rate). The kernel runs serial per
// region, so fault behaviour is a pure function of (plan, PRAM step, routing
// step) and bit-identical at any thread count; region-level parallelism
// (disjoint ownership) still applies above it.
//
// Fault handling per packet:
//   stall    — transient by definition (every stall window ends), so a packet
//              whose chosen link is stalled simply waits: step-tagged backoff
//              (retry next step, then exponential, capped at 8 steps), one
//              retry counted per blocked attempt. A stall never alters the
//              route decision — that keeps the maze the wall-follower below
//              perceives static.
//   detour   — dead links and the region boundary are permanent walls, and
//              the packet routes around them with the Pledge maze algorithm:
//              follow the XY gradient until a wall blocks it frontally, then
//              wall-follow (left hand on the wall: prefer left, straight,
//              right, U-turn) while summing signed quarter-turns; resume the
//              gradient once the turn counter returns to zero — or the packet
//              is closer to its destination than where it met the wall — and
//              the gradient direction is wall-free. Pledge provably escapes
//              any finite obstacle set in a static maze, so a reachable
//              destination is always reached; an unreachable one is caught
//              by the step cap and reported as FaultError.
//   drop     — a winner whose traversal the plan drops keeps its link slot
//              for the step (the corrupted word occupied the wire) but stays
//              queued; link-level ARQ retransmits it on a later step.
//
// No fault ever destroys an in-flight packet, so the access protocol's
// conservation assertions hold unchanged; a plan that walls a destination off
// completely is detected by the step cap and reported as FaultError rather
// than looping forever.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "mesh/arena.hpp"
#include "routing/greedy.hpp"
#include "routing/xy.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace meshpram::detail {

namespace {

const telemetry::Label kRouteFault = telemetry::intern("route.greedy.fault");

/// Step-tagged backoff: first two blocks retry next step, then exponential
/// capped at 8 steps.
i64 backoff_until(i64 step, i32 blocks) {
  if (blocks <= 2) return step + 1;
  return step + std::min<i64>(i64{1} << std::min<i32>(blocks - 2, 3), 8);
}

/// Dir is laid out clockwise (N=0 E=1 S=2 W=3): rotating right is +1.
Dir rot(Dir d, int quarter_turns_cw) {
  return static_cast<Dir>((static_cast<int>(d) + quarter_turns_cw) & 3);
}

/// Per-payload-handle fault state (stall backoff + Pledge wall-follower).
struct HandleState {
  i64 blocked_until = 0;  ///< packet waits while blocked_until > step
  i64 entry_rem = 0;      ///< Manhattan distance where the wall was met
  i32 turns = 0;          ///< signed quarter-turns since entering the wall
  i32 wall_steps = 0;     ///< hops spent on the current wall (safety net)
  i32 blocks = 0;         ///< consecutive blocked attempts (stall backoff)
  i32 heading = 0;        ///< Dir of the last hop while wall-following
  bool wall = false;      ///< currently wall-following
};

}  // namespace

void route_greedy_fault(Mesh& mesh, const Region& region, RouteArena& ar,
                        i64 in_flight, RouteStats& stats) {
  telemetry::Span span(telemetry::Cat::Fault, kRouteFault);
  const fault::FaultPlan& plan = *mesh.fault_plan();
  const i64 pram_now = mesh.fault_now();
  const bool count_congestion = telemetry::sampling_on();

  std::vector<HandleState> hs(ar.payload.size());
  const i64 mesh_cols = mesh.cols();
  const auto nid_of = [&](Coord x) {
    return static_cast<i32>(x.r * mesh_cols + x.c);
  };
  const i32 trace_dest = static_cast<i32>(
      env_i64("MESHPRAM_FAULT_TRACE", 0, mesh.size() - 1).value_or(-1));

  i64 retried = 0;
  i64 dropped = 0;
  i64 detoured = 0;
  i64 remaining = in_flight;
  i64 step = 0;
  // Generous cap: any reachable destination is reached long before this on a
  // connected survivor mesh (a Pledge traversal rounds each obstacle in at
  // most its perimeter of hops); hitting the cap means the plan walled a
  // packet in. The region-size term budgets worst-case wall traversals even
  // when only a handful of packets are in flight.
  const i64 step_cap = 64 * (region.rows() + region.cols()) +
                       16 * in_flight + 8 * region.size() + 256;
  // Safety net for the wall-follower: the boundary of any obstacle set fits
  // in 4*size directed wall edges, so a correct traversal never needs more
  // hops than that. A counter corrupted beyond it (possible only while stall
  // windows were rewriting the perceived maze) is discarded and the packet
  // restarts Pledge fresh — on the now-static maze the fresh run is correct.
  const i32 wall_reset = static_cast<i32>(4 * region.size() + 16);

  while (remaining > 0) {
    ++step;
    if (step > step_cap) {
      std::string detail;
      int listed = 0;
      for (i64 pos = 0; pos < region.size() && listed < 8; ++pos) {
        const i32 cnt = ar.count(pos);
        const TransitRec* q = ar.queue(pos);
        const Coord at = region.at_snake(pos);
        for (i32 i = 0; i < cnt && listed < 8; ++i, ++listed) {
          const i32 dest = nid_of(Coord{q[i].dest_r, q[i].dest_c});
          detail += "; packet at " + std::to_string(nid_of(at)) + " -> " +
                    std::to_string(dest) +
                    (plan.node_dead(dest) ? " (dest DEAD)" : "");
        }
      }
      throw fault::FaultError(
          "fault plan leaves " + std::to_string(remaining) +
          " packet(s) unroutable after " + std::to_string(step_cap) +
          " steps (" + plan.summary() + ")" + detail);
    }
    // --- forward sweep (serial, snake order) ---
    for (RegionCursor cur = RegionCursor(region, mesh.cols(), 0);
         cur.pos() < region.size(); cur.advance()) {
      const i64 pos = cur.pos();
      const i32 cnt = ar.count(pos);
      if (cnt == 0) continue;
      TransitRec* q = ar.queue(pos);
      const Coord at = cur.coord();
      const i32 id = cur.id();
      const bool at_dead = plan.node_dead(id);
      // A wall is permanent: the region boundary or a dead link. A packet
      // that the hardened sort network left at a DEAD node is the one
      // exception: the dead node's switch fabric keeps relaying (the same
      // model boundary that lets the systolic phases traverse it), so
      // resident words percolate outward — straight through a contiguous
      // dead cluster — until they exit into an alive node. The router never
      // hands a dead node new packets: its incident links are dead for
      // everyone routing from an alive node.
      const auto wall_at = [&](Dir c) {
        const Coord to = step_toward(at, c);
        if (!region.contains(to)) return true;
        if (at_dead) return false;  // dead fabric relays in every direction
        return plan.link_dead(id, c);
      };
      const auto pause_at = [&](Dir c) {
        return !at_dead && plan.link_stalled(id, c, pram_now, step);
      };
      std::array<i32, kNumDirs> best;
      best.fill(-1);
      std::array<i64, kNumDirs> best_dist{};
      std::array<bool, kNumDirs> best_wall{};
      std::array<bool, kNumDirs> best_enter{};
      std::array<i32, kNumDirs> best_turn{};
      for (i32 i = 0; i < cnt; ++i) {
        HandleState& st = hs[q[i].handle];
        if (st.blocked_until > step) continue;  // backing off
        Dir primary;
        MP_ASSERT(xy_next_dir(at, q[i].dest_r, q[i].dest_c, &primary),
                  "arrived packet still in transit");
        const i64 rem =
            std::abs(q[i].dest_r - at.r) + std::abs(q[i].dest_c - at.c);
        if (st.wall && st.wall_steps > wall_reset) {
          st.wall = false;  // corrupted traversal (see wall_reset): restart
          st.turns = 0;
          st.wall_steps = 0;
        }
        Dir use = primary;
        i32 turn_delta = 0;
        bool wall_move = false;
        bool enter = false;
        bool wait = false;
        bool found = false;
        const bool may_leave_wall =
            st.wall && (st.turns == 0 || rem < st.entry_rem) &&
            !wall_at(primary);
        if (!st.wall || may_leave_wall) {
          // Greedy: follow the XY gradient (re-joining it if the wall is
          // done). A committed greedy move clears all wall state.
          if (!wall_at(primary)) {
            if (pause_at(primary)) {
              wait = true;
            } else {
              found = true;
            }
          } else {
            // Frontal block: put the left hand on the wall ahead — rotate
            // right until a non-wall direction appears, counting each
            // quarter-turn. A cul-de-sac U-turns out at +2.
            enter = true;
            for (int k = 1; k <= 3 && !found && !wait; ++k) {
              const Dir c = rot(primary, k);
              if (wall_at(c)) continue;
              if (pause_at(c)) {
                wait = true;
              } else {
                use = c;
                turn_delta = k;
                wall_move = true;
                found = true;
              }
            }
            if (!found) wait = true;  // every link is a wall: wait (and let
                                      // the step cap report a walled-in
                                      // packet if none ever opens)
          }
        } else {
          // Wall traversal, left hand on the wall: prefer left, straight,
          // right, then U-turn, relative to the last hop's heading. The
          // first non-wall candidate IS the Pledge move; if that link is
          // stalled the packet waits for it rather than re-deciding, so the
          // traversal is a pure function of the dead-link maze.
          const Dir h = static_cast<Dir>(st.heading);
          const Dir cand[4] = {rot(h, 3), h, rot(h, 1), rot(h, 2)};
          const i32 delta[4] = {-1, 0, +1, +2};
          for (int k = 0; k < 4 && !found && !wait; ++k) {
            if (wall_at(cand[k])) continue;
            if (pause_at(cand[k])) {
              wait = true;
            } else {
              use = cand[k];
              turn_delta = delta[k];
              wall_move = true;
              found = true;
            }
          }
          if (!found) wait = true;
        }
        if (wait) {
          ++st.blocks;
          st.blocked_until = backoff_until(step, st.blocks);
          ++retried;
          if (count_congestion) mesh.counters().add_retries(id, 1);
          continue;
        }
        if (trace_dest >= 0 &&
            nid_of(Coord{q[i].dest_r, q[i].dest_c}) == trace_dest) {
          std::fprintf(stderr,
                       "[trace] step=%lld at=%d use=%d wall=%d enter=%d "
                       "turns=%d+%d rem=%lld entry_rem=%lld\n",
                       (long long)step, id, static_cast<int>(use),
                       static_cast<int>(st.wall || wall_move),
                       static_cast<int>(enter), st.turns, turn_delta,
                       (long long)rem, (long long)st.entry_rem);
        }
        const auto di = static_cast<size_t>(use);
        if (best[di] < 0 || rem > best_dist[di]) {
          best[di] = i;
          best_dist[di] = rem;
          best_wall[di] = wall_move;
          best_enter[di] = enter;
          best_turn[di] = turn_delta;
        }
      }
      i64 moves = 0;
      for (int di = 0; di < kNumDirs; ++di) {
        const i32 idx = best[static_cast<size_t>(di)];
        if (idx < 0) continue;
        if (plan.drop(id, static_cast<Dir>(di), pram_now, step)) {
          // Corrupted on the wire: the slot is spent, the packet stays
          // queued for retransmission.
          ++dropped;
          ++retried;
          if (count_congestion) mesh.counters().add_retries(id, 1);
          continue;
        }
        const TransitRec rec = q[idx];
        q[idx].handle = RouteArena::kInvalidHandle;
        // Moved: clear the backoff state and commit the wall-follower's
        // transition. Wall state only ever changes on an actual hop — a
        // packet that loses arbitration or gets dropped re-derives the same
        // decision next step, so the traversal stays consistent.
        HandleState& st = hs[rec.handle];
        st.blocked_until = 0;
        st.blocks = 0;
        if (best_wall[static_cast<size_t>(di)]) {
          if (best_enter[static_cast<size_t>(di)]) {
            st.wall = true;
            st.turns = best_turn[static_cast<size_t>(di)];
            st.wall_steps = 1;
            st.entry_rem = best_dist[static_cast<size_t>(di)];
          } else {
            st.turns += best_turn[static_cast<size_t>(di)];
            ++st.wall_steps;
          }
          st.heading = static_cast<i32>(di);
        } else {
          st.wall = false;
          st.turns = 0;
          st.wall_steps = 0;
        }
        const Coord to = step_toward(at, static_cast<Dir>(di));
        const i64 dpos = region.snake_of(to);
        ar.lane_rec(dpos, kLaneOfMove[di]) = rec;
        ar.lane_flags(dpos)[kLaneOfMove[di]] = 1;
        if (best_wall[static_cast<size_t>(di)]) ++detoured;
        ++moves;
      }
      if (moves > 0) {
        i32 w = 0;
        for (i32 i = 0; i < cnt; ++i) {
          if (q[i].handle != RouteArena::kInvalidHandle) q[w++] = q[i];
        }
        ar.count(pos) = w;
        if (count_congestion) mesh.counters().add_forwarded(id, moves);
      }
    }
    // --- absorb sweep (serial, snake order; grows in place) ---
    for (RegionCursor cur = RegionCursor(region, mesh.cols(), 0);
         cur.pos() < region.size(); cur.advance()) {
      const i64 pos = cur.pos();
      unsigned char* flags = ar.lane_flags(pos);
      u32 any;
      std::memcpy(&any, flags, sizeof(any));
      if (any == 0) continue;
      const Coord at = cur.coord();
      const bool east_row = ((at.r - region.r0()) & 1) == 0;
      const int* order = east_row ? kLaneOrderEast : kLaneOrderWest;
      const i32 id = cur.id();
      for (int oi = 0; oi < kNumDirs; ++oi) {
        const int lane = order[oi];
        if (!flags[lane]) continue;
        flags[lane] = 0;
        const TransitRec rec = ar.lane_rec(pos, lane);
        if (rec.dest_r == at.r && rec.dest_c == at.c) {
          mesh.buf(id).push_back(ar.payload[rec.handle]);
          --remaining;
        } else {
          if (ar.count(pos) == ar.cap()) ar.grow(ar.cap() * 2);
          ar.queue(pos)[ar.count(pos)++] = rec;
        }
      }
      const i64 logical = ar.count(pos);
      stats.max_queue = std::max(stats.max_queue, logical);
      if (count_congestion) mesh.counters().observe_queue(id, logical);
    }
  }

  stats.steps = step;
  stats.fault_retried = retried;
  stats.fault_dropped = dropped;
  stats.fault_detoured = detoured;
  FaultTally& tally = mesh.fault_tally();
  tally.retried.fetch_add(retried, std::memory_order_relaxed);
  tally.dropped.fetch_add(dropped, std::memory_order_relaxed);
  tally.detoured.fetch_add(detoured, std::memory_order_relaxed);
  span.set_steps(stats.steps);
}

}  // namespace meshpram::detail
