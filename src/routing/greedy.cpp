#include "routing/greedy.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <vector>

#include "util/error.hpp"

namespace meshpram {

namespace {

/// XY routing decision: east/west until the column matches, then north/south.
/// Returns false when the packet is at its destination.
bool next_dir(Coord at, Coord dest, Dir* out) {
  if (at.c < dest.c) {
    *out = Dir::East;
  } else if (at.c > dest.c) {
    *out = Dir::West;
  } else if (at.r < dest.r) {
    *out = Dir::South;
  } else if (at.r > dest.r) {
    *out = Dir::North;
  } else {
    return false;
  }
  return true;
}

}  // namespace

RouteStats route_greedy(Mesh& mesh, const Region& region) {
  RouteStats stats;

  // Transit queues, indexed by region snake position for density.
  const i64 m = region.size();
  std::vector<std::vector<Packet>> transit(static_cast<size_t>(m));
  std::vector<std::vector<Packet>> incoming(static_cast<size_t>(m));
  std::vector<i64> pos_of_node(static_cast<size_t>(mesh.size()), -1);
  i64 in_flight = 0;

  for (i64 s = 0; s < m; ++s) {
    const Coord x = region.at_snake(s);
    const i32 id = mesh.node_id(x);
    pos_of_node[static_cast<size_t>(id)] = s;
    auto& b = mesh.buf(id);
    for (Packet& p : b) {
      MP_REQUIRE(p.dest >= 0 && p.dest < mesh.size(),
                 "packet without destination");
      const Coord d = mesh.coord(p.dest);
      MP_REQUIRE(region.contains(d),
                 "destination " << d << " outside routing region " << region);
      ++stats.packets;
      stats.total_distance += manhattan(x, d);
      if (p.dest == id) continue;  // already home; stays in the buffer
    }
    // Move packets that still need to travel into the transit queue.
    auto& t = transit[static_cast<size_t>(s)];
    auto keep = b.begin();
    for (Packet& p : b) {
      if (p.dest == id) {
        *keep++ = p;
      } else {
        t.push_back(p);
        ++in_flight;
      }
    }
    b.erase(keep, b.end());
  }

  while (in_flight > 0) {
    ++stats.steps;
    // Each node forwards at most one packet per outgoing direction.
    for (i64 s = 0; s < m; ++s) {
      auto& t = transit[static_cast<size_t>(s)];
      if (t.empty()) continue;
      const Coord at = region.at_snake(s);
      // Best candidate per direction: farthest remaining distance first.
      std::array<int, kNumDirs> best;
      best.fill(-1);
      std::array<i64, kNumDirs> best_dist{};
      for (size_t i = 0; i < t.size(); ++i) {
        Dir dir;
        const Coord dest = mesh.coord(t[i].dest);
        MP_ASSERT(next_dir(at, dest, &dir), "arrived packet still in transit");
        const i64 rem = manhattan(at, dest);
        const auto di = static_cast<size_t>(dir);
        if (best[di] < 0 || rem > best_dist[di]) {
          best[di] = static_cast<int>(i);
          best_dist[di] = rem;
        }
      }
      // Commit the chosen moves (remove from higher index first).
      std::array<int, kNumDirs> chosen = best;
      std::sort(chosen.begin(), chosen.end(), std::greater<int>());
      for (int idx : chosen) {
        if (idx < 0) continue;
        Packet p = t[static_cast<size_t>(idx)];
        t.erase(t.begin() + idx);
        Dir dir;
        next_dir(at, mesh.coord(p.dest), &dir);
        const Coord to = step_toward(at, dir);
        MP_ASSERT(region.contains(to), "XY routing left the region");
        incoming[static_cast<size_t>(region.snake_of(to))].push_back(p);
      }
    }
    // Absorb arrivals: deliver or queue for the next cycle.
    for (i64 s = 0; s < m; ++s) {
      auto& in = incoming[static_cast<size_t>(s)];
      if (in.empty()) continue;
      const i32 id = mesh.node_id(region.at_snake(s));
      auto& t = transit[static_cast<size_t>(s)];
      for (Packet& p : in) {
        if (p.dest == id) {
          mesh.buf(id).push_back(p);
          --in_flight;
        } else {
          t.push_back(p);
        }
      }
      in.clear();
      stats.max_queue =
          std::max(stats.max_queue, static_cast<i64>(t.size()));
    }
  }
  return stats;
}

}  // namespace meshpram
