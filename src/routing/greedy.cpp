#include "routing/greedy.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

const telemetry::Label kRouteGreedy = telemetry::intern("route.greedy");

/// XY routing decision: east/west until the column matches, then north/south.
/// Returns false when the packet is at its destination.
bool next_dir(Coord at, Coord dest, Dir* out) {
  if (at.c < dest.c) {
    *out = Dir::East;
  } else if (at.c > dest.c) {
    *out = Dir::West;
  } else if (at.r < dest.r) {
    *out = Dir::South;
  } else if (at.r > dest.r) {
    *out = Dir::North;
  } else {
    return false;
  }
  return true;
}

/// A packet in transit with its destination coordinate cached, so the
/// per-step loops stop re-deriving it from the node id (a div/mod per
/// packet per step adds up: route_greedy is the simulator's hottest loop).
struct Transit {
  Packet packet;
  Coord dest;
};

}  // namespace

RouteStats route_greedy(Mesh& mesh, const Region& region) {
  telemetry::Span span(telemetry::Cat::Phase, kRouteGreedy);
  // Per-node congestion counters are hot-loop writes; hoist the gate. The
  // region owner is the only writer of its nodes' cells (disjoint-region
  // rule), so the counter grids stay thread-count invariant.
  const bool count_congestion = telemetry::sampling_on();
  RouteStats stats;

  // Transit queues, indexed by region snake position for density. The step
  // loops walk the region with a RegionCursor (O(1) advance); an explicit
  // active-position list was tried and lost — the protocol's instances keep
  // most nodes busy, so the empty-queue checks are cheaper than keeping a
  // sorted work list.
  const i64 m = region.size();
  std::vector<std::vector<Transit>> transit(static_cast<size_t>(m));
  std::vector<std::vector<Transit>> incoming(static_cast<size_t>(m));
  i64 in_flight = 0;

  for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
    const Coord x = cur.coord();
    const i32 id = cur.id();
    auto& b = mesh.buf(id);
    auto& t = transit[static_cast<size_t>(cur.pos())];
    auto keep = b.begin();
    for (Packet& p : b) {
      MP_REQUIRE(p.dest >= 0 && p.dest < mesh.size(),
                 "packet without destination");
      const Coord d = mesh.coord(p.dest);
      MP_REQUIRE(region.contains(d),
                 "destination " << d << " outside routing region " << region);
      ++stats.packets;
      stats.total_distance += manhattan(x, d);
      if (p.dest == id) {
        *keep++ = p;  // already home; stays in the buffer
      } else {
        t.push_back(Transit{p, d});
        ++in_flight;
      }
    }
    b.erase(keep, b.end());
  }

  while (in_flight > 0) {
    ++stats.steps;
    // Each node forwards at most one packet per outgoing direction.
    for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
      auto& t = transit[static_cast<size_t>(cur.pos())];
      if (t.empty()) continue;
      const Coord at = cur.coord();
      // Best candidate per direction: farthest remaining distance first.
      std::array<int, kNumDirs> best;
      best.fill(-1);
      std::array<i64, kNumDirs> best_dist{};
      for (size_t i = 0; i < t.size(); ++i) {
        Dir dir;
        MP_ASSERT(next_dir(at, t[i].dest, &dir),
                  "arrived packet still in transit");
        const i64 rem = manhattan(at, t[i].dest);
        const auto di = static_cast<size_t>(dir);
        if (best[di] < 0 || rem > best_dist[di]) {
          best[di] = static_cast<int>(i);
          best_dist[di] = rem;
        }
      }
      // Commit the chosen moves (remove from higher index first).
      std::array<int, kNumDirs> chosen = best;
      std::sort(chosen.begin(), chosen.end(), std::greater<int>());
      i64 moves = 0;
      for (int idx : chosen) {
        if (idx < 0) continue;
        Transit tp = t[static_cast<size_t>(idx)];
        t.erase(t.begin() + idx);
        Dir dir;
        next_dir(at, tp.dest, &dir);
        const Coord to = step_toward(at, dir);
        MP_ASSERT(region.contains(to), "XY routing left the region");
        incoming[static_cast<size_t>(region.snake_of(to))].push_back(tp);
        ++moves;
      }
      if (count_congestion && moves > 0) {
        mesh.counters().add_forwarded(cur.id(), moves);
      }
    }
    // Absorb arrivals: deliver or queue for the next cycle.
    for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
      auto& in = incoming[static_cast<size_t>(cur.pos())];
      if (in.empty()) continue;
      const i32 id = cur.id();
      auto& t = transit[static_cast<size_t>(cur.pos())];
      for (Transit& tp : in) {
        if (tp.packet.dest == id) {
          mesh.buf(id).push_back(tp.packet);
          --in_flight;
        } else {
          t.push_back(tp);
        }
      }
      in.clear();
      stats.max_queue = std::max(stats.max_queue, static_cast<i64>(t.size()));
      if (count_congestion) {
        mesh.counters().observe_queue(id, static_cast<i64>(t.size()));
      }
    }
  }
  span.set_steps(stats.steps);
  return stats;
}

}  // namespace meshpram
