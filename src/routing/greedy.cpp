#include "routing/greedy.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "mesh/arena.hpp"
#include "mesh/parallel.hpp"
#include "routing/xy.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

namespace {

/// Queues at most this deep scan into stack buffers instead of the heap
/// scratch — routing queues are mostly a handful of records.
constexpr i32 kSmallScan = 32;

/// Per-worker scratch for the vectorized candidate scan (direction + distance
/// of every queued record at once). thread_local: both the serial router and
/// each stripe worker scan one node at a time.
struct ScanScratch {
  std::vector<unsigned char> dir;
  std::vector<u16> rem;

  void fit(i32 n) {
    if (dir.size() < static_cast<size_t>(n)) {
      dir.resize(static_cast<size_t>(n));
      rem.resize(static_cast<size_t>(n));
    }
  }
};

ScanScratch& scan_scratch() {
  static thread_local ScanScratch s;
  return s;
}

const telemetry::Label kRouteGreedy = telemetry::intern("route.greedy");
const telemetry::Label kRouteStripe = telemetry::intern("route.stripe");

/// Extra queue capacity beyond the setup max depth (set_route_initial_headroom).
i64 g_route_headroom = 2;

/// Padded per-stripe accumulators: delivered is summed by every rank after
/// each step (all ranks compute the same total), max_queue is merged by the
/// caller after the join.
struct alignas(64) RankSlot {
  i64 delivered = 0;
  i64 max_queue = 0;
  i64 steps = 0;
};

struct Stripe {
  i64 pos_begin = 0;
  i64 pos_end = 0;
};

/// State shared by one route call's stripe team.
struct RouteShared {
  Mesh& mesh;
  const Region& region;
  RouteArena& ar;
  bool count_congestion;
  int team;
  i64 in_flight0 = 0;
  std::vector<Stripe> stripes;
  std::vector<RankSlot> slots;
  // Per-rank overflow spills (pos, rec), merged by rank 0 under the third
  // barrier of a step. Spilling instead of growing in place: a stripe worker
  // may not resize the shared queue slab while others read it.
  std::vector<std::vector<std::pair<i64, TransitRec>>> spills;
  // Step number (1-based) of the most recent overflow. Written by spillers
  // before the absorb barrier, compared against the (identical) local step
  // counter by every rank after it — no reset, so there is no window where
  // ranks can disagree about whether a grow round happens.
  std::atomic<i64> overflow_step{0};
  SpinBarrier barrier;

  RouteShared(Mesh& mesh_, const Region& region_, RouteArena& ar_,
              bool count_congestion_, int team_)
      : mesh(mesh_),
        region(region_),
        ar(ar_),
        count_congestion(count_congestion_),
        team(team_),
        stripes(static_cast<size_t>(team_)),
        slots(static_cast<size_t>(team_)),
        spills(static_cast<size_t>(team_)),
        barrier(team_) {}
};

/// Forward sweep over one stripe: each node sends its best candidate per
/// outgoing direction (farthest remaining distance first, first occurrence in
/// queue order breaking ties — identical to the serial scan). Chosen records
/// are tombstoned and compacted in one pass (mark-and-compact), preserving
/// the queue order of survivors; deposits go into the destination's incoming
/// lane, which may belong to a neighboring stripe (single writer per lane).
void forward_sweep(RouteShared& sh, int rank) {
  RouteArena& ar = sh.ar;
  const Region& region = sh.region;
  const Stripe s = sh.stripes[static_cast<size_t>(rank)];
  ScanScratch& sc = scan_scratch();
  unsigned char dir_buf[kSmallScan];
  u16 rem_buf[kSmallScan];
  RegionCursor cur(region, sh.mesh.cols(), s.pos_begin);
  for (; cur.pos() < s.pos_end; cur.advance()) {
    const i64 pos = cur.pos();
    const i32 cnt = ar.count(pos);
    if (cnt == 0) continue;
    TransitRec* q = ar.queue(pos);
    const Coord at = cur.coord();
    // Vectorized scan: direction and remaining distance of every queued
    // record (the kernel mirrors xy_next_dir's east/west-then-south/north
    // priority); the argmax keeps the scalar first-occurrence tie-break.
    // Shallow queues (the common case) use stack buffers over the heap
    // scratch.
    unsigned char* dirs = dir_buf;
    u16* rems = rem_buf;
    if (cnt > kSmallScan) {
      sc.fit(cnt);
      dirs = sc.dir.data();
      rems = sc.rem.data();
    }
    simd::transit_scan(q, cnt, static_cast<i16>(at.r), static_cast<i16>(at.c),
                       dirs, rems);
    std::array<i32, kNumDirs> best;
    best.fill(-1);
    std::array<i64, kNumDirs> best_dist{};
    for (i32 i = 0; i < cnt; ++i) {
      const i64 rem = rems[i];
      MP_ASSERT(rem > 0, "arrived packet still in transit");
      const auto di = static_cast<size_t>(dirs[i]);
      if (best[di] < 0 || rem > best_dist[di]) {
        best[di] = i;
        best_dist[di] = rem;
      }
    }
    i64 moves = 0;
    for (int di = 0; di < kNumDirs; ++di) {
      const i32 idx = best[static_cast<size_t>(di)];
      if (idx < 0) continue;
      const TransitRec rec = q[idx];
      q[idx].handle = RouteArena::kInvalidHandle;
      const Coord to = step_toward(at, static_cast<Dir>(di));
      MP_ASSERT(region.contains(to), "XY routing left the region");
      const i64 dpos = region.snake_of(to);
      ar.lane_rec(dpos, kLaneOfMove[di]) = rec;
      ar.lane_flags(dpos)[kLaneOfMove[di]] = 1;
      ++moves;
    }
    if (moves > 0) {
      i32 w = 0;
      for (i32 i = 0; i < cnt; ++i) {
        if (q[i].handle != RouteArena::kInvalidHandle) q[w++] = q[i];
      }
      ar.count(pos) = w;
      if (sh.count_congestion) {
        sh.mesh.counters().add_forwarded(cur.id(), moves);
      }
    }
  }
}

/// Absorb sweep over one stripe: consume the node's incoming lanes in
/// canonical order, delivering home packets to the mesh buffer and appending
/// the rest to the transit queue. A full queue grows in place when the team
/// is serial; a stripe worker spills instead and flags a grow round.
void absorb_sweep(RouteShared& sh, int rank, i64 step) {
  RouteArena& ar = sh.ar;
  const Region& region = sh.region;
  const Stripe s = sh.stripes[static_cast<size_t>(rank)];
  RankSlot& slot = sh.slots[static_cast<size_t>(rank)];
  i64 delivered = 0;
  i64 max_q = slot.max_queue;
  RegionCursor cur(region, sh.mesh.cols(), s.pos_begin);
  for (; cur.pos() < s.pos_end; cur.advance()) {
    const i64 pos = cur.pos();
    unsigned char* flags = ar.lane_flags(pos);
    u32 any;
    std::memcpy(&any, flags, sizeof(any));
    if (any == 0) continue;
    const Coord at = cur.coord();
    const bool east_row = ((at.r - region.r0()) & 1) == 0;
    const int* order = east_row ? kLaneOrderEast : kLaneOrderWest;
    const i32 id = cur.id();
    i64 spilled = 0;
    for (int oi = 0; oi < kNumDirs; ++oi) {
      const int lane = order[oi];
      if (!flags[lane]) continue;
      flags[lane] = 0;
      const TransitRec rec = ar.lane_rec(pos, lane);
      if (rec.dest_r == at.r && rec.dest_c == at.c) {
        sh.mesh.buf(id).push_back(ar.payload[rec.handle]);
        ++delivered;
      } else if (ar.count(pos) < ar.cap()) {
        ar.queue(pos)[ar.count(pos)++] = rec;
      } else if (sh.team == 1) {
        ar.grow(ar.cap() * 2);
        ar.queue(pos)[ar.count(pos)++] = rec;
      } else {
        sh.spills[static_cast<size_t>(rank)].emplace_back(pos, rec);
        ++spilled;
        sh.overflow_step.store(step, std::memory_order_relaxed);
      }
    }
    // Logical queue depth includes spilled records; observed only at nodes
    // that received arrivals this step, exactly like the serial path.
    const i64 logical = ar.count(pos) + spilled;
    max_q = std::max(max_q, logical);
    if (sh.count_congestion) sh.mesh.counters().observe_queue(id, logical);
  }
  slot.delivered += delivered;
  slot.max_queue = max_q;
}

/// Grow round (rank 0, under the third barrier): doubling always fits the
/// spills, since at most kNumDirs arrivals spill per node per step and
/// cap >= kNumDirs. A node's spills all come from its owner in canonical lane
/// order, so appending rank-by-rank preserves the serial append order.
void merge_spills(RouteShared& sh) {
  RouteArena& ar = sh.ar;
  ar.grow(ar.cap() * 2);
  for (auto& ranks : sh.spills) {
    for (const auto& [pos, rec] : ranks) {
      ar.queue(pos)[ar.count(pos)++] = rec;
    }
    ranks.clear();
  }
}

void route_stripe_worker(RouteShared& sh, int rank) {
  i64 steps = 0;
  i64 in_flight = sh.in_flight0;
  while (in_flight > 0) {
    ++steps;
    forward_sweep(sh, rank);
    if (!sh.barrier.wait()) return;
    absorb_sweep(sh, rank, steps);
    if (!sh.barrier.wait()) return;
    if (sh.overflow_step.load(std::memory_order_relaxed) == steps) {
      if (rank == 0) merge_spills(sh);
      if (!sh.barrier.wait()) return;
    }
    in_flight = sh.in_flight0;
    for (const RankSlot& slot : sh.slots) in_flight -= slot.delivered;
  }
  sh.slots[static_cast<size_t>(rank)].steps = steps;
}

/// Serial variant of the step loop driven by active lists instead of full
/// region sweeps: `frontier` holds the nodes with queued packets, `arrivals`
/// the nodes deposited into this step, so a step costs O(active), not
/// O(region) — the tail of a route call touches a shrinking set of nodes.
/// Bit-identical to the sweeps: a step's moves depend only on per-node state,
/// never on the order nodes are visited (each lane has one writer, each
/// buffer one owner, and the counters are per-node).
void route_serial(RouteShared& sh) {
  RouteArena& ar = sh.ar;
  const Region& region = sh.region;
  RankSlot& slot = sh.slots[0];
  const int cols = sh.mesh.cols();
  const i64 rcols = region.cols();

  // Seed: rewrite each queued record's coordinate fields from the absolute
  // destination to the remaining (dr, dc) offset. route_serial owns the
  // arena until every queue drains, so nothing else sees the relative
  // encoding; it makes a record's direction and distance two register-width
  // reads that update incrementally per hop instead of a rescan every step.
  // The caller recorded the nodes with queued packets while it split the
  // buffers, so seeding costs O(active), not an O(region) sweep.
  for (const ActiveNode& an : ar.frontier) {
    const i64 s = ar.slot_of(an.pos);
    const i32 cnt = ar.count_at(s);
    TransitRec* q = ar.queue_at(s);
    for (i32 i = 0; i < cnt; ++i) {
      q[i].dest_r = static_cast<i16>(q[i].dest_r - an.r);
      q[i].dest_c = static_cast<i16>(q[i].dest_c - an.c);
      MP_ASSERT(q[i].dest_r != 0 || q[i].dest_c != 0,
                "arrived packet still in transit");
    }
    ar.in_frontier[static_cast<size_t>(an.pos)] = 1;
  }

  i64 steps = 0;
  i64 in_flight = sh.in_flight0;
  while (in_flight > 0) {
    ++steps;
    // Forward: best candidate per direction from every active node — the
    // argmax derives (dir, rem) from the stored offsets in registers.
    for (const ActiveNode& an : ar.frontier) {
      const i64 pos = an.pos;
      const i64 s = ar.slot_of(pos);
      const i32 cnt = ar.count_at(s);
      TransitRec* q = ar.queue_at(s);
      std::array<i32, kNumDirs> best;
      best.fill(-1);
      std::array<i32, kNumDirs> best_dist{};
      for (i32 i = 0; i < cnt; ++i) {
        const int dr = q[i].dest_r;
        const int dc = q[i].dest_c;
        // Same decision table as simd::transit_scan: column first (XY).
        const size_t di = dc > 0 ? 1u : dc < 0 ? 3u : dr > 0 ? 2u : 0u;
        const i32 rem = (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
        if (best[di] < 0 || rem > best_dist[di]) {
          best[di] = i;
          best_dist[di] = rem;
        }
      }
      i64 moves = 0;
      const i64 rr = an.r - region.r0();
      const bool east_row = (rr & 1) == 0;
      for (int di = 0; di < kNumDirs; ++di) {
        const i32 idx = best[static_cast<size_t>(di)];
        if (idx < 0) continue;
        TransitRec rec = q[idx];
        q[idx].handle = RouteArena::kInvalidHandle;
        const Coord to = step_toward({an.r, an.c}, static_cast<Dir>(di));
        MP_ASSERT(region.contains(to), "XY routing left the region");
        // Neighbour's snake position without the general snake_of: lateral
        // moves step by one (sign flips on odd rows), vertical moves land on
        // the mirrored offset of the adjacent row.
        i64 dpos;
        if (di == 1) {
          dpos = east_row ? pos + 1 : pos - 1;  // East
        } else if (di == 3) {
          dpos = east_row ? pos - 1 : pos + 1;  // West
        } else if (di == 2) {
          dpos = 2 * (rr + 1) * rcols - 1 - pos;  // South
        } else {
          dpos = 2 * rr * rcols - 1 - pos;  // North
        }
        MP_ASSERT(dpos == region.snake_of(to), "snake arithmetic mismatch");
        // Account for the hop the record is about to take.
        if (di == 1) {
          --rec.dest_c;
        } else if (di == 3) {
          ++rec.dest_c;
        } else if (di == 2) {
          --rec.dest_r;
        } else {
          ++rec.dest_r;
        }
        const i64 ds = ar.slot_of(dpos);
        ar.lane_rec_at(ds, kLaneOfMove[di]) = rec;
        ar.lane_flags_at(ds)[kLaneOfMove[di]] = 1;
        if (!ar.arrival_mark[static_cast<size_t>(dpos)]) {
          ar.arrival_mark[static_cast<size_t>(dpos)] = 1;
          ar.arrivals.push_back({static_cast<i32>(dpos),
                                 static_cast<i16>(to.r),
                                 static_cast<i16>(to.c)});
        }
        ++moves;
      }
      if (moves > 0) {
        i32 w = 0;
        for (i32 i = 0; i < cnt; ++i) {
          if (q[i].handle != RouteArena::kInvalidHandle) q[w++] = q[i];
        }
        ar.count_at(s) = w;
        if (sh.count_congestion) {
          sh.mesh.counters().add_forwarded(an.r * cols + an.c, moves);
        }
      }
    }
    // Absorb: only nodes that received a deposit have work.
    i64 delivered = 0;
    for (const ActiveNode& an : ar.arrivals) {
      const i64 s = ar.slot_of(an.pos);
      unsigned char* flags = ar.lane_flags_at(s);
      const Coord at{an.r, an.c};
      const bool east_row = ((at.r - region.r0()) & 1) == 0;
      const int* order = east_row ? kLaneOrderEast : kLaneOrderWest;
      for (int oi = 0; oi < kNumDirs; ++oi) {
        const int lane = order[oi];
        if (!flags[lane]) continue;
        flags[lane] = 0;
        const TransitRec rec = ar.lane_rec_at(s, lane);
        if (rec.dest_r == 0 && rec.dest_c == 0) {
          sh.mesh.buf(at.r * cols + at.c).push_back(ar.payload[rec.handle]);
          ++delivered;
        } else {
          // The offset was updated at the sender; requeue verbatim.
          if (ar.count_at(s) >= ar.cap()) ar.grow(ar.cap() * 2);
          ar.queue_at(s)[ar.count_at(s)++] = rec;
        }
      }
      const i64 logical = ar.count_at(s);
      slot.max_queue = std::max(slot.max_queue, logical);
      if (sh.count_congestion) {
        sh.mesh.counters().observe_queue(at.r * cols + at.c, logical);
      }
    }
    // Next frontier: survivors of the old one plus arrivals that queued.
    ar.frontier_next.clear();
    for (const ActiveNode& an : ar.frontier) {
      if (ar.count(an.pos) > 0) {
        ar.frontier_next.push_back(an);
      } else {
        ar.in_frontier[static_cast<size_t>(an.pos)] = 0;
      }
    }
    for (const ActiveNode& an : ar.arrivals) {
      ar.arrival_mark[static_cast<size_t>(an.pos)] = 0;
      if (ar.count(an.pos) > 0 &&
          !ar.in_frontier[static_cast<size_t>(an.pos)]) {
        ar.in_frontier[static_cast<size_t>(an.pos)] = 1;
        ar.frontier_next.push_back(an);
      }
    }
    ar.arrivals.clear();
    ar.frontier.swap(ar.frontier_next);
    slot.delivered += delivered;
    in_flight -= delivered;
  }
  slot.steps = steps;
}

}  // namespace

void set_route_initial_headroom(i64 slots) {
  MP_REQUIRE(slots >= 0, "route headroom " << slots);
  g_route_headroom = slots;
}

i64 route_initial_headroom() { return g_route_headroom; }

RouteStats route_greedy(Mesh& mesh, const Region& region) {
  telemetry::Span span(telemetry::Cat::Phase, kRouteGreedy);
  // Per-node congestion counters are hot-loop writes; hoist the gate. Each
  // node's cells are written by exactly one stripe worker (sources count
  // forwards, receivers observe queues, and both are node-owned), so the
  // counter grids stay thread-count invariant.
  const bool count_congestion = telemetry::sampling_on();
  RouteStats stats;

  const i64 m = region.size();
  RouteArena* const arena = mesh.route_arenas().acquire();
  struct Lease {
    Mesh& mesh;
    RouteArena* arena;
    ~Lease() { mesh.route_arenas().release(arena); }
  } lease{mesh, arena};
  RouteArena& ar = *arena;
  ar.reset(region, mesh.order().kind());

  // Serial setup on the calling thread: split each buffer into home packets
  // (kept in place) and in-transit payload, recording 8-byte transit records
  // in snake order and per-node queue depths for the slab layout.
  MP_REQUIRE(mesh.rows() <= 32767 && mesh.cols() <= 32767,
             "mesh too large for 16-bit transit coordinates");
  i64 in_flight = 0;
  i64 max_depth = 0;
  ar.frontier.clear();  // nodes with queued packets, recorded in snake order
  for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
    const Coord x = cur.coord();
    const i32 id = cur.id();
    auto& b = mesh.buf(id);
    auto keep = b.begin();
    for (Packet& p : b) {
      MP_REQUIRE(p.dest >= 0 && p.dest < mesh.size(),
                 "packet without destination");
      const Coord d = mesh.coord(p.dest);
      MP_REQUIRE(region.contains(d),
                 "destination " << d << " outside routing region " << region);
      ++stats.packets;
      stats.total_distance += manhattan(x, d);
      if (p.dest == id) {
        *keep++ = p;  // already home; stays in the buffer
      } else {
        ar.setup_rec.push_back(TransitRec{static_cast<u32>(ar.payload.size()),
                                          static_cast<i16>(d.r),
                                          static_cast<i16>(d.c)});
        ar.setup_pos.push_back(cur.pos());
        ar.payload.push_back(p);
        const i32 depth = ++ar.count(cur.pos());
        if (depth == 1) {
          ar.frontier.push_back({static_cast<i32>(cur.pos()),
                                 static_cast<i16>(x.r),
                                 static_cast<i16>(x.c)});
        }
        max_depth = std::max<i64>(max_depth, depth);
        ++in_flight;
      }
    }
    b.erase(keep, b.end());
  }

  if (in_flight > 0) {
    // Initial capacity with headroom so the first arrivals don't force an
    // immediate grow; doubling takes over from there. Only the nodes in the
    // active list hold a nonzero count, so the post-layout re-zero before the
    // scatter touches O(active) nodes, not O(region).
    ar.layout(std::max<i64>(kNumDirs, max_depth + g_route_headroom));
    for (const ActiveNode& an : ar.frontier) ar.count(an.pos) = 0;
    for (size_t i = 0; i < ar.setup_rec.size(); ++i) {
      const i64 pos = ar.setup_pos[i];
      ar.queue(pos)[ar.count(pos)++] = ar.setup_rec[i];
    }

    // Fault plans that touch routing divert to the serial fault-aware kernel
    // (stall backoff, detours, drop retransmission). Module-only plans — and
    // no plan at all — keep the fast path below, so their step counts stay
    // bit-identical to the fault-free run.
    const fault::FaultPlan* plan = mesh.fault_plan();
    if (plan != nullptr && plan->affects_routing()) {
      detail::route_greedy_fault(mesh, region, ar, in_flight, stats);
      span.set_steps(stats.steps);
      return stats;
    }

    // Stripe team: contiguous row bands, one pool thread each. Serial when
    // the caller is itself a pool worker (the region loops already use every
    // thread, and the pool is not reentrant) or the region is small.
    int team = 1;
    if (!in_parallel_worker() && execution_threads() > 1 &&
        m >= stripe_min_nodes()) {
      team = static_cast<int>(
          std::min<i64>(execution_threads(), region.rows()));
    }
    RouteShared sh(mesh, region, ar, count_congestion, team);
    sh.in_flight0 = in_flight;
    const i64 base = region.rows() / team;
    const i64 extra = region.rows() % team;
    i64 row = 0;
    for (int t = 0; t < team; ++t) {
      const i64 nrows = base + (t < extra ? 1 : 0);
      sh.stripes[static_cast<size_t>(t)] = {row * region.cols(),
                                            (row + nrows) * region.cols()};
      row += nrows;
    }
    if (team == 1) {
      route_serial(sh);
    } else {
      execution_pool().for_each_index(team, [&sh](i64 rank) {
        telemetry::Span worker(telemetry::Cat::Region, kRouteStripe, rank);
        try {
          route_stripe_worker(sh, static_cast<int>(rank));
        } catch (...) {
          sh.barrier.kill();  // release the team before unwinding
          throw;
        }
        worker.set_steps(sh.slots[static_cast<size_t>(rank)].steps);
      });
    }
    stats.steps = sh.slots[0].steps;
    for (const RankSlot& slot : sh.slots) {
      MP_ASSERT(slot.steps == stats.steps, "stripe team diverged");
      stats.max_queue = std::max(stats.max_queue, slot.max_queue);
    }
  }
  span.set_steps(stats.steps);
  return stats;
}

}  // namespace meshpram
