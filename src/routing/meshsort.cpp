#include "routing/meshsort.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

/// Strict total order: key first, then enough fields to make the order (and
/// therefore the sorted layout) canonical regardless of execution order.
bool packet_less(const Packet& a, const Packet& b) {
  return std::tie(a.key, a.copy, a.var, a.origin, a.op, a.value) <
         std::tie(b.key, b.copy, b.var, b.origin, b.op, b.value);
}

Packet make_hole() {
  Packet p;
  p.key = kHoleKey;
  return p;
}

bool is_hole(const Packet& p) { return p.key == kHoleKey; }

/// Working state: grid of fixed-capacity sorted blocks, local (row, col).
class BlockGrid {
 public:
  BlockGrid(Mesh& mesh, const Region& region)
      : mesh_(mesh), region_(region), rows_(region.rows()),
        cols_(region.cols()) {
    cap_ = std::max<i64>(1, mesh.max_load(region));
    grid_.resize(static_cast<size_t>(rows_ * cols_));
    scratch_.reserve(static_cast<size_t>(2 * cap_));
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        auto& blk = at(r, c);
        auto& b = mesh.buf(mesh.node_id({region.r0() + r, region.c0() + c}));
        for (const Packet& p : b) {
          MP_REQUIRE(p.key != kHoleKey, "packet key collides with sentinel");
        }
        // Steal the node buffer instead of copying it; flush() hands the
        // (still reserved) storage back, per machine.hpp's reuse contract.
        blk = std::move(b);
        b.clear();
        blk.resize(static_cast<size_t>(cap_), make_hole());
        std::sort(blk.begin(), blk.end(), packet_less);
      }
    }
  }

  i64 capacity() const { return cap_; }

  std::vector<Packet>& at(int r, int c) {
    return grid_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  /// Merge-split comparator: after the call, `small` holds the cap smallest
  /// of the union and `large` the cap largest. Returns true if anything
  /// changed (used for early exit).
  bool merge_split(std::vector<Packet>& small, std::vector<Packet>& large) {
    // Fast path: already in order (last of small <= first of large).
    if (!packet_less(large.front(), small.back())) return false;
    scratch_.clear();
    std::merge(small.begin(), small.end(), large.begin(), large.end(),
               std::back_inserter(scratch_), packet_less);
    std::copy(scratch_.begin(), scratch_.begin() + small.size(),
              small.begin());
    std::copy(scratch_.begin() + static_cast<std::ptrdiff_t>(small.size()),
              scratch_.end(), large.begin());
    return true;
  }

  /// One odd-even round over all rows, pairing columns (c, c+1) with
  /// c % 2 == parity. Direction follows the snake: even local rows ascend
  /// west->east, odd rows east->west. Returns true if anything changed.
  bool row_round(int parity) {
    bool changed = false;
    for (int r = 0; r < rows_; ++r) {
      const bool ascending = (r % 2 == 0);
      for (int c = parity; c + 1 < cols_; c += 2) {
        auto& left = at(r, c);
        auto& right = at(r, c + 1);
        changed |= ascending ? merge_split(left, right)
                             : merge_split(right, left);
      }
    }
    return changed;
  }

  /// One odd-even round over all columns (top block keeps the smaller keys).
  bool col_round(int parity) {
    bool changed = false;
    for (int c = 0; c < cols_; ++c) {
      for (int r = parity; r + 1 < rows_; r += 2) {
        changed |= merge_split(at(r, c), at(r + 1, c));
      }
    }
    return changed;
  }

  /// Full odd-even transposition pass along rows; returns rounds executed.
  i64 row_pass(bool* changed_any) {
    i64 rounds = 0;
    int quiet = 0;
    for (int t = 0; t < cols_ && quiet < 2; ++t) {
      const bool ch = row_round(t % 2);
      ++rounds;
      quiet = ch ? 0 : quiet + 1;
      *changed_any |= ch;
    }
    return rounds;
  }

  i64 col_pass(bool* changed_any) {
    i64 rounds = 0;
    int quiet = 0;
    for (int t = 0; t < rows_ && quiet < 2; ++t) {
      const bool ch = col_round(t % 2);
      ++rounds;
      quiet = ch ? 0 : quiet + 1;
      *changed_any |= ch;
    }
    return rounds;
  }

  bool snake_sorted() const {
    const Packet* prev = nullptr;
    for (RegionCursor cur(region_); cur.valid(); cur.advance()) {
      const Coord x = cur.coord();
      const auto& blk =
          grid_[static_cast<size_t>(x.r - region_.r0()) *
                    static_cast<size_t>(cols_) +
                static_cast<size_t>(x.c - region_.c0())];
      for (const Packet& p : blk) {
        if (prev != nullptr && packet_less(p, *prev)) return false;
        prev = &p;
      }
    }
    return true;
  }

  /// Writes blocks back to the mesh buffers, dropping hole sentinels. The
  /// block storage is moved back into the node buffer so the mesh keeps the
  /// reserved capacity across steps.
  void flush() {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        auto& b =
            mesh_.buf(mesh_.node_id({region_.r0() + r, region_.c0() + c}));
        MP_ASSERT(b.empty(), "mesh buffer refilled during sort");
        auto& blk = at(r, c);
        blk.erase(std::remove_if(blk.begin(), blk.end(), is_hole), blk.end());
        b = std::move(blk);
      }
    }
  }

 private:
  Mesh& mesh_;
  Region region_;
  int rows_;
  int cols_;
  i64 cap_ = 1;
  std::vector<std::vector<Packet>> grid_;
  std::vector<Packet> scratch_;
};

int shear_phases(int rows) {
  int p = 1;
  int covered = 1;
  while (covered < rows) {
    covered *= 2;
    ++p;
  }
  return p;  // ceil(log2(rows)) + 1
}

}  // namespace

i64 shearsort_step_bound(const Region& region, i64 capacity) {
  const i64 phases = shear_phases(region.rows());
  return capacity *
         (phases * (region.rows() + region.cols()) + region.cols());
}

bool region_sorted(const Mesh& mesh, const Region& region) {
  const Packet* prev = nullptr;
  bool saw_gap = false;
  for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
    const auto& b = mesh.buf(cur.id());
    if (b.empty()) {
      saw_gap = true;
      continue;
    }
    if (saw_gap) return false;  // not packed at the front
    for (const Packet& p : b) {
      if (prev != nullptr && p.key < prev->key) return false;
      prev = &p;
    }
  }
  return true;
}

namespace {

const telemetry::Label kSortRegion = telemetry::intern("sort.region");

i64 sort_region_impl(Mesh& mesh, const Region& region,
                     const SortOptions& opts) {
  if (mesh.total_packets(region) == 0) return 0;

  if (opts.mode == SortMode::Analytic) {
    // Identical final placement; charged the oblivious worst-case cost.
    const i64 cap = std::max<i64>(1, mesh.max_load(region));
    std::vector<Packet> all = mesh.drain(region);
    std::sort(all.begin(), all.end(), packet_less);
    RegionCursor cur = mesh.cursor(region);
    for (size_t i = 0; i < all.size(); ++i) {
      // Packet i lands at snake position i / cap; the cursor advances once
      // per cap packets instead of recomputing at_snake per packet.
      if (static_cast<i64>(i) / cap != cur.pos()) cur.advance();
      mesh.buf(cur.id()).push_back(all[i]);
    }
    return shearsort_step_bound(region, cap);
  }

  BlockGrid grid(mesh, region);
  const int max_phases = shear_phases(region.rows());
  i64 rounds = 0;
  // Shearsort: log(rows)+1 alternating row/column passes...
  for (int p = 0; p < max_phases; ++p) {
    bool changed = false;
    rounds += grid.row_pass(&changed);
    rounds += grid.col_pass(&changed);
    if (!changed) break;
  }
  // ... plus a final row pass to finish the snake.
  {
    bool changed = false;
    rounds += grid.row_pass(&changed);
  }
  // Safety net: the 0-1 principle guarantees the bound above, but run extra
  // passes (and fail loudly) rather than return unsorted data if a bug slips
  // in.
  int extra = 0;
  while (!grid.snake_sorted()) {
    MP_ASSERT(extra++ <= max_phases + 2,
              "shearsort failed to converge on " << region.rows() << 'x'
                                                 << region.cols());
    bool changed = false;
    rounds += grid.row_pass(&changed);
    rounds += grid.col_pass(&changed);
    bool fin = false;
    rounds += grid.row_pass(&fin);
  }
  grid.flush();
  return rounds * grid.capacity();
}

}  // namespace

i64 sort_region(Mesh& mesh, const Region& region, const SortOptions& opts) {
  telemetry::Span span(telemetry::Cat::Phase, kSortRegion);
  const i64 steps = sort_region_impl(mesh, region, opts);
  span.set_steps(steps);
  return steps;
}

}  // namespace meshpram
