#include "routing/meshsort.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "mesh/node_order.hpp"
#include "mesh/parallel.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

namespace {

/// Compact sort record: the (key, copy, var) prefix decides every comparison
/// in the protocol's workloads without touching the payload arena (copy ids
/// are unique per packet there; var is the first payload tie field, carried
/// inline so the comparator has no dependent load). The handle indirects into
/// the payload for the rare deeper tie-break and for the final writeback.
/// 32 bytes — merging records instead of ~112-byte Packets is the main
/// bandwidth win of the sorter, and one record is exactly one AVX2 vector.
struct SortRec {
  u64 key;
  u64 copy;
  i64 var;
  u32 handle;
};
static_assert(sizeof(SortRec) == 32, "SortRec must stay one vector register");

SortRec make_hole_rec() { return SortRec{kHoleKey, 0, 0, ~0u}; }

bool is_hole_rec(const SortRec& r) { return r.key == kHoleKey; }

/// Strict total order: key first, then enough fields to make the order (and
/// therefore the sorted layout) canonical regardless of execution order —
/// the record form of tie(key, copy, var, origin, op, value).
bool rec_less(const std::vector<Packet>& payload, const SortRec& a,
              const SortRec& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.copy != b.copy) return a.copy < b.copy;
  if (a.key == kHoleKey) return false;  // holes compare equal
  if (a.var != b.var) return a.var < b.var;
  const Packet& pa = payload[a.handle];
  const Packet& pb = payload[b.handle];
  return std::tie(pa.origin, pa.op, pa.value) <
         std::tie(pb.origin, pb.op, pb.value);
}

/// Reusable per-thread sort storage (the treatment RouteArena gave the
/// router in PR 3): payload/record slabs for the block grid, drain/order/
/// radix buffers for the analytic path, and the cached block-slot curve
/// table. One instance per pool thread; a thread runs at most one
/// sort_region call at a time (region tasks don't nest), so borrowing these
/// is race-free and every steady-state sort reuses the same allocations.
struct SortBuffers {
  std::vector<Packet> payload;
  std::vector<SortRec> recs;
  std::vector<Packet> drained;
  std::vector<SortRec> order;
  std::vector<SortRec> radix;
  // Block-slot map (see BlockGrid): physical slot of each region-local
  // row-major block index, cached by geometry.
  std::vector<i32> slot_of_rm;
  std::vector<i32> curve_tmp;
  int curve_rows = 0;
  int curve_cols = 0;
  NodeOrderKind curve_kind = NodeOrderKind::RowMajor;
};

SortBuffers& sort_buffers() {
  static thread_local SortBuffers b;
  return b;
}

/// Per-worker merge scratch, reused across rounds and sort calls.
std::vector<SortRec>& merge_scratch() {
  static thread_local std::vector<SortRec> s;
  return s;
}

/// Sorts `v` into the canonical rec_less order. Small inputs use introsort
/// directly; large inputs take a stable LSD byte radix over (copy, key) —
/// skipping bytes that are zero across the input — which yields the (key,
/// copy) order with ties in input order, then canonicalizes the rare runs of
/// equal (key, copy) with the full comparator. Both paths produce the same
/// sequence under the strict total order, so the choice is invisible.
void canonical_sort(std::vector<SortRec>& v, std::vector<SortRec>& scratch,
                    const std::vector<Packet>& payload) {
  const size_t n = v.size();
  const auto cmp = [&payload](const SortRec& a, const SortRec& b) {
    return rec_less(payload, a, b);
  };
  if (n < 4096) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  u64 key_or = 0, copy_or = 0;
  for (const SortRec& r : v) {
    key_or |= r.key;
    copy_or |= r.copy;
  }
  scratch.resize(n);
  SortRec* a = v.data();
  SortRec* b = scratch.data();
  size_t hist[256];
  const auto pass = [&](int shift, bool on_copy) {
    std::memset(hist, 0, sizeof(hist));
    for (size_t i = 0; i < n; ++i) {
      ++hist[((on_copy ? a[i].copy : a[i].key) >> shift) & 0xff];
    }
    size_t sum = 0;
    for (size_t j = 0; j < 256; ++j) {
      const size_t c = hist[j];
      hist[j] = sum;
      sum += c;
    }
    for (size_t i = 0; i < n; ++i) {
      b[hist[((on_copy ? a[i].copy : a[i].key) >> shift) & 0xff]++] = a[i];
    }
    std::swap(a, b);
  };
  for (int s = 0; s < 64; s += 8) {
    if (((copy_or >> s) & 0xff) != 0) pass(s, /*on_copy=*/true);
  }
  for (int s = 0; s < 64; s += 8) {
    if (((key_or >> s) & 0xff) != 0) pass(s, /*on_copy=*/false);
  }
  if (a != v.data()) std::memcpy(v.data(), a, n * sizeof(SortRec));
  for (size_t i = 0; i + 1 < n;) {
    if (v[i].key == v[i + 1].key && v[i].copy == v[i + 1].copy) {
      size_t j = i + 2;
      while (j < n && v[j].key == v[i].key && v[j].copy == v[i].copy) ++j;
      std::sort(v.begin() + static_cast<i64>(i), v.begin() + static_cast<i64>(j),
                cmp);
      i = j;
    } else {
      ++i;
    }
  }
}

/// Working state: grid of fixed-capacity sorted blocks, local (row, col).
/// Blocks live in one strided record slab borrowed from the thread's
/// SortBuffers; under a Hilbert mesh order the blocks are placed along the
/// same curve (block (r,c) occupies [slot(r,c) * cap, ... + cap)), so a
/// row/column round streams the curve's contiguous runs. Packets sit still
/// in the payload arena until flush(). Rows are pairwise independent within
/// a row round (and columns within a column round), so rounds run
/// chunk-parallel over the pool with per-worker merge scratch — the merge
/// outcomes are data-dependent only, hence identical under any chunking.
class BlockGrid {
 public:
  BlockGrid(Mesh& mesh, const Region& region, SortBuffers& bufs)
      : mesh_(mesh), region_(region), rows_(region.rows()),
        cols_(region.cols()), payload_(bufs.payload), recs_(bufs.recs) {
    build_slot_map(bufs, mesh.order().kind());
    cap_ = std::max<i64>(1, mesh.max_load(region));
    payload_.clear();
    payload_.reserve(static_cast<size_t>(mesh.total_packets(region)));
    recs_.assign(static_cast<size_t>(rows_ * cols_ * cap_), make_hole_rec());
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        SortRec* blk = at(r, c);
        auto& b = mesh.buf(mesh.node_id({region.r0() + r, region.c0() + c}));
        i64 j = 0;
        for (const Packet& p : b) {
          MP_REQUIRE(p.key != kHoleKey, "packet key collides with sentinel");
          blk[j++] = SortRec{p.key, p.copy, p.var,
                             static_cast<u32>(payload_.size())};
          payload_.push_back(p);
        }
        b.clear();  // keeps capacity (reuse contract)
        std::sort(blk, blk + cap_, [this](const SortRec& a, const SortRec& b2) {
          return rec_less(payload_, a, b2);
        });
      }
    }
    parallel_rounds_ = !in_parallel_worker() && execution_threads() > 1 &&
                       region.size() >= stripe_min_nodes();
  }

  i64 capacity() const { return cap_; }

  SortRec* at(int r, int c) {
    return recs_.data() + slot(r, c) * cap_;
  }
  const SortRec* at(int r, int c) const {
    return recs_.data() + slot(r, c) * cap_;
  }

  /// Merge-split comparator: after the call, `small` holds the cap smallest
  /// of the union and `large` the cap largest. Returns true if anything
  /// changed (used for early exit). The merge writes into pre-sized scratch
  /// (no push_back in the inner loop); ties take the `small` side, exactly
  /// like std::merge.
  bool merge_split(SortRec* small, SortRec* large,
                   std::vector<SortRec>& scratch) const {
    // Fast path: already in order (last of small <= first of large).
    if (!rec_less(payload_, large[0], small[cap_ - 1])) return false;
    scratch.resize(static_cast<size_t>(2 * cap_));
    SortRec* out = scratch.data();
    const SortRec* a = small;
    const SortRec* const ae = small + cap_;
    const SortRec* b = large;
    const SortRec* const be = large + cap_;
    while (a != ae && b != be) {
      if (rec_less(payload_, *b, *a)) {
        *out++ = *b++;
      } else {
        *out++ = *a++;
      }
    }
    out = std::copy(a, ae, out);
    std::copy(b, be, out);
    std::copy(scratch.data(), scratch.data() + cap_, small);
    std::copy(scratch.data() + cap_, scratch.data() + 2 * cap_, large);
    return true;
  }

  /// One odd-even round over all rows, pairing columns (c, c+1) with
  /// c % 2 == parity. Direction follows the snake: even local rows ascend
  /// west->east, odd rows east->west. Returns true if anything changed.
  bool row_round(int parity) {
    std::atomic<int> changed{0};
    run_lines(rows_, [&](i64 lb, i64 le) {
      std::vector<SortRec>& scratch = merge_scratch();
      bool ch = false;
      for (i64 r = lb; r < le; ++r) {
        const bool ascending = (r % 2 == 0);
        for (int c = parity; c + 1 < cols_; c += 2) {
          SortRec* left = at(static_cast<int>(r), c);
          SortRec* right = at(static_cast<int>(r), c + 1);
          ch |= ascending ? merge_split(left, right, scratch)
                          : merge_split(right, left, scratch);
        }
      }
      if (ch) changed.store(1, std::memory_order_relaxed);
    });
    return changed.load(std::memory_order_relaxed) != 0;
  }

  /// One odd-even round over all columns (top block keeps the smaller keys).
  bool col_round(int parity) {
    std::atomic<int> changed{0};
    run_lines(cols_, [&](i64 lb, i64 le) {
      std::vector<SortRec>& scratch = merge_scratch();
      bool ch = false;
      for (i64 c = lb; c < le; ++c) {
        for (int r = parity; r + 1 < rows_; r += 2) {
          ch |= merge_split(at(r, static_cast<int>(c)),
                            at(r + 1, static_cast<int>(c)), scratch);
        }
      }
      if (ch) changed.store(1, std::memory_order_relaxed);
    });
    return changed.load(std::memory_order_relaxed) != 0;
  }

  /// Full odd-even transposition pass along rows; returns rounds executed.
  i64 row_pass(bool* changed_any) {
    i64 rounds = 0;
    int quiet = 0;
    for (int t = 0; t < cols_ && quiet < 2; ++t) {
      const bool ch = row_round(t % 2);
      ++rounds;
      quiet = ch ? 0 : quiet + 1;
      *changed_any |= ch;
    }
    return rounds;
  }

  i64 col_pass(bool* changed_any) {
    i64 rounds = 0;
    int quiet = 0;
    for (int t = 0; t < rows_ && quiet < 2; ++t) {
      const bool ch = col_round(t % 2);
      ++rounds;
      quiet = ch ? 0 : quiet + 1;
      *changed_any |= ch;
    }
    return rounds;
  }

  bool snake_sorted() const {
    const SortRec* prev = nullptr;
    for (RegionCursor cur(region_); cur.valid(); cur.advance()) {
      const Coord x = cur.coord();
      const SortRec* blk = at(x.r - region_.r0(), x.c - region_.c0());
      if (prev != nullptr && rec_less(payload_, blk[0], *prev)) return false;
      // Strictly increasing keys need no further checks; the kernel returns
      // where that stops and the full comparator takes over from there.
      i64 j = simd::first_key_violation(blk, sizeof(SortRec), cap_);
      for (; j + 1 < cap_; ++j) {
        if (rec_less(payload_, blk[j + 1], blk[j])) return false;
      }
      prev = blk + cap_ - 1;
    }
    return true;
  }

  /// Writes blocks back to the mesh buffers, dropping hole sentinels; each
  /// packet moves exactly once (payload arena -> destination buffer).
  void flush() {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        auto& b =
            mesh_.buf(mesh_.node_id({region_.r0() + r, region_.c0() + c}));
        MP_ASSERT(b.empty(), "mesh buffer refilled during sort");
        const SortRec* blk = at(r, c);
        for (i64 j = 0; j < cap_; ++j) {
          if (!is_hole_rec(blk[j])) b.push_back(payload_[blk[j].handle]);
        }
      }
    }
  }

 private:
  /// Physical slot of region-local block (r, c); identity under row-major.
  i64 slot(int r, int c) const {
    const i64 rm = static_cast<i64>(r) * cols_ + c;
    return slot_map_ == nullptr ? rm : (*slot_map_)[static_cast<size_t>(rm)];
  }

  void build_slot_map(SortBuffers& bufs, NodeOrderKind kind) {
    if (kind == NodeOrderKind::RowMajor) {
      slot_map_ = nullptr;
      return;
    }
    if (bufs.curve_rows != rows_ || bufs.curve_cols != cols_ ||
        bufs.curve_kind != kind) {
      bufs.curve_rows = rows_;
      bufs.curve_cols = cols_;
      bufs.curve_kind = kind;
      fill_curve_order(rows_, cols_, kind, bufs.curve_tmp);
      bufs.slot_of_rm.assign(bufs.curve_tmp.size(), 0);
      for (size_t s = 0; s < bufs.curve_tmp.size(); ++s) {
        bufs.slot_of_rm[static_cast<size_t>(bufs.curve_tmp[s])] =
            static_cast<i32>(s);
      }
    }
    slot_map_ = &bufs.slot_of_rm;
  }

  /// Runs fn(begin, end) over [0, lines) — chunked on the pool when the
  /// region qualified at construction, one serial chunk otherwise.
  void run_lines(int lines, const std::function<void(i64, i64)>& fn) {
    if (parallel_rounds_) {
      execution_pool().for_each_chunk(lines, 1, fn);
    } else {
      fn(0, lines);
    }
  }

  Mesh& mesh_;
  Region region_;
  int rows_;
  int cols_;
  i64 cap_ = 1;
  bool parallel_rounds_ = false;
  std::vector<Packet>& payload_;
  std::vector<SortRec>& recs_;
  const std::vector<i32>* slot_map_ = nullptr;
};

int shear_phases(int rows) {
  int p = 1;
  int covered = 1;
  while (covered < rows) {
    covered *= 2;
    ++p;
  }
  return p;  // ceil(log2(rows)) + 1
}

}  // namespace

i64 shearsort_step_bound(const Region& region, i64 capacity) {
  const i64 phases = shear_phases(region.rows());
  return capacity *
         (phases * (region.rows() + region.cols()) + region.cols());
}

bool region_sorted(const Mesh& mesh, const Region& region) {
  const Packet* prev = nullptr;
  bool saw_gap = false;
  for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
    const auto& b = mesh.buf(cur.id());
    if (b.empty()) {
      saw_gap = true;
      continue;
    }
    if (saw_gap) return false;  // not packed at the front
    for (const Packet& p : b) {
      if (prev != nullptr && p.key < prev->key) return false;
      prev = &p;
    }
  }
  return true;
}

namespace {

const telemetry::Label kSortRegion = telemetry::intern("sort.region");

i64 sort_region_impl(Mesh& mesh, const Region& region,
                     const SortOptions& opts) {
  if (mesh.total_packets(region) == 0) return 0;

  if (opts.mode == SortMode::Analytic) {
    // Identical final placement; charged the oblivious worst-case cost.
    // Sorting 32-byte records (with handles into the drained packets)
    // instead of the packets themselves, then scattering each packet once.
    SortBuffers& bufs = sort_buffers();
    const i64 cap = std::max<i64>(1, mesh.max_load(region));
    std::vector<Packet>& all = bufs.drained;
    mesh.drain_into(region, all);
    std::vector<SortRec>& order = bufs.order;
    order.resize(all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      order[i] = SortRec{all[i].key, all[i].copy, all[i].var,
                         static_cast<u32>(i)};
    }
    canonical_sort(order, bufs.radix, all);
    RegionCursor cur = mesh.cursor(region);
    for (size_t i = 0; i < order.size(); ++i) {
      // Packet i lands at snake position i / cap; the cursor advances once
      // per cap packets instead of recomputing at_snake per packet.
      if (static_cast<i64>(i) / cap != cur.pos()) cur.advance();
      mesh.buf(cur.id()).push_back(all[order[i].handle]);
    }
    return shearsort_step_bound(region, cap);
  }

  BlockGrid grid(mesh, region, sort_buffers());
  const int max_phases = shear_phases(region.rows());
  i64 rounds = 0;
  // Shearsort: log(rows)+1 alternating row/column passes...
  for (int p = 0; p < max_phases; ++p) {
    bool changed = false;
    rounds += grid.row_pass(&changed);
    rounds += grid.col_pass(&changed);
    if (!changed) break;
  }
  // ... plus a final row pass to finish the snake.
  {
    bool changed = false;
    rounds += grid.row_pass(&changed);
  }
  // Safety net: the 0-1 principle guarantees the bound above, but run extra
  // passes (and fail loudly) rather than return unsorted data if a bug slips
  // in.
  int extra = 0;
  while (!grid.snake_sorted()) {
    MP_ASSERT(extra++ <= max_phases + 2,
              "shearsort failed to converge on " << region.rows() << 'x'
                                                 << region.cols());
    bool changed = false;
    rounds += grid.row_pass(&changed);
    rounds += grid.col_pass(&changed);
    bool fin = false;
    rounds += grid.row_pass(&fin);
  }
  grid.flush();
  return rounds * grid.capacity();
}

}  // namespace

i64 sort_region(Mesh& mesh, const Region& region, const SortOptions& opts) {
  telemetry::Span span(telemetry::Cat::Phase, kSortRegion);
  const i64 steps = sort_region_impl(mesh, region, opts);
  span.set_steps(steps);
  return steps;
}

}  // namespace meshpram
