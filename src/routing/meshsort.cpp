#include "routing/meshsort.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <tuple>
#include <vector>

#include "mesh/parallel.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

namespace {

/// Compact sort record: the (key, copy) prefix decides almost every
/// comparison in the protocol's workloads (copy ids are unique per packet
/// there); the handle indirects into a payload arena for the rare full
/// tie-break and for the final writeback. Merging 24-byte records instead of
/// ~112-byte Packets is the main bandwidth win of the sorter.
struct SortRec {
  u64 key;
  u64 copy;
  u32 handle;
};

SortRec make_hole_rec() { return SortRec{kHoleKey, 0, ~0u}; }

bool is_hole_rec(const SortRec& r) { return r.key == kHoleKey; }

/// Strict total order: key first, then enough fields to make the order (and
/// therefore the sorted layout) canonical regardless of execution order —
/// the record form of tie(key, copy, var, origin, op, value).
bool rec_less(const std::vector<Packet>& payload, const SortRec& a,
              const SortRec& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.copy != b.copy) return a.copy < b.copy;
  if (a.key == kHoleKey) return false;  // holes compare equal
  const Packet& pa = payload[a.handle];
  const Packet& pb = payload[b.handle];
  return std::tie(pa.var, pa.origin, pa.op, pa.value) <
         std::tie(pb.var, pb.origin, pb.op, pb.value);
}

/// Working state: grid of fixed-capacity sorted blocks, local (row, col).
/// Blocks live in one strided record slab (block (r,c) occupies
/// [(r*cols + c) * cap, ... + cap)); packets sit still in the payload arena
/// until flush(). Rows are pairwise independent within a row round (and
/// columns within a column round), so rounds run chunk-parallel over the
/// pool with per-chunk merge scratch — the merge outcomes are data-dependent
/// only, hence identical under any chunking.
class BlockGrid {
 public:
  BlockGrid(Mesh& mesh, const Region& region)
      : mesh_(mesh), region_(region), rows_(region.rows()),
        cols_(region.cols()) {
    cap_ = std::max<i64>(1, mesh.max_load(region));
    payload_.reserve(static_cast<size_t>(mesh.total_packets(region)));
    recs_.assign(static_cast<size_t>(rows_ * cols_ * cap_), make_hole_rec());
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        SortRec* blk = at(r, c);
        auto& b = mesh.buf(mesh.node_id({region.r0() + r, region.c0() + c}));
        i64 j = 0;
        for (const Packet& p : b) {
          MP_REQUIRE(p.key != kHoleKey, "packet key collides with sentinel");
          blk[j++] = SortRec{p.key, p.copy,
                             static_cast<u32>(payload_.size())};
          payload_.push_back(p);
        }
        b.clear();  // keeps capacity (reuse contract)
        std::sort(blk, blk + cap_, [this](const SortRec& a, const SortRec& b2) {
          return rec_less(payload_, a, b2);
        });
      }
    }
    parallel_rounds_ = !in_parallel_worker() && execution_threads() > 1 &&
                       region.size() >= stripe_min_nodes();
  }

  i64 capacity() const { return cap_; }

  SortRec* at(int r, int c) {
    return recs_.data() +
           (static_cast<i64>(r) * cols_ + c) * cap_;
  }
  const SortRec* at(int r, int c) const {
    return recs_.data() +
           (static_cast<i64>(r) * cols_ + c) * cap_;
  }

  /// Merge-split comparator: after the call, `small` holds the cap smallest
  /// of the union and `large` the cap largest. Returns true if anything
  /// changed (used for early exit).
  bool merge_split(SortRec* small, SortRec* large,
                   std::vector<SortRec>& scratch) const {
    // Fast path: already in order (last of small <= first of large).
    if (!rec_less(payload_, large[0], small[cap_ - 1])) return false;
    scratch.clear();
    std::merge(small, small + cap_, large, large + cap_,
               std::back_inserter(scratch),
               [this](const SortRec& a, const SortRec& b) {
                 return rec_less(payload_, a, b);
               });
    std::copy(scratch.begin(), scratch.begin() + cap_, small);
    std::copy(scratch.begin() + cap_, scratch.end(), large);
    return true;
  }

  /// One odd-even round over all rows, pairing columns (c, c+1) with
  /// c % 2 == parity. Direction follows the snake: even local rows ascend
  /// west->east, odd rows east->west. Returns true if anything changed.
  bool row_round(int parity) {
    std::atomic<int> changed{0};
    run_lines(rows_, [&](i64 lb, i64 le) {
      std::vector<SortRec> scratch;
      scratch.reserve(static_cast<size_t>(2 * cap_));
      bool ch = false;
      for (i64 r = lb; r < le; ++r) {
        const bool ascending = (r % 2 == 0);
        for (int c = parity; c + 1 < cols_; c += 2) {
          SortRec* left = at(static_cast<int>(r), c);
          SortRec* right = at(static_cast<int>(r), c + 1);
          ch |= ascending ? merge_split(left, right, scratch)
                          : merge_split(right, left, scratch);
        }
      }
      if (ch) changed.store(1, std::memory_order_relaxed);
    });
    return changed.load(std::memory_order_relaxed) != 0;
  }

  /// One odd-even round over all columns (top block keeps the smaller keys).
  bool col_round(int parity) {
    std::atomic<int> changed{0};
    run_lines(cols_, [&](i64 lb, i64 le) {
      std::vector<SortRec> scratch;
      scratch.reserve(static_cast<size_t>(2 * cap_));
      bool ch = false;
      for (i64 c = lb; c < le; ++c) {
        for (int r = parity; r + 1 < rows_; r += 2) {
          ch |= merge_split(at(r, static_cast<int>(c)),
                            at(r + 1, static_cast<int>(c)), scratch);
        }
      }
      if (ch) changed.store(1, std::memory_order_relaxed);
    });
    return changed.load(std::memory_order_relaxed) != 0;
  }

  /// Full odd-even transposition pass along rows; returns rounds executed.
  i64 row_pass(bool* changed_any) {
    i64 rounds = 0;
    int quiet = 0;
    for (int t = 0; t < cols_ && quiet < 2; ++t) {
      const bool ch = row_round(t % 2);
      ++rounds;
      quiet = ch ? 0 : quiet + 1;
      *changed_any |= ch;
    }
    return rounds;
  }

  i64 col_pass(bool* changed_any) {
    i64 rounds = 0;
    int quiet = 0;
    for (int t = 0; t < rows_ && quiet < 2; ++t) {
      const bool ch = col_round(t % 2);
      ++rounds;
      quiet = ch ? 0 : quiet + 1;
      *changed_any |= ch;
    }
    return rounds;
  }

  bool snake_sorted() const {
    const SortRec* prev = nullptr;
    for (RegionCursor cur(region_); cur.valid(); cur.advance()) {
      const Coord x = cur.coord();
      const SortRec* blk = at(x.r - region_.r0(), x.c - region_.c0());
      for (i64 j = 0; j < cap_; ++j) {
        if (prev != nullptr && rec_less(payload_, blk[j], *prev)) return false;
        prev = blk + j;
      }
    }
    return true;
  }

  /// Writes blocks back to the mesh buffers, dropping hole sentinels; each
  /// packet moves exactly once (payload arena -> destination buffer).
  void flush() {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        auto& b =
            mesh_.buf(mesh_.node_id({region_.r0() + r, region_.c0() + c}));
        MP_ASSERT(b.empty(), "mesh buffer refilled during sort");
        const SortRec* blk = at(r, c);
        for (i64 j = 0; j < cap_; ++j) {
          if (!is_hole_rec(blk[j])) b.push_back(payload_[blk[j].handle]);
        }
      }
    }
  }

 private:
  /// Runs fn(begin, end) over [0, lines) — chunked on the pool when the
  /// region qualified at construction, one serial chunk otherwise.
  void run_lines(int lines, const std::function<void(i64, i64)>& fn) {
    if (parallel_rounds_) {
      execution_pool().for_each_chunk(lines, 1, fn);
    } else {
      fn(0, lines);
    }
  }

  Mesh& mesh_;
  Region region_;
  int rows_;
  int cols_;
  i64 cap_ = 1;
  bool parallel_rounds_ = false;
  std::vector<Packet> payload_;
  std::vector<SortRec> recs_;
};

int shear_phases(int rows) {
  int p = 1;
  int covered = 1;
  while (covered < rows) {
    covered *= 2;
    ++p;
  }
  return p;  // ceil(log2(rows)) + 1
}

}  // namespace

i64 shearsort_step_bound(const Region& region, i64 capacity) {
  const i64 phases = shear_phases(region.rows());
  return capacity *
         (phases * (region.rows() + region.cols()) + region.cols());
}

bool region_sorted(const Mesh& mesh, const Region& region) {
  const Packet* prev = nullptr;
  bool saw_gap = false;
  for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
    const auto& b = mesh.buf(cur.id());
    if (b.empty()) {
      saw_gap = true;
      continue;
    }
    if (saw_gap) return false;  // not packed at the front
    for (const Packet& p : b) {
      if (prev != nullptr && p.key < prev->key) return false;
      prev = &p;
    }
  }
  return true;
}

namespace {

const telemetry::Label kSortRegion = telemetry::intern("sort.region");

i64 sort_region_impl(Mesh& mesh, const Region& region,
                     const SortOptions& opts) {
  if (mesh.total_packets(region) == 0) return 0;

  if (opts.mode == SortMode::Analytic) {
    // Identical final placement; charged the oblivious worst-case cost.
    // Sorting 24-byte records (with handles into the drained packets)
    // instead of the packets themselves, then scattering each packet once.
    const i64 cap = std::max<i64>(1, mesh.max_load(region));
    std::vector<Packet> all = mesh.drain(region);
    std::vector<SortRec> order(all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      order[i] = SortRec{all[i].key, all[i].copy, static_cast<u32>(i)};
    }
    std::sort(order.begin(), order.end(),
              [&all](const SortRec& a, const SortRec& b) {
                return rec_less(all, a, b);
              });
    RegionCursor cur = mesh.cursor(region);
    for (size_t i = 0; i < order.size(); ++i) {
      // Packet i lands at snake position i / cap; the cursor advances once
      // per cap packets instead of recomputing at_snake per packet.
      if (static_cast<i64>(i) / cap != cur.pos()) cur.advance();
      mesh.buf(cur.id()).push_back(all[order[i].handle]);
    }
    return shearsort_step_bound(region, cap);
  }

  BlockGrid grid(mesh, region);
  const int max_phases = shear_phases(region.rows());
  i64 rounds = 0;
  // Shearsort: log(rows)+1 alternating row/column passes...
  for (int p = 0; p < max_phases; ++p) {
    bool changed = false;
    rounds += grid.row_pass(&changed);
    rounds += grid.col_pass(&changed);
    if (!changed) break;
  }
  // ... plus a final row pass to finish the snake.
  {
    bool changed = false;
    rounds += grid.row_pass(&changed);
  }
  // Safety net: the 0-1 principle guarantees the bound above, but run extra
  // passes (and fail loudly) rather than return unsorted data if a bug slips
  // in.
  int extra = 0;
  while (!grid.snake_sorted()) {
    MP_ASSERT(extra++ <= max_phases + 2,
              "shearsort failed to converge on " << region.rows() << 'x'
                                                 << region.cols());
    bool changed = false;
    rounds += grid.row_pass(&changed);
    rounds += grid.col_pass(&changed);
    bool fin = false;
    rounds += grid.row_pass(&fin);
  }
  grid.flush();
  return rounds * grid.capacity();
}

}  // namespace

i64 sort_region(Mesh& mesh, const Region& region, const SortOptions& opts) {
  telemetry::Span span(telemetry::Cat::Phase, kSortRegion);
  const i64 steps = sort_region_impl(mesh, region, opts);
  span.set_steps(steps);
  return steps;
}

}  // namespace meshpram
