#include "routing/rank.hpp"

#include <unordered_map>

#include "mesh/parallel.hpp"
#include "routing/scan.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

const telemetry::Label kRankGroups = telemetry::intern("rank.groups");

/// Per-node summary for the run-length scan: the key and length of the
/// node's trailing equal-key run, plus whether the whole node is one run
/// (needed for associativity across empty/uniform nodes).
struct RunSummary {
  bool empty = true;
  u64 first_key = 0;
  u64 last_key = 0;
  i64 trail_len = 0;  // length of the trailing run (key == last_key)
  bool all_same = true;
};

RunSummary summarize_node(const std::vector<Packet>& b) {
  RunSummary s;
  if (b.empty()) return s;
  s.empty = false;
  s.first_key = b.front().key;
  s.last_key = b.back().key;
  s.all_same = true;
  s.trail_len = 0;
  for (size_t i = b.size(); i > 0; --i) {
    if (b[i - 1].key == s.last_key) {
      ++s.trail_len;
    } else {
      break;
    }
  }
  for (const Packet& p : b) {
    if (p.key != s.first_key) {
      s.all_same = false;
      break;
    }
  }
  return s;
}

RunSummary combine(const RunSummary& a, const RunSummary& b) {
  if (a.empty) return b;
  if (b.empty) return a;
  RunSummary r;
  r.empty = false;
  r.first_key = a.first_key;
  r.last_key = b.last_key;
  if (b.all_same && b.first_key == a.last_key) {
    r.trail_len = a.trail_len + b.trail_len;
    r.all_same = a.all_same;
  } else {
    r.trail_len = b.trail_len;
    r.all_same = false;
  }
  return r;
}

/// Chunk size for the per-node loops below (same grain as the protocol's
/// node sweeps).
constexpr i64 kNodeGrain = 64;

}  // namespace

i64 rank_within_groups(Mesh& mesh, const Region& region) {
  telemetry::Span span(telemetry::Cat::Phase, kRankGroups);
  // Gather per-node summaries, chunk-parallel over the snake order. The
  // within-node sortedness assertion rides along per chunk; the cross-node
  // half of it is checked against the summaries afterwards.
  std::vector<RunSummary> vals(static_cast<size_t>(region.size()));
  for_each_region_chunk(
      mesh, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          const auto& b = mesh.buf(cur.id());
          u64 prev_key = 0;
          bool have_prev = false;
          for (const Packet& p : b) {
            MP_ASSERT(!have_prev || prev_key <= p.key,
                      "rank_within_groups requires a key-sorted region");
            prev_key = p.key;
            have_prev = true;
          }
          vals[static_cast<size_t>(cur.pos())] = summarize_node(b);
        }
      });
  {
    u64 prev_key = 0;
    bool have_prev = false;
    for (const RunSummary& s : vals) {
      if (s.empty) continue;
      MP_ASSERT(!have_prev || prev_key <= s.first_key,
                "rank_within_groups requires a key-sorted region");
      prev_key = s.last_key;
      have_prev = true;
    }
  }

  // RunSummary is ~4 machine words on the wire.
  const auto scan = scan_snake<RunSummary>(region, vals, RunSummary{},
                                           combine, /*words=*/4);

  // Apply: each node ranks its own packets from its snake-prefix summary —
  // disjoint writes, so the chunking never shows in the results.
  for_each_region_chunk(
      mesh, region, kNodeGrain, [&](RegionCursor& cur, i64 end) {
        for (; cur.pos() < end; cur.advance()) {
          auto& b = mesh.buf(cur.id());
          if (b.empty()) continue;
          const RunSummary& pred =
              scan.prefix[static_cast<size_t>(cur.pos())];
          i64 run = (!pred.empty && pred.last_key == b.front().key)
                        ? pred.trail_len
                        : 0;
          u64 cur_key = b.front().key;
          for (Packet& p : b) {
            if (p.key != cur_key) {
              cur_key = p.key;
              run = 0;
            }
            p.rank = static_cast<u64>(run++);
          }
        }
      });
  span.set_steps(scan.steps);
  return scan.steps;
}

i64 max_group_size(const Mesh& mesh, const Region& region) {
  std::unordered_map<u64, i64> counts;
  for (RegionCursor cur = mesh.cursor(region); cur.valid(); cur.advance()) {
    for (const Packet& p : mesh.buf(cur.id())) {
      ++counts[p.key];
    }
  }
  i64 best = 0;
  for (const auto& [k, v] : counts) best = std::max(best, v);
  return best;
}

}  // namespace meshpram
