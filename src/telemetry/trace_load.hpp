// Chrome trace_event JSON loader (the read side of telemetry/export.hpp).
//
// Backs tools/trace_summary and the exporter round-trip test. The parser is a
// small self-contained JSON reader (objects, arrays, strings, numbers, bools,
// null) — strict enough to reject malformed files, general enough to read any
// trace the exporter emits plus hand-edited variants.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace meshpram::telemetry {

/// One trace event as loaded from JSON. ph is the Chrome phase letter
/// ('X' complete span, 'C' counter, 'M' metadata); ts/dur in microseconds.
struct LoadedEvent {
  std::string name;
  std::string cat;
  char ph = '?';
  int tid = 0;
  double ts_us = 0;
  double dur_us = 0;
  i64 steps = -1;  ///< args.steps, -1 when absent
  i64 index = -1;  ///< args.index, -1 when absent
};

struct LoadedTrace {
  std::vector<LoadedEvent> events;  ///< metadata ("M") events excluded
  u64 recorded = 0;                 ///< otherData.recorded
  u64 dropped = 0;                  ///< otherData.dropped
};

/// Parses a Chrome trace; throws ConfigError on malformed JSON or a missing
/// traceEvents array.
LoadedTrace load_chrome_trace(std::istream& in);
LoadedTrace load_chrome_trace(const std::string& path);

}  // namespace meshpram::telemetry
