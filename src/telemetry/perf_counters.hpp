// Hardware performance counters via perf_event_open (DESIGN.md §12).
//
// One process-wide counter group (instructions, cycles, LLC references, LLC
// misses, branch misses), counting user-space only (exclude_kernel, so it
// works under perf_event_paranoid <= 2 without extra privileges). The whole
// facility degrades gracefully: when the syscall is unavailable — containers
// without the PMU, seccomp filters, non-Linux hosts — available() is false
// and every sample reads as absent. Callers (the bench recorder and the
// telemetry stage summary) must treat absent samples as "no columns", never
// as zeros.
#pragma once

#include "util/math.hpp"

namespace meshpram::telemetry {

/// Counter deltas over one measured span. `available` is false when the
/// group could not be opened or read; all counts are zero then.
struct PerfSample {
  bool available = false;
  i64 instructions = 0;
  i64 cycles = 0;
  i64 cache_refs = 0;    ///< LLC references
  i64 cache_misses = 0;  ///< LLC misses
  i64 branch_misses = 0;

  /// LLC misses per reference in [0, 1]; 0 when no references were counted.
  double llc_miss_rate() const {
    return cache_refs > 0
               ? static_cast<double>(cache_misses) /
                     static_cast<double>(cache_refs)
               : 0.0;
  }
  /// Instructions per cycle; 0 when cycles were not counted.
  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

/// An open counter group. start()/stop() pairs may be reused; the group
/// counts this thread's user-space execution (inherited by pool threads
/// spawned after construction is NOT attempted — measure on the calling
/// thread, which is where the serial benches run).
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when the group opened and samples will carry counts.
  bool available() const { return leader_ >= 0; }

  /// Zeroes and enables the group.
  void start();
  /// Disables the group and returns the deltas since start().
  PerfSample stop();

 private:
  static constexpr int kEvents = 5;
  int leader_ = -1;
  int fds_[kEvents] = {-1, -1, -1, -1, -1};
};

}  // namespace meshpram::telemetry
