// Trace exporters (DESIGN.md §8).
//
//  * write_chrome_trace — Chrome trace_event JSON ("X" complete events plus
//    "C" counter samples), loadable in chrome://tracing or ui.perfetto.dev.
//  * write_heatmap_csv — one row per mesh node with the four congestion
//    counters (node,row,col,max_queue,forwarded,copies_touched,survivors).
//  * write_stage_summary — ASCII table aggregating the recorded spans by
//    (cat, name): call count, wall-clock total, attributed mesh steps. The
//    PerfSample overload appends a run-level hardware-counter footer
//    (instructions, IPC, LLC miss rate, branch misses) when the sample was
//    readable on the host; an unavailable sample prints nothing extra.
//
// All exporters read the telemetry ring buffers and must run while no
// instrumented work is in flight (after the step / pool join). They compile
// in telemetry-off builds too and then emit empty (but well-formed) output.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/counters.hpp"
#include "telemetry/perf_counters.hpp"
#include "telemetry/telemetry.hpp"

namespace meshpram::telemetry {

void write_chrome_trace(std::ostream& os);
/// Writes to `path`; throws ConfigError if the file cannot be opened.
void write_chrome_trace(const std::string& path);

void write_heatmap_csv(const MeshCounters& counters, std::ostream& os);
void write_heatmap_csv(const MeshCounters& counters, const std::string& path);

void write_stage_summary(std::ostream& os);
void write_stage_summary(std::ostream& os, const PerfSample& perf);

}  // namespace meshpram::telemetry
