// Low-overhead tracing for the simulated mesh (DESIGN.md §8).
//
// Every hot layer (routing, sorting, CULLING, the access protocol stages and
// the parallel region workers) opens a scoped Span; completed spans land in a
// per-thread single-writer ring buffer, and the exporters (telemetry/export.hpp)
// turn the buffers into a Chrome trace_event JSON, a mesh heatmap CSV, or a
// per-stage summary after the parallel work has joined.
//
// Cost model, in order of decreasing severity of the gate:
//  * compile-time kill switch — configure with -DMESHPRAM_TELEMETRY=OFF and
//    every instrumentation site compiles to nothing (Span is an empty type,
//    the record paths are constant-folded away);
//  * runtime master switch + every-Nth-frame sampler — one relaxed atomic
//    load per span, so a telemetry-compiled binary with sampling off stays
//    within noise of an uninstrumented one;
//  * recording — one clock read at span open/close plus one ring slot write.
//
// Determinism rule: telemetry only observes. Counted mesh steps and
// PRAM-visible results are bit-identical with tracing on or off, at any
// thread count (tests/test_telemetry.cpp, ObserverEffectInvariance).
//
// Threading contract: record()/Span may run on any thread (each thread owns
// its ring); clear(), set_ring_capacity() and the exporters must run while no
// instrumented work is in flight (i.e. between PRAM steps, after the pool
// join — the join supplies the happens-before edge for the buffer reads).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/math.hpp"

// CMake always defines MESHPRAM_TELEMETRY (0 or 1); default ON for direct
// compiles without the build system.
#ifndef MESHPRAM_TELEMETRY
#define MESHPRAM_TELEMETRY 1
#endif

namespace meshpram::telemetry {

/// Dense handle for an interned span/counter name.
using Label = u32;

/// Event taxonomy. `Stage` is load-bearing: the steps attributed to Stage
/// spans of one PRAM step partition its StepStats::total_steps exactly
/// (CULLING iterations + forward stages + delivery + return stages), which is
/// what lets tools/trace_summary reconcile a trace against the StepCounter
/// grand total.
enum class Cat : unsigned char {
  Step = 0,  ///< one PRAM access step (carries the grand total)
  Stage,     ///< protocol stage; Stage steps sum to the Step total
  Phase,     ///< sub-phase inside a stage (sort, rank, route, drain, ...)
  Region,    ///< one parallel region-worker task
  Counter,   ///< instant value sample (StepCounter phase charges)
  Fault,     ///< degraded-mode work (fault-aware routing, degraded CULLING)
  Serve,     ///< serving layer: one span per scheduled request, labeled with
             ///< the session's interned name (per-session trace scoping), plus
             ///< queue-depth counter samples from the fair scheduler
};

/// Lower-case name used as the Chrome trace "cat" field.
const char* cat_name(Cat cat);

/// One completed span (t0 < t1) or instant sample (t0 == t1). steps/index
/// are optional payloads; -1 means absent.
struct Event {
  i64 t0_ns = 0;
  i64 t1_ns = 0;
  i64 steps = -1;  ///< counted mesh steps attributed to the span
  i64 index = -1;  ///< stage number / region index / iteration
  Label label = 0;
  Cat cat = Cat::Phase;
};

struct BufferStats {
  u64 recorded = 0;  ///< events ever recorded (across all threads)
  u64 dropped = 0;   ///< events overwritten by ring wrap-around
  int threads = 0;   ///< registered recording threads
};

#if MESHPRAM_TELEMETRY

/// Hot gate: true when the master switch is on and the current frame is
/// sampled. One relaxed atomic load; every instrumentation site checks this
/// (or is inside a Span, which checks it on construction).
bool sampling_on();

/// Master switch (default off: an instrumented binary records nothing until
/// a caller or tool opts in).
void set_enabled(bool on);
bool master_enabled();

/// Record only every n-th frame (n <= 1 restores every-frame recording).
void set_sample_every(u32 n);

/// Advances the sampling frame; the simulator calls this once per PRAM step.
void begin_frame();

/// Interns `name`, returning a stable label id. Cold path (takes the registry
/// lock); call sites cache the result in a namespace-scope constant.
Label intern(std::string_view name);

/// Name of an interned label ("?" for an unknown id).
std::string label_name(Label label);

/// Monotonic nanoseconds since process start.
i64 now_ns();

/// Appends `e` to the calling thread's ring buffer (single-writer, wraps by
/// overwriting the oldest events). Callers gate on sampling_on() themselves —
/// record() itself never checks.
void record(const Event& e);

/// Instant sample: records `value` (as Event::steps) at the current time.
void record_counter(Label label, Cat cat, i64 value);

/// Drops all recorded events; ring capacities are kept.
void clear();

/// Resizes every ring (existing and future) to `events` slots and clears
/// recorded content. Quiescent callers only.
void set_ring_capacity(size_t events);

BufferStats buffer_stats();

/// Number of registered recording threads (= exporter tids 0..n-1).
int thread_count();

/// Snapshot of thread `tid`'s surviving events, oldest first.
std::vector<Event> thread_events(int tid);

/// RAII span: opens at construction (when sampling is on), records itself at
/// destruction. set_steps()/set_index() attach payloads any time before the
/// close.
class Span {
 public:
  Span(Cat cat, Label label, i64 index = -1) {
    if (sampling_on()) {
      active_ = true;
      e_.cat = cat;
      e_.label = label;
      e_.index = index;
      e_.t0_ns = now_ns();
    }
  }
  ~Span() {
    if (active_) {
      e_.t1_ns = now_ns();
      record(e_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_steps(i64 steps) { e_.steps = steps; }
  void set_index(i64 index) { e_.index = index; }

 private:
  Event e_;
  bool active_ = false;
};

#else  // !MESHPRAM_TELEMETRY — the whole API collapses to no-ops.

inline constexpr bool sampling_on() { return false; }
inline void set_enabled(bool) {}
inline constexpr bool master_enabled() { return false; }
inline void set_sample_every(u32) {}
inline void begin_frame() {}
inline Label intern(std::string_view) { return 0; }
inline std::string label_name(Label) { return "?"; }
inline i64 now_ns() { return 0; }
inline void record(const Event&) {}
inline void record_counter(Label, Cat, i64) {}
inline void clear() {}
inline void set_ring_capacity(size_t) {}
inline BufferStats buffer_stats() { return {}; }
inline int thread_count() { return 0; }
inline std::vector<Event> thread_events(int) { return {}; }

class Span {
 public:
  Span(Cat, Label, i64 = -1) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void set_steps(i64) {}
  void set_index(i64) {}
};

#endif  // MESHPRAM_TELEMETRY

}  // namespace meshpram::telemetry
