#include "telemetry/counters.hpp"

#include "util/error.hpp"

namespace meshpram::telemetry {

void MeshCounters::resize(int rows, int cols) {
  MP_REQUIRE(rows >= 1 && cols >= 1, "counter grid " << rows << 'x' << cols);
  rows_ = rows;
  cols_ = cols;
  const size_t n = static_cast<size_t>(nodes());
  max_queue_.assign(n, 0);
  forwarded_.assign(n, 0);
  copies_touched_.assign(n, 0);
  survivors_.assign(n, 0);
  retries_.assign(n, 0);
  copies_lost_.assign(n, 0);
}

void MeshCounters::reset() {
  max_queue_.assign(max_queue_.size(), 0);
  forwarded_.assign(forwarded_.size(), 0);
  copies_touched_.assign(copies_touched_.size(), 0);
  survivors_.assign(survivors_.size(), 0);
  retries_.assign(retries_.size(), 0);
  copies_lost_.assign(copies_lost_.size(), 0);
}

}  // namespace meshpram::telemetry
