#include "telemetry/counters.hpp"

#include "util/error.hpp"

namespace meshpram::telemetry {

void MeshCounters::resize(int rows, int cols) {
  MP_REQUIRE(rows >= 1 && cols >= 1, "counter grid " << rows << 'x' << cols);
  rows_ = rows;
  cols_ = cols;
  const size_t n = static_cast<size_t>(nodes());
  max_queue_.assign(n, 0);
  forwarded_.assign(n, 0);
  copies_touched_.assign(n, 0);
  survivors_.assign(n, 0);
  retries_.assign(n, 0);
  copies_lost_.assign(n, 0);
}

void MeshCounters::reset() {
  max_queue_.assign(max_queue_.size(), 0);
  forwarded_.assign(forwarded_.size(), 0);
  copies_touched_.assign(copies_touched_.size(), 0);
  survivors_.assign(survivors_.size(), 0);
  retries_.assign(retries_.size(), 0);
  copies_lost_.assign(copies_lost_.size(), 0);
}

void MeshCounters::adopt_range(const MeshCounters& src, i64 node_begin,
                               i64 node_end) {
  MP_REQUIRE(src.rows() == rows_ && src.cols() == cols_,
             "counter grids sized for different meshes");
  MP_REQUIRE(0 <= node_begin && node_begin <= node_end && node_end <= nodes(),
             "adopt_range [" << node_begin << ", " << node_end << ")");
  const auto lo = static_cast<size_t>(node_begin);
  const auto n = static_cast<size_t>(node_end - node_begin);
  auto copy = [lo, n](const std::vector<i64>& from, std::vector<i64>& to) {
    for (size_t i = 0; i < n; ++i) to[lo + i] = from[lo + i];
  };
  copy(src.max_queue_, max_queue_);
  copy(src.forwarded_, forwarded_);
  copy(src.copies_touched_, copies_touched_);
  copy(src.survivors_, survivors_);
  copy(src.retries_, retries_);
  copy(src.copies_lost_, copies_lost_);
}

}  // namespace meshpram::telemetry
