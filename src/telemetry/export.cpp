#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "util/error.hpp"
#include "util/table.hpp"

namespace meshpram::telemetry {

namespace {

/// Escapes a label for a JSON string literal (labels are plain identifiers,
/// but the writer must never emit malformed JSON regardless).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome timestamps are microseconds; emit with ns precision.
void write_us(std::ostream& os, i64 ns) {
  os << ns / 1000 << '.' << (ns % 1000 < 100 ? "0" : "")
     << (ns % 1000 < 10 ? "0" : "") << ns % 1000;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  MP_REQUIRE(out.is_open(), "cannot open " << path << " for writing");
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const BufferStats stats = buffer_stats();
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\"recorded\": "
     << stats.recorded << ", \"dropped\": " << stats.dropped
     << "},\n  \"traceEvents\": [\n";
  os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"meshpram\"}}";
  const int threads = thread_count();
  for (int tid = 0; tid < threads; ++tid) {
    os << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": "
       << tid << ", \"args\": {\"name\": \"mesh-thread-" << tid << "\"}}";
  }
  for (int tid = 0; tid < threads; ++tid) {
    for (const Event& e : thread_events(tid)) {
      os << ",\n    {\"name\": \"" << json_escape(label_name(e.label))
         << "\", \"cat\": \"" << cat_name(e.cat) << "\", \"ph\": \""
         << (e.cat == Cat::Counter ? 'C' : 'X') << "\", \"pid\": 0, \"tid\": "
         << tid << ", \"ts\": ";
      write_us(os, e.t0_ns);
      if (e.cat != Cat::Counter) {
        os << ", \"dur\": ";
        write_us(os, e.t1_ns - e.t0_ns);
      }
      os << ", \"args\": {";
      bool first = true;
      if (e.steps >= 0) {
        os << "\"steps\": " << e.steps;
        first = false;
      }
      if (e.index >= 0) {
        os << (first ? "" : ", ") << "\"index\": " << e.index;
      }
      os << "}}";
    }
  }
  os << "\n  ]\n}\n";
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out = open_or_throw(path);
  write_chrome_trace(out);
}

void write_heatmap_csv(const MeshCounters& counters, std::ostream& os) {
  os << "node,row,col,max_queue,forwarded,copies_touched,survivors,"
        "retries,copies_lost\n";
  for (i64 node = 0; node < counters.nodes(); ++node) {
    const auto i = static_cast<size_t>(node);
    os << node << ',' << node / counters.cols() << ',' << node % counters.cols()
       << ',' << counters.max_queue()[i] << ',' << counters.forwarded()[i]
       << ',' << counters.copies_touched()[i] << ','
       << counters.survivors()[i] << ',' << counters.retries()[i] << ','
       << counters.copies_lost()[i] << '\n';
  }
}

void write_heatmap_csv(const MeshCounters& counters, const std::string& path) {
  std::ofstream out = open_or_throw(path);
  write_heatmap_csv(counters, out);
}

void write_stage_summary(std::ostream& os) {
  struct Agg {
    i64 count = 0;
    i64 wall_ns = 0;
    i64 steps = 0;
  };
  // Keyed by (cat, label name) so the table groups Step/Stage/Phase/... rows.
  std::map<std::pair<int, std::string>, Agg> aggs;
  for (int tid = 0; tid < thread_count(); ++tid) {
    for (const Event& e : thread_events(tid)) {
      Agg& a = aggs[{static_cast<int>(e.cat), label_name(e.label)}];
      ++a.count;
      a.wall_ns += e.t1_ns - e.t0_ns;
      if (e.steps >= 0) a.steps += e.steps;
    }
  }
  Table t({"cat", "name", "count", "wall_ms", "mesh_steps"});
  for (const auto& [key, a] : aggs) {
    t.add(cat_name(static_cast<Cat>(key.first)), key.second, a.count,
          static_cast<double>(a.wall_ns) / 1e6, a.steps);
  }
  t.print(os);
}

void write_stage_summary(std::ostream& os, const PerfSample& perf) {
  write_stage_summary(os);
  // Hardware counters are sampled over the whole measured region, not per
  // span, so they render as a footer rather than a table column.
  if (!perf.available) return;
  Table t({"instructions", "ipc", "llc_refs", "llc_miss_rate",
           "branch_misses"});
  t.add(perf.instructions, perf.ipc(), perf.cache_refs, perf.llc_miss_rate(),
        perf.branch_misses);
  t.print(os);
}

}  // namespace meshpram::telemetry
