#include "telemetry/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/env.hpp"
#include "util/error.hpp"

namespace meshpram::telemetry {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::Step: return "step";
    case Cat::Stage: return "stage";
    case Cat::Phase: return "phase";
    case Cat::Region: return "region";
    case Cat::Counter: return "counter";
    case Cat::Fault: return "fault";
    case Cat::Serve: return "serve";
  }
  return "?";
}

#if MESHPRAM_TELEMETRY

namespace {

constexpr size_t kDefaultCapacity = size_t{1} << 17;  // 128k events/thread

/// One thread's ring. `head` counts events ever pushed; the owner stores it
/// with release order after writing the slot, the exporter loads it with
/// acquire, so a quiescent reader always sees complete events.
struct Ring {
  std::vector<Event> events;
  std::atomic<u64> head{0};
};

struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  // tid = index, stable forever
  std::vector<std::string> label_names;
  std::unordered_map<std::string, Label, SvHash, SvEq> label_index;
  size_t capacity = kDefaultCapacity;
};

/// Leaked singleton: rings registered by pool workers must outlive every
/// thread's exit, including after main() returns.
Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    if (const auto n = env_i64("MESHPRAM_TRACE_CAPACITY", 1, i64{1} << 32)) {
      reg->capacity = static_cast<size_t>(*n);
    }
    return reg;
  }();
  return *r;
}

std::atomic<bool> g_master{false};
std::atomic<bool> g_sampling{false};  // master && current frame sampled
std::atomic<u32> g_sample_every{1};
std::atomic<u64> g_frame{0};

void refresh_sampling() {
  const u32 every = g_sample_every.load(std::memory_order_relaxed);
  const u64 frame = g_frame.load(std::memory_order_relaxed);
  const bool sampled = every <= 1 || frame % every == 0;
  g_sampling.store(g_master.load(std::memory_order_relaxed) && sampled,
                   std::memory_order_relaxed);
}

Ring& local_ring() {
  thread_local Ring* ring = [] {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    reg.rings.push_back(std::make_unique<Ring>());
    reg.rings.back()->events.resize(reg.capacity);
    return reg.rings.back().get();
  }();
  return *ring;
}

}  // namespace

bool sampling_on() { return g_sampling.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_master.store(on, std::memory_order_relaxed);
  refresh_sampling();
}

bool master_enabled() { return g_master.load(std::memory_order_relaxed); }

void set_sample_every(u32 n) {
  g_sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  refresh_sampling();
}

void begin_frame() {
  g_frame.fetch_add(1, std::memory_order_relaxed);
  refresh_sampling();
}

Label intern(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.label_index.find(name);
  if (it != reg.label_index.end()) return it->second;
  const Label id = static_cast<Label>(reg.label_names.size());
  reg.label_names.emplace_back(name);
  reg.label_index.emplace(reg.label_names.back(), id);
  return id;
}

std::string label_name(Label label) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  if (label >= reg.label_names.size()) return "?";
  return reg.label_names[label];
}

i64 now_ns() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - base)
      .count();
}

void record(const Event& e) {
  Ring& ring = local_ring();
  const u64 head = ring.head.load(std::memory_order_relaxed);
  ring.events[static_cast<size_t>(head % ring.events.size())] = e;
  ring.head.store(head + 1, std::memory_order_release);
}

void record_counter(Label label, Cat cat, i64 value) {
  Event e;
  e.t0_ns = e.t1_ns = now_ns();
  e.steps = value;
  e.label = label;
  e.cat = cat;
  record(e);
}

void clear() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& ring : reg.rings) ring->head.store(0, std::memory_order_release);
}

void set_ring_capacity(size_t events) {
  MP_REQUIRE(events >= 1, "ring capacity " << events);
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.capacity = events;
  for (auto& ring : reg.rings) {
    ring->events.assign(events, Event{});
    ring->head.store(0, std::memory_order_release);
  }
}

BufferStats buffer_stats() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  BufferStats out;
  out.threads = static_cast<int>(reg.rings.size());
  for (const auto& ring : reg.rings) {
    const u64 head = ring->head.load(std::memory_order_acquire);
    out.recorded += head;
    const u64 cap = ring->events.size();
    if (head > cap) out.dropped += head - cap;
  }
  return out;
}

int thread_count() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  return static_cast<int>(reg.rings.size());
}

std::vector<Event> thread_events(int tid) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  MP_REQUIRE(tid >= 0 && tid < static_cast<int>(reg.rings.size()),
             "telemetry thread id " << tid);
  const Ring& ring = *reg.rings[static_cast<size_t>(tid)];
  const u64 head = ring.head.load(std::memory_order_acquire);
  const u64 cap = ring.events.size();
  const u64 count = std::min(head, cap);
  std::vector<Event> out;
  out.reserve(static_cast<size_t>(count));
  for (u64 i = head - count; i < head; ++i) {
    out.push_back(ring.events[static_cast<size_t>(i % cap)]);
  }
  return out;
}

#endif  // MESHPRAM_TELEMETRY

}  // namespace meshpram::telemetry
