#include "telemetry/perf_counters.hpp"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace meshpram::telemetry {

#if defined(__linux__)

namespace {

int open_event(u32 type, u64 config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // group enabled via the leader
  attr.exclude_kernel = 1;               // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  attr.inherit = 0;
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

// Order must match PerfSample field extraction in stop().
struct EventSpec {
  u32 type;
  u64 config;
};
constexpr EventSpec kSpecs[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

}  // namespace

PerfCounters::PerfCounters() {
  static_assert(sizeof(kSpecs) / sizeof(kSpecs[0]) == kEvents);
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = open_event(kSpecs[i].type, kSpecs[i].config,
                         i == 0 ? -1 : fds_[0]);
    if (fds_[i] < 0) {
      // Partial groups are useless for the fixed read layout: close and
      // report the whole facility as unavailable.
      for (int j = 0; j < i; ++j) {
        close(fds_[j]);
        fds_[j] = -1;
      }
      return;
    }
  }
  leader_ = fds_[0];
}

PerfCounters::~PerfCounters() {
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
}

void PerfCounters::start() {
  if (leader_ < 0) return;
  ioctl(leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounters::stop() {
  PerfSample s;
  if (leader_ < 0) return s;
  ioctl(leader_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
  u64 buf[1 + kEvents];
  const ssize_t want = static_cast<ssize_t>(sizeof(buf));
  if (read(leader_, buf, sizeof(buf)) != want ||
      buf[0] != static_cast<u64>(kEvents)) {
    return s;
  }
  s.available = true;
  s.instructions = static_cast<i64>(buf[1]);
  s.cycles = static_cast<i64>(buf[2]);
  s.cache_refs = static_cast<i64>(buf[3]);
  s.cache_misses = static_cast<i64>(buf[4]);
  s.branch_misses = static_cast<i64>(buf[5]);
  return s;
}

#else  // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
PerfSample PerfCounters::stop() { return PerfSample{}; }

#endif

}  // namespace meshpram::telemetry
