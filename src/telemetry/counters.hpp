// Per-node congestion counters for the simulated mesh (DESIGN.md §8).
//
// Six counters per node, accumulated by the instrumented hot loops:
//   max_queue       — peak transit-queue depth the node ever saw (routing)
//   forwarded       — packets the node forwarded over its links (routing)
//   copies_touched  — copy slots read/written at the node (access stage 1)
//   survivors       — copies CULLING finally selected at the node
//   retries         — hop attempts the node retried under fault injection
//                     (stall backoff and link-level drop retransmissions)
//   copies_lost     — requested copies living on the node's dead module
//
// Determinism: counter updates come either from sequential per-node loops or
// from region workers that own the node under the disjoint-region rule
// (mesh/parallel.hpp), so every node's cell has exactly one writer at a time
// and all four grids are bit-identical at any thread count; the step merge in
// region-index order then never observes a torn or order-dependent value.
// Mesh owns one MeshCounters (Mesh::counters()); recording sites gate on
// telemetry::sampling_on(), so the grids are all-zero unless tracing is on.
#pragma once

#include <cstddef>
#include <vector>

#include "util/math.hpp"

namespace meshpram::telemetry {

class MeshCounters {
 public:
  MeshCounters() = default;

  /// Sizes the grids for a rows x cols mesh and zeroes every counter.
  void resize(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  i64 nodes() const { return static_cast<i64>(rows_) * cols_; }

  /// Zeroes all counters, keeping the grid size.
  void reset();

  void observe_queue(i32 node, i64 depth) {
    i64& q = max_queue_[static_cast<size_t>(node)];
    if (depth > q) q = depth;
  }
  void add_forwarded(i32 node, i64 n) {
    forwarded_[static_cast<size_t>(node)] += n;
  }
  void add_copies_touched(i32 node, i64 n) {
    copies_touched_[static_cast<size_t>(node)] += n;
  }
  void add_survivors(i32 node, i64 n) {
    survivors_[static_cast<size_t>(node)] += n;
  }
  void add_retries(i32 node, i64 n) {
    retries_[static_cast<size_t>(node)] += n;
  }
  void add_copies_lost(i32 node, i64 n) {
    copies_lost_[static_cast<size_t>(node)] += n;
  }

  /// Copies the counters of nodes [node_begin, node_end) from `src` into
  /// this grid (same mesh shape required). The distributed machine merges
  /// per-rank counter grids band by band: each rank's owned cells carry the
  /// authoritative values, so adopting every owner's range reconstructs the
  /// single-process grid exactly.
  void adopt_range(const MeshCounters& src, i64 node_begin, i64 node_end);

  const std::vector<i64>& max_queue() const { return max_queue_; }
  const std::vector<i64>& forwarded() const { return forwarded_; }
  const std::vector<i64>& copies_touched() const { return copies_touched_; }
  const std::vector<i64>& survivors() const { return survivors_; }
  const std::vector<i64>& retries() const { return retries_; }
  const std::vector<i64>& copies_lost() const { return copies_lost_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<i64> max_queue_;
  std::vector<i64> forwarded_;
  std::vector<i64> copies_touched_;
  std::vector<i64> survivors_;
  std::vector<i64> retries_;
  std::vector<i64> copies_lost_;
};

}  // namespace meshpram::telemetry
