#include "telemetry/trace_load.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace meshpram::telemetry {

namespace {

/// Minimal JSON value: enough structure for the loader, no external deps.
struct Json {
  enum class Type { Null, Bool, Num, Str, Arr, Obj };
  Type type = Type::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* get(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : s_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    MP_REQUIRE(i_ == s_.size(), "trailing garbage at JSON offset " << i_);
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  char peek() {
    skip_ws();
    MP_REQUIRE(i_ < s_.size(), "unexpected end of JSON");
    return s_[i_];
  }

  void expect(char c) {
    MP_REQUIRE(peek() == c, "expected '" << c << "' at JSON offset " << i_);
    ++i_;
  }

  bool consume(char c) {
    if (i_ < s_.size() && peek() == c) {
      ++i_;
      return true;
    }
    return false;
  }

  Json value() {
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': {
        Json j;
        j.type = Json::Type::Bool;
        j.b = true;
        return keyword("true", std::move(j));
      }
      case 'f': {
        Json j;
        j.type = Json::Type::Bool;
        return keyword("false", std::move(j));
      }
      case 'n': return keyword("null", Json{});
      default: return number();
    }
  }

  Json keyword(std::string_view word, Json result) {
    MP_REQUIRE(s_.compare(i_, word.size(), word) == 0,
               "bad JSON keyword at offset " << i_);
    i_ += word.size();
    return result;
  }

  Json object() {
    expect('{');
    Json j;
    j.type = Json::Type::Obj;
    if (consume('}')) return j;
    do {
      Json key = string_value();
      expect(':');
      j.obj.emplace_back(std::move(key.str), value());
    } while (consume(','));
    expect('}');
    return j;
  }

  Json array() {
    expect('[');
    Json j;
    j.type = Json::Type::Arr;
    if (consume(']')) return j;
    do {
      j.arr.push_back(value());
    } while (consume(','));
    expect(']');
    return j;
  }

  Json string_value() {
    expect('"');
    Json j;
    j.type = Json::Type::Str;
    while (true) {
      MP_REQUIRE(i_ < s_.size(), "unterminated JSON string");
      const char c = s_[i_++];
      if (c == '"') break;
      if (c != '\\') {
        j.str += c;
        continue;
      }
      MP_REQUIRE(i_ < s_.size(), "unterminated JSON escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': j.str += '"'; break;
        case '\\': j.str += '\\'; break;
        case '/': j.str += '/'; break;
        case 'b': j.str += '\b'; break;
        case 'f': j.str += '\f'; break;
        case 'n': j.str += '\n'; break;
        case 'r': j.str += '\r'; break;
        case 't': j.str += '\t'; break;
        case 'u': {
          MP_REQUIRE(i_ + 4 <= s_.size(), "truncated \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16));
          i_ += 4;
          // Loader-internal names are ASCII; map BMP escapes to UTF-8.
          if (code < 0x80) {
            j.str += static_cast<char>(code);
          } else if (code < 0x800) {
            j.str += static_cast<char>(0xc0 | (code >> 6));
            j.str += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            j.str += static_cast<char>(0xe0 | (code >> 12));
            j.str += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            j.str += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: MP_REQUIRE(false, "bad JSON escape '\\" << e << '\'');
      }
    }
    return j;
  }

  Json number() {
    const size_t start = i_;
    if (consume('-')) {
    }
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    MP_REQUIRE(i_ > start, "bad JSON number at offset " << start);
    Json j;
    j.type = Json::Type::Num;
    j.num = std::strtod(s_.substr(start, i_ - start).c_str(), nullptr);
    return j;
  }

  std::string s_;
  size_t i_ = 0;
};

double num_or(const Json* v, double fallback) {
  return v != nullptr && v->type == Json::Type::Num ? v->num : fallback;
}

std::string str_or(const Json* v, std::string fallback) {
  return v != nullptr && v->type == Json::Type::Str ? v->str
                                                    : std::move(fallback);
}

}  // namespace

LoadedTrace load_chrome_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  Parser parser(buf.str());
  const Json root = parser.parse();
  MP_REQUIRE(root.type == Json::Type::Obj, "trace root is not a JSON object");
  const Json* events = root.get("traceEvents");
  MP_REQUIRE(events != nullptr && events->type == Json::Type::Arr,
             "trace has no traceEvents array");

  LoadedTrace out;
  if (const Json* other = root.get("otherData")) {
    out.recorded = static_cast<u64>(num_or(other->get("recorded"), 0));
    out.dropped = static_cast<u64>(num_or(other->get("dropped"), 0));
  }
  for (const Json& ev : events->arr) {
    MP_REQUIRE(ev.type == Json::Type::Obj, "trace event is not an object");
    LoadedEvent e;
    const std::string ph = str_or(ev.get("ph"), "?");
    e.ph = ph.empty() ? '?' : ph[0];
    if (e.ph == 'M') continue;
    e.name = str_or(ev.get("name"), "");
    e.cat = str_or(ev.get("cat"), "");
    e.tid = static_cast<int>(num_or(ev.get("tid"), 0));
    e.ts_us = num_or(ev.get("ts"), 0);
    e.dur_us = num_or(ev.get("dur"), 0);
    if (const Json* args = ev.get("args")) {
      e.steps = static_cast<i64>(num_or(args->get("steps"), -1));
      e.index = static_cast<i64>(num_or(args->get("index"), -1));
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

LoadedTrace load_chrome_trace(const std::string& path) {
  std::ifstream in(path);
  MP_REQUIRE(in.is_open(), "cannot open trace file " << path);
  return load_chrome_trace(in);
}

}  // namespace meshpram::telemetry
