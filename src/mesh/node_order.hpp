// Physical node-order abstraction: where a node's hot state lives in memory.
//
// Logically the mesh is addressed by node id (r * cols + c, row-major) and
// every algorithm keeps using that addressing. Physically, the per-node state
// arrays (packet buffers, copy stores, the protocol's per-node bitmaps) are
// laid out by *slot*, and a NodeOrder is the bijection id <-> slot. Row-major
// is the identity; Hilbert places nodes along a generalized Hilbert curve
// (works for any rows x cols rectangle, not just powers of two).
//
// Why: the paper's protocol is region-recursive — every CULLING iteration,
// sort round and routing sweep walks one tessellation level. Under row-major
// layout a level-i submesh of side s touches s widely separated row segments;
// under the Hilbert order any aligned submesh occupies O(1) contiguous runs
// of the slot space *at every recursion level at once* (the cache-oblivious
// mesh layout of Bender et al., arXiv:0705.1033). No tuning parameter, no
// per-level re-layout.
//
// Contract: the order is purely physical. Results, counted mesh steps, and
// congestion counters are bit-identical for every NodeOrderKind (enforced by
// the ctest -L layout suite); only wall-clock and cache-miss rates may move.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/math.hpp"

namespace meshpram {

enum class NodeOrderKind { RowMajor, Hilbert };

/// Stable lower-case name ("row-major", "hilbert") for logs and bench JSON.
const char* node_order_name(NodeOrderKind kind);

/// Parses a node-order name (the MESHPRAM_NODE_ORDER values); nullopt if
/// unrecognized.
std::optional<NodeOrderKind> parse_node_order(std::string_view s);

/// Process-wide default order: MESHPRAM_NODE_ORDER if set and valid
/// (a malformed value falls back with a warning), else Hilbert.
NodeOrderKind node_order_default();

/// Overrides node_order_default() (nullopt restores the environment answer).
/// For the layout test suite; not thread-safe against concurrent Mesh
/// construction.
void set_node_order_override(std::optional<NodeOrderKind> kind);

/// Fills `id_at_slot` with the node id (r * cols + c) occupying each physical
/// slot, in curve order. Exposed separately from NodeOrder so region-local
/// consumers (the meshsort block slab) can lay out their own storage along
/// the same curve without paying for the inverse table.
void fill_curve_order(int rows, int cols, NodeOrderKind kind,
                      std::vector<i32>& id_at_slot);

/// The id <-> slot bijection for one mesh extent. Row-major keeps no tables
/// (identity); Hilbert precomputes both directions (2 * 4 bytes per node).
class NodeOrder {
 public:
  NodeOrder() = default;
  NodeOrder(int rows, int cols, NodeOrderKind kind);

  NodeOrderKind kind() const { return kind_; }
  bool identity() const { return slot_of_.empty(); }

  /// Physical slot of node `id`.
  i32 slot_of(i32 id) const {
    return slot_of_.empty() ? id : slot_of_[static_cast<size_t>(id)];
  }

  /// Node id stored at physical slot `slot`.
  i32 id_of(i32 slot) const {
    return id_of_.empty() ? slot : id_of_[static_cast<size_t>(slot)];
  }

 private:
  NodeOrderKind kind_ = NodeOrderKind::RowMajor;
  std::vector<i32> slot_of_;
  std::vector<i32> id_of_;
};

}  // namespace meshpram
