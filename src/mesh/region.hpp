// Rectangular submesh views and their snake (boustrophedon) ordering.
//
// The paper's access protocol runs each stage "in parallel and independently
// in every level-i submesh": Region is the view type all mesh algorithms
// (sorting, scanning, routing) operate on. The snake order — row 0 left to
// right, row 1 right to left, ... — is the canonical linear order used for
// sorted sequences and balanced distributions, because consecutive snake
// positions are mesh neighbors.
#pragma once

#include <ostream>
#include <vector>

#include "mesh/geometry.hpp"

namespace meshpram {

class Region {
 public:
  Region() = default;
  Region(int r0, int c0, int rows, int cols);

  int r0() const { return r0_; }
  int c0() const { return c0_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  i64 size() const { return static_cast<i64>(rows_) * cols_; }

  bool contains(Coord x) const {
    return r0_ <= x.r && x.r < r0_ + rows_ && c0_ <= x.c && x.c < c0_ + cols_;
  }

  /// Coordinate at snake position s (s in [0, size())).
  Coord at_snake(i64 s) const;

  /// Snake position of coordinate x (must be contained).
  i64 snake_of(Coord x) const;

  /// Splits the region into exactly k disjoint non-empty subrectangles with
  /// near-equal areas, arranged as a g_r x g_c grid with proportional cuts.
  /// Requires 1 <= k <= size(). When k does not factor to fit the rectangle
  /// exactly, the grid may have up to g_r - 1 leftover cells; their nodes
  /// belong to no subregion (they still route traffic for the parent).
  std::vector<Region> grid_split(i64 k) const;

  friend bool operator==(const Region& a, const Region& b) {
    return a.r0_ == b.r0_ && a.c0_ == b.c0_ && a.rows_ == b.rows_ &&
           a.cols_ == b.cols_;
  }
  friend std::ostream& operator<<(std::ostream& os, const Region& g) {
    return os << '[' << g.r0_ << ',' << g.c0_ << ' ' << g.rows_ << 'x'
              << g.cols_ << ']';
  }

 private:
  int r0_ = 0;
  int c0_ = 0;
  int rows_ = 0;
  int cols_ = 0;
};

/// Incremental walk of a region in snake order: O(1) advance with no div/mod,
/// replacing repeated Region::at_snake(s) recomputation (O(extent) arithmetic
/// per visit) in the per-node hot loops. With a positive `id_stride` (the
/// mesh column count) the cursor also maintains the global node id
/// incrementally; Mesh::cursor() constructs it that way.
class RegionCursor {
 public:
  explicit RegionCursor(const Region& g, int id_stride = 0)
      : r_(g.r0()),
        c_(g.c0()),
        c_lo_(g.c0()),
        c_hi_(g.c0() + g.cols() - 1),
        east_(true),
        pos_(0),
        end_(g.size()),
        stride_(id_stride),
        id_(static_cast<i64>(g.r0()) * id_stride + g.c0()) {}

  /// Cursor starting at snake position `start_pos` (0 <= start_pos <= size()).
  /// Lets a worker walk just its chunk of the region: the stripe/chunk
  /// parallel loops hand each worker a contiguous snake-position range.
  RegionCursor(const Region& g, int id_stride, i64 start_pos)
      : RegionCursor(g, id_stride) {
    if (start_pos >= end_) {
      pos_ = end_;
      return;
    }
    const i64 row = start_pos / g.cols();
    const i64 off = start_pos - row * g.cols();
    r_ = g.r0() + static_cast<int>(row);
    east_ = (row % 2) == 0;
    c_ = east_ ? c_lo_ + static_cast<int>(off) : c_hi_ - static_cast<int>(off);
    pos_ = start_pos;
    id_ = static_cast<i64>(r_) * id_stride + c_;
  }

  bool valid() const { return pos_ < end_; }
  /// Snake position in [0, region.size()).
  i64 pos() const { return pos_; }
  Coord coord() const { return {r_, c_}; }
  /// Global node id; only meaningful when constructed with an id stride.
  i32 id() const { return static_cast<i32>(id_); }

  void advance() {
    ++pos_;
    if (east_ ? c_ < c_hi_ : c_ > c_lo_) {
      const int dc = east_ ? 1 : -1;
      c_ += dc;
      id_ += dc;
    } else {
      ++r_;
      id_ += stride_;
      east_ = !east_;
    }
  }

 private:
  int r_, c_;
  int c_lo_, c_hi_;
  bool east_;
  i64 pos_;
  i64 end_;
  int stride_;
  i64 id_;
};

}  // namespace meshpram
