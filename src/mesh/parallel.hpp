// Deterministic parallel execution over disjoint submesh regions.
//
// The paper runs each protocol phase "in parallel and independently in every
// level-i submesh"; parallel_for_regions turns that logical parallelism into
// host parallelism. Each region is handed to one pool worker which may touch
// ONLY the node state (packet buffers, copy stores) inside its region — the
// disjoint-region ownership rule, checked in debug builds. The per-region
// step costs are returned indexed like `regions`, so the caller merges them
// into StepCounter / ParallelCost in region order after the join: counted
// mesh steps are bit-identical to a sequential run at any thread count.
#pragma once

#include <functional>
#include <vector>

#include "mesh/machine.hpp"
#include "mesh/region.hpp"
#include "mesh/step_counter.hpp"

namespace meshpram {

/// Runs fn(region) for every region of `regions` on the execution pool and
/// returns the per-region step costs in input order. `fn` must obey the
/// disjoint-region ownership rule: it may read shared immutable state
/// (placements, maps) but may only mutate mesh state of nodes inside the
/// region it was handed. Regions must be disjoint and contained in the mesh
/// (disjointness is verified in debug builds; containment always).
std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&)>& fn);

/// Indexed variant: fn also receives the region's index in `regions`, for
/// callers that collect per-region side results into pre-sized arrays.
std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&, size_t)>& fn);

/// Convenience: parallel_for_regions + ParallelCost::observe in region order.
/// Returns the max per-region cost (the quantity the theorems charge).
i64 parallel_max_regions(Mesh& mesh, const std::vector<Region>& regions,
                         const std::function<i64(const Region&)>& fn);

}  // namespace meshpram
