// Deterministic parallel execution over disjoint submesh regions.
//
// The paper runs each protocol phase "in parallel and independently in every
// level-i submesh"; parallel_for_regions turns that logical parallelism into
// host parallelism. Each region is handed to one pool worker which may touch
// ONLY the node state (packet buffers, copy stores) inside its region — the
// disjoint-region ownership rule, checked in debug builds. The per-region
// step costs are returned indexed like `regions`, so the caller merges them
// into StepCounter / ParallelCost in region order after the join: counted
// mesh steps are bit-identical to a sequential run at any thread count.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "mesh/machine.hpp"
#include "mesh/region.hpp"
#include "mesh/step_counter.hpp"

namespace meshpram {

/// Sense-reversing spin barrier for the intra-region stripe teams (routing
/// kernels split one region into row stripes and synchronize once per sweep).
/// Spinning (with yield) rather than blocking: the sweeps between barriers
/// are microseconds, and every team member owns a pool thread for the whole
/// call, so there is nothing better for a waiter to do.
///
/// MP_ASSERT/MP_REQUIRE stay armed in release builds, so any team member can
/// throw between barriers; kill() aborts the rendezvous — every current and
/// future wait() returns false and the workers unwind instead of deadlocking.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  /// Blocks until all parties arrive; returns false if the barrier was
  /// killed (the caller must stop using shared state and return).
  bool wait() {
    if (parties_ == 1) return !killed_.load(std::memory_order_acquire);
    if (killed_.load(std::memory_order_acquire)) return false;
    const u64 phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == phase) {
        if (killed_.load(std::memory_order_acquire)) return false;
        std::this_thread::yield();
      }
    }
    return !killed_.load(std::memory_order_acquire);
  }

  /// Aborts the rendezvous permanently (exception escape hatch).
  void kill() { killed_.store(true, std::memory_order_release); }

 private:
  int parties_;
  std::atomic<i64> arrived_{0};
  std::atomic<u64> phase_{0};
  std::atomic<bool> killed_{false};
};

/// Runs fn(region) for every region of `regions` on the execution pool and
/// returns the per-region step costs in input order. `fn` must obey the
/// disjoint-region ownership rule: it may read shared immutable state
/// (placements, maps) but may only mutate mesh state of nodes inside the
/// region it was handed. Regions must be disjoint and contained in the mesh
/// (disjointness is verified in debug builds; containment always).
std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&)>& fn);

/// Indexed variant: fn also receives the region's index in `regions`, for
/// callers that collect per-region side results into pre-sized arrays.
std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&, size_t)>& fn);

/// Convenience: parallel_for_regions + ParallelCost::observe in region order.
/// Returns the max per-region cost (the quantity the theorems charge).
i64 parallel_max_regions(Mesh& mesh, const std::vector<Region>& regions,
                         const std::function<i64(const Region&)>& fn);

/// Minimum region size (in nodes) before a routing/sorting kernel engages
/// its intra-region worker team (route_greedy stripes, the meshsort
/// odd-even rounds). Default 4096, overridable via the
/// MESHPRAM_STRIPE_MIN_NODES environment variable; set_stripe_min_nodes(0)
/// restores that default. Purely a performance knob — results never depend
/// on it (or on the thread count).
void set_stripe_min_nodes(i64 nodes);
i64 stripe_min_nodes();

/// Chunk-parallel snake walk of `region`: splits the snake positions into
/// contiguous chunks and runs fn(cursor, end_pos) per chunk, where `cursor`
/// starts at the chunk's first position and fn advances it up to (not past)
/// `end_pos`. Falls back to one serial chunk when the pool has one thread,
/// the caller is already a pool worker, or the region is smaller than
/// 2*min_grain. Per-position work must be disjoint across positions so the
/// result is identical under any chunking (same rule as for_each_chunk).
void for_each_region_chunk(const Mesh& mesh, const Region& region,
                           i64 min_grain,
                           const std::function<void(RegionCursor&, i64)>& fn);

}  // namespace meshpram
