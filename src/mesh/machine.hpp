// The simulated mesh-connected computer.
//
// n = rows*cols processors; each has a packet buffer (requests currently held
// at the node) and a local copy store (its share of the distributed PRAM
// memory). Links are full-duplex, one word per direction per step; time is
// charged through StepCounter by the algorithms in src/routing.
//
// The simulator performs all data movement for real — a packet is physically
// appended to the destination node's buffer only when a simulated transfer
// happens — so congestion and queueing behaviour are emergent, not modeled.
//
// Buffer reuse contract: clear_buffers() and the per-node b.clear() calls in
// the protocol keep each buffer's heap capacity, so steady-state PRAM steps
// recycle the same allocations instead of hitting the allocator per phase.
// Thread-safety: concurrent access to DISJOINT node ids (buf/store) is safe;
// the parallel engine (mesh/parallel.hpp) relies on exactly that.
#pragma once

#include <atomic>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "mesh/arena.hpp"
#include "mesh/geometry.hpp"
#include "mesh/node_order.hpp"
#include "mesh/packet.hpp"
#include "mesh/region.hpp"
#include "mesh/step_counter.hpp"
#include "telemetry/counters.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

/// Commutative fault-event tally shared by all routing kernels of one PRAM
/// step (atomic adds only, so the totals are thread-count invariant). The
/// protocol drains it into FaultReport after the step's parallel work joins.
struct FaultTally {
  std::atomic<i64> retried{0};
  std::atomic<i64> dropped{0};
  std::atomic<i64> detoured{0};

  void reset() {
    retried.store(0, std::memory_order_relaxed);
    dropped.store(0, std::memory_order_relaxed);
    detoured.store(0, std::memory_order_relaxed);
  }
  /// Adds the tallied events to `report` and zeroes the tally.
  void drain_into(fault::FaultReport& report) {
    report.packets_retried += retried.exchange(0, std::memory_order_relaxed);
    report.packets_dropped += dropped.exchange(0, std::memory_order_relaxed);
    report.packets_detoured += detoured.exchange(0, std::memory_order_relaxed);
  }
};

/// One replicated copy held in a node's local memory: value + timestamp
/// (the majority/timestamp machinery of Gifford/Thomas/UW87, Def. 2).
struct CopySlot {
  i64 value = 0;
  i64 timestamp = -1;
};

/// A node's local copy memory: flat open-addressing hash table from copy id
/// to CopySlot (linear probing, power-of-two capacity). Replaces the previous
/// std::unordered_map<u64, CopySlot> — one contiguous allocation per node
/// instead of a heap node per copy, so the stage-1 access loop walks cache
/// lines, not pointers. Copies are only ever inserted or overwritten (the
/// protocol never deletes), which keeps probing tombstone-free.
class CopyStore {
 public:
  /// Slot for `key`, inserting a default CopySlot if absent.
  CopySlot& operator[](u64 key) {
    MP_REQUIRE(key != kEmptyKey, "copy id collides with the empty sentinel");
    if (entries_.empty() || 2 * (count_ + 1) > entries_.size()) grow();
    Entry& e = probe(key);
    if (e.key == kEmptyKey) {
      e.key = key;
      e.slot = CopySlot{};
      ++count_;
    }
    return e.slot;
  }

  /// Slot for `key`, or nullptr if the node holds no such copy.
  const CopySlot* find(u64 key) const {
    if (entries_.empty()) return nullptr;
    const Entry& e = probe(key);
    return e.key == kEmptyKey ? nullptr : &e.slot;
  }

  i64 size() const { return static_cast<i64>(count_); }
  bool empty() const { return count_ == 0; }

  /// Drops every held copy and releases the table. The distributed workers
  /// use this to shed foreign bands after restoring a full snapshot.
  void clear() {
    entries_.clear();
    count_ = 0;
  }

  /// Visits every held copy as f(key, slot), in hash-table order (arbitrary
  /// but complete). Serialization callers sort by key for canonical output.
  template <class F>
  void for_each(F&& f) const {
    for (const Entry& e : entries_) {
      if (e.key != kEmptyKey) f(e.key, e.slot);
    }
  }

 private:
  static constexpr u64 kEmptyKey = ~0ULL;

  struct Entry {
    u64 key = kEmptyKey;
    CopySlot slot;
  };

  static u64 mix(u64 x) {
    // splitmix64 finalizer: full-avalanche hash of the copy id.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  const Entry& probe(u64 key) const {
    const size_t mask = entries_.size() - 1;
    size_t i = static_cast<size_t>(mix(key)) & mask;
    while (entries_[i].key != kEmptyKey && entries_[i].key != key) {
      i = (i + 1) & mask;
    }
    return entries_[i];
  }

  Entry& probe(u64 key) {
    return const_cast<Entry&>(std::as_const(*this).probe(key));
  }

  void grow() {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(old.empty() ? 16 : old.size() * 2, Entry{});
    for (const Entry& e : old) {
      if (e.key != kEmptyKey) probe(e.key) = e;
    }
  }

  std::vector<Entry> entries_;
  size_t count_ = 0;
};

class Mesh {
 public:
  /// `order` picks the physical layout of the per-node state arrays (buffers
  /// and copy stores); it is invisible to every logical observer (see
  /// mesh/node_order.hpp). Defaults to the process-wide node_order_default().
  explicit Mesh(int rows, int cols,
                NodeOrderKind order = node_order_default());

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  i64 size() const { return static_cast<i64>(rows_) * cols_; }
  Region whole() const { return Region(0, 0, rows_, cols_); }

  i32 node_id(Coord x) const {
    MP_REQUIRE(0 <= x.r && x.r < rows_ && 0 <= x.c && x.c < cols_,
               "coordinate " << x << " outside " << rows_ << 'x' << cols_);
    return x.r * cols_ + x.c;
  }

  Coord coord(i32 id) const {
    MP_REQUIRE(0 <= id && id < size(), "node id " << id);
    return {id / cols_, id % cols_};
  }

  /// Node id at snake position s of `region`.
  i32 node_at(const Region& region, i64 s) const {
    return node_id(region.at_snake(s));
  }

  /// Incremental snake-order walk of `region` yielding global node ids in
  /// O(1) per step — the hot-loop replacement for node_at(region, s).
  RegionCursor cursor(const Region& region) const {
    return RegionCursor(region, cols_);
  }

  std::vector<Packet>& buf(i32 id) {
    MP_REQUIRE(0 <= id && id < size(), "node id " << id);
    return bufs_[static_cast<size_t>(order_.slot_of(id))];
  }

  const std::vector<Packet>& buf(i32 id) const {
    MP_REQUIRE(0 <= id && id < size(), "node id " << id);
    return bufs_[static_cast<size_t>(order_.slot_of(id))];
  }

  CopyStore& store(i32 id) {
    MP_REQUIRE(0 <= id && id < size(), "node id " << id);
    return stores_[static_cast<size_t>(order_.slot_of(id))];
  }
  const CopyStore& store(i32 id) const {
    MP_REQUIRE(0 <= id && id < size(), "node id " << id);
    return stores_[static_cast<size_t>(order_.slot_of(id))];
  }

  /// The physical id <-> slot bijection of this mesh's per-node arrays.
  /// Per-node sweeps whose body is node-independent iterate slots (via
  /// for_each_node below) so consecutive work touches consecutive memory.
  const NodeOrder& order() const { return order_; }

  /// Runs fn(id) for every node, chunked over the execution pool in physical
  /// slot order. Legal whenever per-node work is disjoint and the caller's
  /// merges are commutative (the for_each_chunk contract): the set of nodes
  /// visited is the same, only the schedule changes with the layout.
  template <class F>
  void for_each_node(i64 min_grain, F&& fn) const;

  StepCounter& clock() { return clock_; }
  const StepCounter& clock() const { return clock_; }

  /// Per-node congestion counters, filled by the instrumented hot loops when
  /// telemetry sampling is on (all-zero otherwise). Same thread-safety rule
  /// as buf()/store(): disjoint nodes may be updated concurrently.
  telemetry::MeshCounters& counters() { return counters_; }
  const telemetry::MeshCounters& counters() const { return counters_; }

  /// Total packets currently buffered in `region`.
  i64 total_packets(const Region& region) const;
  /// Maximum per-node buffer occupancy in `region`.
  i64 max_load(const Region& region) const;

  /// Drops every buffered packet (copy stores are preserved). Buffer
  /// capacities are kept so steady-state steps reuse the allocations.
  void clear_buffers();
  /// Same, restricted to the nodes of `region`.
  void clear_buffers(const Region& region);

  /// Gathers (and removes) all packets buffered in `region`, in snake order.
  /// The result is reserved up-front via total_packets; the emptied node
  /// buffers keep their capacity (reuse contract above).
  std::vector<Packet> drain(const Region& region);

  /// drain() into a caller-owned buffer (cleared first, capacity kept), so
  /// steady-state sort calls recycle one allocation instead of returning a
  /// fresh vector per call.
  void drain_into(const Region& region, std::vector<Packet>& out);

  /// Reusable flat transit arenas for route_greedy (mesh/arena.hpp). One
  /// lease per route call; pooled because parallel_for_regions runs several
  /// route calls concurrently. Makes Mesh non-copyable (the pool holds a
  /// mutex), which the rest of the system already assumed.
  ArenaPool& route_arenas() { return arenas_; }

  /// Installs a fault plan (non-owning; nullptr = fault-free). The plan must
  /// be immutable and outlive the mesh's use of it; with no plan (or an empty
  /// one) every hot path stays on the exact fault-free code.
  void set_fault_plan(const fault::FaultPlan* plan) {
    MP_REQUIRE(plan == nullptr ||
                   (plan->rows() == rows_ && plan->cols() == cols_),
               "fault plan sized for a different mesh");
    fault_plan_ = (plan != nullptr && plan->empty()) ? nullptr : plan;
  }
  const fault::FaultPlan* fault_plan() const { return fault_plan_; }

  /// Current PRAM step, fed to the plan's transient-fault schedules. Set by
  /// the access protocol at the top of each step.
  void set_fault_now(i64 pram_step) { fault_now_ = pram_step; }
  i64 fault_now() const { return fault_now_; }

  /// Fault events tallied by the routing kernels since the last drain.
  FaultTally& fault_tally() { return fault_tally_; }

  /// True when `id` is an alive processor (no plan = everything alive).
  bool node_alive(i32 id) const {
    return fault_plan_ == nullptr || !fault_plan_->node_dead(id);
  }

 private:
  int rows_;
  int cols_;
  NodeOrder order_;
  std::vector<std::vector<Packet>> bufs_;
  std::vector<CopyStore> stores_;
  StepCounter clock_;
  telemetry::MeshCounters counters_;
  ArenaPool arenas_;
  const fault::FaultPlan* fault_plan_ = nullptr;
  i64 fault_now_ = 0;
  FaultTally fault_tally_;
};

template <class F>
void Mesh::for_each_node(i64 min_grain, F&& fn) const {
  execution_pool().for_each_chunk(size(), min_grain, [&](i64 lo, i64 hi) {
    for (i64 slot = lo; slot < hi; ++slot) {
      fn(order_.id_of(static_cast<i32>(slot)));
    }
  });
}

}  // namespace meshpram
