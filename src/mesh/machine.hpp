// The simulated mesh-connected computer.
//
// n = rows*cols processors; each has a packet buffer (requests currently held
// at the node) and a local copy store (its share of the distributed PRAM
// memory). Links are full-duplex, one word per direction per step; time is
// charged through StepCounter by the algorithms in src/routing.
//
// The simulator performs all data movement for real — a packet is physically
// appended to the destination node's buffer only when a simulated transfer
// happens — so congestion and queueing behaviour are emergent, not modeled.
#pragma once

#include <unordered_map>
#include <vector>

#include "mesh/geometry.hpp"
#include "mesh/packet.hpp"
#include "mesh/region.hpp"
#include "mesh/step_counter.hpp"

namespace meshpram {

/// One replicated copy held in a node's local memory: value + timestamp
/// (the majority/timestamp machinery of Gifford/Thomas/UW87, Def. 2).
struct CopySlot {
  i64 value = 0;
  i64 timestamp = -1;
};

class Mesh {
 public:
  Mesh(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  i64 size() const { return static_cast<i64>(rows_) * cols_; }
  Region whole() const { return Region(0, 0, rows_, cols_); }

  i32 node_id(Coord x) const;
  Coord coord(i32 id) const;
  /// Node id at snake position s of `region`.
  i32 node_at(const Region& region, i64 s) const;

  std::vector<Packet>& buf(i32 id);
  const std::vector<Packet>& buf(i32 id) const;

  std::unordered_map<u64, CopySlot>& store(i32 id);

  StepCounter& clock() { return clock_; }
  const StepCounter& clock() const { return clock_; }

  /// Total packets currently buffered in `region`.
  i64 total_packets(const Region& region) const;
  /// Maximum per-node buffer occupancy in `region`.
  i64 max_load(const Region& region) const;

  /// Drops every buffered packet (copy stores are preserved).
  void clear_buffers();

  /// Gathers (and removes) all packets buffered in `region`, in snake order.
  std::vector<Packet> drain(const Region& region);

 private:
  int rows_;
  int cols_;
  std::vector<std::vector<Packet>> bufs_;
  std::vector<std::unordered_map<u64, CopySlot>> stores_;
  StepCounter clock_;
};

}  // namespace meshpram
