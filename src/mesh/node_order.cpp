#include "mesh/node_order.hpp"

#include <cstdlib>
#include <mutex>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace meshpram {

namespace {

int sgn(int v) { return (v > 0) - (v < 0); }

/// Generalized Hilbert ("gilbert") curve for an arbitrary w x h rectangle:
/// emits every cell of the axis-aligned parallelogram spanned by vectors
/// (ax, ay) and (bx, by) starting at (x, y), consecutive cells always mesh
/// neighbors. Splits the long axis recursively, flipping orientation so the
/// sub-curves chain head-to-tail (Červený's construction).
void gilbert(int x, int y, int ax, int ay, int bx, int by, int cols,
             std::vector<i32>& out) {
  const int w = std::abs(ax + ay);
  const int h = std::abs(bx + by);
  const int dax = sgn(ax), day = sgn(ay);  // unit major direction
  const int dbx = sgn(bx), dby = sgn(by);  // unit orthogonal direction

  if (h == 1) {
    for (int i = 0; i < w; ++i) {
      out.push_back(static_cast<i32>(y) * cols + x);
      x += dax;
      y += day;
    }
    return;
  }
  if (w == 1) {
    for (int i = 0; i < h; ++i) {
      out.push_back(static_cast<i32>(y) * cols + x);
      x += dbx;
      y += dby;
    }
    return;
  }

  int ax2 = ax / 2, ay2 = ay / 2;
  int bx2 = bx / 2, by2 = by / 2;
  const int w2 = std::abs(ax2 + ay2);
  const int h2 = std::abs(bx2 + by2);

  if (2 * w > 3 * h) {
    if ((w2 % 2) != 0 && w > 2) {
      ax2 += dax;
      ay2 += day;
    }
    // Long case: split the major axis only.
    gilbert(x, y, ax2, ay2, bx, by, cols, out);
    gilbert(x + ax2, y + ay2, ax - ax2, ay - ay2, bx, by, cols, out);
  } else {
    if ((h2 % 2) != 0 && h > 2) {
      bx2 += dbx;
      by2 += dby;
    }
    // Standard case: one step sideways, one long leg, one step back.
    gilbert(x, y, bx2, by2, ax2, ay2, cols, out);
    gilbert(x + bx2, y + by2, ax, ay, bx - bx2, by - by2, cols, out);
    gilbert(x + (ax - dax) + (bx2 - dbx), y + (ay - day) + (by2 - dby), -bx2,
            -by2, -(ax - ax2), -(ay - ay2), cols, out);
  }
}

/// Test override installed by set_node_order_override (process-wide; the
/// layout suite swaps it around Mesh construction).
std::optional<NodeOrderKind> g_override;

}  // namespace

const char* node_order_name(NodeOrderKind kind) {
  switch (kind) {
    case NodeOrderKind::RowMajor:
      return "row-major";
    case NodeOrderKind::Hilbert:
      return "hilbert";
  }
  return "?";
}

std::optional<NodeOrderKind> parse_node_order(std::string_view s) {
  if (s == "row-major" || s == "rowmajor" || s == "row_major") {
    return NodeOrderKind::RowMajor;
  }
  if (s == "hilbert") return NodeOrderKind::Hilbert;
  return std::nullopt;
}

void set_node_order_override(std::optional<NodeOrderKind> kind) {
  g_override = kind;
}

NodeOrderKind node_order_default() {
  if (g_override) return *g_override;
  if (const auto s = env_str("MESHPRAM_NODE_ORDER")) {
    if (const auto kind = parse_node_order(*s)) return *kind;
    static std::once_flag warned;
    std::call_once(warned, [&] {
      MP_WARN("MESHPRAM_NODE_ORDER=" << *s
                                     << " is not a node order (row-major | "
                                        "hilbert); using hilbert");
    });
  }
  return NodeOrderKind::Hilbert;
}

void fill_curve_order(int rows, int cols, NodeOrderKind kind,
                      std::vector<i32>& id_at_slot) {
  MP_REQUIRE(rows >= 1 && cols >= 1, "curve order " << rows << 'x' << cols);
  id_at_slot.clear();
  id_at_slot.reserve(static_cast<size_t>(rows) * cols);
  if (kind == NodeOrderKind::RowMajor) {
    for (i32 id = 0; id < rows * cols; ++id) id_at_slot.push_back(id);
    return;
  }
  // Start the curve along the longer axis so the splits stay near-square.
  if (cols >= rows) {
    gilbert(0, 0, cols, 0, 0, rows, cols, id_at_slot);
  } else {
    gilbert(0, 0, 0, rows, cols, 0, cols, id_at_slot);
  }
  MP_ASSERT(static_cast<i64>(id_at_slot.size()) ==
                static_cast<i64>(rows) * cols,
            "curve order covered " << id_at_slot.size() << " of "
                                   << static_cast<i64>(rows) * cols
                                   << " cells");
}

NodeOrder::NodeOrder(int rows, int cols, NodeOrderKind kind) : kind_(kind) {
  if (kind == NodeOrderKind::RowMajor) return;  // identity, no tables
  fill_curve_order(rows, cols, kind, id_of_);
  slot_of_.assign(id_of_.size(), 0);
  for (size_t slot = 0; slot < id_of_.size(); ++slot) {
    slot_of_[static_cast<size_t>(id_of_[slot])] = static_cast<i32>(slot);
  }
}

}  // namespace meshpram
