#include "mesh/region.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

Region::Region(int r0, int c0, int rows, int cols)
    : r0_(r0), c0_(c0), rows_(rows), cols_(cols) {
  MP_REQUIRE(rows >= 1 && cols >= 1,
             "empty region " << rows << 'x' << cols << " at (" << r0 << ','
                             << c0 << ')');
}

Coord Region::at_snake(i64 s) const {
  MP_REQUIRE(0 <= s && s < size(), "snake position " << s << " outside "
                                                     << *this);
  const int lr = static_cast<int>(s / cols_);
  const int lc = static_cast<int>(s % cols_);
  return {r0_ + lr, c0_ + (lr % 2 == 0 ? lc : cols_ - 1 - lc)};
}

i64 Region::snake_of(Coord x) const {
  MP_REQUIRE(contains(x), "coordinate " << x << " outside " << *this);
  const int lr = x.r - r0_;
  const int lc = x.c - c0_;
  return static_cast<i64>(lr) * cols_ + (lr % 2 == 0 ? lc : cols_ - 1 - lc);
}

std::vector<Region> Region::grid_split(i64 k) const {
  MP_REQUIRE(1 <= k && k <= size(),
             "grid_split(" << k << ") of region " << *this << " with "
                           << size() << " nodes");
  // Pick a g_r x g_c grid with g_r <= rows, g_c <= cols, g_r*g_c >= k,
  // minimizing waste g_r*g_c - k, breaking ties toward square cells.
  i64 best_gr = -1, best_gc = -1;
  i64 best_waste = -1;
  double best_aspect = 0;
  for (i64 gr = 1; gr <= rows_; ++gr) {
    const i64 gc = ceil_div(k, gr);
    if (gc > cols_) continue;
    const i64 waste = gr * gc - k;
    // Cell aspect ratio penalty: |log((rows/gr) / (cols/gc))|.
    const double cell_r = static_cast<double>(rows_) / static_cast<double>(gr);
    const double cell_c = static_cast<double>(cols_) / static_cast<double>(gc);
    const double aspect =
        cell_r > cell_c ? cell_r / cell_c : cell_c / cell_r;
    if (best_waste < 0 || waste < best_waste ||
        (waste == best_waste && aspect < best_aspect)) {
      best_waste = waste;
      best_gr = gr;
      best_gc = gc;
      best_aspect = aspect;
    }
  }
  MP_ASSERT(best_gr > 0, "no feasible grid for k=" << k << " in " << *this);

  const i64 gr = best_gr, gc = best_gc;
  auto cut = [](int extent, i64 parts, i64 i) {
    // Proportional cut positions; strictly increasing because parts <= extent.
    return static_cast<int>((static_cast<i64>(extent) * i) / parts);
  };
  std::vector<Region> out;
  out.reserve(static_cast<size_t>(k));
  for (i64 gi = 0; gi < gr && static_cast<i64>(out.size()) < k; ++gi) {
    const int rr0 = cut(rows_, gr, gi);
    const int rr1 = cut(rows_, gr, gi + 1);
    for (i64 gj = 0; gj < gc && static_cast<i64>(out.size()) < k; ++gj) {
      const int cc0 = cut(cols_, gc, gj);
      const int cc1 = cut(cols_, gc, gj + 1);
      out.emplace_back(r0_ + rr0, c0_ + cc0, rr1 - rr0, cc1 - cc0);
    }
  }
  MP_ASSERT(static_cast<i64>(out.size()) == k, "grid_split produced "
                                                   << out.size() << " != "
                                                   << k);
  return out;
}

}  // namespace meshpram
