// The request packet that travels through the simulated mesh.
//
// One packet is generated per selected copy of a requested variable (§3.3).
// It records its origin, the copy it addresses, the routing key/rank used by
// the sort-and-distribute stages, and the trail of intermediate positions for
// the destination-to-origin return trip.
#pragma once

#include <array>
#include <cstdint>

#include "util/error.hpp"
#include "util/math.hpp"

namespace meshpram {

enum class Op : std::uint8_t { Read = 0, Write = 1 };

struct Packet {
  u64 key = 0;   ///< current sort key (stage-dependent)
  u64 rank = 0;  ///< rank within key group (set by rank_within_groups)

  u64 copy = 0;       ///< HMOS copy id (variable * q^k + child choices)
  i64 var = -1;       ///< PRAM variable id
  i32 origin = -1;    ///< node that issued the request (global node id)
  i32 dest = -1;      ///< current routing destination (global node id)
  i32 stash = -1;     ///< scratch: saved destination across staged routing
  i64 value = 0;      ///< write payload / read result
  i64 timestamp = -1; ///< copy timestamp carried back by reads
  Op op = Op::Read;

  /// Intermediate stops recorded on the forward journey (one per stage),
  /// replayed in reverse on the way back. k <= 6 in any sane configuration.
  std::array<i32, 8> trail{};
  std::uint8_t trail_len = 0;

  void push_trail(i32 node);
};

inline void Packet::push_trail(i32 node) {
  MP_ASSERT(trail_len < trail.size(),
            "packet trail overflow (more stages than expected)");
  trail[trail_len++] = node;
}

/// Number of mesh words a packet occupies on a link. The paper charges one
/// "step" per packet per link; we keep that convention (a packet = 1 word of
/// routed payload; headers are accounted in the O() constants there too).
inline constexpr i64 kPacketWords = 1;

}  // namespace meshpram
