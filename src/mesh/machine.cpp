#include "mesh/machine.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace meshpram {

namespace {

const telemetry::Label kDrainLabel = telemetry::intern("mesh.drain");

}  // namespace

Mesh::Mesh(int rows, int cols, NodeOrderKind order)
    : rows_(rows), cols_(cols), order_(rows, cols, order) {
  MP_REQUIRE(rows >= 1 && cols >= 1, "mesh " << rows << 'x' << cols);
  bufs_.resize(static_cast<size_t>(size()));
  stores_.resize(static_cast<size_t>(size()));
  counters_.resize(rows, cols);
}

i64 Mesh::total_packets(const Region& region) const {
  i64 total = 0;
  for (RegionCursor cur = cursor(region); cur.valid(); cur.advance()) {
    total += static_cast<i64>(
        bufs_[static_cast<size_t>(order_.slot_of(cur.id()))].size());
  }
  return total;
}

i64 Mesh::max_load(const Region& region) const {
  i64 load = 0;
  for (RegionCursor cur = cursor(region); cur.valid(); cur.advance()) {
    load = std::max(load,
                    static_cast<i64>(
                        bufs_[static_cast<size_t>(order_.slot_of(cur.id()))]
                            .size()));
  }
  return load;
}

void Mesh::clear_buffers() {
  for (auto& b : bufs_) b.clear();  // clear() keeps capacity (reuse contract)
}

void Mesh::clear_buffers(const Region& region) {
  for (RegionCursor cur = cursor(region); cur.valid(); cur.advance()) {
    bufs_[static_cast<size_t>(order_.slot_of(cur.id()))].clear();
  }
}

std::vector<Packet> Mesh::drain(const Region& region) {
  std::vector<Packet> out;
  drain_into(region, out);
  return out;
}

void Mesh::drain_into(const Region& region, std::vector<Packet>& out) {
  telemetry::Span span(telemetry::Cat::Phase, kDrainLabel);
  out.clear();
  out.reserve(static_cast<size_t>(total_packets(region)));
  for (RegionCursor cur = cursor(region); cur.valid(); cur.advance()) {
    auto& b = bufs_[static_cast<size_t>(order_.slot_of(cur.id()))];
    out.insert(out.end(), b.begin(), b.end());
    b.clear();
  }
}

}  // namespace meshpram
