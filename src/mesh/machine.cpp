#include "mesh/machine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

Mesh::Mesh(int rows, int cols) : rows_(rows), cols_(cols) {
  MP_REQUIRE(rows >= 1 && cols >= 1, "mesh " << rows << 'x' << cols);
  bufs_.resize(static_cast<size_t>(size()));
  stores_.resize(static_cast<size_t>(size()));
}

i32 Mesh::node_id(Coord x) const {
  MP_REQUIRE(0 <= x.r && x.r < rows_ && 0 <= x.c && x.c < cols_,
             "coordinate " << x << " outside " << rows_ << 'x' << cols_);
  return x.r * cols_ + x.c;
}

Coord Mesh::coord(i32 id) const {
  MP_REQUIRE(0 <= id && id < size(), "node id " << id);
  return {id / cols_, id % cols_};
}

i32 Mesh::node_at(const Region& region, i64 s) const {
  return node_id(region.at_snake(s));
}

std::vector<Packet>& Mesh::buf(i32 id) {
  MP_REQUIRE(0 <= id && id < size(), "node id " << id);
  return bufs_[static_cast<size_t>(id)];
}

const std::vector<Packet>& Mesh::buf(i32 id) const {
  MP_REQUIRE(0 <= id && id < size(), "node id " << id);
  return bufs_[static_cast<size_t>(id)];
}

std::unordered_map<u64, CopySlot>& Mesh::store(i32 id) {
  MP_REQUIRE(0 <= id && id < size(), "node id " << id);
  return stores_[static_cast<size_t>(id)];
}

i64 Mesh::total_packets(const Region& region) const {
  i64 total = 0;
  for (i64 s = 0; s < region.size(); ++s) {
    total += static_cast<i64>(buf(node_id(region.at_snake(s))).size());
  }
  return total;
}

i64 Mesh::max_load(const Region& region) const {
  i64 load = 0;
  for (i64 s = 0; s < region.size(); ++s) {
    load = std::max(load,
                    static_cast<i64>(buf(node_id(region.at_snake(s))).size()));
  }
  return load;
}

void Mesh::clear_buffers() {
  for (auto& b : bufs_) b.clear();
}

std::vector<Packet> Mesh::drain(const Region& region) {
  std::vector<Packet> out;
  for (i64 s = 0; s < region.size(); ++s) {
    auto& b = buf(node_id(region.at_snake(s)));
    out.insert(out.end(), b.begin(), b.end());
    b.clear();
  }
  return out;
}

}  // namespace meshpram
