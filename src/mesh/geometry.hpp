// Coordinates and directions on the mesh-connected computer.
//
// The simulating machine (paper §1) is a 2D mesh: every processor is linked
// to at most four neighbors (N/E/S/W) by point-to-point links, one word per
// link per step.
#pragma once

#include <cstdlib>
#include <ostream>

#include "util/math.hpp"

namespace meshpram {

struct Coord {
  int r = 0;
  int c = 0;

  friend bool operator==(const Coord& a, const Coord& b) {
    return a.r == b.r && a.c == b.c;
  }
  friend bool operator!=(const Coord& a, const Coord& b) { return !(a == b); }
  friend std::ostream& operator<<(std::ostream& os, const Coord& x) {
    return os << '(' << x.r << ',' << x.c << ')';
  }
};

inline i64 manhattan(Coord a, Coord b) {
  return std::abs(a.r - b.r) + std::abs(a.c - b.c);
}

enum class Dir : unsigned char { North = 0, East = 1, South = 2, West = 3 };
inline constexpr int kNumDirs = 4;

inline Coord step_toward(Coord from, Dir d) {
  switch (d) {
    case Dir::North: return {from.r - 1, from.c};
    case Dir::East: return {from.r, from.c + 1};
    case Dir::South: return {from.r + 1, from.c};
    case Dir::West: return {from.r, from.c - 1};
  }
  return from;
}

}  // namespace meshpram
