#include "mesh/step_counter.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

StepCounter::PhaseId StepCounter::intern(std::string_view phase) {
  const auto it = index_.find(phase);
  if (it != index_.end()) return it->second;
  const PhaseId id = static_cast<PhaseId>(labels_.size());
  labels_.emplace_back(phase);
  counts_.push_back(0);
  tlabels_.push_back(telemetry::intern(phase));
  index_.emplace(labels_.back(), id);
  return id;
}

void StepCounter::add(std::string_view phase, i64 steps) {
  add(intern(phase), steps);
}

void StepCounter::add(PhaseId phase, i64 steps) {
  MP_REQUIRE(phase < counts_.size(), "unknown phase id " << phase);
  MP_REQUIRE(steps >= 0, "negative step count " << steps << " for phase "
                                                << labels_[phase]);
  total_ += steps;
  counts_[phase] += steps;
  // Phase charges double as instant samples in the trace timeline.
  if (telemetry::sampling_on()) {
    telemetry::record_counter(tlabels_[phase], telemetry::Cat::Counter, steps);
  }
}

std::map<std::string, i64> StepCounter::by_phase() const {
  std::map<std::string, i64> out;
  for (size_t i = 0; i < labels_.size(); ++i) out[labels_[i]] = counts_[i];
  return out;
}

i64 StepCounter::phase_total(std::string_view phase) const {
  const auto it = index_.find(phase);
  return it == index_.end() ? 0 : counts_[it->second];
}

void StepCounter::reset() {
  total_ = 0;
  counts_.clear();
  labels_.clear();
  tlabels_.clear();
  index_.clear();
}

void ParallelCost::observe(i64 region_cost) {
  MP_REQUIRE(region_cost >= 0, "negative region cost");
  max_ = std::max(max_, region_cost);
}

void ParallelCost::observe_all(const std::vector<i64>& region_costs) {
  for (const i64 cost : region_costs) observe(cost);
}

}  // namespace meshpram
