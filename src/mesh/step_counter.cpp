#include "mesh/step_counter.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meshpram {

void StepCounter::add(const std::string& phase, i64 steps) {
  MP_REQUIRE(steps >= 0, "negative step count " << steps << " for phase "
                                                << phase);
  total_ += steps;
  by_phase_[phase] += steps;
}

void StepCounter::reset() {
  total_ = 0;
  by_phase_.clear();
}

void ParallelCost::observe(i64 region_cost) {
  MP_REQUIRE(region_cost >= 0, "negative region cost");
  max_ = std::max(max_, region_cost);
}

}  // namespace meshpram
