// Flat, reusable transit storage for the routing kernels.
//
// route_greedy used to allocate a vector-of-vectors of full Packets per call
// — two heap allocations per node per call and ~112 bytes moved per hop. The
// arena replaces that with three flat slabs, recycled across calls:
//
//   payload   in-flight Packets, written once at setup and read once at
//             delivery; they never move while the packet is in transit.
//   queues    per-node transit queues of 8-byte TransitRec (payload handle +
//             cached destination), laid out strided: node `pos`'s queue lives
//             at [pos*cap, pos*cap + count[pos]). The per-step sweeps walk
//             records, not Packets.
//   lanes     per-node incoming mailboxes, one slot per direction of motion.
//             A node receives at most one packet per incoming link per step
//             (each neighbor forwards at most one packet per outgoing
//             direction), so four slots suffice — and because each lane has
//             exactly one writer (the neighbor on that side), stripe workers
//             can deposit boundary packets without locks. Flags are separate
//             bytes, not a packed mask, so concurrent lane writes to one node
//             never touch the same byte.
//
// Ownership/reuse contract: arenas are leased from Mesh::route_arenas() for
// the duration of one route_greedy call and returned to the pool afterwards,
// keeping their heap capacity. Pooling (rather than one arena on the Mesh) is
// required because parallel_for_regions runs several route calls at once.
#pragma once

#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "mesh/geometry.hpp"
#include "mesh/packet.hpp"
#include "util/error.hpp"

namespace meshpram {

/// A packet in transit: handle into RouteArena::payload plus the destination
/// coordinate cached at setup, so the per-step loops stop re-deriving it from
/// the node id. 8 bytes — a queue sweep touches 14x less memory than moving
/// Packets.
struct TransitRec {
  u32 handle;
  i16 dest_r;
  i16 dest_c;
};
static_assert(sizeof(TransitRec) == 8, "TransitRec must stay one word");

class RouteArena {
 public:
  /// Tombstone handle used by the mark-and-compact commit in route_greedy.
  static constexpr u32 kInvalidHandle = ~0u;

  /// Starts a new route call over `nodes` snake positions: clears the payload
  /// and setup scratch, zeroes queue counts and lane flags. Capacities of all
  /// slabs are kept (reuse contract).
  void reset(i64 nodes) {
    nodes_ = nodes;
    payload.clear();
    setup_rec.clear();
    setup_pos.clear();
    count_.assign(static_cast<size_t>(nodes), 0);
    in_rec_.resize(static_cast<size_t>(nodes) * kNumDirs);
    in_full_.assign(static_cast<size_t>(nodes) * kNumDirs, 0);
  }

  /// Sizes the strided queue slab for `cap` records per node. Contents are
  /// garbage until scattered into; counts must be (re)filled by the caller.
  void layout(i64 cap) {
    MP_ASSERT(cap >= kNumDirs, "queue capacity " << cap);
    cap_ = cap;
    rec_.resize(static_cast<size_t>(nodes_) * static_cast<size_t>(cap));
  }

  /// Grows every queue to `new_cap` records in place, preserving contents.
  /// Walks nodes back-to-front so the strided moves never overlap.
  void grow(i64 new_cap) {
    MP_ASSERT(new_cap > cap_, "arena grow to " << new_cap);
    rec_.resize(static_cast<size_t>(nodes_) * static_cast<size_t>(new_cap));
    for (i64 pos = nodes_ - 1; pos > 0; --pos) {
      const i32 cnt = count_[static_cast<size_t>(pos)];
      if (cnt > 0) {
        std::memmove(rec_.data() + pos * new_cap, rec_.data() + pos * cap_,
                     static_cast<size_t>(cnt) * sizeof(TransitRec));
      }
    }
    cap_ = new_cap;
  }

  i64 cap() const { return cap_; }
  TransitRec* queue(i64 pos) { return rec_.data() + pos * cap_; }
  i32& count(i64 pos) { return count_[static_cast<size_t>(pos)]; }
  TransitRec& lane_rec(i64 pos, int lane) {
    return in_rec_[static_cast<size_t>(pos * kNumDirs + lane)];
  }
  unsigned char* lane_flags(i64 pos) {
    return in_full_.data() + pos * kNumDirs;
  }

  /// In-flight packets, appended at setup; stable until the call completes.
  std::vector<Packet> payload;
  /// Setup scratch: records and their node positions in discovery (snake)
  /// order, scattered into the strided queues once the capacity is known.
  std::vector<TransitRec> setup_rec;
  std::vector<i64> setup_pos;

 private:
  i64 nodes_ = 0;
  i64 cap_ = 0;
  std::vector<TransitRec> rec_;
  std::vector<i32> count_;
  std::vector<TransitRec> in_rec_;
  std::vector<unsigned char> in_full_;
};

/// Mutex-guarded free list of RouteArenas. Leases are per route call; the
/// pool never shrinks (at most one arena per concurrently running route
/// call, i.e. per pool thread).
class ArenaPool {
 public:
  RouteArena* acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      all_.push_back(std::make_unique<RouteArena>());
      return all_.back().get();
    }
    RouteArena* a = free_.back();
    free_.pop_back();
    return a;
  }

  void release(RouteArena* a) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(a);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<RouteArena>> all_;
  std::vector<RouteArena*> free_;
};

}  // namespace meshpram
