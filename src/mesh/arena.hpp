// Flat, reusable transit storage for the routing kernels.
//
// route_greedy used to allocate a vector-of-vectors of full Packets per call
// — two heap allocations per node per call and ~112 bytes moved per hop. The
// arena replaces that with three flat slabs, recycled across calls:
//
//   payload   in-flight Packets, written once at setup and read once at
//             delivery; they never move while the packet is in transit.
//   queues    per-node transit queues of 8-byte TransitRec (payload handle +
//             cached destination), laid out strided: node `pos`'s queue lives
//             at [pos*cap, pos*cap + count[pos]). The per-step sweeps walk
//             records, not Packets.
//   lanes     per-node incoming mailboxes, one slot per direction of motion.
//             A node receives at most one packet per incoming link per step
//             (each neighbor forwards at most one packet per outgoing
//             direction), so four slots suffice — and because each lane has
//             exactly one writer (the neighbor on that side), stripe workers
//             can deposit boundary packets without locks. Flags are separate
//             bytes, not a packed mask, so concurrent lane writes to one node
//             never touch the same byte.
//
// Ownership/reuse contract: arenas are leased from Mesh::route_arenas() for
// the duration of one route_greedy call and returned to the pool afterwards,
// keeping their heap capacity. Pooling (rather than one arena on the Mesh) is
// required because parallel_for_regions runs several route calls at once.
#pragma once

#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "mesh/geometry.hpp"
#include "mesh/node_order.hpp"
#include "mesh/packet.hpp"
#include "mesh/region.hpp"
#include "util/error.hpp"

namespace meshpram {

/// Entry of the serial router's active lists: a snake position with its
/// coordinate cached, so the per-step loops never re-derive (r, c) from the
/// position. 8 bytes.
struct ActiveNode {
  i32 pos;
  i16 r;
  i16 c;
};

/// A packet in transit: handle into RouteArena::payload plus the destination
/// coordinate cached at setup, so the per-step loops stop re-deriving it from
/// the node id. 8 bytes — a queue sweep touches 14x less memory than moving
/// Packets.
struct TransitRec {
  u32 handle;
  i16 dest_r;
  i16 dest_c;
};
static_assert(sizeof(TransitRec) == 8, "TransitRec must stay one word");

class RouteArena {
 public:
  /// Tombstone handle used by the mark-and-compact commit in route_greedy.
  static constexpr u32 kInvalidHandle = ~0u;

  /// Starts a new route call over `region`: clears the payload and setup
  /// scratch, zeroes queue counts and lane flags. Capacities of all slabs are
  /// kept (reuse contract). `order` picks the physical placement of the
  /// per-node queue/lane blocks: under Hilbert the blocks follow the same
  /// curve as the mesh's node state, so neighboring nodes' transit queues
  /// share cache lines at every tessellation level. Purely physical — every
  /// accessor below still takes snake positions.
  void reset(const Region& region, NodeOrderKind order) {
    nodes_ = region.size();
    payload.clear();
    setup_rec.clear();
    setup_pos.clear();
    build_slot_map(region, order);
    count_.assign(static_cast<size_t>(nodes_), 0);
    in_rec_.resize(static_cast<size_t>(nodes_) * kNumDirs);
    in_full_.assign(static_cast<size_t>(nodes_) * kNumDirs, 0);
    arrival_mark.assign(static_cast<size_t>(nodes_), 0);
    in_frontier.assign(static_cast<size_t>(nodes_), 0);
    frontier.clear();
    frontier_next.clear();
    arrivals.clear();
  }

  /// Sizes the strided queue slab for `cap` records per node. Contents are
  /// garbage until scattered into; counts must be (re)filled by the caller.
  void layout(i64 cap) {
    MP_ASSERT(cap >= kNumDirs, "queue capacity " << cap);
    cap_ = cap;
    rec_.resize(static_cast<size_t>(nodes_) * static_cast<size_t>(cap));
  }

  /// Grows every queue to `new_cap` records in place, preserving contents.
  /// Walks physical slots back-to-front so the strided moves never overlap.
  void grow(i64 new_cap) {
    MP_ASSERT(new_cap > cap_, "arena grow to " << new_cap);
    rec_.resize(static_cast<size_t>(nodes_) * static_cast<size_t>(new_cap));
    for (i64 slot = nodes_ - 1; slot > 0; --slot) {
      const i32 cnt = count_[static_cast<size_t>(slot)];
      if (cnt > 0) {
        std::memmove(rec_.data() + slot * new_cap, rec_.data() + slot * cap_,
                     static_cast<size_t>(cnt) * sizeof(TransitRec));
      }
    }
    cap_ = new_cap;
  }

  i64 cap() const { return cap_; }
  TransitRec* queue(i64 pos) { return rec_.data() + slot(pos) * cap_; }
  i32& count(i64 pos) { return count_[static_cast<size_t>(slot(pos))]; }
  TransitRec& lane_rec(i64 pos, int lane) {
    return in_rec_[static_cast<size_t>(slot(pos) * kNumDirs + lane)];
  }
  unsigned char* lane_flags(i64 pos) {
    return in_full_.data() + slot(pos) * kNumDirs;
  }

  /// Slot-addressed variants for hot loops: under a curve order every
  /// position-addressed accessor above pays a pos→slot table load, so the
  /// serial router translates each position once and addresses the per-node
  /// arrays by slot from then on.
  i64 slot_of(i64 pos) const { return slot(pos); }
  TransitRec* queue_at(i64 s) { return rec_.data() + s * cap_; }
  i32& count_at(i64 s) { return count_[static_cast<size_t>(s)]; }
  TransitRec& lane_rec_at(i64 s, int lane) {
    return in_rec_[static_cast<size_t>(s * kNumDirs + lane)];
  }
  unsigned char* lane_flags_at(i64 s) {
    return in_full_.data() + s * kNumDirs;
  }

  /// In-flight packets, appended at setup; stable until the call completes.
  std::vector<Packet> payload;
  /// Setup scratch: records and their node positions in discovery (snake)
  /// order, scattered into the strided queues once the capacity is known.
  std::vector<TransitRec> setup_rec;
  std::vector<i64> setup_pos;

  /// Serial-path active lists (see route_greedy): nodes with a non-empty
  /// transit queue, nodes that received a lane deposit this step, and their
  /// membership bytes (indexed by snake position).
  std::vector<ActiveNode> frontier;
  std::vector<ActiveNode> frontier_next;
  std::vector<ActiveNode> arrivals;
  std::vector<unsigned char> arrival_mark;
  std::vector<unsigned char> in_frontier;

 private:
  i64 slot(i64 pos) const {
    return pos_slot_.empty() ? pos : pos_slot_[static_cast<size_t>(pos)];
  }

  /// Physical slot of each snake position under `order`, cached per region
  /// geometry (route calls repeat the same tessellation extents constantly).
  void build_slot_map(const Region& region, NodeOrderKind order) {
    if (order == NodeOrderKind::RowMajor) {
      pos_slot_.clear();
      curve_rows_ = curve_cols_ = 0;
      return;
    }
    if (curve_rows_ == region.rows() && curve_cols_ == region.cols()) return;
    curve_rows_ = region.rows();
    curve_cols_ = region.cols();
    std::vector<i32> id_at_slot;
    fill_curve_order(curve_rows_, curve_cols_, order, id_at_slot);
    pos_slot_.assign(id_at_slot.size(), 0);
    const int cols = curve_cols_;
    for (size_t s = 0; s < id_at_slot.size(); ++s) {
      const i32 rm = id_at_slot[s];
      const int r = rm / cols, c = rm % cols;
      const i64 pos =
          static_cast<i64>(r) * cols + ((r & 1) == 0 ? c : cols - 1 - c);
      pos_slot_[static_cast<size_t>(pos)] = static_cast<i32>(s);
    }
  }

  i64 nodes_ = 0;
  i64 cap_ = 0;
  int curve_rows_ = 0;
  int curve_cols_ = 0;
  std::vector<i32> pos_slot_;
  std::vector<TransitRec> rec_;
  std::vector<i32> count_;
  std::vector<TransitRec> in_rec_;
  std::vector<unsigned char> in_full_;
};

/// Mutex-guarded free list of RouteArenas. Leases are per route call; the
/// pool never shrinks (at most one arena per concurrently running route
/// call, i.e. per pool thread).
class ArenaPool {
 public:
  RouteArena* acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      all_.push_back(std::make_unique<RouteArena>());
      return all_.back().get();
    }
    RouteArena* a = free_.back();
    free_.pop_back();
    return a;
  }

  void release(RouteArena* a) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(a);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<RouteArena>> all_;
  std::vector<RouteArena*> free_;
};

}  // namespace meshpram
