#include "mesh/parallel.hpp"

#include <cstdlib>

#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

namespace {

/// Worker-task span: one per region per parallel loop, recorded on the thread
/// that ran the region, so a trace shows how regions spread over the pool.
const telemetry::Label kRegionTask = telemetry::intern("parallel.region");

/// Debug-mode guard for the disjoint-region ownership rule: overlapping
/// regions would let two workers mutate the same node's buffers concurrently.
[[maybe_unused]] void check_disjoint(const Mesh& mesh,
                                     const std::vector<Region>& regions) {
  std::vector<char> owned(static_cast<size_t>(mesh.size()), 0);
  for (const Region& g : regions) {
    for (RegionCursor cur(g, mesh.cols()); cur.valid(); cur.advance()) {
      char& cell = owned[static_cast<size_t>(cur.id())];
      MP_ASSERT(cell == 0, "overlapping regions in parallel_for_regions at "
                               << cur.coord());
      cell = 1;
    }
  }
}

}  // namespace

std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&)>& fn) {
  return parallel_for_regions(
      mesh, regions,
      std::function<i64(const Region&, size_t)>(
          [&fn](const Region& g, size_t) { return fn(g); }));
}

std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&, size_t)>& fn) {
  for (const Region& g : regions) {
    MP_REQUIRE(g.r0() >= 0 && g.c0() >= 0 && g.r0() + g.rows() <= mesh.rows() &&
                   g.c0() + g.cols() <= mesh.cols(),
               "region " << g << " escapes the mesh");
  }
#ifndef NDEBUG
  check_disjoint(mesh, regions);
#endif

  std::vector<i64> costs(regions.size(), 0);
  execution_pool().for_each_index(
      static_cast<i64>(regions.size()), [&](i64 i) {
        telemetry::Span span(telemetry::Cat::Region, kRegionTask, i);
        costs[static_cast<size_t>(i)] =
            fn(regions[static_cast<size_t>(i)], static_cast<size_t>(i));
        span.set_steps(costs[static_cast<size_t>(i)]);
      });
  return costs;
}

i64 parallel_max_regions(Mesh& mesh, const std::vector<Region>& regions,
                         const std::function<i64(const Region&)>& fn) {
  ParallelCost pc;
  pc.observe_all(parallel_for_regions(mesh, regions, fn));
  return pc.max();
}

namespace {

std::atomic<i64> g_stripe_min_nodes{0};  // 0 = env/default

i64 default_stripe_min_nodes() {
  if (const auto n = env_i64("MESHPRAM_STRIPE_MIN_NODES", 1,
                             i64{1} << 40)) {
    return *n;
  }
  return 4096;
}

}  // namespace

void set_stripe_min_nodes(i64 nodes) {
  MP_REQUIRE(nodes >= 0, "stripe threshold " << nodes);
  g_stripe_min_nodes.store(nodes, std::memory_order_relaxed);
}

i64 stripe_min_nodes() {
  const i64 v = g_stripe_min_nodes.load(std::memory_order_relaxed);
  if (v > 0) return v;
  static const i64 def = default_stripe_min_nodes();
  return def;
}

void for_each_region_chunk(const Mesh& mesh, const Region& region,
                           i64 min_grain,
                           const std::function<void(RegionCursor&, i64)>& fn) {
  const i64 m = region.size();
  if (m == 0) return;
  ThreadPool& pool = execution_pool();
  if (pool.threads() == 1 || in_parallel_worker() || m < 2 * min_grain) {
    RegionCursor cur = mesh.cursor(region);
    fn(cur, m);
    return;
  }
  pool.for_each_chunk(m, min_grain, [&](i64 begin, i64 end) {
    RegionCursor cur(region, mesh.cols(), begin);
    fn(cur, end);
  });
}

}  // namespace meshpram
