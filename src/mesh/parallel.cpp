#include "mesh/parallel.hpp"

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {

namespace {

/// Worker-task span: one per region per parallel loop, recorded on the thread
/// that ran the region, so a trace shows how regions spread over the pool.
const telemetry::Label kRegionTask = telemetry::intern("parallel.region");

/// Debug-mode guard for the disjoint-region ownership rule: overlapping
/// regions would let two workers mutate the same node's buffers concurrently.
[[maybe_unused]] void check_disjoint(const Mesh& mesh,
                                     const std::vector<Region>& regions) {
  std::vector<char> owned(static_cast<size_t>(mesh.size()), 0);
  for (const Region& g : regions) {
    for (RegionCursor cur(g, mesh.cols()); cur.valid(); cur.advance()) {
      char& cell = owned[static_cast<size_t>(cur.id())];
      MP_ASSERT(cell == 0, "overlapping regions in parallel_for_regions at "
                               << cur.coord());
      cell = 1;
    }
  }
}

}  // namespace

std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&)>& fn) {
  return parallel_for_regions(
      mesh, regions,
      std::function<i64(const Region&, size_t)>(
          [&fn](const Region& g, size_t) { return fn(g); }));
}

std::vector<i64> parallel_for_regions(
    Mesh& mesh, const std::vector<Region>& regions,
    const std::function<i64(const Region&, size_t)>& fn) {
  for (const Region& g : regions) {
    MP_REQUIRE(g.r0() >= 0 && g.c0() >= 0 && g.r0() + g.rows() <= mesh.rows() &&
                   g.c0() + g.cols() <= mesh.cols(),
               "region " << g << " escapes the mesh");
  }
#ifndef NDEBUG
  check_disjoint(mesh, regions);
#endif

  std::vector<i64> costs(regions.size(), 0);
  execution_pool().for_each_index(
      static_cast<i64>(regions.size()), [&](i64 i) {
        telemetry::Span span(telemetry::Cat::Region, kRegionTask, i);
        costs[static_cast<size_t>(i)] =
            fn(regions[static_cast<size_t>(i)], static_cast<size_t>(i));
        span.set_steps(costs[static_cast<size_t>(i)]);
      });
  return costs;
}

i64 parallel_max_regions(Mesh& mesh, const std::vector<Region>& regions,
                         const std::function<i64(const Region&)>& fn) {
  ParallelCost pc;
  pc.observe_all(parallel_for_regions(mesh, regions, fn));
  return pc.max();
}

}  // namespace meshpram
