// Parallel step accounting for the simulated mesh.
//
// Every mesh algorithm returns the number of synchronous machine steps it
// needs (1 step = every link moves at most one word). Phases the paper runs
// "in parallel and independently in every level-i submesh" are charged the
// MAXIMUM cost over the concurrently active submeshes — that is exactly the
// quantity the theorems bound.
#pragma once

#include <map>
#include <string>

#include "util/math.hpp"

namespace meshpram {

class StepCounter {
 public:
  /// Adds `steps` under phase label `phase` (labels aggregate across calls).
  void add(const std::string& phase, i64 steps);

  i64 total() const { return total_; }
  const std::map<std::string, i64>& by_phase() const { return by_phase_; }
  void reset();

 private:
  i64 total_ = 0;
  std::map<std::string, i64> by_phase_;
};

/// Helper for parallel-region phases: feed per-region costs, read the max.
class ParallelCost {
 public:
  void observe(i64 region_cost);
  i64 max() const { return max_; }

 private:
  i64 max_ = 0;
};

}  // namespace meshpram
