// Parallel step accounting for the simulated mesh.
//
// Every mesh algorithm returns the number of synchronous machine steps it
// needs (1 step = every link moves at most one word). Phases the paper runs
// "in parallel and independently in every level-i submesh" are charged the
// MAXIMUM cost over the concurrently active submeshes — that is exactly the
// quantity the theorems bound.
//
// Phase labels are interned: repeated add() calls with the same label hit a
// heterogeneous string_view lookup (no std::string allocation per call), and
// hot callers can pre-intern once and add by PhaseId.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/math.hpp"

namespace meshpram {

class StepCounter {
 public:
  /// Dense handle for an interned phase label.
  using PhaseId = u32;

  /// Interns `phase`, returning a stable id for allocation-free add() calls.
  PhaseId intern(std::string_view phase);

  /// Adds `steps` under phase label `phase` (labels aggregate across calls).
  void add(std::string_view phase, i64 steps);
  void add(PhaseId phase, i64 steps);

  i64 total() const { return total_; }
  /// Per-phase totals keyed by label (built on demand; for reporting).
  std::map<std::string, i64> by_phase() const;
  /// Steps accumulated under one label (0 if never added).
  i64 phase_total(std::string_view phase) const;
  void reset();

 private:
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  i64 total_ = 0;
  std::vector<i64> counts_;                                // by PhaseId
  std::vector<std::string> labels_;                        // by PhaseId
  std::vector<telemetry::Label> tlabels_;                  // by PhaseId
  std::unordered_map<std::string, PhaseId, SvHash, SvEq> index_;
};

/// Helper for parallel-region phases: feed per-region costs, read the max.
class ParallelCost {
 public:
  void observe(i64 region_cost);
  /// Observes every cost of a parallel_for_regions result in region order.
  void observe_all(const std::vector<i64>& region_costs);
  i64 max() const { return max_; }

 private:
  i64 max_ = 0;
};

}  // namespace meshpram
