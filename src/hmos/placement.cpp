#include "hmos/placement.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace meshpram {

namespace {

/// Splits `region` into c child regions: a proper grid split when the region
/// is large enough, otherwise 1x1 regions round-robin over the snake.
std::vector<Region> split_for_children(const Region& region, i64 c,
                                       bool* degraded) {
  if (c <= region.size()) return region.grid_split(c);
  *degraded = true;
  std::vector<Region> out;
  out.reserve(static_cast<size_t>(c));
  for (i64 r = 0; r < c; ++r) {
    const Coord x = region.at_snake(r % region.size());
    out.emplace_back(x.r, x.c, 1, 1);
  }
  return out;
}

}  // namespace

Placement::Placement(const MemoryMap& map, const Region& whole)
    : map_(map), whole_(whole) {
  const HmosParams& p = map.params();
  MP_REQUIRE(whole.size() == p.mesh_size(),
             "placement region " << whole << " does not match params mesh "
                                 << p.mesh_rows() << 'x' << p.mesh_cols());
  const int k = p.k();
  pages_.resize(static_cast<size_t>(k) + 1);

  // Level k: one page per module, tiling the whole mesh.
  {
    const i64 mk = p.level(k).modules;
    const auto regions = whole.grid_split(mk);
    auto& lvl = pages_[static_cast<size_t>(k)];
    lvl.reserve(static_cast<size_t>(mk));
    for (i64 u = 0; u < mk; ++u) {
      lvl.push_back(PageInfo{u, -1, -1, regions[static_cast<size_t>(u)]});
    }
  }

  // Levels k-1 .. 1: split every page of level i+1 among its children.
  for (int i = k - 1; i >= 1; --i) {
    auto& parent_lvl = pages_[static_cast<size_t>(i) + 1];
    auto& lvl = pages_[static_cast<size_t>(i)];
    const BibdSubgraph& g = map.graph(i + 1);
    for (size_t pi = 0; pi < parent_lvl.size(); ++pi) {
      PageInfo& parent = parent_lvl[pi];
      const i64 nchild = g.output_degree(parent.module);
      parent.first_child = static_cast<i64>(lvl.size());
      const auto regions =
          split_for_children(parent.region, nchild, &degraded_);
      for (i64 r = 0; r < nchild; ++r) {
        lvl.push_back(PageInfo{g.output_neighbor(parent.module, r),
                               static_cast<i64>(pi), -1,
                               regions[static_cast<size_t>(r)]});
      }
    }
    MP_ASSERT(static_cast<i64>(lvl.size()) == p.level(i).pages,
              "level " << i << " produced " << lvl.size()
                       << " pages, expected " << p.level(i).pages);
  }
  if (degraded_) {
    MP_WARN("placement packs multiple pages per node (t_i < 1); see "
            "DESIGN.md 2.4. "
            << p.describe());
  }
}

const std::vector<PageInfo>& Placement::pages(int level) const {
  MP_REQUIRE(1 <= level && level <= map_.params().k(),
             "page level " << level);
  return pages_[static_cast<size_t>(level)];
}

CopyLoc Placement::locate(u64 copy) const {
  const int k = map_.params().k();
  LevelPath path;
  map_.module_path_into(copy, path);
  CopyLoc loc;

  i64 idx = path[static_cast<size_t>(k - 1)];  // level-k page index == module
  loc.page[static_cast<size_t>(k - 1)] = idx;
  for (int i = k - 1; i >= 1; --i) {
    const PageInfo& parent = pages_[static_cast<size_t>(i) + 1]
                                   [static_cast<size_t>(idx)];
    const i64 rank = map_.graph(i + 1).edge_rank(
        path[static_cast<size_t>(i - 1)], path[static_cast<size_t>(i)]);
    idx = parent.first_child + rank;
    MP_ASSERT(pages_[static_cast<size_t>(i)][static_cast<size_t>(idx)]
                      .module == path[static_cast<size_t>(i - 1)],
              "page descent mismatch at level " << i);
    loc.page[static_cast<size_t>(i - 1)] = idx;
  }

  const PageInfo& leaf = pages_[1][static_cast<size_t>(idx)];
  const i64 j = map_.graph(1).edge_rank(map_.variable_of(copy),
                                        path[0]);
  loc.node = leaf.region.at_snake(j % leaf.region.size());
  loc.slot = j / leaf.region.size();
  return loc;
}

i64 Placement::page_at(u64 copy, int level) const {
  const int k = map_.params().k();
  MP_REQUIRE(1 <= level && level <= k, "page level " << level);
  LevelPath path;
  map_.module_path_into(copy, path);
  i64 idx = path[static_cast<size_t>(k - 1)];
  for (int i = k - 1; i >= level; --i) {
    const PageInfo& parent = pages_[static_cast<size_t>(i) + 1]
                                   [static_cast<size_t>(idx)];
    idx = parent.first_child + map_.graph(i + 1).edge_rank(
                                   path[static_cast<size_t>(i - 1)],
                                   path[static_cast<size_t>(i)]);
  }
  return idx;
}

}  // namespace meshpram
