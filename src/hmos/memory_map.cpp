#include "hmos/memory_map.hpp"

#include "util/error.hpp"

namespace meshpram {

MemoryMap::MemoryMap(const HmosParams& params) : params_(params) {
  MP_REQUIRE(params.k() <= kMaxHmosLevels,
             "HMOS depth " << params.k() << " exceeds kMaxHmosLevels");
  graphs_.reserve(static_cast<size_t>(params.k()) + 1);
  graphs_.emplace_back(params.q(), 1, 1);  // placeholder for index 0
  i64 inputs = params.num_vars();
  for (int i = 1; i <= params.k(); ++i) {
    graphs_.emplace_back(params.q(), params.level(i).d, inputs);
    inputs = params.level(i).modules;
  }
}

const BibdSubgraph& MemoryMap::graph(int i) const {
  MP_REQUIRE(1 <= i && i <= params_.k(), "level graph " << i);
  return graphs_[static_cast<size_t>(i)];
}

u64 MemoryMap::copy_id(i64 var, const std::vector<i64>& choices) const {
  MP_REQUIRE(0 <= var && var < params_.num_vars(), "variable " << var);
  MP_REQUIRE(static_cast<int>(choices.size()) == params_.k(),
             "expected " << params_.k() << " child choices, got "
                         << choices.size());
  u64 code = 0;
  for (int i = params_.k(); i >= 1; --i) {
    const i64 c = choices[static_cast<size_t>(i - 1)];
    MP_REQUIRE(0 <= c && c < params_.q(), "child choice " << c);
    code = code * static_cast<u64>(params_.q()) + static_cast<u64>(c);
  }
  return static_cast<u64>(var) * static_cast<u64>(params_.redundancy()) +
         code;
}

i64 MemoryMap::variable_of(u64 copy) const {
  const i64 var =
      static_cast<i64>(copy / static_cast<u64>(params_.redundancy()));
  MP_REQUIRE(var < params_.num_vars(), "copy id " << copy
                                                  << " beyond memory size");
  return var;
}

std::vector<i64> MemoryMap::choices_of(u64 copy) const {
  u64 code = copy % static_cast<u64>(params_.redundancy());
  std::vector<i64> choices(static_cast<size_t>(params_.k()));
  for (int i = 1; i <= params_.k(); ++i) {
    choices[static_cast<size_t>(i - 1)] =
        static_cast<i64>(code % static_cast<u64>(params_.q()));
    code /= static_cast<u64>(params_.q());
  }
  return choices;
}

std::vector<i64> MemoryMap::module_path(u64 copy) const {
  LevelPath path;
  module_path_into(copy, path);
  return std::vector<i64>(path.begin(), path.begin() + params_.k());
}

void MemoryMap::module_path_into(u64 copy, LevelPath& path) const {
  u64 code = copy % static_cast<u64>(params_.redundancy());
  i64 u = variable_of(copy);
  for (int i = 1; i <= params_.k(); ++i) {
    const i64 c = static_cast<i64>(code % static_cast<u64>(params_.q()));
    code /= static_cast<u64>(params_.q());
    u = graphs_[static_cast<size_t>(i)].neighbor(u, c);
    path[static_cast<size_t>(i - 1)] = u;
  }
}

i64 MemoryMap::module_at(u64 copy, int level) const {
  MP_REQUIRE(1 <= level && level <= params_.k(), "level " << level);
  const auto choices = choices_of(copy);
  i64 u = variable_of(copy);
  for (int i = 1; i <= level; ++i) {
    u = graphs_[static_cast<size_t>(i)].neighbor(
        u, choices[static_cast<size_t>(i - 1)]);
  }
  return u;
}

}  // namespace meshpram
