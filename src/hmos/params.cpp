#include "hmos/params.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace meshpram {

HmosParams::HmosParams(i64 q, int k, i64 num_vars, int mesh_rows,
                       int mesh_cols)
    : q_(q), k_(k), num_vars_(num_vars), rows_(mesh_rows), cols_(mesh_cols) {
  MP_REQUIRE(q >= 3, "HMOS needs q >= 3 (extensive access needs floor(q/2)+2 "
                     "<= q), got q=" << q);
  prime_power_decompose(q);  // validates prime power
  MP_REQUIRE(k >= 1, "HMOS depth k=" << k);
  MP_REQUIRE(k <= 6, "HMOS depth k=" << k << " > 6 (redundancy q^k explodes "
                     "and packet trails overflow)");
  MP_REQUIRE(num_vars >= 1, "shared memory of " << num_vars << " variables");
  MP_REQUIRE(mesh_rows >= 1 && mesh_cols >= 1,
             "mesh " << mesh_rows << 'x' << mesh_cols);
  MP_REQUIRE(num_vars >= mesh_size(),
             "shared memory smaller than the processor count (alpha < 1): M="
                 << num_vars << " n=" << mesh_size());
  redundancy_ = ipow(q, k);

  levels_.resize(static_cast<size_t>(k) + 1);
  int d = 1;
  while (bibd_input_count(q, d) < num_vars) ++d;
  for (int i = 1; i <= k; ++i) {
    if (i > 1) d = (d + 1) / 2 + 1;  // ceil(d/2) + 1
    auto& lv = levels_[static_cast<size_t>(i)];
    lv.d = d;
    lv.modules = ipow(q, d);
    lv.pages = ipow(q, k - i) * lv.modules;
  }
  // The level graphs must fit: m_{i-1} <= f(d_i) (paper: f(d_{i+1}-1) <
  // q^{d_i} <= f(d_{i+1})).
  for (int i = 2; i <= k; ++i) {
    MP_ASSERT(levels_[static_cast<size_t>(i - 1)].modules <=
                  bibd_input_count(q, levels_[static_cast<size_t>(i)].d),
              "level graph " << i << " cannot host m_" << i - 1 << " inputs");
  }
  MP_REQUIRE(levels_[static_cast<size_t>(k)].modules <= mesh_size(),
             "more level-k modules (" << levels_[static_cast<size_t>(k)].modules
                                      << ") than mesh nodes (" << mesh_size()
                                      << "); decrease k or enlarge the mesh");
}

const LevelInfo& HmosParams::level(int i) const {
  MP_REQUIRE(1 <= i && i <= k_, "level " << i << " outside [1, " << k_ << ']');
  return levels_[static_cast<size_t>(i)];
}

i64 HmosParams::culling_threshold(int i) const {
  MP_REQUIRE(1 <= i && i <= k_, "culling iteration " << i);
  const double n = static_cast<double>(mesh_size());
  const double expo = 1.0 - 1.0 / static_cast<double>(i64{1} << i);
  return static_cast<i64>(
      std::floor(2.0 * static_cast<double>(redundancy_) * std::pow(n, expo)));
}

i64 HmosParams::theorem3_bound(int i) const {
  MP_REQUIRE(0 <= i && i <= k_, "theorem3 level " << i);
  if (i == 0) return redundancy_ * num_vars_;  // trivial at level 0
  return 2 * culling_threshold(i);
}

double HmosParams::alpha() const {
  return std::log(static_cast<double>(num_vars_)) /
         std::log(static_cast<double>(mesh_size()));
}

std::string HmosParams::describe() const {
  std::ostringstream os;
  os << "HMOS q=" << q_ << " k=" << k_ << " M=" << num_vars_ << " mesh "
     << rows_ << 'x' << cols_ << " (n=" << mesh_size() << ", alpha="
     << alpha() << ", redundancy=" << redundancy_ << ")\n";
  for (int i = 1; i <= k_; ++i) {
    const auto& lv = levels_[static_cast<size_t>(i)];
    os << "  level " << i << ": d=" << lv.d << " modules=" << lv.modules
       << " pages=" << lv.pages << " tau=" << culling_threshold(i) << '\n';
  }
  return os.str();
}

}  // namespace meshpram
