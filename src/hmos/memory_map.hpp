// The constructive memory map: variables -> copies -> module paths.
//
// Level graphs G_i = (U_{i-1}, U_i; E_i) are Appendix subgraphs of
// (q^{d_i}, q)-BIBDs (level-(i-1) module ids double as subgraph input
// indices; for i = 1 the inputs are the variables themselves). A copy of
// variable v is the leaf of the copy tree T_v reached through child choices
// (c_1, ..., c_k), c_i in [0, q); its module path is
//   u_0 = v,  u_i = G_i.neighbor(u_{i-1}, c_i).
//
// Copy ids pack (v, choices) into one u64: id = v * q^k + sum c_i q^{i-1}.
// Everything is computable in O(k * d) time from O(1) parameters — this is
// the paper's "fully constructive, space-efficient" claim, which
// bench/bench_memory_map.cpp measures.
#pragma once

#include <array>
#include <vector>

#include "bibd/subgraph.hpp"
#include "hmos/params.hpp"

namespace meshpram {

/// Upper bound on the HMOS depth k, fixed so hot paths can keep module/page
/// paths in stack arrays instead of heap vectors (mirrors Packet::trail;
/// k <= 6 in any sane configuration).
inline constexpr int kMaxHmosLevels = 8;

/// Stack-allocated module/page path buffer (entries [0, k) are valid).
using LevelPath = std::array<i64, kMaxHmosLevels>;

class MemoryMap {
 public:
  explicit MemoryMap(const HmosParams& params);

  const HmosParams& params() const { return params_; }

  /// Level graph G_i, i in [1, k].
  const BibdSubgraph& graph(int i) const;

  /// Packs/unpacks copy ids.
  u64 copy_id(i64 var, const std::vector<i64>& choices) const;
  i64 variable_of(u64 copy) const;
  std::vector<i64> choices_of(u64 copy) const;

  /// Module path [u_1, ..., u_k] of a copy.
  std::vector<i64> module_path(u64 copy) const;

  /// Allocation-free module path for the per-packet hot loops: writes
  /// u_1..u_k into path[0..k-1].
  void module_path_into(u64 copy, LevelPath& path) const;

  /// Module id at a single level (1 <= level <= k) — O(level * d).
  i64 module_at(u64 copy, int level) const;

  /// Total number of copies in the system: M * q^k.
  i64 total_copies() const {
    return params_.num_vars() * params_.redundancy();
  }

 private:
  const HmosParams& params_;
  std::vector<BibdSubgraph> graphs_;  // [0] unused; [1..k]
};

}  // namespace meshpram
