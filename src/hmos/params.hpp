// Parameters of the Hierarchical Memory Organization Scheme (§3.1).
//
// Given the replication branching q (prime power, >= 3), depth k >= 1, the
// number of shared variables M and the mesh size n = rows*cols:
//
//   d_1     = min{ d : f(d) >= M },   f(d) = q^{d-1}(q^d - 1)/(q - 1)
//   d_{i+1} = ceil(d_i / 2) + 1
//   m_i     = |U_i| = q^{d_i}          (level-i module count, i = 1..k)
//
// Every variable gets q^k copies; level-i pages (copies of level-i modules)
// number q^{k-i} * m_i. The culling threshold of iteration i is
// tau_i = 2 q^k n^{1 - 1/2^i} (procedure CULLING), and Theorem 3 bounds the
// per-page selected-copy load by 2*tau_i.
//
// q = 2 is rejected: the extensive-access rule needs floor(q/2)+2 <= q.
#pragma once

#include <string>
#include <vector>

#include "util/math.hpp"

namespace meshpram {

struct LevelInfo {
  int d = 0;        ///< d_i
  i64 modules = 0;  ///< m_i = q^{d_i}
  i64 pages = 0;    ///< q^{k-i} * m_i
};

class HmosParams {
 public:
  HmosParams(i64 q, int k, i64 num_vars, int mesh_rows, int mesh_cols);

  i64 q() const { return q_; }
  int k() const { return k_; }
  i64 num_vars() const { return num_vars_; }
  int mesh_rows() const { return rows_; }
  int mesh_cols() const { return cols_; }
  i64 mesh_size() const { return static_cast<i64>(rows_) * cols_; }

  /// Copies per variable: q^k.
  i64 redundancy() const { return redundancy_; }

  /// Level data for i in [1, k].
  const LevelInfo& level(int i) const;

  /// Majority of q children: floor(q/2) + 1 (Definition 2).
  i64 majority() const { return q_ / 2 + 1; }
  /// "More than a majority": floor(q/2) + 2 (extensive access, §3.2).
  i64 extensive() const { return q_ / 2 + 2; }

  /// Culling mark threshold tau_i = 2 q^k n^{1 - 1/2^i} (i in [1, k]).
  i64 culling_threshold(int i) const;
  /// Theorem 3 bound on selected copies per level-i page: 4 q^k n^{1-1/2^i}
  /// (i = 0 uses n^0 ... n^{1-1/2^0} = n^0 = 1: each variable contributes
  /// at most q^k copies; the bound at i=0 is per-copy trivial).
  i64 theorem3_bound(int i) const;

  /// Memory-size exponent alpha with M = n^alpha (diagnostic).
  double alpha() const;

  /// Human-readable configuration summary.
  std::string describe() const;

 private:
  i64 q_;
  int k_;
  i64 num_vars_;
  int rows_;
  int cols_;
  i64 redundancy_;
  std::vector<LevelInfo> levels_;  // [0] unused; [1..k]
};

}  // namespace meshpram
