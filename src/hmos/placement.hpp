// Physical mapping of the HMOS onto the mesh (§3.3).
//
// k nested tessellations: the whole mesh splits into m_k level-k submeshes
// (one per level-k module); the submesh of a level-(i+1) page holding module
// u splits into deg(u) level-i submeshes, one per level-i page of a module
// contained in u; a level-1 page spreads its p_1-ish variable copies evenly
// over the t_1 processors of its submesh.
//
// A *page* is one replica of a module; it is identified by its index in the
// flat per-level page array. Page indices descend the copy tree: the level-i
// page of a copy is child number edge_rank(u_{i-1}, u_i) of its level-(i+1)
// page.
//
// When a region has fewer nodes than children (the paper's t_i < 1 regime,
// DESIGN.md §2.4), children become 1x1 regions assigned round-robin over the
// parent's snake order — several pages then share a processor.
#pragma once

#include <vector>

#include "hmos/memory_map.hpp"
#include "mesh/region.hpp"

namespace meshpram {

struct PageInfo {
  i64 module = -1;       ///< module id this page replicates
  i64 parent = -1;       ///< page index at level+1 (-1 at level k)
  i64 first_child = -1;  ///< page index at level-1 of child rank 0 (-1 at level 1)
  Region region;
};

struct CopyLoc {
  Coord node;      ///< processor storing the copy
  i64 slot = 0;    ///< within-node slot (several copies per node)
  LevelPath page;  ///< page[i-1] = level-i page index, i in [1,k]; no heap
};

class Placement {
 public:
  Placement(const MemoryMap& map, const Region& whole);

  const MemoryMap& map() const { return map_; }

  /// All level-i pages (i in [1, k]).
  const std::vector<PageInfo>& pages(int level) const;

  /// Physical location and page path of a copy; O(k * d) arithmetic.
  CopyLoc locate(u64 copy) const;

  /// Level-i page index of a copy (shortcut used as sort key everywhere).
  /// Cheaper than locate(): the descent stops at `level` and the leaf node
  /// is never computed.
  i64 page_at(u64 copy, int level) const;

  /// True if any level packs multiple pages per node (t_i < 1 degradation).
  bool degraded() const { return degraded_; }

 private:
  const MemoryMap& map_;
  Region whole_;
  bool degraded_ = false;
  std::vector<std::vector<PageInfo>> pages_;  // [0] unused; [1..k]
};

}  // namespace meshpram
