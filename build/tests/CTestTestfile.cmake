# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_gf[1]_include.cmake")
include("/root/repo/build/tests/test_bibd[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_hmos[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_pram[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_simulation_sweep[1]_include.cmake")
