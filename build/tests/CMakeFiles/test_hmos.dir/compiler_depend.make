# Empty compiler generated dependencies file for test_hmos.
# This may be replaced when dependencies are built.
