file(REMOVE_RECURSE
  "CMakeFiles/test_hmos.dir/test_hmos.cpp.o"
  "CMakeFiles/test_hmos.dir/test_hmos.cpp.o.d"
  "test_hmos"
  "test_hmos.pdb"
  "test_hmos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
