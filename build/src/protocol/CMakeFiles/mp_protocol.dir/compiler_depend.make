# Empty compiler generated dependencies file for mp_protocol.
# This may be replaced when dependencies are built.
