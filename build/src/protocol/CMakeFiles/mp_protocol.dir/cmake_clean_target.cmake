file(REMOVE_RECURSE
  "libmp_protocol.a"
)
