file(REMOVE_RECURSE
  "CMakeFiles/mp_protocol.dir/access.cpp.o"
  "CMakeFiles/mp_protocol.dir/access.cpp.o.d"
  "CMakeFiles/mp_protocol.dir/culling.cpp.o"
  "CMakeFiles/mp_protocol.dir/culling.cpp.o.d"
  "CMakeFiles/mp_protocol.dir/simulator.cpp.o"
  "CMakeFiles/mp_protocol.dir/simulator.cpp.o.d"
  "CMakeFiles/mp_protocol.dir/target_set.cpp.o"
  "CMakeFiles/mp_protocol.dir/target_set.cpp.o.d"
  "libmp_protocol.a"
  "libmp_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
