# Empty compiler generated dependencies file for mp_hmos.
# This may be replaced when dependencies are built.
