file(REMOVE_RECURSE
  "libmp_hmos.a"
)
