file(REMOVE_RECURSE
  "CMakeFiles/mp_hmos.dir/memory_map.cpp.o"
  "CMakeFiles/mp_hmos.dir/memory_map.cpp.o.d"
  "CMakeFiles/mp_hmos.dir/params.cpp.o"
  "CMakeFiles/mp_hmos.dir/params.cpp.o.d"
  "CMakeFiles/mp_hmos.dir/placement.cpp.o"
  "CMakeFiles/mp_hmos.dir/placement.cpp.o.d"
  "libmp_hmos.a"
  "libmp_hmos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_hmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
