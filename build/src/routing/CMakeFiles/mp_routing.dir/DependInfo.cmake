
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/greedy.cpp" "src/routing/CMakeFiles/mp_routing.dir/greedy.cpp.o" "gcc" "src/routing/CMakeFiles/mp_routing.dir/greedy.cpp.o.d"
  "/root/repo/src/routing/lroute.cpp" "src/routing/CMakeFiles/mp_routing.dir/lroute.cpp.o" "gcc" "src/routing/CMakeFiles/mp_routing.dir/lroute.cpp.o.d"
  "/root/repo/src/routing/meshsort.cpp" "src/routing/CMakeFiles/mp_routing.dir/meshsort.cpp.o" "gcc" "src/routing/CMakeFiles/mp_routing.dir/meshsort.cpp.o.d"
  "/root/repo/src/routing/rank.cpp" "src/routing/CMakeFiles/mp_routing.dir/rank.cpp.o" "gcc" "src/routing/CMakeFiles/mp_routing.dir/rank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/mp_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
