# Empty compiler generated dependencies file for mp_routing.
# This may be replaced when dependencies are built.
