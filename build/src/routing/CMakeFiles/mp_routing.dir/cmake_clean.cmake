file(REMOVE_RECURSE
  "CMakeFiles/mp_routing.dir/greedy.cpp.o"
  "CMakeFiles/mp_routing.dir/greedy.cpp.o.d"
  "CMakeFiles/mp_routing.dir/lroute.cpp.o"
  "CMakeFiles/mp_routing.dir/lroute.cpp.o.d"
  "CMakeFiles/mp_routing.dir/meshsort.cpp.o"
  "CMakeFiles/mp_routing.dir/meshsort.cpp.o.d"
  "CMakeFiles/mp_routing.dir/rank.cpp.o"
  "CMakeFiles/mp_routing.dir/rank.cpp.o.d"
  "libmp_routing.a"
  "libmp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
