file(REMOVE_RECURSE
  "libmp_routing.a"
)
