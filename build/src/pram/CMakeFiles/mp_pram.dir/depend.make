# Empty dependencies file for mp_pram.
# This may be replaced when dependencies are built.
