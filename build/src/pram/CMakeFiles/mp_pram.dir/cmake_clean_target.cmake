file(REMOVE_RECURSE
  "libmp_pram.a"
)
