file(REMOVE_RECURSE
  "CMakeFiles/mp_pram.dir/algorithms.cpp.o"
  "CMakeFiles/mp_pram.dir/algorithms.cpp.o.d"
  "CMakeFiles/mp_pram.dir/backend.cpp.o"
  "CMakeFiles/mp_pram.dir/backend.cpp.o.d"
  "CMakeFiles/mp_pram.dir/baselines/direct.cpp.o"
  "CMakeFiles/mp_pram.dir/baselines/direct.cpp.o.d"
  "CMakeFiles/mp_pram.dir/baselines/mpc.cpp.o"
  "CMakeFiles/mp_pram.dir/baselines/mpc.cpp.o.d"
  "CMakeFiles/mp_pram.dir/baselines/single_copy.cpp.o"
  "CMakeFiles/mp_pram.dir/baselines/single_copy.cpp.o.d"
  "CMakeFiles/mp_pram.dir/combining.cpp.o"
  "CMakeFiles/mp_pram.dir/combining.cpp.o.d"
  "CMakeFiles/mp_pram.dir/program.cpp.o"
  "CMakeFiles/mp_pram.dir/program.cpp.o.d"
  "libmp_pram.a"
  "libmp_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
