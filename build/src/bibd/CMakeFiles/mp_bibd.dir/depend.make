# Empty dependencies file for mp_bibd.
# This may be replaced when dependencies are built.
