file(REMOVE_RECURSE
  "libmp_bibd.a"
)
