file(REMOVE_RECURSE
  "CMakeFiles/mp_bibd.dir/bibd.cpp.o"
  "CMakeFiles/mp_bibd.dir/bibd.cpp.o.d"
  "CMakeFiles/mp_bibd.dir/subgraph.cpp.o"
  "CMakeFiles/mp_bibd.dir/subgraph.cpp.o.d"
  "libmp_bibd.a"
  "libmp_bibd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_bibd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
