file(REMOVE_RECURSE
  "libmp_mesh.a"
)
