# Empty compiler generated dependencies file for mp_mesh.
# This may be replaced when dependencies are built.
