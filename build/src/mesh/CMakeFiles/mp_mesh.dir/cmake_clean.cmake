file(REMOVE_RECURSE
  "CMakeFiles/mp_mesh.dir/machine.cpp.o"
  "CMakeFiles/mp_mesh.dir/machine.cpp.o.d"
  "CMakeFiles/mp_mesh.dir/region.cpp.o"
  "CMakeFiles/mp_mesh.dir/region.cpp.o.d"
  "CMakeFiles/mp_mesh.dir/step_counter.cpp.o"
  "CMakeFiles/mp_mesh.dir/step_counter.cpp.o.d"
  "libmp_mesh.a"
  "libmp_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
