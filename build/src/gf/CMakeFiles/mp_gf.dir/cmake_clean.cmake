file(REMOVE_RECURSE
  "CMakeFiles/mp_gf.dir/gf.cpp.o"
  "CMakeFiles/mp_gf.dir/gf.cpp.o.d"
  "CMakeFiles/mp_gf.dir/poly.cpp.o"
  "CMakeFiles/mp_gf.dir/poly.cpp.o.d"
  "libmp_gf.a"
  "libmp_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
