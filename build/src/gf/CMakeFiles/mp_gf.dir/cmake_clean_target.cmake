file(REMOVE_RECURSE
  "libmp_gf.a"
)
