# Empty compiler generated dependencies file for mp_gf.
# This may be replaced when dependencies are built.
