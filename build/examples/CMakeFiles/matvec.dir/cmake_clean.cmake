file(REMOVE_RECURSE
  "CMakeFiles/matvec.dir/matvec.cpp.o"
  "CMakeFiles/matvec.dir/matvec.cpp.o.d"
  "matvec"
  "matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
