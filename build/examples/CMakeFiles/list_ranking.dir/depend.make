# Empty dependencies file for list_ranking.
# This may be replaced when dependencies are built.
