file(REMOVE_RECURSE
  "CMakeFiles/list_ranking.dir/list_ranking.cpp.o"
  "CMakeFiles/list_ranking.dir/list_ranking.cpp.o.d"
  "list_ranking"
  "list_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
