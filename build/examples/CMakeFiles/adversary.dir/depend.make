# Empty dependencies file for adversary.
# This may be replaced when dependencies are built.
