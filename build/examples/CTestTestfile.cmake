# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_prefix_sum "/root/repo/build/examples/prefix_sum")
set_tests_properties(example_prefix_sum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_list_ranking "/root/repo/build/examples/list_ranking")
set_tests_properties(example_list_ranking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary "/root/repo/build/examples/adversary")
set_tests_properties(example_adversary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matvec "/root/repo/build/examples/matvec")
set_tests_properties(example_matvec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
