file(REMOVE_RECURSE
  "CMakeFiles/bench_simulation_small_mem.dir/bench_simulation_small_mem.cpp.o"
  "CMakeFiles/bench_simulation_small_mem.dir/bench_simulation_small_mem.cpp.o.d"
  "bench_simulation_small_mem"
  "bench_simulation_small_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulation_small_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
