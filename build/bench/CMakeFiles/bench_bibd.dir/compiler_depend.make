# Empty compiler generated dependencies file for bench_bibd.
# This may be replaced when dependencies are built.
