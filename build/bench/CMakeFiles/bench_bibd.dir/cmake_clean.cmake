file(REMOVE_RECURSE
  "CMakeFiles/bench_bibd.dir/bench_bibd.cpp.o"
  "CMakeFiles/bench_bibd.dir/bench_bibd.cpp.o.d"
  "bench_bibd"
  "bench_bibd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bibd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
