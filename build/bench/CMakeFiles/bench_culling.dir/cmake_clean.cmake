file(REMOVE_RECURSE
  "CMakeFiles/bench_culling.dir/bench_culling.cpp.o"
  "CMakeFiles/bench_culling.dir/bench_culling.cpp.o.d"
  "bench_culling"
  "bench_culling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_culling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
