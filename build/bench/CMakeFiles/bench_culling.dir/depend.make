# Empty dependencies file for bench_culling.
# This may be replaced when dependencies are built.
