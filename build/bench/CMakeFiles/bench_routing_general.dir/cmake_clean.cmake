file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_general.dir/bench_routing_general.cpp.o"
  "CMakeFiles/bench_routing_general.dir/bench_routing_general.cpp.o.d"
  "bench_routing_general"
  "bench_routing_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
