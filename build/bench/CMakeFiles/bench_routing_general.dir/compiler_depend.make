# Empty compiler generated dependencies file for bench_routing_general.
# This may be replaced when dependencies are built.
