# Empty compiler generated dependencies file for bench_hmos_structure.
# This may be replaced when dependencies are built.
