file(REMOVE_RECURSE
  "CMakeFiles/bench_hmos_structure.dir/bench_hmos_structure.cpp.o"
  "CMakeFiles/bench_hmos_structure.dir/bench_hmos_structure.cpp.o.d"
  "bench_hmos_structure"
  "bench_hmos_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hmos_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
