file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_scan.dir/bench_sort_scan.cpp.o"
  "CMakeFiles/bench_sort_scan.dir/bench_sort_scan.cpp.o.d"
  "bench_sort_scan"
  "bench_sort_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
