# Empty compiler generated dependencies file for bench_sort_scan.
# This may be replaced when dependencies are built.
