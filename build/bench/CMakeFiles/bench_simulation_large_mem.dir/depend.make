# Empty dependencies file for bench_simulation_large_mem.
# This may be replaced when dependencies are built.
