file(REMOVE_RECURSE
  "CMakeFiles/bench_simulation_large_mem.dir/bench_simulation_large_mem.cpp.o"
  "CMakeFiles/bench_simulation_large_mem.dir/bench_simulation_large_mem.cpp.o.d"
  "bench_simulation_large_mem"
  "bench_simulation_large_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulation_large_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
