file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_map.dir/bench_memory_map.cpp.o"
  "CMakeFiles/bench_memory_map.dir/bench_memory_map.cpp.o.d"
  "bench_memory_map"
  "bench_memory_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
