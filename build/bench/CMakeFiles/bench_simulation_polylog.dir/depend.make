# Empty dependencies file for bench_simulation_polylog.
# This may be replaced when dependencies are built.
