file(REMOVE_RECURSE
  "CMakeFiles/bench_simulation_polylog.dir/bench_simulation_polylog.cpp.o"
  "CMakeFiles/bench_simulation_polylog.dir/bench_simulation_polylog.cpp.o.d"
  "bench_simulation_polylog"
  "bench_simulation_polylog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulation_polylog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
