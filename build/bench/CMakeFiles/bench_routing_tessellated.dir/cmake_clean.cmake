file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_tessellated.dir/bench_routing_tessellated.cpp.o"
  "CMakeFiles/bench_routing_tessellated.dir/bench_routing_tessellated.cpp.o.d"
  "bench_routing_tessellated"
  "bench_routing_tessellated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_tessellated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
