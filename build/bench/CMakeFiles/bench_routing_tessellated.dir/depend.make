# Empty dependencies file for bench_routing_tessellated.
# This may be replaced when dependencies are built.
