// EXP-S2 — network serving with cross-client step coalescing (DESIGN.md §14).
//
// Four scenario families:
//   coalesce — deterministic scheduler-level window sweep: the same
//     var-disjoint request stream at window 1/2/4/8. mesh_steps is pinned
//     (coalescing buys a step-count reduction, not just wall clock) and the
//     final machine snapshot must be byte-identical to the window-1 run —
//     the binary aborts otherwise.
//   throughput — closed-loop pipelined clients over a unix socket, conns
//     {1,4,8} x window {1,8}, same binary. At >= 4 connections the
//     coalescing-on run must beat coalescing-off by >= 5% req/s (best of 3,
//     enforced with exit 1). Latency percentiles ride along informationally.
//   overload — rejection-rate curve: 6 connections into a tight global
//     in-flight budget at pipeline depth 2/8/32. Deeper pipelines offer more
//     concurrent work to the same budget, so the rejection rate climbs; the
//     counts are timing-dependent and recorded informationally.
//   parity — socket-level bit-identity: 4 pipelined clients with coalescing
//     + the shadow-replay tripwire on; afterwards every session's snapshot
//     must equal a solo sequential replay of that connection's stream.
//     mesh_steps 1 on success so the smoke gate pins the verdict.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/api.hpp"
#include "serve/loadgen.hpp"
#include "serve/manager.hpp"
#include "serve/net_client.hpp"
#include "serve/net_server.hpp"
#include "serve/scheduler.hpp"
#include "serve/snapshot.hpp"
#include "util/table.hpp"

#include <unistd.h>

using namespace meshpram;
using namespace meshpram::benchutil;
using namespace meshpram::serve;

namespace {

SimConfig serve_config(int side) {
  SimConfig cfg;
  cfg.mesh_rows = side;
  cfg.mesh_cols = side;
  const i64 n = static_cast<i64>(side) * side;
  cfg.num_vars = n * 8;
  cfg.q = 3;
  cfg.k = 2;
  cfg.sort_mode = SortMode::Analytic;
  return cfg;
}

/// Request j of a var-disjoint series (blocks of `w` variables, writes at
/// even slots): consecutive requests always coalesce.
Request disjoint_request(u64 id, i64 j, i64 w) {
  Request req;
  req.id = id;
  for (i64 i = 0; i < w; ++i) {
    AccessRequest a;
    a.var = j * w + i;
    if (i % 2 == 0) {
      a.op = Op::Write;
      a.value = static_cast<i64>(id) * 1000 + i;
    }
    req.accesses.push_back(a);
  }
  return req;
}

std::string sock_path(const std::string& tag) {
  return "/tmp/meshpram-bench-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

struct CoalesceRun {
  i64 mesh_steps = 0;
  double wall_ms = 0;
  i64 batches = 0;
  std::string snapshot;
};

/// 16 disjoint requests through one session at the given window.
CoalesceRun run_coalesce(int side, i64 window) {
  SessionManager mgr;
  Session& s = mgr.create("c", serve_config(side));
  SchedulerConfig scfg;
  scfg.coalesce_window = window;
  FairScheduler sched(mgr, scfg);
  const WallTimer timer;
  for (i64 j = 0; j < 16; ++j) {
    const Admission verdict =
        sched.submit(s.id(), disjoint_request(static_cast<u64>(j + 1), j, 8));
    if (!verdict.accepted) {
      std::cerr << "coalesce admission failed: " << verdict.reason << '\n';
      std::exit(1);
    }
  }
  sched.run_until_idle();
  CoalesceRun out;
  out.wall_ms = timer.ms();
  out.mesh_steps = s.stats().mesh_steps;
  out.batches = sched.coalesce_stats().batches;
  out.snapshot = snapshot_simulator(s.sim());
  return out;
}

/// A serving stack (sessions + scheduler + NetServer on its own thread) for
/// the socket scenarios.
struct NetStack {
  SessionManager mgr;
  std::unique_ptr<FairScheduler> sched;
  std::unique_ptr<NetServer> server;
  std::vector<std::string> names;
  std::vector<SessionShape> shapes;
  std::atomic<bool> stop{false};
  std::thread loop;

  NetStack(const std::string& path, int side, i64 sessions, i64 window,
           i64 capacity, i64 inflight) {
    const SimConfig cfg = serve_config(side);
    SessionLimits limits;
    limits.queue_capacity = capacity;
    for (i64 s = 0; s < sessions; ++s) {
      Session& sess = mgr.create("b" + std::to_string(s), cfg, limits);
      names.push_back(sess.name());
      shapes.push_back({sess.sim().processors(), sess.sim().num_vars()});
    }
    SchedulerConfig scfg;
    scfg.coalesce_window = window;
    scfg.global_inflight = inflight;
    sched = std::make_unique<FairScheduler>(mgr, scfg);
    NetServerConfig ncfg;
    ncfg.unix_path = path;
    server = std::make_unique<NetServer>(mgr, *sched, ncfg);
    loop = std::thread([this] { server->run(stop); });
  }
  ~NetStack() {
    stop = true;
    loop.join();
  }
};

NetLoadgenReport run_net(int side, i64 conns, i64 window, i64 depth,
                         i64 requests, i64 capacity, i64 inflight) {
  const std::string path = sock_path("w" + std::to_string(window));
  NetStack stack(path, side, conns, window, capacity, inflight);
  LoadgenConfig lg;
  lg.requests = requests;
  lg.accesses_per_request = 8;
  lg.seed = 23;
  NetEndpoint ep;
  ep.transport = Transport::Unix;
  ep.unix_path = path;
  return run_loadgen_net(ep, stack.names, stack.shapes, lg, depth);
}

}  // namespace

int main() {
  set_log_level(LogLevel::Error);  // the t_i<1 warning is expected here
  std::cout << "=== EXP-S2: network serving with cross-client coalescing "
               "(epoll loop, frame pipelining) ===\n";
  BenchRecorder rec("serve_net");
  rec.set_transport("unix");

  // ---- coalesce: deterministic window sweep, snapshot parity enforced ----
  {
    Table ct({"side", "window", "batches", "T_sim", "wall_ms"});
    for (const int side : {8, 16}) {
      if (side > bench_max_side()) continue;
      const CoalesceRun base = run_coalesce(side, 1);
      for (const i64 window : {1, 2, 4, 8}) {
        const CoalesceRun r = run_coalesce(side, window);
        if (r.snapshot != base.snapshot) {
          std::cerr << "coalesced machine state diverged from sequential at "
                       "window "
                    << window << " (side " << side << ")\n";
          return 1;
        }
        ct.add(side, window, r.batches, r.mesh_steps, r.wall_ms);
        rec.point("coalesce side=" + std::to_string(side) +
                      " window=" + std::to_string(window),
                  r.wall_ms, r.mesh_steps);
      }
      if (run_coalesce(side, 8).mesh_steps * 2 >= base.mesh_steps) {
        std::cerr << "window-8 coalescing no longer halves counted steps "
                     "(side "
                  << side << ")\n";
        return 1;
      }
    }
    ct.print(std::cout);
  }

  // ---- throughput: conns x window over a unix socket, margin enforced ----
  {
    Table tt({"conns", "window", "rps", "p50_us", "p99_us", "coalesced",
              "wall_ms"});
    std::map<std::pair<i64, i64>, double> best_rps;
    for (const i64 conns : {1, 4, 8}) {
      for (const i64 window : {1, 8}) {
        NetLoadgenReport best;
        for (int rep = 0; rep < 3; ++rep) {
          const NetLoadgenReport r =
              run_net(8, conns, window, 8, conns * 60, 64, 4096);
          if (r.failed != 0 || r.rejected != 0) {
            std::cerr << "throughput run rejected/failed requests (conns="
                      << conns << " window=" << window << ")\n";
            return 1;
          }
          if (r.rps > best.rps) best = r;
        }
        best_rps[{conns, window}] = best.rps;
        tt.add(conns, window, best.rps, best.p50_us, best.p99_us,
               best.coalesced_responses, best.wall_seconds * 1000.0);
        BenchRecorder::ServeColumns sc;
        sc.offered = best.offered;
        sc.completed = best.completed;
        sc.rejected = best.rejected;
        sc.p50_us = best.p50_us;
        sc.p95_us = best.p95_us;
        sc.p99_us = best.p99_us;
        sc.rps = best.rps;
        rec.point_serve("throughput conns=" + std::to_string(conns) +
                            " window=" + std::to_string(window),
                        best.wall_seconds * 1000.0, 0, sc);
      }
    }
    tt.print(std::cout);
    // The EXP-S2 claim: at >= 4 concurrent connections, cross-client
    // coalescing improves goodput by a measured margin on the same binary.
    for (const i64 conns : {4, 8}) {
      const double off = best_rps[{conns, 1}];
      const double on = best_rps[{conns, 8}];
      if (on < 1.05 * off) {
        std::cerr << "coalescing margin missing at conns=" << conns << ": "
                  << on << " rps on vs " << off << " rps off\n";
        return 1;
      }
      std::cout << "conns=" << conns << ": coalescing x"
                << (off > 0 ? on / off : 0.0) << " goodput\n";
    }
  }

  // ---- overload: rejection-rate curve vs pipeline depth (informational) --
  {
    Table ot({"depth", "offered", "completed", "rejected", "reject_%",
              "p99_us"});
    for (const i64 depth : {2, 8, 32}) {
      const NetLoadgenReport r = run_net(8, 6, 1, depth, 180, 4, 8);
      if (r.failed != 0) {
        std::cerr << "overload run produced failures (depth=" << depth
                  << ")\n";
        return 1;
      }
      const double pct = 100.0 * static_cast<double>(r.rejected) /
                         static_cast<double>(r.offered);
      ot.add(depth, r.offered, r.completed, r.rejected, pct, r.p99_us);
      BenchRecorder::ServeColumns sc;
      sc.offered = r.offered;
      sc.completed = r.completed;
      sc.rejected = r.rejected;
      sc.p50_us = r.p50_us;
      sc.p95_us = r.p95_us;
      sc.p99_us = r.p99_us;
      sc.rps = r.rps;
      rec.point_serve("overload conns=6 budget=8 depth=" +
                          std::to_string(depth),
                      r.wall_seconds * 1000.0, 0, sc);
    }
    ot.print(std::cout);
  }

  // ---- parity: socket-level coalescing vs solo sequential replay ---------
  {
    const i64 conns = 4, requests = 24;
    const std::string path = sock_path("parity");
    const WallTimer timer;
    double wall_ms = 0;
    {
      NetStack stack(path, 8, conns, 8, 64, 4096);
      std::vector<std::thread> clients;
      std::vector<std::string> errors(static_cast<size_t>(conns));
      for (i64 c = 0; c < conns; ++c) {
        clients.emplace_back([&, c] {
          try {
            NetClient client = NetClient::connect_unix(path);
            for (i64 j = 0; j < requests; ++j) {
              const Request req =
                  disjoint_request(static_cast<u64>(j + 1), j, 8);
              client.send_frame(encode_step(req.id, stack.names[
                  static_cast<size_t>(c)], req.accesses));
            }
            for (i64 j = 0; j < requests; ++j) {
              const WireResponse resp = client.recv_response();
              if (!resp.ok) throw ConfigError(resp.error);
            }
          } catch (const std::exception& e) {
            errors[static_cast<size_t>(c)] = e.what();
          }
        });
      }
      for (std::thread& t : clients) t.join();
      wall_ms = timer.ms();
      for (const std::string& e : errors) {
        if (!e.empty()) {
          std::cerr << "parity client failed: " << e << '\n';
          return 1;
        }
      }
      for (i64 c = 0; c < conns; ++c) {
        PramMeshSimulator solo(serve_config(8));
        for (i64 j = 0; j < requests; ++j) {
          solo.step(disjoint_request(static_cast<u64>(j + 1), j, 8).accesses,
                    nullptr);
        }
        Session* s =
            stack.mgr.find_by_name(stack.names[static_cast<size_t>(c)]);
        if (snapshot_simulator(s->sim()) != snapshot_simulator(solo)) {
          std::cerr << "socket-coalesced session " << c
                    << " diverged from solo replay\n";
          return 1;
        }
      }
      if (stack.sched->coalesce_stats().batches == 0) {
        std::cerr << "parity run never coalesced — scenario lost its "
                     "point\n";
        return 1;
      }
    }
    Table pt({"conns", "requests", "verdict", "wall_ms"});
    pt.add(conns, requests, "bit-identical", wall_ms);
    pt.print(std::cout);
    rec.point("parity conns=4 window=8", wall_ms, 1);
  }

  rec.write();
  std::cout << "wrote " << rec.output_path() << '\n';
  return 0;
}
