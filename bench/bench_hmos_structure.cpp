// EXP-F1 — Figure 1: the HMOS structure.
//
// Prints, for a sweep of (n, M, q, k), the level table the paper's Figure 1
// depicts: module counts m_i (with the constant c = m_i / n^{alpha/2^i} of
// Eq. (1), which the paper bounds in [q/2, q^3]), page counts, tessellation
// submesh sizes t_i, and per-processor copy load.
#include <cmath>
#include <iostream>

#include "hmos/memory_map.hpp"
#include "hmos/params.hpp"
#include "hmos/placement.hpp"
#include "recorder.hpp"
#include "util/table.hpp"

using namespace meshpram;
using benchutil::BenchRecorder;
using benchutil::WallTimer;

namespace {

void structure_table(BenchRecorder& rec, int side, i64 M, i64 q, int k) {
  const WallTimer timer;
  HmosParams params(q, k, M, side, side);
  MemoryMap map(params);
  Placement placement(map, Region(0, 0, side, side));

  std::cout << params.describe();
  Table t({"level i", "d_i", "m_i = q^d_i", "c = m_i/n^(a/2^i)", "pages",
           "avg t_i (nodes/page)", "Eq.(1) c-range"});
  const double n = static_cast<double>(params.mesh_size());
  const double alpha = params.alpha();
  for (int i = 1; i <= k; ++i) {
    const auto& lv = params.level(i);
    const double c =
        static_cast<double>(lv.modules) /
        std::pow(n, alpha / static_cast<double>(i64{1} << i));
    const double tsize = n / static_cast<double>(lv.pages);
    t.add(i, lv.d, lv.modules, c, lv.pages, tsize,
          "[" + format_double(static_cast<double>(q) / 2) + ", " +
              format_double(std::pow(static_cast<double>(q), 3)) + "]");
  }
  t.print(std::cout);
  std::cout << "degraded placement (pages sharing nodes): "
            << (placement.degraded() ? "yes" : "no") << "\n\n";
  rec.point("side=" + std::to_string(side) + " M=" + std::to_string(M) +
                " q=" + std::to_string(q) + " k=" + std::to_string(k),
            timer.ms(), /*mesh_steps=*/0);
}

}  // namespace

int main() {
  std::cout << "=== EXP-F1: HMOS structure (paper Figure 1 / Eq. 1) ===\n\n";
  BenchRecorder rec("hmos_structure");
  structure_table(rec, 32, 4096, 3, 2);      // alpha ~ 1.2
  structure_table(rec, 32, 32768, 3, 2);     // alpha = 1.5
  structure_table(rec, 64, 262144, 3, 2);    // alpha = 1.5 at n = 4096
  structure_table(rec, 64, 100000, 3, 3);    // k = 3
  structure_table(rec, 32, 1048576, 3, 2);   // alpha = 2
  structure_table(rec, 32, 4096, 9, 2);      // larger branching q = 9
  rec.write();
  return 0;
}
