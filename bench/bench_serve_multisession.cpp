// EXP-S1 — multi-session serving (DESIGN.md §11): fair-scheduler multiplexing
// overhead, admission control under over-capacity open-loop load, and
// snapshot/restore parity, all in one deterministic record.
//
// Three scenario families, every mesh_steps value thread-count invariant:
//   multiplex — 8 sessions interleaved round-robin through the FairScheduler;
//     the binary re-runs every session's workload on a solo simulator and
//     aborts unless values and counted steps match bit for bit (the "shared
//     service costs nothing in determinism" claim). A second run on a
//     scheduler-owned 2-thread pool (ScopedPool injection) must agree too.
//   overload — seeded Poisson load at ~3x service capacity through the wire
//     API; the recorded points include explicit rejection and peak-queue
//     counts (in the mesh_steps field so tools/bench_smoke.py pins them):
//     bounded queues + rejected-with-reason, never unbounded growth.
//   snapshot — mid-workload snapshot over the wire, restore into a fresh
//     manager/scheduler stack, remaining workload must reproduce exactly.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "serve/api.hpp"
#include "serve/loadgen.hpp"
#include "serve/manager.hpp"
#include "serve/scheduler.hpp"
#include "serve/snapshot.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;
using namespace meshpram::serve;

namespace {

SimConfig serve_config(int side) {
  SimConfig cfg;
  cfg.mesh_rows = side;
  cfg.mesh_cols = side;
  const i64 n = static_cast<i64>(side) * side;
  cfg.num_vars = n * 8;
  cfg.q = 3;
  cfg.k = 2;
  cfg.sort_mode = SortMode::Analytic;
  return cfg;
}

/// Session s, step t: alternating write/read EREW steps from a per-session
/// seeded stream (pure function of (side, s, t)).
std::vector<AccessRequest> session_step(const SimConfig& cfg, i64 session,
                                        i64 step) {
  Rng rng(10007u * static_cast<u64>(session) + static_cast<u64>(step) + 1);
  const i64 n = static_cast<i64>(cfg.mesh_rows) * cfg.mesh_cols;
  return random_requests(n, cfg.num_vars, rng,
                         step % 2 == 0 ? Op::Write : Op::Read);
}

struct MultiplexResult {
  i64 total_mesh_steps = 0;
  double wall_ms = 0;
};

/// Runs sessions*steps requests through a FairScheduler and checks every
/// response against a solo serial run of the same session workload.
MultiplexResult run_multiplex(int side, i64 sessions, i64 steps,
                              int pool_threads) {
  const SimConfig cfg = serve_config(side);
  SessionManager mgr;
  std::vector<u32> ids;
  for (i64 s = 0; s < sessions; ++s) {
    ids.push_back(mgr.create("m" + std::to_string(s), cfg).id());
  }
  SchedulerConfig scfg;
  scfg.threads = pool_threads;
  scfg.global_inflight = sessions * steps + 1;
  FairScheduler sched(mgr, scfg);
  std::map<u64, Response> done;
  sched.set_completion_sink([&done](Response&& r) {
    done[r.id] = std::move(r);
  });

  const WallTimer timer;
  for (i64 t = 0; t < steps; ++t) {
    for (i64 s = 0; s < sessions; ++s) {
      Request req;
      req.id = static_cast<u64>(s * 10000 + t);
      req.accesses = session_step(cfg, s, t);
      const Admission verdict =
          sched.submit(ids[static_cast<size_t>(s)], std::move(req));
      if (!verdict.accepted) {
        std::cerr << "multiplex admission failed: " << verdict.reason << '\n';
        std::exit(1);
      }
    }
  }
  sched.run_until_idle();
  MultiplexResult out;
  out.wall_ms = timer.ms();

  // Solo parity: each session's workload alone must match bit for bit.
  for (i64 s = 0; s < sessions; ++s) {
    PramMeshSimulator solo(cfg);
    for (i64 t = 0; t < steps; ++t) {
      StepStats st;
      const std::vector<i64> want = solo.step(session_step(cfg, s, t), &st);
      const auto it = done.find(static_cast<u64>(s * 10000 + t));
      if (it == done.end() || !it->second.ok ||
          it->second.values != want || it->second.mesh_steps != st.total_steps) {
        std::cerr << "multiplex/solo mismatch: session " << s << " step " << t
                  << '\n';
        std::exit(1);
      }
      out.total_mesh_steps += st.total_steps;
    }
  }
  return out;
}

}  // namespace

int main() {
  set_log_level(LogLevel::Error);  // the t_i<1 warning is expected here
  std::cout << "=== EXP-S1: multi-session serving (fair scheduler, admission "
               "control, snapshot/restore) ===\n";
  BenchRecorder rec("serve_multisession");

  // ---- multiplex: 8 sessions, round-robin, solo-parity enforced ----------
  Table mt({"side", "sessions", "steps", "pool", "T_sim_total", "wall_ms"});
  for (const int side : {8, 16}) {
    if (side > bench_max_side()) continue;
    const i64 sessions = 8;
    const i64 steps = 4;
    const MultiplexResult ambient = run_multiplex(side, sessions, steps, 0);
    const MultiplexResult pooled = run_multiplex(side, sessions, steps, 2);
    if (pooled.total_mesh_steps != ambient.total_mesh_steps) {
      std::cerr << "pooled scheduler changed counted steps\n";
      return 1;
    }
    mt.add(side, sessions, steps, "ambient", ambient.total_mesh_steps,
           ambient.wall_ms);
    mt.add(side, sessions, steps, "owned:2", pooled.total_mesh_steps,
           pooled.wall_ms);
    const std::string tag = "multiplex side=" + std::to_string(side) +
                            " sessions=8 steps=4";
    rec.point(tag, ambient.wall_ms, ambient.total_mesh_steps);
    rec.point(tag + " pooled", pooled.wall_ms, pooled.total_mesh_steps);
  }
  mt.print(std::cout);

  // ---- overload: open-loop Poisson at ~3x capacity through the wire API --
  {
    const SimConfig cfg = serve_config(8);
    SessionManager mgr;
    SessionLimits limits;
    limits.queue_capacity = 8;
    std::vector<std::string> names;
    std::vector<SessionShape> shapes;
    for (i64 s = 0; s < 4; ++s) {
      Session& sess = mgr.create("ov" + std::to_string(s), cfg, limits);
      names.push_back(sess.name());
      shapes.push_back({sess.sim().processors(), sess.sim().num_vars()});
    }
    SchedulerConfig scfg;
    scfg.global_inflight = 24;
    FairScheduler sched(mgr, scfg);
    LoopbackDriver driver(mgr, sched);

    LoadgenConfig lg;
    lg.requests = 200;
    lg.arrivals_per_slice = 6.0;  // 1.5x the 4 steps/slice service capacity
    lg.seed = 17;
    lg.accesses_per_request = 32;
    const LoadgenReport rep = run_loadgen(driver, sched, names, shapes, lg);

    if (rep.rejected == 0 || rep.peak_queue_depth > limits.queue_capacity ||
        rep.failed != 0) {
      std::cerr << "overload scenario did not exercise bounded admission "
                   "control (rejected="
                << rep.rejected << " peak=" << rep.peak_queue_depth
                << " failed=" << rep.failed << ")\n";
      return 1;
    }

    Table ot({"offered", "completed", "rejected", "peak_q", "slices",
              "p50_sl", "p95_sl", "p99_sl", "goodput/sl", "wall_ms"});
    ot.add(rep.offered, rep.completed, rep.rejected, rep.peak_queue_depth,
           rep.slices, rep.p50_slices, rep.p95_slices, rep.p99_slices,
           rep.goodput_per_slice, rep.wall_seconds * 1000.0);
    ot.print(std::cout);

    // Deterministic admission-control evidence: counts ride in the
    // mesh_steps field so the smoke gate pins them exactly.
    const std::string tag = "overload sessions=4 cap=8 rate=6";
    rec.point(tag + " completed", rep.wall_seconds * 1000.0, rep.completed);
    rec.point(tag + " rejected", 0, rep.rejected);
    rec.point(tag + " peak_queue", 0, rep.peak_queue_depth);
    rec.point(tag + " slices", 0, rep.slices);
    rec.point(tag + " mesh_steps", 0, rep.total_mesh_steps);
    rec.point(tag + " p95_slices_x100", 0,
              static_cast<i64>(rep.p95_slices * 100.0 + 0.5));
  }

  // ---- snapshot: capture over the wire, restore, finish bit-identically --
  {
    const SimConfig cfg = serve_config(8);
    SessionManager mgr;
    Session& s = mgr.create("snap", cfg);
    FairScheduler sched(mgr);
    LoopbackDriver driver(mgr, sched);
    std::map<u64, Response> done;
    sched.set_completion_sink([&done](Response&& r) {
      done[r.id] = std::move(r);
    });

    const i64 prefix = 3, remaining = 3;
    for (i64 t = 0; t < prefix; ++t) {
      Request req;
      req.id = static_cast<u64>(t);
      req.accesses = session_step(cfg, 99, t);
      sched.submit(s.id(), std::move(req));
    }
    sched.run_until_idle();

    driver.submit(encode_control(MsgType::Snapshot, 1000, "snap"));
    const auto frames = driver.poll();
    std::string_view buf = frames.back();
    const WireResponse snap = decode_response(*next_frame(buf));
    if (!snap.ok || snap.snapshot_bytes.empty()) {
      std::cerr << "snapshot over the wire failed: " << snap.error << '\n';
      return 1;
    }

    // Original finishes its remaining workload...
    i64 want_steps = 0;
    for (i64 t = prefix; t < prefix + remaining; ++t) {
      Request req;
      req.id = static_cast<u64>(t);
      req.accesses = session_step(cfg, 99, t);
      sched.submit(s.id(), std::move(req));
    }
    sched.run_until_idle();
    for (i64 t = prefix; t < prefix + remaining; ++t) {
      want_steps += done[static_cast<u64>(t)].mesh_steps;
    }

    // ...and a fresh stack restored from the bytes must reproduce it.
    const WallTimer timer;
    SessionManager mgr2;
    Session& r = mgr2.restore("snap2", snap.snapshot_bytes);
    FairScheduler sched2(mgr2);
    std::map<u64, Response> done2;
    sched2.set_completion_sink([&done2](Response&& resp) {
      done2[resp.id] = std::move(resp);
    });
    for (i64 t = prefix; t < prefix + remaining; ++t) {
      Request req;
      req.id = static_cast<u64>(t);
      req.accesses = session_step(cfg, 99, t);
      sched2.submit(r.id(), std::move(req));
    }
    sched2.run_until_idle();
    const double restore_ms = timer.ms();

    i64 got_steps = 0;
    for (i64 t = prefix; t < prefix + remaining; ++t) {
      const Response& a = done[static_cast<u64>(t)];
      const Response& b = done2[static_cast<u64>(t)];
      if (a.values != b.values || a.mesh_steps != b.mesh_steps) {
        std::cerr << "restored run diverged at step " << t << '\n';
        return 1;
      }
      got_steps += b.mesh_steps;
    }
    if (got_steps != want_steps) {
      std::cerr << "restored run step totals diverged\n";
      return 1;
    }
    Table st({"prefix", "remaining", "T_sim_remaining", "restore+run_ms"});
    st.add(prefix, remaining, got_steps, restore_ms);
    st.print(std::cout);
    rec.point("snapshot side=8 prefix=3 remaining=3", restore_ms, got_steps);
  }

  rec.write();
  std::cout << "wrote " << rec.output_path() << '\n';
  return 0;
}
