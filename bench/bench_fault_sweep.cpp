// EXP-F1 — degraded-mode robustness sweep (DESIGN.md §10):
// slowdown and read availability of the staged access protocol as the
// injected fault rate grows.
//
// Per (k, side) the rate-0 point uses the exact configuration, seed and
// request stream of bench_simulation_mid_mem ("k=<k> side=<side>" point
// names), so its mesh_steps must reproduce that bench bit-for-bit —
// tools/bench_smoke.py checks the parity. Faulted points install a seeded
// random plan (nodes, modules, links, stalls, drops all scaled from one
// nominal rate) and report the measured step-count slowdown plus the
// fraction of requests still served (availability), both embedded in the
// recorded config string so BENCH_fault_sweep.json carries them.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

namespace {

struct FaultPoint {
  i64 steps = 0;
  double wall_ms = 0;
  double availability = 1;
  fault::FaultReport report;
  bool unroutable = false;
};

/// One nominal rate fans out over the fault classes: memory modules and
/// transient stalls at the full rate, fail-stop nodes and permanent link
/// deaths at half (they are the harshest), drops at the full rate.
fault::FaultSpec spec_for(double rate, int side, int k) {
  fault::FaultSpec spec;
  spec.seed = 1000003u * static_cast<u64>(k) + 1009u * static_cast<u64>(side) +
              static_cast<u64>(std::llround(rate * 1000));
  spec.node_rate = rate / 2;
  spec.module_rate = rate;
  spec.link_rate = rate / 2;
  spec.stall_rate = rate;
  spec.drop_rate = rate;
  return spec;
}

/// Mirrors benchutil::measure_sim_step (same config, seed and request
/// stream) so the rate-0 points reproduce bench_simulation_mid_mem's
/// mesh_steps exactly; only the fault plan and the step_degraded() call
/// differ, neither of which costs steps on an empty plan.
FaultPoint measure_fault_step(int side, i64 M, i64 q, int k, u64 seed,
                              const fault::FaultSpec& spec) {
  set_log_level(LogLevel::Error);  // the t_i<1 warning is expected here
  SimConfig cfg;
  cfg.mesh_rows = side;
  cfg.mesh_cols = side;
  cfg.num_vars = M;
  cfg.q = q;
  cfg.k = k;
  cfg.sort_mode = SortMode::Analytic;
  cfg.fault_plan = fault::FaultPlan::random(side, side, spec);
  PramMeshSimulator sim(cfg);
  const i64 n = sim.processors();
  Rng rng(seed);
  const auto reqs = random_requests(n, M, rng);
  FaultPoint p;
  StepStats st;
  const WallTimer timer;
  try {
    const DegradedResult r = sim.step_degraded(reqs, &st);
    p.wall_ms = timer.ms();
    p.steps = st.total_steps;
    p.report = r.report;
    i64 served = 0;
    for (const char ok : r.ok) served += ok != 0;
    p.availability = static_cast<double>(served) / static_cast<double>(n);
  } catch (const fault::FaultError&) {
    // A hostile enough random plan can wall an alive node in behind dead
    // links; record the point as unroutable instead of aborting the sweep.
    p.wall_ms = timer.ms();
    p.unroutable = true;
    p.availability = 0;
  }
  return p;
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace

int main() {
  const double alpha = 1.5;
  const std::vector<double> rates = {0.01, 0.03, 0.06};
  // Routing faults force whole-mesh detour scope with serialized stages, so
  // faulted points are capped at side 32 to keep the sweep quick; rate-0
  // parity points still cover every bench_simulation_mid_mem side.
  const int max_faulted_side = 32;

  std::cout << "=== EXP-F1: fault-rate sweep, alpha = 1.5 (degraded-mode "
               "slowdown + availability) ===\n";
  BenchRecorder rec("fault_sweep");
  Table t({"k", "side", "rate", "T_sim", "slowdown", "avail", "failed",
           "degraded", "retried", "detoured", "dropped"});
  for (int k : {2, 3}) {
    for (int side : {16, 32, 64, 128}) {
      if (side > bench_max_side()) continue;
      const i64 n = static_cast<i64>(side) * side;
      const i64 M = static_cast<i64>(std::llround(std::pow(n, alpha)));
      const std::string base_cfg =
          "k=" + std::to_string(k) + " side=" + std::to_string(side);

      const FaultPoint base =
          measure_fault_step(side, M, 3, k, 7, fault::FaultSpec{});
      rec.point(base_cfg, base.wall_ms, base.steps);
      t.add(k, side, "0", base.steps, "1.00", fmt(base.availability, 4), 0, 0,
            0, 0, 0);

      if (side > max_faulted_side) {
        std::cout << "(side " << side
                  << ": faulted points skipped, rate-0 parity only)\n";
        continue;
      }
      for (const double rate : rates) {
        const FaultPoint p =
            measure_fault_step(side, M, 3, k, 7, spec_for(rate, side, k));
        if (p.unroutable) {
          rec.point(base_cfg + " rate=" + fmt(rate, 3) + " unroutable",
                    p.wall_ms, 0);
          t.add(k, side, fmt(rate, 3), "-", "-", "-", "-", "-", "-", "-", "-");
          continue;
        }
        const double slowdown =
            static_cast<double>(p.steps) / static_cast<double>(base.steps);
        rec.point(base_cfg + " rate=" + fmt(rate, 3) + " slowdown=" +
                      fmt(slowdown, 2) + " avail=" + fmt(p.availability, 4),
                  p.wall_ms, p.steps);
        t.add(k, side, fmt(rate, 3), p.steps, fmt(slowdown, 2),
              fmt(p.availability, 4), p.report.requests_failed,
              p.report.requests_degraded, p.report.packets_retried,
              p.report.packets_detoured, p.report.packets_dropped);
      }
    }
  }
  t.print(std::cout);
  rec.write();
  return 0;
}
