// EXP-BASE — the §1 motivation, measured: deterministic worst case.
//
// Compares, on identical request sets (random and adversarial):
//   * single copy, modular placement (naive deterministic),
//   * single copy, hashed placement (randomized-scheme stand-in),
//   * HMOS replication without culling (direct-all-copies ablation),
//   * the full scheme (HMOS + CULLING + staged protocol),
// plus the MPC contention landscape (single copy vs [PP93a]-style majority
// quorums) that the HMOS lifts onto the mesh.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "pram/baselines/direct.hpp"
#include "pram/baselines/mpc.hpp"
#include "pram/baselines/single_copy.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

int main() {
  set_log_level(LogLevel::Error);
  const int side = 32;
  const i64 n = static_cast<i64>(side) * side;
  const i64 M = n * n;  // alpha = 2: the adversary's favourite regime

  std::cout << "=== EXP-BASE: scheme comparison on a " << side << 'x' << side
            << " mesh, M = n^2 = " << M << " ===\n";
  BenchRecorder rec("baselines");
  Table t({"pattern", "scheme", "total steps", "memory serialization"});

  for (const bool adversarial : {false, true}) {
    const char* pat = adversarial ? "adversarial" : "random";
    const std::string cfg_prefix = std::string(pat) + " ";
    Rng rng(99);
    const auto reqs = adversarial ? adversarial_requests(n, M)
                                  : random_requests(n, M, rng);

    {
      SingleCopySim sim(side, side, M, SingleCopyPlacement::Modular, 1,
                        {SortMode::Analytic});
      SingleCopyStats st;
      const WallTimer timer;
      sim.step(reqs, &st);
      rec.point(cfg_prefix + "single-copy-modular", timer.ms(),
                st.total_steps);
      t.add(pat, "single copy (modular)", st.total_steps, st.service_steps);
    }
    {
      SingleCopySim sim(side, side, M, SingleCopyPlacement::Hashed, 77,
                        {SortMode::Analytic});
      // The adversary attacks the *hash*: collide on one home node.
      std::vector<AccessRequest> hreqs = reqs;
      if (adversarial) {
        hreqs.clear();
        const i32 target = sim.home(0);
        for (i64 v = 0; v < M && static_cast<i64>(hreqs.size()) < n; ++v) {
          if (sim.home(v) == target) hreqs.push_back({v, Op::Read, 0});
        }
      }
      SingleCopyStats st;
      const WallTimer timer;
      sim.step(hreqs, &st);
      rec.point(cfg_prefix + "single-copy-hashed", timer.ms(),
                st.total_steps);
      t.add(pat, "single copy (hashed, known hash)", st.total_steps,
            st.service_steps);
    }
    {
      SimConfig cfg;
      cfg.mesh_rows = side;
      cfg.mesh_cols = side;
      cfg.num_vars = M;
      cfg.sort_mode = SortMode::Analytic;
      DirectAllCopiesSim sim(cfg);
      DirectStats st;
      const WallTimer timer;
      sim.step(reqs, &st);
      rec.point(cfg_prefix + "direct-all-copies", timer.ms(), st.total_steps);
      t.add(pat, "HMOS, no culling (ablation)", st.total_steps,
            st.service_steps);
    }
    {
      const SimPoint p = measure_sim_step(side, M, 3, 2, 99, adversarial);
      rec.point(cfg_prefix + "full-scheme", p.wall_ms, p.steps);
      t.add(pat, "full scheme (HMOS+CULLING)", p.steps, "-");
    }
  }
  t.print(std::cout);

  std::cout << "\nMPC contention (routing-free, [PP93a] layer):\n";
  Table m({"pattern", "single-copy contention", "majority-quorum contention"});
  MpcSim mpc(3, 243, bibd_input_count(3, 5));
  std::vector<i64> adv;
  for (i64 v = 7; v < mpc.num_vars(); v += 243) adv.push_back(v);
  Rng rng2(5);
  std::vector<i64> rnd;
  {
    std::set<i64> used;
    for (int i = 0; i < 243; ++i) {
      i64 v = rng2.range(0, mpc.num_vars() - 1);
      while (used.contains(v)) v = (v + 1) % mpc.num_vars();
      used.insert(v);
      rnd.push_back(v);
    }
  }
  m.add("random", mpc.single_copy_contention(rnd),
        mpc.majority_contention(rnd));
  m.add("adversarial", mpc.single_copy_contention(adv),
        mpc.majority_contention(adv));
  m.print(std::cout);
  std::cout << "\nShape to reproduce: single-copy schemes degrade to full "
               "serialization under attack;\nthe replicated schemes stay "
               "flat — and the full scheme's worst case is a GUARANTEE\n"
               "(Theorem 3), not an empirical observation.\n";
  rec.write();
  return 0;
}
