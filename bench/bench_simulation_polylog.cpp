// EXP-T4d — Theorem 1/4, polylog redundancy:
// for alpha <= 3/2, letting k grow like log(log n / log log n) buys
// T_sim in sqrt(n) * polylog(n) at redundancy q^k in polylog(n).
//
// On benchable meshes the k' equation gives k in {2, 3}; this bench sweeps k
// at fixed (n, M) and shows the tradeoff curve the theorem optimizes:
// deeper k lowers the protocol exponent but multiplies the packet count by
// q — the sweet spot matches the paper's k' balance equation.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

namespace {

/// The paper's balance equation q^{(k'+1)/2} = n^{(alpha-1)/2^{k'+1}}.
int paper_k(double n, double alpha, double q) {
  double best = 1;
  double best_gap = 1e300;
  for (int k = 1; k <= 5; ++k) {
    const double lhs = std::pow(q, (k + 1) / 2.0);
    const double rhs = std::pow(n, (alpha - 1) / std::pow(2.0, k + 1));
    const double gap = std::abs(std::log(lhs) - std::log(rhs));
    if (gap < best_gap) {
      best_gap = gap;
      best = k;
    }
  }
  return static_cast<int>(best);
}

}  // namespace

int main() {
  std::cout << "=== EXP-T4d: redundancy/k tradeoff (Theorem 1, polylog "
               "regime) ===\n";
  BenchRecorder rec("simulation_polylog");
  Table t({"n", "M", "k", "redundancy q^k", "T_sim", "T/sqrt(n)",
           "k' of paper"});
  for (int side : {32, 64}) {
    const i64 n = static_cast<i64>(side) * side;
    const i64 M = static_cast<i64>(std::llround(std::pow(n, 1.3)));
    const int kp = paper_k(static_cast<double>(n), 1.3, 3.0);
    for (int k = 1; k <= 3; ++k) {
      const SimPoint p = measure_sim_step(side, M, 3, k, 23);
      rec.point("side=" + std::to_string(side) + " k=" + std::to_string(k),
                p.wall_ms, p.steps);
      t.add(p.n, p.M, p.k, p.redundancy, p.steps,
            static_cast<double>(p.steps) /
                std::sqrt(static_cast<double>(p.n)),
            k == kp ? "<- k'" : "");
    }
  }
  t.print(std::cout);
  std::cout << "\nTheory: k' balances the stage-(k+1) distribution cost "
               "against the per-level overhead;\nsmaller k pays in the first "
               "stage (big level-1 pages), larger k pays q^k packets.\n";
  rec.write();
  return 0;
}
