// EXP-R2 — §2: tessellated (l1,l2,delta,m)-routing vs general routing.
//
// The paper compares the WORST-CASE bounds: general (l1,l2)-routing costs
// sqrt(l1*l2*n) (Theorem 2, oblivious), the tessellated algorithm
// O(sqrt(delta)(sqrt(l1*n) + sqrt(l2*m))) — better when l1, delta in o(l2).
// Our general baseline (sort + adaptive greedy) is adaptive and often beats
// its oblivious bound on these instances, so this bench reports BOTH the
// measured costs and the two theoretical curves, plus the peak transit-queue
// occupancy — the hot-spot buffering that the balanced first stage of the
// tessellated router provably avoids (a real machine has finite buffers;
// the adaptive baseline's advantage rests on unbounded queues).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "routing/lroute.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

int main() {
  std::cout << "=== EXP-R2: (l1,l2,delta,m)-routing vs general (l1,l2) "
               "(paper 2) ===\n";
  BenchRecorder rec("routing_tessellated");
  Table t({"n", "m", "l1", "delta", "l2 (skew)", "two-stage steps",
           "general steps", "Thm2 bound", "tess. bound", "2stage maxQ",
           "general maxQ"});

  for (int side : {32, 64}) {
    const i64 n = static_cast<i64>(side) * side;
    Region whole(0, 0, side, side);
    const i64 nsubs = 16;
    const auto subs = whole.grid_split(nsubs);
    const i64 m = subs[0].size();
    const i64 l1 = 2;
    const i64 delta = 2;  // per-submesh totals: delta * m packets
    for (i64 l2 : {2, 8, 32, 128}) {
      Mesh a(side, side), b(side, side);
      Rng r1(static_cast<u64>(n + l2)), r2(static_cast<u64>(n + l2));
      fill_tessellated_instance(a, subs, l1, l2, delta, r1);
      fill_tessellated_instance(b, subs, l1, l2, delta, r2);
      const WallTimer two_timer;
      const auto two = route_two_stage(a, whole, subs, {SortMode::Simulated});
      const double two_ms = two_timer.ms();
      const WallTimer gen_timer;
      const auto gen = route_sorted(b, whole, {SortMode::Simulated});
      const std::string cfg =
          "side=" + std::to_string(side) + " l2=" + std::to_string(l2);
      rec.point(cfg + " two-stage", two_ms, two.steps);
      rec.point(cfg + " general", gen_timer.ms(), gen.steps);
      const double thm2 =
          std::sqrt(static_cast<double>(l1 * l2 * n)) +
          static_cast<double>(l1) * std::sqrt(static_cast<double>(n));
      const double tess = std::sqrt(static_cast<double>(delta)) *
                          (std::sqrt(static_cast<double>(l1 * n)) +
                           std::sqrt(static_cast<double>(l2 * m)));
      t.add(n, m, l1, delta, l2, two.steps, gen.steps, thm2, tess,
            two.max_queue, gen.max_queue);
    }
  }
  t.print(std::cout);
  std::cout <<
      "\nShape reproduced: the PREDICTED curves cross — sqrt(l1*l2*n) grows "
      "with the skew l2\nwhile sqrt(delta)(sqrt(l1 n)+sqrt(l2 m)) stays "
      "nearly flat (l2 enters only through the\nsmall submesh term). Our "
      "measured general router is adaptive (sort + greedy with\nunbounded "
      "node buffers) and rides BELOW its oblivious Theorem 2 bound, but its "
      "peak\nqueue occupancy grows with the skew, while the two-stage "
      "router's stays flat —\nthe balanced distribution is what a "
      "finite-buffer machine needs. Deterministic\nworst-case guarantees "
      "are exactly the paper's point.\n";
  rec.write();
  return 0;
}
