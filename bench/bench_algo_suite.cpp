// EXP-A1 — real PRAM algorithms as macro-workloads, across every backend.
//
// Every workload in the suite runs oracle-checked (WorkloadHarness REQUIREs
// the output bit-identical to IdealBackend and to a host reference) on:
// ideal, the full scheme (HMOS+CULLING), the no-culling ablation, both
// single-copy baselines and the MPC contention model. Recorded per point:
// mesh steps (deterministic, gated), program/EREW step counts, combining
// contention stats and the slowdown per PRAM step. This is the paper's
// claim measured on real computations instead of synthetic request sets.
#include <iostream>

#include "algo/harness.hpp"
#include "common.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::algo;
using namespace meshpram::benchutil;

int main() {
  set_log_level(LogLevel::Error);
  SimConfig cfg;
  cfg.mesh_rows = 16;
  cfg.mesh_cols = 16;
  cfg.num_vars = 4096;
  cfg.sort_mode = SortMode::Analytic;
  const WorkloadHarness harness(cfg);

  std::cout << "=== EXP-A1: algorithm suite on a " << cfg.mesh_rows << 'x'
            << cfg.mesh_cols << " mesh, M = " << cfg.num_vars << " ===\n";
  BenchRecorder rec("algo_suite");
  Table t({"workload", "n", "backend", "pram steps", "mesh steps",
           "steps/pram", "combined", "max conc"});

  // Sizes chosen so every workload fits the 256-processor machine: the
  // graph families carry up to ~2n edges (one processor per edge), refine
  // needs an n^2 signature table inside M.
  const u64 seed = 2026;
  const std::vector<std::pair<std::string, i64>> suite = {
      {"cc:path", 96},  {"cc:star", 96},    {"cc:grid", 96},
      {"cc:expander", 96}, {"cc:forest", 96},
      {"refine", 48},   {"prefix", 128},    {"scan", 128},
      {"rank", 128},    {"oddeven", 128},   {"bitonic", 128},
  };

  for (const auto& [name, size] : suite) {
    const auto workload = make_workload(name, size, seed);
    for (const BackendKind kind : all_backend_kinds()) {
      const HarnessResult r = harness.run(*workload, kind);
      BenchRecorder::AlgoColumns cols;
      cols.algorithm = r.workload;
      cols.backend = r.backend;
      cols.family = r.family;
      cols.size = r.size;
      cols.pram_steps = r.pram_steps;
      cols.backend_steps = r.backend_steps;
      cols.combined_groups = r.combined_groups;
      cols.max_concurrency = r.stream.max_concurrency;
      cols.reuse_factor = r.stream.reuse_factor();
      const std::string config =
          r.workload + " n=" + std::to_string(r.size) + " " + r.backend;
      rec.point_algo(config, r.wall_ms, r.mesh_steps, cols);

      // Slowdown per PRAM step; zero-cost backends have no cost model, so
      // the column is "-" instead of a division by their fake 0.
      std::string per_step = "-";
      if (!r.zero_cost_backend && r.pram_steps > 0) {
        per_step = format_double(static_cast<double>(r.mesh_steps) /
                                 static_cast<double>(r.pram_steps));
      }
      t.add(r.workload, r.size, r.backend, r.pram_steps, r.mesh_steps,
            per_step, r.combined_groups, r.stream.max_concurrency);
    }
  }
  t.print(std::cout);
  std::cout << "\nShape to reproduce: the full scheme's steps/pram column is "
               "nearly flat across\nall eleven workloads — the deterministic "
               "worst-case toll per step, oblivious to\nthe address stream — "
               "while every baseline's column swings by an order of\n"
               "magnitude with the workload's contention (compare "
               "single_copy_mod on bitonic\nvs rank). The ideal rows pin the "
               "oracle: all backends returned bit-identical\noutputs on "
               "every row above.\n";
  rec.write();
  return 0;
}
