// EXP-T2 — Theorem 2: (l1,l2)-routing in sqrt(l1*l2*n) + O(l1*sqrt(n)) steps.
//
// Measures the sort-based (l1,l2)-router (our [SK93] stand-in, DESIGN.md
// 2.3) on random instances where every node sends l1 and receives at most
// l2 packets, against the theorem's prediction, and fits the n-scaling
// exponent (theory: 1/2 for fixed l1, l2).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "routing/lroute.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

int main() {
  std::cout << "=== EXP-T2: general (l1,l2)-routing vs Theorem 2 ===\n";
  BenchRecorder rec("routing_general");
  Table t({"n", "l1", "l2", "measured steps", "sqrt(l1*l2*n)+l1*sqrt(n)",
           "ratio", "sort share"});

  std::vector<double> ns, steps_11;
  for (int side : {16, 32, 64, 128}) {
    if (side > bench_max_side()) continue;
    const i64 n = static_cast<i64>(side) * side;
    for (const auto& [l1, l2] : std::vector<std::pair<i64, i64>>{
             {1, 1}, {1, 4}, {4, 4}, {1, 16}, {4, 16}}) {
      if (side == 128 && l1 * l2 > 16) continue;  // keep runtime modest
      Mesh mesh(side, side);
      Rng rng(static_cast<u64>(n * 31 + l1 * 7 + l2));
      fill_l1l2_instance(mesh, l1, l2, rng);
      const WallTimer timer;
      const auto st = route_sorted(mesh, mesh.whole(),
                                   {SortMode::Simulated});
      rec.point("side=" + std::to_string(side) + " l1=" + std::to_string(l1) +
                    " l2=" + std::to_string(l2),
                timer.ms(), st.steps);
      const double pred =
          std::sqrt(static_cast<double>(l1 * l2 * n)) +
          static_cast<double>(l1) * std::sqrt(static_cast<double>(n));
      t.add(n, l1, l2, st.steps, pred,
            static_cast<double>(st.steps) / pred,
            static_cast<double>(st.sort_steps) /
                static_cast<double>(st.steps));
      if (l1 == 1 && l2 == 1) {
        ns.push_back(static_cast<double>(n));
        steps_11.push_back(static_cast<double>(st.steps));
      }
    }
  }
  t.print(std::cout);

  if (ns.size() >= 2) {  // the MAX_SIDE smoke filter may leave one point
    const auto fit = fit_power_law(ns, steps_11);
    std::cout << "\n(1,1)-routing scaling: measured n^"
              << format_double(fit.slope)
              << " (theory n^0.5; shearsort adds a log factor, DESIGN.md 2.2), "
                 "R^2 = "
              << format_double(fit.r2) << "\n";
  }
  rec.write();
  return 0;
}
