// Machine-readable bench output: every bench_* binary records one
// (wall-clock ms, counted mesh steps) pair per configuration point and
// writes BENCH_<name>.json into the working directory, so runs can be
// diffed across commits. Structure-only points record 0 mesh steps.
#pragma once

#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace meshpram::benchutil {

/// Steady-clock stopwatch for the per-point wall measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects per-configuration measurements and writes BENCH_<name>.json.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name) : name_(std::move(name)) {}

  void point(std::string config, double wall_ms, i64 mesh_steps) {
    points_.push_back({std::move(config), wall_ms, mesh_steps});
  }

  void write() const {
    std::ofstream out("BENCH_" + name_ + ".json");
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"points\": [\n";
    for (size_t i = 0; i < points_.size(); ++i) {
      const Point& p = points_[i];
      out << "    {\"config\": \"" << p.config
          << "\", \"wall_ms\": " << p.wall_ms
          << ", \"mesh_steps\": " << p.mesh_steps << '}'
          << (i + 1 < points_.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
  }

 private:
  struct Point {
    std::string config;
    double wall_ms = 0;
    i64 mesh_steps = 0;
  };
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace meshpram::benchutil
