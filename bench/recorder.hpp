// Machine-readable bench output: every bench_* binary records one
// (wall-clock ms, counted mesh steps) pair per configuration point and
// writes BENCH_<name>.json, so runs can be diffed across commits.
// Structure-only points record 0 mesh steps.
//
// Output path is stable regardless of the cwd the binary is launched from:
// MESHPRAM_BENCH_DIR env > MESHPRAM_REPO_ROOT compile definition (set by
// bench/CMakeLists.txt) > cwd. Schema history:
//   1 — {bench, points:[{config, wall_ms, mesh_steps}]} (implicit, no field)
//   2 — adds "schema_version"
//   3 — adds "threads" (host worker count the run used), "git_sha" and
//       "build_type" (both baked in by bench/CMakeLists.txt), so a recorded
//       wall_ms can be matched to the machine configuration that produced it
//   4 — adds "node_order" and "simd" (the physical layout and kernel variant
//       the run used) and optional per-point hardware counter columns
//       (instructions, cycles, llc_refs, llc_misses, llc_miss_rate,
//       branch_misses via perf_event_open). Perf columns are informational:
//       they appear only when the counters were readable on the host and are
//       never diffed by tools/bench_smoke.py
//   5 — adds "ranks" (SPMD rank count the run used, 1 for single-process
//       benches) and "transport" (boundary-exchange transport name, "local"
//       when no transport is involved), plus optional per-point distributed
//       columns (boundary_bytes, barrier_wait_ms) recorded by point_dist.
//       Later additions within schema 5: optional per-point serving columns
//       (offered, completed, rejected, p50_us, p95_us, p99_us, rps) recorded
//       by point_serve — latency/throughput are wall-clock derived and
//       informational, never diffed by tools/bench_smoke.py.
//       Also within schema 5: optional per-point algorithm-workload columns
//       (algorithm, backend, family, size, pram_steps, backend_steps,
//       combined_groups, max_concurrency, reuse_factor) recorded by
//       point_algo for EXP-A1 — the step/contention counts are
//       deterministic and gated by tools/bench_smoke.py; reuse_factor is a
//       derived ratio, diffed exactly via the underlying counts
#pragma once

#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "mesh/node_order.hpp"
#include "telemetry/perf_counters.hpp"
#include "util/env.hpp"
#include "util/simd.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::benchutil {

/// Steady-clock stopwatch for the per-point wall measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Directory BENCH_<name>.json files land in; see the header comment for
/// the precedence order.
inline std::string bench_output_dir() {
  if (const auto dir = env_str("MESHPRAM_BENCH_DIR")) return *dir;
#ifdef MESHPRAM_REPO_ROOT
  return MESHPRAM_REPO_ROOT;
#else
  return ".";
#endif
}

/// Collects per-configuration measurements and writes BENCH_<name>.json.
class BenchRecorder {
 public:
  static constexpr int kSchemaVersion = 5;

  explicit BenchRecorder(std::string name) : name_(std::move(name)) {}

  /// Stamp the SPMD rank count / transport the whole run used. Benches that
  /// never touch src/dist keep the defaults (ranks 1, transport "local").
  void set_ranks(int ranks) { ranks_ = ranks; }
  void set_transport(std::string transport) {
    transport_ = std::move(transport);
  }

  void point(std::string config, double wall_ms, i64 mesh_steps) {
    Point p;
    p.config = std::move(config);
    p.wall_ms = wall_ms;
    p.mesh_steps = mesh_steps;
    points_.push_back(std::move(p));
  }

  /// Point with hardware counters; absent samples record no perf columns.
  void point(std::string config, double wall_ms, i64 mesh_steps,
             const telemetry::PerfSample& perf) {
    Point p;
    p.config = std::move(config);
    p.wall_ms = wall_ms;
    p.mesh_steps = mesh_steps;
    p.perf = perf;
    points_.push_back(std::move(p));
  }

  /// Point with distributed-run columns (boundary-lane traffic and time
  /// spent blocked in collectives across all ranks). Recovery points also
  /// pass `recovery_blackout_ms` — the wall time the step stream was frozen
  /// while a killed worker was respawned and restored (informational, never
  /// diffed); negative means "not a recovery point" and omits the column.
  void point_dist(std::string config, double wall_ms, i64 mesh_steps,
                  i64 boundary_bytes, double barrier_wait_ms,
                  double recovery_blackout_ms = -1) {
    Point p;
    p.config = std::move(config);
    p.wall_ms = wall_ms;
    p.mesh_steps = mesh_steps;
    p.has_dist = true;
    p.boundary_bytes = boundary_bytes;
    p.barrier_wait_ms = barrier_wait_ms;
    p.recovery_blackout_ms = recovery_blackout_ms;
    points_.push_back(std::move(p));
  }

  /// Request-accounting + latency columns for a serving run (bench_serve_net).
  struct ServeColumns {
    i64 offered = 0;
    i64 completed = 0;
    i64 rejected = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double rps = 0;
  };

  /// Point with serving columns. Pass mesh_steps 0 for wall-clock-dependent
  /// runs (batching under real sockets is timing-dependent, so step totals
  /// are not pinnable); the serve columns themselves are informational.
  void point_serve(std::string config, double wall_ms, i64 mesh_steps,
                   const ServeColumns& serve) {
    Point p;
    p.config = std::move(config);
    p.wall_ms = wall_ms;
    p.mesh_steps = mesh_steps;
    p.has_serve = true;
    p.serve = serve;
    points_.push_back(std::move(p));
  }

  /// Deterministic identity + contention columns of one algorithm-workload
  /// run (bench_algo_suite / EXP-A1).
  struct AlgoColumns {
    std::string algorithm;
    std::string backend;
    std::string family;
    i64 size = 0;
    i64 pram_steps = 0;        ///< program-level (CRCW) steps
    i64 backend_steps = 0;     ///< EREW steps after the combining reduction
    i64 combined_groups = 0;   ///< variables combined by the CRCW adapter
    i64 max_concurrency = 0;   ///< largest same-variable group in one step
    double reuse_factor = 0;   ///< accesses per distinct variable touched
  };

  /// Point with algorithm-workload columns. All integer columns are
  /// deterministic (diffed exactly by the bench gate); wall_ms stays the
  /// usual informational measurement.
  void point_algo(std::string config, double wall_ms, i64 mesh_steps,
                  const AlgoColumns& algo) {
    Point p;
    p.config = std::move(config);
    p.wall_ms = wall_ms;
    p.mesh_steps = mesh_steps;
    p.has_algo = true;
    p.algo = algo;
    points_.push_back(std::move(p));
  }

  std::string output_path() const {
    return bench_output_dir() + "/BENCH_" + name_ + ".json";
  }

  void write() const {
    std::ofstream out(output_path());
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"schema_version\": "
        << kSchemaVersion << ",\n  \"threads\": " << execution_threads()
        << ",\n  \"git_sha\": \"" <<
#ifdef MESHPRAM_GIT_SHA
        MESHPRAM_GIT_SHA
#else
        "unknown"
#endif
        << "\",\n  \"build_type\": \"" <<
#ifdef MESHPRAM_BUILD_TYPE
        MESHPRAM_BUILD_TYPE
#else
        "unknown"
#endif
        << "\",\n  \"node_order\": \"" << node_order_name(node_order_default())
        << "\",\n  \"simd\": \"" << simd::kernel_name()
        << "\",\n  \"ranks\": " << ranks_
        << ",\n  \"transport\": \"" << transport_
        << "\",\n  \"points\": [\n";
    for (size_t i = 0; i < points_.size(); ++i) {
      const Point& p = points_[i];
      out << "    {\"config\": \"" << p.config
          << "\", \"wall_ms\": " << p.wall_ms
          << ", \"mesh_steps\": " << p.mesh_steps;
      if (p.perf.available) {
        out << ", \"instructions\": " << p.perf.instructions
            << ", \"cycles\": " << p.perf.cycles
            << ", \"llc_refs\": " << p.perf.cache_refs
            << ", \"llc_misses\": " << p.perf.cache_misses
            << ", \"llc_miss_rate\": " << p.perf.llc_miss_rate()
            << ", \"branch_misses\": " << p.perf.branch_misses;
      }
      if (p.has_dist) {
        out << ", \"boundary_bytes\": " << p.boundary_bytes
            << ", \"barrier_wait_ms\": " << p.barrier_wait_ms;
        if (p.recovery_blackout_ms >= 0) {
          out << ", \"recovery_blackout_ms\": " << p.recovery_blackout_ms;
        }
      }
      if (p.has_algo) {
        out << ", \"algorithm\": \"" << p.algo.algorithm
            << "\", \"backend\": \"" << p.algo.backend
            << "\", \"family\": \"" << p.algo.family
            << "\", \"size\": " << p.algo.size
            << ", \"pram_steps\": " << p.algo.pram_steps
            << ", \"backend_steps\": " << p.algo.backend_steps
            << ", \"combined_groups\": " << p.algo.combined_groups
            << ", \"max_concurrency\": " << p.algo.max_concurrency
            << ", \"reuse_factor\": " << p.algo.reuse_factor;
      }
      if (p.has_serve) {
        out << ", \"offered\": " << p.serve.offered
            << ", \"completed\": " << p.serve.completed
            << ", \"rejected\": " << p.serve.rejected
            << ", \"p50_us\": " << p.serve.p50_us
            << ", \"p95_us\": " << p.serve.p95_us
            << ", \"p99_us\": " << p.serve.p99_us
            << ", \"rps\": " << p.serve.rps;
      }
      out << '}' << (i + 1 < points_.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
  }

 private:
  struct Point {
    std::string config;
    double wall_ms = 0;
    i64 mesh_steps = 0;
    telemetry::PerfSample perf;
    bool has_dist = false;
    i64 boundary_bytes = 0;
    double barrier_wait_ms = 0;
    double recovery_blackout_ms = -1;
    bool has_serve = false;
    ServeColumns serve;
    bool has_algo = false;
    AlgoColumns algo;
  };
  std::string name_;
  int ranks_ = 1;
  std::string transport_ = "local";
  std::vector<Point> points_;
};

}  // namespace meshpram::benchutil
