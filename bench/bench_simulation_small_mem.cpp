// EXP-T4a — Theorem 1/4, small memories (alpha <= 3/2):
// T_sim in n^{1/2 + eps} with constant redundancy (q = 3, k = 2).
//
// Measures one full PRAM step (CULLING + staged access + return) at
// M ~ n^1.2 across mesh sizes, fits the exponent, and prints it next to the
// theory target. Absolute constants are implementation-specific; the SHAPE
// (exponent near 1/2 + eps, small eps) is the reproduced claim.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

int main() {
  std::cout << "=== EXP-T4a: T_sim scaling, alpha ~ 1.2, q=3, k=2 "
               "(Theorem 1, first regime) ===\n";
  BenchRecorder rec("simulation_small_mem");
  Table t({"n", "M", "alpha", "redundancy", "T_sim (steps)", "T/sqrt(n)",
           "culling share", "degraded"});
  std::vector<double> ns, ts;
  for (int side : {16, 32, 64, 128}) {
    const i64 n = static_cast<i64>(side) * side;
    const i64 M = static_cast<i64>(std::llround(std::pow(n, 1.2)));
    const SimPoint p = measure_sim_step(side, M, 3, 2, 42);
    rec.point("side=" + std::to_string(side), p.wall_ms, p.steps);
    t.add(p.n, p.M, p.alpha, p.redundancy, p.steps,
          static_cast<double>(p.steps) / std::sqrt(static_cast<double>(p.n)),
          static_cast<double>(p.culling) / static_cast<double>(p.steps),
          p.degraded ? "yes" : "no");
    ns.push_back(static_cast<double>(p.n));
    ts.push_back(static_cast<double>(p.steps));
  }
  t.print(std::cout);
  const auto fit = fit_power_law(ns, ts);
  std::cout << "\nfitted T_sim ~ n^" << format_double(fit.slope)
            << "  (theory: n^{1/2+eps}, 0 < eps < 1; sorting log factors "
               "push the small-n fit up)  R^2 = "
            << format_double(fit.r2) << "\n";
  rec.write();
  return 0;
}
