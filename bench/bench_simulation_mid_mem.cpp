// EXP-T4b — Theorem 1/4, mid-size memories (3/2 <= alpha <= 5/3):
// T_sim in n^{1/2 + (alpha-1)/16} with k = 3 (27 copies), and
// n^{1/2 + (alpha-1)/8} with k = 2 (9 copies, Eq. 9).
//
// Sweeps n at alpha = 1.5 for both depths and reports measured exponents
// next to the two theory targets — including the paper's k-tradeoff: deeper
// hierarchies lower the exponent at the price of higher redundancy.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

int main() {
  const double alpha = 1.5;
  std::cout << "=== EXP-T4b: T_sim scaling, alpha = 1.5 (Theorem 1, second "
               "regime) ===\n";
  BenchRecorder rec("simulation_mid_mem");
  Table t({"k", "n", "M", "redundancy", "T_sim", "T/sqrt(n)", "degraded"});
  for (int k : {2, 3}) {
    std::vector<double> ns, ts;
    for (int side : {16, 32, 64, 128}) {
      if (side > bench_max_side()) continue;
      const i64 n = static_cast<i64>(side) * side;
      const i64 M = static_cast<i64>(std::llround(std::pow(n, alpha)));
      const SimPoint p = measure_sim_step(side, M, 3, k, 7);
      rec.point("k=" + std::to_string(k) + " side=" + std::to_string(side),
                p.wall_ms, p.steps, p.perf);
      t.add(p.k, p.n, p.M, p.redundancy, p.steps,
            static_cast<double>(p.steps) /
                std::sqrt(static_cast<double>(p.n)),
            p.degraded ? "yes" : "no");
      ns.push_back(static_cast<double>(p.n));
      ts.push_back(static_cast<double>(p.steps));
    }
    if (ns.size() >= 2) {  // the MAX_SIDE smoke filter may leave one point
      const auto fit = fit_power_law(ns, ts);
      const double theory =
          k == 2 ? 0.5 + (alpha - 1) / 8 : 0.5 + (alpha - 1) / 16;
      std::cout << "k=" << k << ": fitted T_sim ~ n^"
                << format_double(fit.slope) << "  (theory n^"
                << format_double(theory) << (k == 2 ? ", Eq. 9" : ", Thm 1")
                << ")  R^2 = " << format_double(fit.r2) << '\n';
    }
  }
  t.print(std::cout);
  rec.write();
  return 0;
}
