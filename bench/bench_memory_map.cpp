// EXP-MAP — §3.1: the memory map is constructive and space-efficient.
//
// Times the variable -> copy-address computation (module path + physical
// node) as the shared memory grows: the cost is O(k * d) = O(k log M) field
// operations with O(1) per-processor state, versus the Omega(M)-sized
// explicit tables a random-graph MOS needs [Her90a].
#include <benchmark/benchmark.h>

#include <iostream>

#include "hmos/memory_map.hpp"
#include "hmos/placement.hpp"
#include "recorder.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace meshpram;
using benchutil::BenchRecorder;
using benchutil::WallTimer;

namespace {

struct Stack {
  HmosParams params;
  MemoryMap map;
  Placement placement;
  Stack(i64 M, int side)
      : params(3, 2, M, side, side), map(params),
        placement(map, Region(0, 0, side, side)) {}
};

void BM_ModulePath(benchmark::State& state) {
  Stack s(state.range(0), 32);
  Rng rng(5);
  u64 copy = s.map.copy_id(rng.range(0, s.params.num_vars() - 1), {1, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.map.module_path(copy));
  }
  state.counters["M"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ModulePath)->Arg(4096)->Arg(32768)->Arg(262144)->Arg(1048576);

void BM_Locate(benchmark::State& state) {
  Stack s(state.range(0), 32);
  Rng rng(6);
  u64 copy = s.map.copy_id(rng.range(0, s.params.num_vars() - 1), {0, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.placement.locate(copy));
  }
  state.counters["M"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Locate)->Arg(4096)->Arg(32768)->Arg(262144)->Arg(1048576);

void representation_table() {
  std::cout << "=== EXP-MAP: memory-map representation cost (3.1) ===\n";
  Table t({"M", "d_1", "level graphs state (words)",
           "explicit-table alternative (words)"});
  for (i64 M : {i64{4096}, i64{32768}, i64{262144}, i64{1048576}}) {
    HmosParams params(3, 2, M, 32, 32);
    // Our state per processor: q, k, the d_i, and the subgraph decomposition
    // (l, w, z) per level — a handful of words.
    const i64 ours = 2 + 2 * params.k() + 3 * params.k();
    t.add(M, params.level(1).d, ours, M * params.redundancy());
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  BenchRecorder rec("memory_map");
  {
    const WallTimer timer;
    representation_table();
    rec.point("representation-table", timer.ms(), /*mesh_steps=*/0);
  }
  // Point timings of the hot address computation (1e5 locates per M).
  for (i64 M : {i64{4096}, i64{262144}, i64{1048576}}) {
    Stack s(M, 32);
    Rng rng(7);
    const u64 red = static_cast<u64>(s.params.redundancy());
    const u64 base =
        static_cast<u64>(rng.range(0, s.params.num_vars() - 1)) * red;
    const WallTimer timer;
    i64 sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink += s.placement.locate(base + static_cast<u64>(i) % red).slot;
    }
    benchmark::DoNotOptimize(sink);
    rec.point("locate-100k M=" + std::to_string(M), timer.ms(),
              /*mesh_steps=*/0);
  }
  rec.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
