// Shared workload generators and helpers for the experiment benches.
//
// Every bench is deterministic (fixed seeds) and prints a paper-style table;
// EXPERIMENTS.md records the outputs next to the theorem each reproduces.
// Every bench also drops a machine-readable BENCH_<name>.json (wall-clock ms
// and counted mesh steps per configuration point) via BenchRecorder, so runs
// can be diffed across commits.
#pragma once

#include <numeric>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "mesh/machine.hpp"
#include "protocol/access.hpp"
#include "recorder.hpp"
#include "util/rng.hpp"

namespace meshpram::benchutil {

/// Random EREW request set: every processor reads a distinct random variable.
/// Dense draws (num_vars <= 2n) use a partial Fisher-Yates over the variable
/// range; sparse draws use rejection sampling with O(1) expected tries — the
/// old linear probe degenerated to O(n * num_vars) once the used set filled.
inline std::vector<AccessRequest> random_requests(i64 n, i64 num_vars,
                                                  Rng& rng,
                                                  Op op = Op::Read) {
  std::vector<AccessRequest> reqs(static_cast<size_t>(n));
  if (num_vars <= 2 * n) {
    std::vector<i64> pool(static_cast<size_t>(num_vars));
    std::iota(pool.begin(), pool.end(), i64{0});
    for (i64 i = 0; i < n; ++i) {
      const i64 j = rng.range(i, num_vars - 1);
      std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
      const i64 v = pool[static_cast<size_t>(i)];
      reqs[static_cast<size_t>(i)] = {v, op, op == Op::Write ? i : 0};
    }
  } else {
    std::unordered_set<i64> used;
    used.reserve(static_cast<size_t>(2 * n));
    for (i64 i = 0; i < n; ++i) {
      i64 v = rng.range(0, num_vars - 1);
      while (!used.insert(v).second) v = rng.range(0, num_vars - 1);
      reqs[static_cast<size_t>(i)] = {v, op, op == Op::Write ? i : 0};
    }
  }
  return reqs;
}

/// Adversarial request set against a modular single-copy map: all variables
/// congruent to `hot` mod n (they also cluster in the BIBD input space).
inline std::vector<AccessRequest> adversarial_requests(i64 n, i64 num_vars,
                                                       i64 hot = 5,
                                                       Op op = Op::Read) {
  std::vector<AccessRequest> reqs;
  for (i64 i = 0; i < n && hot + n * i < num_vars; ++i) {
    reqs.push_back({hot + n * i, op, i});
  }
  // Top up with consecutive variables if M < n^2.
  i64 v = 0;
  std::set<i64> used;
  for (const auto& r : reqs) used.insert(r.var);
  while (static_cast<i64>(reqs.size()) < n) {
    while (used.contains(v)) ++v;
    used.insert(v);
    reqs.push_back({v, op, 0});
  }
  return reqs;
}

/// (l1,l2)-routing instance: every node sends l1 packets; every node receives
/// at most l2 (destinations drawn from a random slot assignment).
inline void fill_l1l2_instance(Mesh& mesh, i64 l1, i64 l2, Rng& rng) {
  const i64 n = mesh.size();
  std::vector<i64> slots;
  slots.reserve(static_cast<size_t>(n * l2));
  for (i64 node = 0; node < n; ++node) {
    for (i64 s = 0; s < l2; ++s) slots.push_back(node);
  }
  rng.shuffle(slots);
  size_t next = 0;
  for (i64 node = 0; node < n; ++node) {
    for (i64 j = 0; j < l1; ++j) {
      Packet p;
      p.var = node * l1 + j;
      p.origin = static_cast<i32>(node);
      p.dest = static_cast<i32>(slots[next++]);
      mesh.buf(static_cast<i32>(node)).push_back(p);
    }
  }
}

/// (l1,l2,delta,m)-routing instance over a tessellation: each subregion
/// receives ~delta * |sub| packets, but inside a subregion the load is
/// maximally skewed (up to l2 per node) — the regime where two-stage routing
/// wins (§2).
inline void fill_tessellated_instance(Mesh& mesh,
                                      const std::vector<Region>& subs, i64 l1,
                                      i64 l2, i64 delta, Rng& rng) {
  const i64 n = mesh.size();
  // Destination slots: per subregion, delta*|sub| slots packed onto the
  // first ceil(delta*|sub|/l2) nodes (intra-submesh skew).
  std::vector<i64> slots;
  for (const Region& sub : subs) {
    i64 budget = delta * sub.size();
    for (i64 s = 0; s < sub.size() && budget > 0; ++s) {
      const i64 here = std::min<i64>(l2, budget);
      for (i64 t = 0; t < here; ++t) {
        slots.push_back(mesh.node_id(sub.at_snake(s)));
      }
      budget -= here;
    }
  }
  rng.shuffle(slots);
  size_t next = 0;
  for (i64 node = 0; node < n && next < slots.size(); ++node) {
    for (i64 j = 0; j < l1 && next < slots.size(); ++j) {
      Packet p;
      p.var = node * l1 + j;
      p.origin = static_cast<i32>(node);
      p.dest = static_cast<i32>(slots[next++]);
      mesh.buf(static_cast<i32>(node)).push_back(p);
    }
  }
}

}  // namespace meshpram::benchutil

#include <cstdlib>
#include <fstream>

#include "protocol/simulator.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace meshpram::benchutil {

/// Upper bound on the mesh side a sweep may run, from the
/// MESHPRAM_BENCH_MAX_SIDE environment variable (unset or <= 0: no limit).
/// tools/bench_smoke.py uses it to run only the fast configuration points.
inline int bench_max_side() {
  if (const auto v = env_i64("MESHPRAM_BENCH_MAX_SIDE", 1, 32767)) {
    return static_cast<int>(*v);
  }
  return 1 << 30;
}

struct SimPoint {
  i64 n = 0;
  i64 M = 0;
  int k = 0;
  double alpha = 0;
  i64 redundancy = 0;
  i64 steps = 0;
  i64 culling = 0;
  i64 forward = 0;
  bool degraded = false;
  double wall_ms = 0;  ///< host wall-clock of the step() call
  telemetry::PerfSample perf;  ///< hardware counters over the step() call
};

/// One full PRAM access step (read) on the mesh simulator; Analytic sort mode
/// so large meshes stay benchable (identical placements, worst-case charge).
inline SimPoint measure_sim_step(int side, i64 M, i64 q, int k, u64 seed,
                                 bool adversarial = false) {
  set_log_level(LogLevel::Error);  // the t_i<1 warning is expected here
  SimConfig cfg;
  cfg.mesh_rows = side;
  cfg.mesh_cols = side;
  cfg.num_vars = M;
  cfg.q = q;
  cfg.k = k;
  cfg.sort_mode = SortMode::Analytic;
  PramMeshSimulator sim(cfg);
  const i64 n = sim.processors();
  Rng rng(seed);
  const auto reqs = adversarial ? adversarial_requests(n, M)
                                : random_requests(n, M, rng);
  // Opt-in trace export: MESHPRAM_TRACE_DIR=<dir> turns telemetry on for the
  // measured step and drops TRACE_<config>.json (Chrome trace) plus
  // TRACE_<config>.csv (congestion heatmap) into <dir>. A no-op in
  // MESHPRAM_TELEMETRY=OFF builds.
  const std::optional<std::string> trace_dir = env_str("MESHPRAM_TRACE_DIR");
  if (trace_dir) {
    telemetry::clear();
    telemetry::set_enabled(true);
  }
  StepStats st;
  telemetry::PerfCounters perf;  // absent (no columns) when unavailable
  const WallTimer timer;
  perf.start();
  sim.step(reqs, &st);
  SimPoint p;
  p.perf = perf.stop();
  p.wall_ms = timer.ms();
  if (trace_dir) {
    telemetry::set_enabled(false);
    const std::string tag = "side" + std::to_string(side) + "_M" +
                            std::to_string(M) + "_k" + std::to_string(k) +
                            (adversarial ? "_adv" : "");
    const std::string base = *trace_dir + "/TRACE_" + tag;
    telemetry::write_chrome_trace(base + ".json");
    telemetry::write_heatmap_csv(sim.mesh().counters(), base + ".csv");
    // Per-stage wall/step aggregate plus the run-level hardware-counter
    // footer (absent when perf_event_open is unavailable on the host).
    std::ofstream stages(base + "_stages.txt");
    telemetry::write_stage_summary(stages, p.perf);
  }
  p.n = n;
  p.M = M;
  p.k = k;
  p.alpha = sim.params().alpha();
  p.redundancy = sim.params().redundancy();
  p.steps = st.total_steps;
  p.culling = st.culling_steps;
  p.forward = st.forward_steps;
  p.degraded = sim.placement().degraded();
  return p;
}

}  // namespace meshpram::benchutil
