// EXP-T4c — Theorem 1/4, large memories (5/3 <= alpha <= 2):
// T_sim in n^{1/2 + (2*alpha-3)/8}, constant redundancy.
//
// alpha = 2 is the full n^2-variable memory: each processor owns n
// variables' worth of copies. At the largest alpha the paper's example gives
// T_sim in O(n^{5/8}) with redundancy 9.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

int main() {
  std::cout << "=== EXP-T4c: T_sim scaling, 5/3 <= alpha <= 2 (Theorem 1, "
               "third regime) ===\n";
  BenchRecorder rec("simulation_large_mem");
  Table t({"alpha", "n", "M", "T_sim", "T/sqrt(n)", "theory exponent",
           "degraded"});
  for (double alpha : {1.75, 2.0}) {
    std::vector<double> ns, ts;
    for (int side : {16, 32, 64}) {
      const i64 n = static_cast<i64>(side) * side;
      const i64 M = static_cast<i64>(std::llround(std::pow(n, alpha)));
      const SimPoint p = measure_sim_step(side, M, 3, 2, 11);
      rec.point("alpha=" + format_double(alpha) +
                    " side=" + std::to_string(side),
                p.wall_ms, p.steps);
      const double theory = 0.5 + (2 * alpha - 3) / 8;
      t.add(p.alpha, p.n, p.M, p.steps,
            static_cast<double>(p.steps) /
                std::sqrt(static_cast<double>(p.n)),
            theory, p.degraded ? "yes" : "no");
      ns.push_back(static_cast<double>(p.n));
      ts.push_back(static_cast<double>(p.steps));
    }
    const auto fit = fit_power_law(ns, ts);
    std::cout << "alpha=" << alpha << ": fitted T_sim ~ n^"
              << format_double(fit.slope) << "  (theory n^"
              << format_double(0.5 + (2 * alpha - 3) / 8)
              << ")  R^2 = " << format_double(fit.r2) << '\n';
  }
  t.print(std::cout);
  std::cout << "\nAt alpha = 2 the paper's example: redundancy 9, T_sim in "
               "O(n^{5/8}).\n";
  rec.write();
  return 0;
}
