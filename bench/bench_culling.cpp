// EXP-T3 / EXP-CULL — Theorem 3 and Eq. (2).
//
// Runs procedure CULLING on random and adversarial request sets across mesh
// sizes and reports (a) the measured worst per-page selected-copy load per
// level against the 4 q^k n^{1-1/2^i} bound, (b) the culling step cost
// against the O(k q^k sqrt(n)) charge, and (c) an ablation: the page loads
// the same request sets would inflict WITHOUT culling (all q^k copies
// requested), showing what the procedure buys.
#include <cmath>
#include <iostream>
#include <unordered_map>

#include "common.hpp"
#include "hmos/placement.hpp"
#include "protocol/culling.hpp"
#include "util/stats.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

namespace {

struct Config {
  int side;
  i64 M;
  int k;
};

i64 no_culling_load(const Placement& placement,
                    const std::vector<AccessRequest>& reqs, int level) {
  const i64 red = placement.map().params().redundancy();
  std::unordered_map<i64, i64> load;
  for (const auto& r : reqs) {
    if (r.var < 0) continue;
    for (i64 code = 0; code < red; ++code) {
      const u64 copy =
          static_cast<u64>(r.var) * static_cast<u64>(red) +
          static_cast<u64>(code);
      ++load[placement.page_at(copy, level)];
    }
  }
  i64 best = 0;
  for (const auto& [p, c] : load) best = std::max(best, c);
  return best;
}

}  // namespace

int main() {
  set_log_level(LogLevel::Error);
  std::cout << "=== EXP-T3: culling congestion vs Theorem 3 bound ===\n";
  BenchRecorder rec("culling");
  Table t({"n", "M", "k", "pattern", "level", "max page load (culled)",
           "bound", "no-culling load", "culling steps"});

  std::vector<double> ns, steps;
  for (const Config& cfg : {Config{16, 1080, 2}, Config{32, 4096, 2},
                            Config{32, 9801, 2}, Config{64, 9801, 2},
                            Config{64, 100000, 3}}) {
    const i64 n = static_cast<i64>(cfg.side) * cfg.side;
    HmosParams params(3, cfg.k, cfg.M, cfg.side, cfg.side);
    MemoryMap map(params);
    Mesh mesh(cfg.side, cfg.side);
    Placement placement(map, mesh.whole());
    Rng rng(static_cast<u64>(n));

    for (const char* pattern : {"random", "adversarial"}) {
      const auto reqs =
          pattern[0] == 'r'
              ? random_requests(n, cfg.M, rng)
              : adversarial_requests(n, cfg.M);
      std::vector<i64> vars(static_cast<size_t>(n), -1);
      for (i64 i = 0; i < n; ++i) vars[static_cast<size_t>(i)] = reqs[static_cast<size_t>(i)].var;

      Culling culling(mesh, placement, {SortMode::Analytic});
      CullingStats st;
      const WallTimer timer;
      culling.run(vars, &st);
      rec.point("side=" + std::to_string(cfg.side) +
                    " M=" + std::to_string(cfg.M) + " " + pattern,
                timer.ms(), st.steps);
      for (int lvl = 1; lvl <= cfg.k; ++lvl) {
        t.add(n, cfg.M, cfg.k, pattern, lvl,
              st.max_page_load[static_cast<size_t>(lvl - 1)],
              st.bound[static_cast<size_t>(lvl - 1)],
              no_culling_load(placement, reqs, lvl),
              lvl == 1 ? std::to_string(st.steps) : "");
      }
      if (pattern[0] == 'r' && cfg.k == 2) {
        ns.push_back(static_cast<double>(n));
        steps.push_back(static_cast<double>(st.steps));
      }
    }
  }
  t.print(std::cout);

  // Module-targeted adversary: every requested variable is incident to ONE
  // level-1 module u, so without culling a single level-1 page would hold
  // one copy of (almost) every request — the regime where Theorem 3's bound
  // actually binds (needs alpha = 2 so the module has enough neighbors).
  {
    const int side = 64;
    const i64 n = static_cast<i64>(side) * side;
    const i64 M = n * n;
    HmosParams params(3, 2, M, side, side);
    MemoryMap map(params);
    Mesh mesh(side, side);
    Placement placement(map, mesh.whole());
    const i64 deg = map.graph(1).output_degree(0);
    std::vector<AccessRequest> reqs;
    for (i64 r = 0; r < std::min(deg, n); ++r) {
      reqs.push_back({map.graph(1).output_neighbor(0, r), Op::Read, 0});
    }
    std::vector<i64> vars(static_cast<size_t>(n), -1);
    for (size_t i = 0; i < reqs.size(); ++i) vars[i] = reqs[i].var;
    Culling culling(mesh, placement, {SortMode::Analytic});
    CullingStats st;
    const WallTimer timer;
    culling.run(vars, &st);
    rec.point("module-targeted side=64", timer.ms(), st.steps);
    std::cout << "\nmodule-targeted adversary (n=" << n << ", M=n^2, "
              << reqs.size() << " requests into level-1 module 0):\n";
    Table mt({"level", "max page load (culled)", "bound", "no-culling load"});
    for (int lvl = 1; lvl <= 2; ++lvl) {
      mt.add(lvl, st.max_page_load[static_cast<size_t>(lvl - 1)],
             st.bound[static_cast<size_t>(lvl - 1)],
             no_culling_load(placement, reqs, lvl));
    }
    mt.print(std::cout);
  }

  const auto fit = fit_power_law(ns, steps);
  std::cout << "\nEXP-CULL: culling steps scale as n^"
            << format_double(fit.slope)
            << " (Eq. 2 predicts n^0.5 up to the sorting log factor), R^2 = "
            << format_double(fit.r2) << "\n";
  rec.write();
  return 0;
}
