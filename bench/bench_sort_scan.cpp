// EXP-SORT — the §2 prerequisites: k-k mesh sorting and prefix/ranking.
//
// Measures block shearsort steps against its O(L * sqrt(n) * log n) bound
// and against the O(L * sqrt(n)) cost of the algorithms the paper cites
// [KSS94, Kun93] (our documented substitution), plus the scan/rank cost.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "routing/meshsort.hpp"
#include "routing/rank.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

int main() {
  std::cout << "=== EXP-SORT: k-k mesh sorting (paper 2 prerequisite) ===\n";
  BenchRecorder rec("sort_scan");
  Table t({"n", "L (load)", "measured steps", "shearsort bound",
           "cited-alg cost L*2*sqrt(n)", "measured/cited"});
  for (int side : {16, 32, 64, 128}) {
    const i64 n = static_cast<i64>(side) * side;
    for (i64 load : {1, 4, 9}) {
      if (side == 128 && load > 4) continue;
      Mesh mesh(side, side);
      Rng rng(static_cast<u64>(n * 13 + load));
      for (i64 node = 0; node < n; ++node) {
        for (i64 j = 0; j < load; ++j) {
          Packet p;
          p.key = rng.below(1u << 30);
          p.var = node;
          mesh.buf(static_cast<i32>(node)).push_back(p);
        }
      }
      const WallTimer timer;
      const i64 steps = sort_region(mesh, mesh.whole());
      rec.point("sort side=" + std::to_string(side) +
                    " load=" + std::to_string(load),
                timer.ms(), steps);
      const i64 bound = shearsort_step_bound(mesh.whole(), load);
      const double cited =
          static_cast<double>(load) * 2.0 * std::sqrt(static_cast<double>(n));
      t.add(n, load, steps, bound, cited,
            static_cast<double>(steps) / cited);
    }
  }
  t.print(std::cout);

  std::cout << "\nscan + group ranking cost (O(sqrt(n))):\n";
  Table s({"n", "rank steps", "4*(2*sqrt(n)+sqrt(n)) prediction"});
  for (int side : {16, 32, 64, 128}) {
    const i64 n = static_cast<i64>(side) * side;
    Mesh mesh(side, side);
    Rng rng(3);
    for (i64 s = 0; s < n; ++s) {
      Packet p;
      p.key = static_cast<u64>(s / 7);  // groups, pre-sorted in snake order
      mesh.buf(mesh.node_at(mesh.whole(), s)).push_back(p);
    }
    const WallTimer timer;
    const i64 steps = rank_within_groups(mesh, mesh.whole());
    rec.point("rank side=" + std::to_string(side), timer.ms(), steps);
    s.add(n, steps, 4 * (2 * side + side));
  }
  s.print(std::cout);
  rec.write();
  return 0;
}
